"""Static DMA/LSU happens-before checking.

The streaming kernels overlap DMA prefetch with CPU compute: the
prefetcher writes the *next* chunk pair into one buffer half while the
set datapath consumes the current pair from the other half.  The two
agents only synchronize through the ``DMA_DONE`` completion counter, so
a missing (or misplaced) wait loop silently corrupts data — the classic
double-buffering race.  This pass proves the synchronization statically:

* a DMA transfer *window* opens at every reachable ``wur DMA_CTRL``
  start whose destination/length come from the abstract interpretation
  (:mod:`repro.analysis.absint`),
* the window stays *in flight* along every CFG path until the program
  passes a **wait barrier** — a conditional branch guarding on a
  register freshly read from a hardware-maintained DMA progress state
  (``rur aX, DMA_DONE`` / ``DMA_STATUS``); the forward (loop-exit)
  edges of such a branch retire all in-flight windows,
* every scalar load/store and every datapath-pointer ``wur`` that
  executes while a window is in flight is compared against the
  window's byte range.

Diagnostics:

* ``RACE001`` (error) — the access *provably* overlaps an in-flight
  DMA window: every admitted address pair collides.
* ``RACE002`` (warning) — bounded ranges admit an overlap.
* ``RACE003`` (warning) — a DMA window is still in flight when the
  program halts.

:func:`check_transfer_schedule` validates a *host-built* descriptor
table (the other half of the contract) before it is handed to a
kernel:

* ``RACE004`` (error) — a window does not fit inside any mapped
  memory region,
* ``RACE005`` (error) — a window overlaps a reserved range (the
  descriptor table itself, the result buffer),
* ``RACE006`` (error) — two windows that may be in flight
  concurrently overlap (a double-buffering violation).

The wait-barrier rule is deliberately coarse (any guarded poll retires
*all* windows, not just the FIFO-oldest): it never flags the shipped
double-buffered kernels, and a kernel with no poll at all — the defect
class this pass exists for — cannot retire anything.
"""

from .absint import ACCESS_SIZES, _is_pointer_state, analyze
from .dataflow import _ur_state_names, node_slots

M32 = 0xFFFFFFFF

#: DMA descriptor-programming states (software-written).
_DMA_SRC, _DMA_DST, _DMA_LEN, _DMA_CTRL = (
    "DMA_SRC", "DMA_DST", "DMA_LEN", "DMA_CTRL")


def _progress_states(processor):
    """Hardware-maintained DMA progress states (poll targets)."""
    hardware = set(getattr(processor, "ur_hardware_written", ()))
    return {name for name in hardware if name.startswith("DMA")}


class _Window:
    """One in-flight transfer window, keyed by its start site."""

    __slots__ = ("site", "line", "dst", "length", "src")

    def __init__(self, site, line, dst, length, src):
        self.site = site
        self.line = line
        self.dst = dst
        self.length = length
        self.src = src


def _overlap(addr, size, target, length):
    """Classify overlap of ``[addr, addr+size)`` with a DMA range.

    Returns ``"certain"``, ``"possible"`` or ``None``.  *target* and
    *length* are :class:`~repro.analysis.absint.Interval` abstractions
    of the window base and byte length.
    """
    if addr.is_top or addr.hi - addr.lo > 1 << 28:
        return None
    if target.is_top or target.hi - target.lo > 1 << 28:
        return None
    len_lo = max(length.lo, 0)
    len_hi = min(length.hi, 1 << 28)
    if len_hi <= 0:
        return None
    if len_lo >= 1 and addr.hi < target.lo + len_lo \
            and target.hi < addr.lo + size:
        return "certain"
    if addr.lo < target.hi + len_hi and target.lo < addr.hi + size:
        return "possible"
    return None


def check_races(cfg, report, processor, result=None):
    """Run RACE001..RACE003 over one assembled program."""
    symbols = getattr(processor, "symbols", {})
    if _DMA_CTRL not in symbols:
        return report  # no DMA engine on this core
    if result is None:
        result = analyze(cfg, processor)
    ur_names = _ur_state_names(processor)
    progress = _progress_states(processor)
    source = cfg.program.source_name
    windows = {}        # site node -> _Window (intervals are per-site)
    state_in = {cfg.entry: (frozenset(), frozenset())}
    worklist = [cfg.entry]
    reported = set()
    while worklist:
        node = worklist.pop(0)
        in_flight, tags = state_in[node]
        in_flight = set(in_flight)
        tags = set(tags)
        item = cfg.item(node)
        line = getattr(item, "line_number", None)
        barrier = False
        for env, slot in result.slot_envs(node):
            spec = slot.spec
            name = spec.name
            if name == "rur":
                state = ur_names.get(slot.operands[1])
                if state in progress:
                    tags.add(slot.operands[0])
                else:
                    tags.discard(slot.operands[0])
                continue
            if name == "wur":
                state = ur_names.get(slot.operands[1])
                if state == _DMA_CTRL:
                    value = env.reg(slot.operands[0])
                    # A provably even control word never sets CMD_START.
                    if not (value.mod % 2 == 0 and value.rem % 2 == 0):
                        site = node
                        if site not in windows:
                            windows[site] = _Window(
                                site, line,
                                env.state(_DMA_DST),
                                env.state(_DMA_LEN),
                                env.state(_DMA_SRC))
                        in_flight.add(site)
                elif state is not None and state not in (
                        _DMA_SRC, _DMA_DST, _DMA_LEN) \
                        and _is_pointer_state(state):
                    _check_conflicts(report, reported, windows,
                                     in_flight, env.reg(
                                         slot.operands[0]), 4,
                                     "wur %s" % state, True, source,
                                     line, node)
                continue
            if spec.kind == "branch":
                reads = [slot.operands[0]]
                if spec.fmt == "B":
                    reads.append(slot.operands[1])
                if any(reg in tags for reg in reads):
                    barrier = True
            size = ACCESS_SIZES.get(name)
            if size is not None and spec.kind in ("load", "store"):
                _rd, rs, imm = slot.operands
                addr, _wraps, _may = env.reg(rs).add_const(imm)
                _check_conflicts(report, reported, windows, in_flight,
                                 addr, size, name,
                                 spec.kind == "store", source, line,
                                 node)
            for reg in _slot_writes(slot):
                tags.discard(reg)
        for transfer in cfg.transfers.get(node, ()):
            if transfer.kind == "halt" and in_flight:
                for site in sorted(in_flight):
                    key = ("RACE003", node, site)
                    if key in reported:
                        continue
                    reported.add(key)
                    window = windows[site]
                    report.add(
                        "RACE003", "warning",
                        "the DMA transfer started at line %s is still "
                        "in flight when the program halts"
                        % (window.line,),
                        source, line, node)
        out_all = (frozenset(in_flight), frozenset(tags))
        out_cleared = (frozenset(), frozenset(tags))
        for succ in cfg.succ[node]:
            # A guarded completion poll retires every in-flight window
            # on its forward (loop-exit) edges.
            out = out_cleared if barrier and succ > node else out_all
            current = state_in.get(succ)
            if current is None:
                state_in[succ] = out
                worklist.append(succ)
            else:
                merged = (current[0] | out[0], current[1] | out[1])
                if merged != current:
                    state_in[succ] = merged
                    worklist.append(succ)
    return report


def _slot_writes(slot):
    from ..cpu.pipeline import register_uses
    _reads, writes = register_uses(slot.spec, slot.operands)
    return writes


def _check_conflicts(report, reported, windows, in_flight, addr, size,
                     what, is_store, source, line, node):
    for site in sorted(in_flight):
        window = windows[site]
        verdict = _overlap(addr, size, window.dst, window.length)
        side = "destination"
        if verdict is None and is_store:
            verdict = _overlap(addr, size, window.src, window.length)
            side = "source"
        if verdict is None:
            continue
        code = "RACE001" if verdict == "certain" else "RACE002"
        key = (code, node, site)
        if key in reported:
            continue
        reported.add(key)
        severity = "error" if verdict == "certain" else "warning"
        report.add(
            code, severity,
            "%s %s the %s window of the DMA transfer started at line "
            "%s with no intervening DMA wait (window base [0x%08x, "
            "0x%08x])"
            % (what,
               "provably overlaps" if verdict == "certain"
               else "may overlap",
               side,
               window.line,
               (window.dst if side == "destination"
                else window.src).lo,
               (window.dst if side == "destination"
                else window.src).hi),
            source, line, node)


# ---------------------------------------------------------------------------
# host-side transfer-schedule validation
# ---------------------------------------------------------------------------

def check_transfer_schedule(windows, processor=None, regions=None,
                            reserved=(), concurrency=2, report=None,
                            source_name="<schedule>"):
    """Validate a host-built DMA descriptor schedule (RACE004..006).

    Parameters
    ----------
    windows:
        Iterable of ``(dst, nbytes)`` or ``(dst, nbytes, label)``
        destination windows in descriptor (FIFO) order.
    processor / regions:
        Memory map to check containment against; *regions* is a list
        of ``(name, base, size_bytes)`` and defaults to the
        processor's simulated map.
    reserved:
        ``(label, base, size_bytes)`` ranges no window may touch
        (descriptor tables, result buffers).
    concurrency:
        How many consecutive descriptors may be in flight at once
        (2 per chunk pair, 4 when the next pair is prefetched during
        compute); windows within such a group must be disjoint.
    """
    from .diagnostics import DiagnosticReport
    if report is None:
        report = DiagnosticReport(source_name)
    if regions is None:
        regions = [(region.name, region.base, region.size_bytes)
                   for region in getattr(processor, "memory_map", ())]
    entries = []
    for index, window in enumerate(windows):
        dst, nbytes = window[0], window[1]
        label = window[2] if len(window) > 2 else "descriptor %d" % index
        entries.append((dst, nbytes, label))
    for dst, nbytes, label in entries:
        if nbytes <= 0:
            continue
        if not any(base <= dst and dst + nbytes <= base + size
                   for _name, base, size in regions):
            report.add(
                "RACE004", "error",
                "%s writes [0x%08x, 0x%08x), which does not fit any "
                "mapped memory region" % (label, dst, dst + nbytes),
                source_name)
        for rlabel, rbase, rsize in reserved:
            if dst < rbase + rsize and rbase < dst + nbytes:
                report.add(
                    "RACE005", "error",
                    "%s writes [0x%08x, 0x%08x), overlapping the "
                    "reserved %s at [0x%08x, 0x%08x)"
                    % (label, dst, dst + nbytes, rlabel, rbase,
                       rbase + rsize),
                    source_name)
    for index, (dst, nbytes, label) in enumerate(entries):
        if nbytes <= 0:
            continue
        for other_index in range(index + 1,
                                 min(index + concurrency,
                                     len(entries))):
            odst, obytes, olabel = entries[other_index]
            if obytes <= 0:
                continue
            if dst < odst + obytes and odst < dst + nbytes:
                report.add(
                    "RACE006", "error",
                    "%s [0x%08x, 0x%08x) and %s [0x%08x, 0x%08x) may "
                    "be in flight concurrently but overlap"
                    % (label, dst, dst + nbytes, olabel, odst,
                       odst + obytes),
                    source_name)
    return report
