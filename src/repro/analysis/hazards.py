"""Structural hazard and encodability checks.

These mirror the rules TIE/XCC enforce when scheduling FLIX bundles and
the constraints of the binary formats, but run statically over the
assembled program so a mis-scheduled bundle is reported with a source
location instead of failing deep inside ``Program.encode`` (or being
silently mis-simulated).

Checks:

* ``HZ001`` — WAW hazard: two slots of one bundle write the same
  register (the later slot silently wins).
* ``HZ002`` — intra-bundle RAW: a later slot reads a register an
  earlier slot writes.  Defined behavior in this model (slots chain
  like the paper's fused EIS datapaths), reported as info.
* ``HZ003`` — the bundle's slots do not fit the FLIX format (slot
  class violation), or the format is unknown to the processor.
* ``HZ004`` — a branch/jump/immediate field of a bundle slot exceeds
  the compact 10-bit encoding (±511-word branch range).
* ``HZ005`` — more than one multi-cycle (``extra_cycles > 0``)
  operation issued in the same bundle.
* ``HZ006`` — more than one control-transfer operation in one bundle.
* ``HZ007`` — the bundle payload exceeds the 48 available bits.
* ``HZ008`` — a scalar instruction's branch/jump offset or immediate
  exceeds its 32-bit format field.
"""

from ..cpu.pipeline import register_uses
from ..isa.assembler import Bundle, BundleTail
from ..isa.registers import register_name
from ..tie.compiler import compact_operand_kinds, field_bits
from ..tie.flix import OPCODE_BITS, PAYLOAD_BITS

#: Signed field widths of the scalar formats (bits).
_SCALAR_OFF_BITS = {"B": 16, "BZ": 16, "J": 24}


def _fits_signed(value, bits):
    return -(1 << (bits - 1)) <= value < (1 << (bits - 1))


def _fits_unsigned(value, bits):
    return 0 <= value < (1 << bits)


def check_hazards(program, report, flix_formats=()):
    """Run HZ001..HZ008 over every item of *program*."""
    known_formats = set(id(f) for f in flix_formats)
    for index, item in enumerate(program.items):
        if isinstance(item, BundleTail):
            continue
        if isinstance(item, Bundle):
            _check_bundle(program, report, index, item, known_formats,
                          bool(flix_formats))
        else:
            _check_scalar(program, report, index, item)
    return report


# ---------------------------------------------------------------------------
# bundle checks
# ---------------------------------------------------------------------------

def _check_bundle(program, report, index, bundle, known_formats,
                  have_formats):
    source = program.source_name
    line = bundle.line_number

    # HZ003: format membership and slot-class fit.
    if have_formats and id(bundle.flix_format) not in known_formats:
        report.add("HZ003", "error",
                   "bundle uses FLIX format %r, which the processor "
                   "does not define" % bundle.flix_format.name,
                   source, line, index)
    if not bundle.flix_format.accepts(bundle.slots):
        report.add("HZ003", "error",
                   "bundle {%s} violates the slot classes of format %r"
                   % ("; ".join(s.spec.name for s in bundle.slots),
                      bundle.flix_format.name),
                   source, line, index)

    # HZ001/HZ002: intra-bundle register hazards.
    written = {}
    for slot in bundle.slots:
        spec = slot.spec
        reads, writes = register_uses(spec, slot.operands)
        for reg in reads:
            if reg in written:
                report.add(
                    "HZ002", "info",
                    "intra-bundle RAW: %s reads %s written by %s in the "
                    "same bundle (slots chain in issue order)"
                    % (spec.name, register_name(reg), written[reg]),
                    source, line, index)
        for reg in writes:
            if reg in written:
                report.add(
                    "HZ001", "error",
                    "intra-bundle WAW: %s and %s both write %s"
                    % (written[reg], spec.name, register_name(reg)),
                    source, line, index)
            written[reg] = spec.name

    # HZ005: multi-issue of multi-cycle operations.
    multi = [s.spec.name for s in bundle.slots if s.spec.extra_cycles > 0]
    if len(multi) > 1:
        report.add("HZ005", "warning",
                   "bundle issues %d multi-cycle operations (%s); the "
                   "iteration logic is shared"
                   % (len(multi), ", ".join(multi)),
                   source, line, index)

    # HZ006: at most one control transfer per bundle.
    control = [s.spec.name for s in bundle.slots if s.spec.is_control]
    if len(control) > 1:
        report.add("HZ006", "error",
                   "bundle contains %d control transfers (%s)"
                   % (len(control), ", ".join(control)),
                   source, line, index)

    # HZ004/HZ007: compact field ranges and payload budget.
    total_bits = 0
    for slot in bundle.slots:
        spec = slot.spec
        kinds = compact_operand_kinds(spec)
        total_bits += OPCODE_BITS
        for kind, value in zip(kinds, slot.operands):
            width = field_bits(kind)
            total_bits += width
            if kind == "off":
                relative = value - (index + bundle.size)
                if not _fits_signed(relative, width):
                    report.add(
                        "HZ004", "error",
                        "%s: branch offset %+d words exceeds the "
                        "+/-%d-word bundle range"
                        % (spec.name, relative, (1 << (width - 1)) - 1),
                        source, line, index)
            elif kind == "imm":
                if not _fits_signed(value, width):
                    report.add(
                        "HZ004", "error",
                        "%s: immediate %d does not fit the %d-bit "
                        "bundle field" % (spec.name, value, width),
                        source, line, index)
    if total_bits > PAYLOAD_BITS:
        report.add("HZ007", "error",
                   "bundle payload needs %d bits, only %d available"
                   % (total_bits, PAYLOAD_BITS),
                   source, line, index)


# ---------------------------------------------------------------------------
# scalar checks
# ---------------------------------------------------------------------------

def _check_scalar(program, report, index, item):
    spec = item.spec
    source = program.source_name
    line = item.line_number
    if getattr(spec, "operand_kinds", None) is not None:
        kinds = spec.operand_kinds
        if "imm" in kinds and spec.fmt in ("I", "IU"):
            value = item.operands[kinds.index("imm")]
            if not _fits_signed(value, 16):
                report.add("HZ008", "error",
                           "%s: immediate %d does not fit the 16-bit "
                           "field" % (spec.name, value),
                           source, line, index)
        return
    if spec.fmt in _SCALAR_OFF_BITS:
        bits = _SCALAR_OFF_BITS[spec.fmt]
        relative = item.operands[-1] - (index + item.size)
        if not _fits_signed(relative, bits):
            report.add("HZ008", "error",
                       "%s: branch/jump offset %+d words exceeds the "
                       "%d-bit field" % (spec.name, relative, bits),
                       source, line, index)
    elif spec.fmt == "I":
        value = item.operands[-1]
        if not _fits_signed(value, 16):
            report.add("HZ008", "error",
                       "%s: immediate %d does not fit a signed 16-bit "
                       "field" % (spec.name, value),
                       source, line, index)
    elif spec.fmt == "IU":
        value = item.operands[-1]
        if not _fits_unsigned(value, 16):
            report.add("HZ008", "error",
                       "%s: immediate %d does not fit an unsigned "
                       "16-bit field" % (spec.name, value),
                       source, line, index)
