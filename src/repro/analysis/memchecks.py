"""Static memory checks: bounds and alignment of resolvable accesses.

A light constant-propagation pass walks the CFG forward, tracking the
registers whose 32-bit value is statically known (built by ``li`` /
``movi`` / ``movhi`` and simple arithmetic over known values).  Every
scalar load/store whose base register is known is then checked against
the processor's *architectural* memory map
(:meth:`repro.cpu.config.CoreConfig.architectural_regions`):

* ``MEM001`` — the address maps to no memory region (guaranteed
  :class:`~repro.cpu.errors.MemoryFault` at run time),
* ``MEM002`` — the access is misaligned for its size (idem),
* ``MEM003`` — the address is only covered by the simulator's local
  store headroom (``sim_headroom_kb``), i.e. it would fault on the real
  hardware although the simulation accepts it.

Addresses that depend on run-time register arguments stay unknown and
are skipped — the checker never produces false positives for the
argument-relative addressing the kernels use.
"""

from ..cpu.pipeline import register_uses
from ..isa.assembler import Bundle

M32 = 0xFFFFFFFF

#: Access size in bytes per scalar load/store mnemonic.
ACCESS_SIZES = {
    "l32i": 4, "s32i": 4,
    "l16ui": 2, "l16si": 2, "s16i": 2,
    "l8ui": 1, "s8i": 1,
}


def _evaluate(spec, operands, values):
    """Value written by an ALU op when computable, else ``None``.

    Returns ``(reg, value_or_None)`` for value-producing ops, or
    ``None`` when the op writes no trackable register.
    """
    name = spec.name
    if name == "movi":
        return operands[0], operands[2] & M32
    if name == "movhi":
        return operands[0], (operands[2] & 0xFFFF) << 16
    if spec.fmt in ("I", "IU") and name in (
            "addi", "ori", "andi", "xori", "slli", "srli"):
        rd, rs, imm = operands
        base = values.get(rs)
        if base is None:
            return rd, None
        if name == "addi":
            return rd, (base + imm) & M32
        if name == "ori":
            return rd, base | (imm & 0xFFFF)
        if name == "andi":
            return rd, base & (imm & M32)
        if name == "xori":
            return rd, base ^ (imm & 0xFFFF)
        if name == "slli":
            return rd, (base << (imm & 31)) & M32
        return rd, base >> (imm & 31)
    if spec.fmt == "R" and name in ("add", "sub", "or", "and", "xor"):
        rd, rs, rt = operands
        a, b = values.get(rs), values.get(rt)
        if a is None or b is None:
            return rd, None
        if name == "add":
            return rd, (a + b) & M32
        if name == "sub":
            return rd, (a - b) & M32
        if name == "or":
            return rd, a | b
        if name == "and":
            return rd, a & b
        return rd, a ^ b
    return None


def check_memory(cfg, report, processor):
    """Run MEM001..MEM003 over all reachable resolvable accesses."""
    config = getattr(processor, "config", None)
    if config is None:
        return report
    arch = config.architectural_regions()
    simulated = [(region.name, region.base, region.size_bytes)
                 for region in getattr(processor, "memory_map", ())]
    values_in = {cfg.entry: {}}
    worklist = [cfg.entry]
    reported = set()
    while worklist:
        node = worklist.pop(0)
        values = dict(values_in[node])
        for slot in _slots(cfg.item(node)):
            _check_access(cfg, report, node, slot, values, arch,
                          simulated, reported)
            _transfer(slot, values)
        for succ in cfg.succ[node]:
            current = values_in.get(succ)
            if current is None:
                values_in[succ] = dict(values)
                worklist.append(succ)
            else:
                merged = {reg: val for reg, val in current.items()
                          if values.get(reg) == val}
                if merged != current:
                    values_in[succ] = merged
                    worklist.append(succ)
    return report


def _slots(item):
    return item.slots if isinstance(item, Bundle) else (item,)


def _transfer(slot, values):
    spec = slot.spec
    result = _evaluate(spec, slot.operands, values)
    if result is not None:
        reg, value = result
        if value is None:
            values.pop(reg, None)
        else:
            values[reg] = value
        return
    # Any other register write invalidates what we knew about it.
    _reads, writes = register_uses(spec, slot.operands)
    for reg in writes:
        values.pop(reg, None)


def _check_access(cfg, report, node, slot, values, arch, simulated,
                  reported):
    spec = slot.spec
    size = ACCESS_SIZES.get(spec.name)
    if size is None or spec.kind not in ("load", "store"):
        return
    _rd, rs, imm = slot.operands
    base = values.get(rs)
    if base is None:
        return
    addr = (base + imm) & M32
    key = (node, spec.name, addr)
    if key in reported:
        return
    reported.add(key)
    item = cfg.item(node)
    line = getattr(item, "line_number", None)
    source = cfg.program.source_name
    if size > 1 and addr & (size - 1):
        report.add("MEM002", "error",
                   "%s at 0x%08x is misaligned for a %d-byte access"
                   % (spec.name, addr, size),
                   source, line, node)
    region = _region_for(arch, addr, size)
    if region is not None:
        return
    sim_region = _region_for(simulated, addr, size)
    if sim_region is not None:
        report.add("MEM003", "warning",
                   "%s at 0x%08x lands in simulation headroom beyond "
                   "the architectural size of %r"
                   % (spec.name, addr, sim_region),
                   source, line, node)
    else:
        report.add("MEM001", "error",
                   "%s at 0x%08x maps to no memory region"
                   % (spec.name, addr),
                   source, line, node)


def _region_for(regions, addr, size):
    for name, base, size_bytes in regions:
        if base <= addr and addr + size <= base + size_bytes:
            return name
    return None
