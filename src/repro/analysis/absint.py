"""Value-range abstract interpretation over assembled programs.

This is the deep tier above :mod:`repro.analysis.memchecks`: where the
constant-propagation pass only checks loads/stores whose address is a
single literal, this pass tracks an *interval with congruence*
abstraction of every address register and TIE state

    ``{ v : lo <= v <= hi  and  v mod modulus == remainder }``

(unsigned 32-bit, ``modulus`` a power of two) through a forward
worklist analysis of the CFG.  Loop heads — nodes entered along a
retreating edge — are widened after a couple of iterations against a
threshold set derived from the processor's memory-region boundaries,
so pointer-increment loops converge to "somewhere inside this region"
instead of diverging.  Conditional branches refine the interval on
each outgoing edge (``bltu a2, a3, loop`` clamps ``a2`` below ``a3``
on the taken edge), which is what turns a widened loop pointer back
into a proven range.

Checks (the ``VAL*`` family; literal single-address findings remain
``MEM*`` territory and are skipped here):

* ``VAL001`` — a computed load/store is provably out of bounds: every
  address the abstraction admits misses every memory region.
* ``VAL002`` — a computed access is provably misaligned: the
  congruence admits no aligned address (fires even on unbounded
  ranges, e.g. ``slli`` + odd offset).
* ``VAL003`` — the effective-address arithmetic provably wraps around
  2^32.
* ``VAL004`` — a bounded computed range is *partially* outside every
  region (some admitted addresses would fault).
* ``VAL005`` — a ``wur`` writes a datapath/DMA pointer state (the SOP
  / merge / decompress pointers, ``DMA_SRC``/``DMA_DST``) with a value
  provably outside every memory region.

The converged per-node environments are exposed through
:class:`AbsintResult` so other deep passes (the DMA race checker in
:mod:`repro.analysis.races`) can reuse the value information.
"""

from ..cpu.pipeline import register_uses
from .dataflow import _ur_state_names, node_slots
from .memchecks import ACCESS_SIZES, _region_for

M32 = 0xFFFFFFFF
MOD32 = 1 << 32

#: Widen a loop-head register after this many refinements.
WIDEN_AFTER = 2

#: Spans larger than this are treated as unbounded for the may-OOB
#: check (keeps widened-but-unrefined pointers from producing noise).
BOUNDED_SPAN = 1 << 28

#: TIE state-name suffixes that denote datapath / DMA pointers.
POINTER_STATE_SUFFIXES = ("ptr_a", "ptr_b", "ptr_c", "end_a", "end_b",
                          "_src", "_dst")


def _pow2_floor(value):
    """Largest power of two dividing *value* (value > 0)."""
    return value & -value


class Interval:
    """One abstract value: bounds plus power-of-two congruence."""

    __slots__ = ("lo", "hi", "mod", "rem")

    def __init__(self, lo, hi, mod=1, rem=0):
        self.lo = lo
        self.hi = hi
        self.mod = mod
        self.rem = rem % mod

    # -- constructors --------------------------------------------------------

    @classmethod
    def top(cls):
        return cls(0, M32, 1, 0)

    @classmethod
    def const(cls, value):
        value &= M32
        return cls(value, value, MOD32, value)

    # -- predicates ----------------------------------------------------------

    @property
    def is_top(self):
        return self.lo == 0 and self.hi == M32 and self.mod == 1

    @property
    def is_const(self):
        return self.lo == self.hi

    @property
    def bounded(self):
        return self.hi - self.lo <= BOUNDED_SPAN and not (
            self.lo == 0 and self.hi == M32)

    def __eq__(self, other):
        return (isinstance(other, Interval) and self.lo == other.lo
                and self.hi == other.hi and self.mod == other.mod
                and self.rem == other.rem)

    def __hash__(self):
        return hash((self.lo, self.hi, self.mod, self.rem))

    def __repr__(self):
        extra = " mod %d rem %d" % (self.mod, self.rem) \
            if self.mod > 1 else ""
        return "<[0x%x, 0x%x]%s>" % (self.lo, self.hi, extra)

    # -- lattice -------------------------------------------------------------

    def join(self, other):
        """Least upper bound (interval hull + congruence meet)."""
        mod = min(self.mod, other.mod)
        while mod > 1 and (self.rem % mod) != (other.rem % mod):
            mod >>= 1
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi),
                        mod, self.rem % mod)

    def widen(self, newer, thresholds):
        """Jump unstable bounds to the nearest threshold."""
        lo, hi = self.lo, self.hi
        if newer.lo < lo:
            lo = max((t for t in thresholds if t <= newer.lo), default=0)
        if newer.hi > hi:
            hi = min((t for t in thresholds if t >= newer.hi),
                     default=M32)
        mod = min(self.mod, newer.mod)
        while mod > 1 and (self.rem % mod) != (newer.rem % mod):
            mod >>= 1
        return Interval(lo, hi, mod, self.rem % mod)

    def meet_bounds(self, lo, hi):
        """Clamp to ``[lo, hi]``; ``None`` when the meet is empty."""
        new_lo, new_hi = max(self.lo, lo), min(self.hi, hi)
        if new_lo > new_hi:
            return None
        return Interval(new_lo, new_hi, self.mod, self.rem)

    # -- arithmetic ----------------------------------------------------------

    def add_const(self, imm):
        """``self + imm`` mod 2^32; returns ``(interval, wraps, may_wrap)``."""
        lo, hi = self.lo + imm, self.hi + imm
        mod = self.mod
        rem = (self.rem + imm) % mod
        if 0 <= lo and hi <= M32:
            return Interval(lo, hi, mod, rem), False, False
        if hi < 0 or lo > M32:  # every value wraps: still one interval
            return Interval(lo & M32, hi & M32, mod, rem), True, True
        # Some values wrap, some don't: bounds are lost, congruence
        # survives (the modulus divides 2^32).
        return Interval(0, M32, mod, rem), False, True

    def add(self, other):
        lo, hi = self.lo + other.lo, self.hi + other.hi
        mod = min(self.mod, other.mod)
        rem = (self.rem + other.rem) % mod
        if hi <= M32:
            return Interval(lo, hi, mod, rem)
        return Interval(0, M32, mod, rem)

    def sub(self, other):
        lo, hi = self.lo - other.hi, self.hi - other.lo
        mod = min(self.mod, other.mod)
        rem = (self.rem - other.rem) % mod
        if lo >= 0:
            return Interval(lo, hi, mod, rem)
        return Interval(0, M32, mod, rem)

    def shift_left(self, amount):
        amount &= 31
        lo, hi = self.lo << amount, self.hi << amount
        mod = min(MOD32, max(self.mod << amount, 1 << amount))
        rem = (self.rem << amount) % mod
        if hi <= M32:
            return Interval(lo, hi, mod, rem)
        return Interval(0, M32, 1 << amount, 0)

    def shift_right(self, amount):
        amount &= 31
        step = 1 << amount
        if self.mod >= step and self.mod % step == 0 \
                and self.rem % step == 0:
            mod, rem = self.mod >> amount, self.rem >> amount
        else:
            mod, rem = 1, 0
        return Interval(self.lo >> amount, self.hi >> amount, mod, rem)

    def bit_and(self, mask):
        mask &= M32
        if self.is_const:
            return Interval.const(self.lo & mask)
        low_zeros = _pow2_floor(mask) if mask else MOD32
        return Interval(0, min(self.hi, mask), low_zeros, 0)

    def bit_or(self, imm):
        imm &= M32
        if self.is_const:
            return Interval.const(self.lo | imm)
        hi = self.hi + imm
        return Interval(max(self.lo, imm), hi if hi <= M32 else M32, 1, 0)

    def minu(self, other):
        return Interval(min(self.lo, other.lo), min(self.hi, other.hi),
                        1, 0)

    def maxu(self, other):
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi),
                        1, 0)


TOP = Interval.top()


class Env:
    """Register + TIE-state environment at one program point."""

    __slots__ = ("regs", "states")

    def __init__(self, regs=None, states=None):
        self.regs = dict(regs) if regs else {}
        self.states = dict(states) if states else {}

    def copy(self):
        return Env(self.regs, self.states)

    def reg(self, index):
        return self.regs.get(index, TOP)

    def state(self, name):
        return self.states.get(name, TOP)

    def set_reg(self, index, interval):
        if interval.is_top:
            self.regs.pop(index, None)
        else:
            self.regs[index] = interval

    def set_state(self, name, interval):
        if interval.is_top:
            self.states.pop(name, None)
        else:
            self.states[name] = interval

    def __eq__(self, other):
        return (isinstance(other, Env) and self.regs == other.regs
                and self.states == other.states)

    def join(self, other):
        regs = {}
        for index in set(self.regs) & set(other.regs):
            joined = self.regs[index].join(other.regs[index])
            if not joined.is_top:
                regs[index] = joined
        states = {}
        for name in set(self.states) & set(other.states):
            joined = self.states[name].join(other.states[name])
            if not joined.is_top:
                states[name] = joined
        return Env(regs, states)

    def widen(self, newer, thresholds):
        regs = {}
        for index in set(self.regs) & set(newer.regs):
            widened = self.regs[index].widen(newer.regs[index],
                                             thresholds)
            if not widened.is_top:
                regs[index] = widened
        states = {}
        for name in set(self.states) & set(newer.states):
            widened = self.states[name].widen(newer.states[name],
                                              thresholds)
            if not widened.is_top:
                states[name] = widened
        return Env(regs, states)


# ---------------------------------------------------------------------------
# transfer functions
# ---------------------------------------------------------------------------

_SHIFT_RIGHT = {"srli", "srl"}
_SHIFT_LEFT = {"slli", "sll"}


def _eval_imm_alu(name, base, imm):
    """Abstract value of one I/IU ALU op; ``None`` for unhandled ops."""
    if name == "addi":
        result, _wraps, _may = base.add_const(imm)
        return result
    if name == "slli":
        return base.shift_left(imm)
    if name == "srli":
        return base.shift_right(imm)
    if name == "srai":
        if base.hi < 1 << 31:  # provably non-negative: same as srli
            return base.shift_right(imm)
        return TOP
    if name == "andi":
        return base.bit_and(imm & M32)
    if name == "ori":
        return base.bit_or(imm & 0xFFFF)
    if name == "xori":
        if base.is_const:
            return Interval.const(base.lo ^ (imm & 0xFFFF))
        return TOP
    if name in ("slti", "sltui"):
        return Interval(0, 1, 1, 0)
    return None


def _eval_reg_alu(name, a, b):
    if name == "add":
        return a.add(b)
    if name == "sub":
        return a.sub(b)
    if name in ("or", "and", "xor") and a.is_const and b.is_const:
        value = {"or": a.lo | b.lo, "and": a.lo & b.lo,
                 "xor": a.lo ^ b.lo}[name]
        return Interval.const(value)
    if name in _SHIFT_LEFT and b.is_const:
        return a.shift_left(b.lo)
    if name in _SHIFT_RIGHT and b.is_const:
        return a.shift_right(b.lo)
    if name == "minu":
        return a.minu(b)
    if name == "maxu":
        return a.maxu(b)
    if name in ("min", "max") and a.hi < 1 << 31 and b.hi < 1 << 31:
        return a.minu(b) if name == "min" else a.maxu(b)
    if name in ("slt", "sltu"):
        return Interval(0, 1, 1, 0)
    if name == "mul" and a.is_const and b.is_const:
        return Interval.const(a.lo * b.lo)
    return TOP


class AbsintResult:
    """Converged environments of one :func:`analyze` run."""

    def __init__(self, cfg, processor, env_in, reachable):
        self.cfg = cfg
        self.processor = processor
        self.env_in = env_in
        self.reachable = reachable
        self._ur_names = _ur_state_names(processor) \
            if processor is not None else {}
        self._op_map = _tie_operation_map(processor)
        self._hardware = frozenset(
            getattr(processor, "ur_hardware_written", ()))

    def slot_envs(self, node):
        """``(env_before, slot)`` pairs for one node, in issue order."""
        env = self.env_in.get(node)
        if env is None:
            return []
        env = env.copy()
        pairs = []
        for slot in node_slots(self.cfg.item(node)):
            pairs.append((env.copy(), slot))
            transfer_slot(slot, env, self._ur_names, self._op_map,
                          self._hardware)
        return pairs

    def env_out(self, node):
        """Environment after the node's last slot."""
        env = self.env_in.get(node)
        if env is None:
            return Env()
        env = env.copy()
        for slot in node_slots(self.cfg.item(node)):
            transfer_slot(slot, env, self._ur_names, self._op_map,
                          self._hardware)
        return env


def _tie_operation_map(processor):
    from .dataflow import _operation_map
    if processor is None:
        return {}
    return _operation_map(processor)


def transfer_slot(slot, env, ur_names, op_map, hardware=frozenset()):
    """Apply one issue slot to *env* in place.

    *hardware* names engine-maintained states (``ur_hardware_written``)
    whose value the program can never pin down — reads of those are
    always TOP.
    """
    spec = slot.spec
    operands = slot.operands
    name = spec.name
    if name == "movi":
        env.set_reg(operands[0], Interval.const(operands[2]))
        return
    if name == "movhi":
        env.set_reg(operands[0],
                    Interval.const((operands[2] & 0xFFFF) << 16))
        return
    if name == "rur":
        state = ur_names.get(operands[1])
        value = TOP
        if state is not None and state not in hardware:
            value = env.state(state)
        env.set_reg(operands[0], value)
        return
    if name == "wur":
        state = ur_names.get(operands[1])
        if state is not None and state not in hardware:
            env.set_state(state, env.reg(operands[0]))
        return
    if spec.kind == "tie":
        _reads, writes = register_uses(spec, operands)
        for reg in writes:
            env.set_reg(reg, TOP)
        op_reads_writes = op_map.get(name)
        if op_reads_writes is not None:
            for state in op_reads_writes[1]:
                env.set_state(state, TOP)
        return
    if spec.fmt in ("I", "IU") and spec.kind == "alu" \
            and name not in ("jalr",):
        result = _eval_imm_alu(name, env.reg(operands[1]), operands[2])
        if result is not None:
            env.set_reg(operands[0], result)
            return
    if spec.fmt == "R":
        rd, rs, rt = operands
        if name in ("or", "and") and rs == rt:  # mv expansion: a copy
            env.set_reg(rd, env.reg(rs))
            return
        if name == "xor" and rs == rt:
            env.set_reg(rd, Interval.const(0))
            return
        env.set_reg(rd, _eval_reg_alu(name, env.reg(rs), env.reg(rt)))
        return
    _reads, writes = register_uses(spec, operands)
    for reg in writes:
        env.set_reg(reg, TOP)


# ---------------------------------------------------------------------------
# branch refinement
# ---------------------------------------------------------------------------

def _refine_edge(node_item, env, taken):
    """Refined copy of *env* along one branch edge; ``None`` if infeasible."""
    transfers = [slot for slot in node_slots(node_item)
                 if slot.spec.kind == "branch"]
    if not transfers:
        return env
    slot = transfers[-1]
    name = slot.spec.name
    env = env.copy()
    if name in ("beqz", "bnez"):
        reg = slot.operands[0]
        zero_edge = taken if name == "beqz" else not taken
        value = env.reg(reg)
        if zero_edge:
            refined = value.meet_bounds(0, 0)
        else:
            refined = value.meet_bounds(1, M32)
        if refined is None:
            return None
        env.set_reg(reg, refined)
        return env
    if name not in ("beq", "bne", "blt", "bltu", "bge", "bgeu"):
        return env
    r1, r2 = slot.operands[0], slot.operands[1]
    a, b = env.reg(r1), env.reg(r2)
    if name in ("blt", "bge") and (a.hi >= 1 << 31 or b.hi >= 1 << 31):
        return env  # signed compare over possibly-negative values
    equal_edge = None
    if name == "beq":
        equal_edge = taken
    elif name == "bne":
        equal_edge = not taken
    if equal_edge is not None:
        if not equal_edge:
            return env
        lo, hi = max(a.lo, b.lo), min(a.hi, b.hi)
        if lo > hi:
            return None
        ra = a.meet_bounds(lo, hi)
        rb = b.meet_bounds(lo, hi)
        if ra is None or rb is None:
            return None
        env.set_reg(r1, ra)
        env.set_reg(r2, rb)
        return env
    # blt/bltu taken means r1 < r2; bge/bgeu taken means r1 >= r2.
    less = taken if name in ("blt", "bltu") else not taken
    if less:
        ra = a.meet_bounds(0, b.hi - 1) if b.hi > 0 else None
        rb = b.meet_bounds(a.lo + 1, M32) if a.lo < M32 else None
    else:
        ra = a.meet_bounds(b.lo, M32)
        rb = b.meet_bounds(0, a.hi)
    if ra is None or rb is None:
        return None
    env.set_reg(r1, ra)
    env.set_reg(r2, rb)
    return env


def _branch_targets(node_item):
    """Taken-edge target word indexes of the node's branch slots."""
    targets = set()
    for slot in node_slots(node_item):
        if slot.spec.kind == "branch":
            targets.add(slot.operands[-1])
    return targets


# ---------------------------------------------------------------------------
# the fixpoint
# ---------------------------------------------------------------------------

def _region_thresholds(processor):
    thresholds = {0, M32}
    config = getattr(processor, "config", None)
    if config is not None:
        for _name, base, size in config.architectural_regions():
            thresholds.update((base, base + size - 1, base + size))
    for region in getattr(processor, "memory_map", ()):
        thresholds.update((region.base,
                           region.base + region.size_bytes - 1,
                           region.base + region.size_bytes))
    return sorted(thresholds)


def analyze(cfg, processor):
    """Run the abstract interpretation to a fixpoint.

    Returns an :class:`AbsintResult` mapping every reachable node to
    the environment holding *before* its first slot.
    """
    ur_names = _ur_state_names(processor) \
        if processor is not None else {}
    op_map = _tie_operation_map(processor)
    hardware = frozenset(getattr(processor, "ur_hardware_written", ()))
    thresholds = _region_thresholds(processor)
    loop_heads = {node for node in cfg.nodes
                  if any(pred >= node for pred in cfg.pred[node])}
    env_in = {cfg.entry: Env()}
    visits = {}
    worklist = [cfg.entry]
    while worklist:
        node = worklist.pop(0)
        env = env_in[node].copy()
        for slot in node_slots(cfg.item(node)):
            transfer_slot(slot, env, ur_names, op_map, hardware)
        item = cfg.item(node)
        taken_targets = _branch_targets(item)
        for succ in cfg.succ[node]:
            out = _refine_edge(item, env, taken=succ in taken_targets)
            if out is None:  # infeasible edge
                continue
            current = env_in.get(succ)
            if current is None:
                env_in[succ] = out.copy()
                worklist.append(succ)
                continue
            joined = current.join(out)
            if joined == current:
                continue
            if succ in loop_heads:
                count = visits.get(succ, 0) + 1
                visits[succ] = count
                if count > WIDEN_AFTER:
                    joined = current.widen(joined, thresholds)
                    if joined == current:
                        continue
            env_in[succ] = joined
            worklist.append(succ)
    _narrow(cfg, env_in, ur_names, op_map, hardware)
    return AbsintResult(cfg, processor, env_in, set(env_in))


def _narrow(cfg, env_in, ur_names, op_map, hardware, passes=2):
    """Claw back widening losses with a few decreasing sweeps.

    Each sweep recomputes every node's entry environment directly from
    its predecessors' refined exit environments (no widening), which
    tightens loop-head ranges that a bottom-of-loop branch bounds.
    Finitely many sweeps keep the result sound.
    """
    for _ in range(passes):
        out_envs = {}
        for node in env_in:
            env = env_in[node].copy()
            for slot in node_slots(cfg.item(node)):
                transfer_slot(slot, env, ur_names, op_map, hardware)
            out_envs[node] = env
        for node in sorted(env_in):
            if node == cfg.entry:
                continue
            merged = None
            item_cache = {}
            for pred in cfg.pred[node]:
                if pred not in out_envs:
                    continue
                item = item_cache.get(pred)
                if item is None:
                    item = item_cache[pred] = cfg.item(pred)
                taken = node in _branch_targets(item)
                refined = _refine_edge(item, out_envs[pred], taken)
                if refined is None:
                    continue
                merged = refined if merged is None \
                    else merged.join(refined)
            if merged is not None:
                env_in[node] = merged


# ---------------------------------------------------------------------------
# the VAL checks
# ---------------------------------------------------------------------------

def _is_pointer_state(name):
    return any(name.endswith(suffix)
               for suffix in POINTER_STATE_SUFFIXES)


def _mapped_regions(processor):
    regions = []
    config = getattr(processor, "config", None)
    if config is not None:
        regions.extend(config.architectural_regions())
    for region in getattr(processor, "memory_map", ()):
        entry = (region.name, region.base, region.size_bytes)
        if entry not in regions:
            regions.append(entry)
    return regions


def check_values(cfg, report, processor, result=None):
    """Run VAL001..VAL005 over every reachable computed access."""
    if processor is None or getattr(processor, "config", None) is None:
        return report
    if result is None:
        result = analyze(cfg, processor)
    regions = _mapped_regions(processor)
    ur_names = _ur_state_names(processor)
    source = cfg.program.source_name
    reported = set()
    for node in sorted(result.reachable):
        item = cfg.item(node)
        line = getattr(item, "line_number", None)
        for env, slot in result.slot_envs(node):
            _check_slot_values(report, slot, env, regions, ur_names,
                               source, line, node, reported)
    return report


def _check_slot_values(report, slot, env, regions, ur_names, source,
                       line, node, reported):
    spec = slot.spec
    if spec.name == "wur":
        _check_pointer_state(report, slot, env, regions, ur_names,
                             source, line, node, reported)
        return
    size = ACCESS_SIZES.get(spec.name)
    if size is None or spec.kind not in ("load", "store"):
        return
    _rd, rs, imm = slot.operands
    base = env.reg(rs)
    if base.is_top:
        return
    addr, wraps, may_wrap = base.add_const(imm)
    key = (node, spec.name, rs)
    if key in reported:
        return
    if (wraps or may_wrap) and base.bounded:
        reported.add(key)
        report.add("VAL003", "warning",
                   "%s address arithmetic (base in [0x%x, 0x%x] %+d) "
                   "wraps around 2^32"
                   % (spec.name, base.lo, base.hi, imm),
                   source, line, node)
        return
    if addr.is_const:
        return  # literal addresses are the MEM001/MEM002 checks' job
    if size > 1 and addr.mod % size == 0 and addr.rem % size != 0:
        reported.add(key)
        report.add("VAL002", "error",
                   "%s address is provably misaligned: every admitted "
                   "address is %d mod %d but the access needs %d-byte "
                   "alignment"
                   % (spec.name, addr.rem % size, size, size),
                   source, line, node)
        return
    if addr.mod == 1 and not addr.bounded:
        return
    inside_any = False
    fully_inside = False
    for _name, rbase, rsize in regions:
        region_lo, region_hi = rbase, rbase + rsize - size
        if region_hi < region_lo:
            continue
        if addr.hi >= region_lo and addr.lo <= region_hi:
            inside_any = True
        if addr.lo >= region_lo and addr.hi <= region_hi:
            fully_inside = True
    if fully_inside:
        return
    reported.add(key)
    if not inside_any:
        report.add("VAL001", "error",
                   "%s range [0x%08x, 0x%08x] is provably out of "
                   "bounds: no admitted address maps to any memory "
                   "region" % (spec.name, addr.lo, addr.hi),
                   source, line, node)
    elif addr.bounded:
        report.add("VAL004", "warning",
                   "%s range [0x%08x, 0x%08x] may be out of bounds: "
                   "part of the range maps to no memory region"
                   % (spec.name, addr.lo, addr.hi),
                   source, line, node)


def _check_pointer_state(report, slot, env, regions, ur_names, source,
                         line, node, reported):
    name = ur_names.get(slot.operands[1])
    if name is None or not _is_pointer_state(name):
        return
    value = env.reg(slot.operands[0])
    if value.is_top or not value.bounded:
        return
    for _rname, rbase, rsize in regions:
        if value.hi >= rbase and value.lo <= rbase + rsize:
            return
    key = (node, "wur", name)
    if key in reported:
        return
    reported.add(key)
    report.add("VAL005", "error",
               "wur writes pointer state %r with [0x%08x, 0x%08x], "
               "provably outside every memory region"
               % (name, value.lo, value.hi),
               source, line, node)
