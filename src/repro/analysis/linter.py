"""Entry points tying the individual analysis passes together.

:func:`lint_program` is what kernel builders, tests and the ``repro
lint`` CLI subcommand call: it builds the CFG once and runs the
structural, dataflow, hazard and memory checks into a single
:class:`~repro.analysis.diagnostics.DiagnosticReport`.
:func:`lint_extension` and :func:`lint_processor` cover the TIE
definition side.
"""

import os
import warnings

from .cfg import build_cfg, check_structure
from .dataflow import check_dataflow
from .diagnostics import DiagnosticReport
from .hazards import check_hazards
from .memchecks import check_memory
from .tielint import check_extension


def lint_warn_only():
    """True when ``REPRO_LINT_WARN_ONLY=1`` downgrades lint errors.

    The escape hatch for intentionally running a program the verifier
    rejects (reproducing a fault campaign finding, bisecting a checker
    false positive): errors are reported as :class:`LintWarning`
    warnings instead of raising.
    """
    return os.environ.get("REPRO_LINT_WARN_ONLY") == "1"


class LintError(Exception):
    """A program failed static verification with error diagnostics."""

    def __init__(self, report):
        self.report = report
        super().__init__(report.format(min_severity="error"))


class LintWarning(UserWarning):
    """Warning category for non-fatal lint findings."""


def lint_program(program, processor=None, entry=None, entry_live=None,
                 deep=False):
    """Statically analyze one assembled program.

    Parameters
    ----------
    program:
        The :class:`~repro.isa.assembler.Program` to analyze.
    processor:
        Optional :class:`~repro.cpu.processor.Processor`.  When given,
        the FLIX formats, TIE state declarations and the architectural
        memory map are checked too.
    entry:
        Entry point as a word index or label name.  Defaults to the
        ``main`` label when the program defines one, else word 0.
    entry_live:
        Iterable of register indexes assumed initialized at entry
        (default ``a0``..``a7``).
    deep:
        Also run the deep tier (needs *processor*): value-range
        abstract interpretation (``VAL*``,
        :mod:`repro.analysis.absint`) and DMA/LSU race detection
        (``RACE*``, :mod:`repro.analysis.races`).
    """
    report = DiagnosticReport()
    if entry is None:
        entry = "main" if "main" in program.labels else 0
    cfg = build_cfg(program, entry)
    check_structure(cfg, report)
    check_dataflow(cfg, report, entry_live=entry_live,
                   processor=processor)
    flix_formats = getattr(processor, "flix_formats", ())
    check_hazards(program, report, flix_formats=flix_formats)
    if processor is not None:
        check_memory(cfg, report, processor)
        if deep:
            from .absint import analyze, check_values
            from .races import check_races
            result = analyze(cfg, processor)
            check_values(cfg, report, processor, result)
            check_races(cfg, report, processor, result)
    return report


def lint_or_raise(program, processor=None, entry=None, entry_live=None,
                  warn=True, deep=False):
    """Lint and enforce: errors raise :class:`LintError`.

    Warning-severity findings are surfaced through the :mod:`warnings`
    machinery (category :class:`LintWarning`) so they show up in test
    runs without failing them.  With ``REPRO_LINT_WARN_ONLY=1`` in the
    environment, error findings are downgraded to warnings too instead
    of raising.  Returns the report.
    """
    report = lint_program(program, processor, entry=entry,
                          entry_live=entry_live, deep=deep)
    if report.has_errors:
        if not lint_warn_only():
            raise LintError(report)
        for diagnostic in report.errors():
            warnings.warn(diagnostic.format(), LintWarning,
                          stacklevel=2)
    if warn:
        for diagnostic in report.warnings():
            warnings.warn(diagnostic.format(), LintWarning, stacklevel=2)
    return report


def lint_extension(extension):
    """Lint one TIE extension definition."""
    return check_extension(extension)


def lint_processor(processor):
    """Lint every TIE extension attached to *processor*."""
    report = DiagnosticReport()
    for extension in getattr(processor, "extensions", ()):
        # Skip non-TIE attachments (e.g. the DMA prefetcher engine).
        if hasattr(extension, "operations"):
            check_extension(extension, report)
    return report
