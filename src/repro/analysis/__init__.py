"""Static verification and lint for XR32/TIE kernel programs.

The package analyzes *assembled* programs (after label fixup, before or
after encoding) and TIE extension definitions, reporting typed
:class:`~repro.analysis.diagnostics.Diagnostic` records instead of
failing deep inside the encoder or mis-simulating.  See
``docs/ANALYSIS.md`` for the full diagnostic catalog.

Typical use::

    from repro.analysis import lint_program

    report = lint_program(program, processor)
    if report.has_errors:
        raise RuntimeError(report.format())
"""

from .cfg import ControlFlowGraph, build_cfg, check_structure
from .dataflow import check_dataflow
from .diagnostics import SEVERITIES, Diagnostic, DiagnosticReport
from .hazards import check_hazards
from .linter import (LintError, LintWarning, lint_extension,
                     lint_or_raise, lint_processor, lint_program)
from .memchecks import check_memory
from .tielint import check_extension

__all__ = [
    "SEVERITIES",
    "Diagnostic",
    "DiagnosticReport",
    "ControlFlowGraph",
    "build_cfg",
    "check_structure",
    "check_dataflow",
    "check_hazards",
    "check_memory",
    "check_extension",
    "LintError",
    "LintWarning",
    "lint_extension",
    "lint_or_raise",
    "lint_processor",
    "lint_program",
]
