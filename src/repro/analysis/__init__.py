"""Static verification and lint for XR32/TIE kernel programs.

The package analyzes *assembled* programs (after label fixup, before or
after encoding) and TIE extension definitions, reporting typed
:class:`~repro.analysis.diagnostics.Diagnostic` records instead of
failing deep inside the encoder or mis-simulating.  See
``docs/ANALYSIS.md`` for the full diagnostic catalog.

Typical use::

    from repro.analysis import lint_program

    report = lint_program(program, processor)
    if report.has_errors:
        raise RuntimeError(report.format())
"""

from .absint import AbsintResult, Interval, analyze, check_values
from .cfg import ControlFlowGraph, build_cfg, check_structure
from .dataflow import check_dataflow
from .diagnostics import SEVERITIES, Diagnostic, DiagnosticReport
from .hazards import check_hazards
from .linter import (LintError, LintWarning, lint_extension,
                     lint_or_raise, lint_processor, lint_program,
                     lint_warn_only)
from .memchecks import check_memory
from .races import check_races, check_transfer_schedule
from .tielint import check_extension

__all__ = [
    "SEVERITIES",
    "AbsintResult",
    "Diagnostic",
    "DiagnosticReport",
    "ControlFlowGraph",
    "Interval",
    "analyze",
    "build_cfg",
    "check_structure",
    "check_dataflow",
    "check_hazards",
    "check_memory",
    "check_extension",
    "check_races",
    "check_transfer_schedule",
    "check_values",
    "LintError",
    "LintWarning",
    "lint_extension",
    "lint_or_raise",
    "lint_processor",
    "lint_program",
    "lint_warn_only",
]
