"""Typed diagnostics produced by the static program/TIE verifier.

Every checker in :mod:`repro.analysis` reports findings as
:class:`Diagnostic` objects carrying a stable code (``CFG002``,
``MEM001``, ...), a severity, a human-readable message and a source
location (``source_name:line``).  A :class:`DiagnosticReport` collects
them, orders them by program position and renders them in the familiar
``file:line: severity: CODE message`` compiler style.

The full catalog of codes lives in ``docs/ANALYSIS.md``.
"""

#: Severity levels, ordered from least to most severe.
SEVERITIES = ("info", "warning", "error")

_RANK = {name: index for index, name in enumerate(SEVERITIES)}


class Diagnostic:
    """One finding of the static verifier."""

    __slots__ = ("code", "severity", "message", "source_name", "line",
                 "word_index")

    def __init__(self, code, severity, message, source_name="<asm>",
                 line=None, word_index=None):
        if severity not in _RANK:
            raise ValueError("unknown severity %r" % (severity,))
        self.code = code
        self.severity = severity
        self.message = message
        self.source_name = source_name
        self.line = line
        self.word_index = word_index

    @property
    def location(self):
        if self.line is None:
            return self.source_name
        return "%s:%d" % (self.source_name, self.line)

    def format(self):
        return "%s: %s: %s %s" % (self.location, self.severity,
                                  self.code, self.message)

    def to_dict(self):
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "source": self.source_name,
            "line": self.line,
            "word_index": self.word_index,
        }

    def __repr__(self):
        return "<Diagnostic %s %s %s>" % (self.code, self.severity,
                                          self.location)


class DiagnosticReport:
    """An ordered collection of diagnostics for one lint target."""

    def __init__(self, target=""):
        self.target = target
        self.diagnostics = []

    def add(self, code, severity, message, source_name="<asm>", line=None,
            word_index=None):
        diagnostic = Diagnostic(code, severity, message, source_name,
                                line, word_index)
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, other):
        self.diagnostics.extend(other.diagnostics)
        return self

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self):
        return len(self.diagnostics)

    # -- selection -----------------------------------------------------------

    def errors(self):
        return [d for d in self.diagnostics if d.severity == "error"]

    def warnings(self):
        return [d for d in self.diagnostics if d.severity == "warning"]

    def by_code(self, code):
        return [d for d in self.diagnostics if d.code == code]

    def at_least(self, severity):
        rank = _RANK[severity]
        return [d for d in self.diagnostics if _RANK[d.severity] >= rank]

    @property
    def has_errors(self):
        return any(d.severity == "error" for d in self.diagnostics)

    def counts(self):
        tally = {name: 0 for name in SEVERITIES}
        for diagnostic in self.diagnostics:
            tally[diagnostic.severity] += 1
        return tally

    # -- rendering -----------------------------------------------------------

    def sorted(self):
        def key(d):
            return (d.source_name, d.line if d.line is not None else -1,
                    -_RANK[d.severity], d.code)
        return sorted(self.diagnostics, key=key)

    def format(self, min_severity="info"):
        rank = _RANK[min_severity]
        lines = [d.format() for d in self.sorted()
                 if _RANK[d.severity] >= rank]
        return "\n".join(lines)

    def summary(self):
        tally = self.counts()
        return "%s: %d error(s), %d warning(s), %d info" % (
            self.target or "<lint>", tally["error"], tally["warning"],
            tally["info"])

    def to_dict(self):
        return {
            "target": self.target,
            "counts": self.counts(),
            "diagnostics": [d.to_dict() for d in self.sorted()],
        }

    def __repr__(self):
        return "<DiagnosticReport %s: %d finding(s)>" % (
            self.target or "<lint>", len(self.diagnostics))
