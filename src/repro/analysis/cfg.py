"""Control-flow graph over assembled :class:`~repro.isa.assembler.Program`s.

Nodes are instruction-memory word indexes of *issue items*: one node
per scalar instruction and one node per FLIX bundle (the bundle's tail
word belongs to its node).  Edges follow the decode-time semantics of
the simulator: branch targets are absolute word indexes after label
fixup, unconditional jumps have a single successor, ``jal`` is assumed
to return (target plus fallthrough), and ``halt``/``ret`` terminate.

The structural checks built on the graph:

* ``CFG001`` — unreachable code (never executed from the entry),
* ``CFG002`` — execution can fall off the end of the program,
* ``CFG003`` — a control transfer targets a word that is not the start
  of an issue item (a bundle tail or out of range).
"""

from ..isa.assembler import Bundle, BundleTail

#: Timing kinds that transfer control.
CONTROL_KINDS = ("branch", "jump", "call", "indirect")


class Transfer:
    """One control transfer carried by a node."""

    __slots__ = ("kind", "name", "target", "conditional")

    def __init__(self, kind, name, target, conditional):
        self.kind = kind
        self.name = name
        self.target = target          # absolute word index, None if unknown
        self.conditional = conditional

    def __repr__(self):
        return "<Transfer %s -> %r>" % (self.name, self.target)


def item_transfers(item):
    """The control transfers of one program item (0 or more for bundles)."""
    slots = item.slots if isinstance(item, Bundle) else (item,)
    transfers = []
    for slot in slots:
        spec = slot.spec
        if spec.kind not in CONTROL_KINDS and spec.kind != "halt":
            continue
        if spec.kind == "halt":
            transfers.append(Transfer("halt", spec.name, None, False))
        elif spec.kind == "branch":
            transfers.append(Transfer("branch", spec.name,
                                      slot.operands[-1], True))
        elif spec.kind in ("jump", "call"):
            transfers.append(Transfer(spec.kind, spec.name,
                                      slot.operands[0], False))
        else:  # indirect: jalr/ret — target unknown at assembly time
            transfers.append(Transfer("indirect", spec.name, None, False))
    return transfers


class ControlFlowGraph:
    """Item-level CFG of one assembled program."""

    def __init__(self, program, entry=0):
        self.program = program
        self.entry = entry
        #: Sorted word indexes of issue items (bundle tails excluded).
        self.nodes = []
        #: node -> list of successor nodes.
        self.succ = {}
        #: node -> list of predecessor nodes.
        self.pred = {}
        #: node -> list of :class:`Transfer`.
        self.transfers = {}
        #: Nodes whose fallthrough runs past the last item.
        self.falls_off = []
        #: (node, target) pairs whose target is not an item start.
        self.bad_targets = []
        #: True when the program contains a register-indirect jump
        #: (``jalr``) — static reachability is then an underestimate.
        self.has_indirect_jumps = False
        self._build()

    # -- construction --------------------------------------------------------

    def _build(self):
        items = self.program.items
        size = len(items)
        starts = set()
        for index, item in enumerate(items):
            if not isinstance(item, BundleTail):
                starts.add(index)
        self.nodes = sorted(starts)
        for index in self.nodes:
            item = items[index]
            transfers = item_transfers(item)
            self.transfers[index] = transfers
            successors = []
            fallthrough = True
            for transfer in transfers:
                if transfer.kind == "halt":
                    fallthrough = False
                elif transfer.kind == "indirect":
                    fallthrough = False
                    if transfer.name == "jalr":
                        self.has_indirect_jumps = True
                elif transfer.kind == "jump" and not transfer.conditional:
                    fallthrough = False
                    successors.append(transfer.target)
                else:  # conditional branch, or call (assumed to return)
                    successors.append(transfer.target)
            if fallthrough:
                nxt = index + item.size
                if nxt >= size:
                    self.falls_off.append(index)
                else:
                    successors.append(nxt)
            valid = []
            for target in successors:
                if target in starts:
                    valid.append(target)
                else:
                    self.bad_targets.append((index, target))
            self.succ[index] = valid
        for index in self.nodes:
            self.pred.setdefault(index, [])
        for index, successors in self.succ.items():
            for target in successors:
                self.pred[target].append(index)

    # -- queries -------------------------------------------------------------

    def reachable(self):
        """Set of nodes reachable from the entry."""
        if self.entry not in self.succ:
            return set()
        seen = {self.entry}
        stack = [self.entry]
        while stack:
            node = stack.pop()
            for target in self.succ[node]:
                if target not in seen:
                    seen.add(target)
                    stack.append(target)
        return seen

    def item(self, node):
        return self.program.items[node]

    def __repr__(self):
        return "<ControlFlowGraph %d node(s), entry=%d>" % (
            len(self.nodes), self.entry)


def build_cfg(program, entry=0):
    """Build the CFG; *entry* is a word index or a label name."""
    if isinstance(entry, str):
        entry = program.label(entry)
    return ControlFlowGraph(program, entry)


def check_structure(cfg, report):
    """Run the structural checks (CFG001..CFG003) into *report*."""
    program = cfg.program
    source = program.source_name

    for node, target in cfg.bad_targets:
        item = cfg.item(node)
        report.add("CFG003", "error",
                   "control transfer at word %d targets word %r, which "
                   "is not the start of an instruction" % (node, target),
                   source, getattr(item, "line_number", None), node)

    for node in cfg.falls_off:
        item = cfg.item(node)
        report.add("CFG002", "error",
                   "execution can fall off the end of the program after "
                   "word %d (missing halt or jump)" % node,
                   source, getattr(item, "line_number", None), node)

    if not cfg.has_indirect_jumps:
        reachable = cfg.reachable()
        dead_runs = _group_runs([n for n in cfg.nodes
                                 if n not in reachable])
        label_at = {index: name for name, index in program.labels.items()}
        for first, _last, count in dead_runs:
            where = label_at.get(first)
            suffix = " (label %r)" % where if where else ""
            item = cfg.item(first)
            report.add("CFG001", "warning",
                       "unreachable code: %d item(s) starting at word %d%s"
                       % (count, first, suffix),
                       source, getattr(item, "line_number", None), first)
    return report


def _group_runs(nodes):
    """Group sorted word indexes into (first, last, count) runs."""
    runs = []
    for node in nodes:
        if runs and node <= runs[-1][1] + 2:
            first, _last, count = runs[-1]
            runs[-1] = (first, node, count + 1)
        else:
            runs.append((node, node, 1))
    return runs
