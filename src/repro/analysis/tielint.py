"""Lint for TIE extension definitions.

The TIE compiler (:mod:`repro.tie.compiler`) raises hard errors for
declarations it cannot compile, but it accepts many descriptions that
are structurally suspicious: states no operation ever writes, circuits
naming primitives the cost library does not know (their area silently
becomes an attach-time failure much later), or an operation declaring
the same state as two separate ``in`` and ``out`` uses — which in the
generated netlist is a combinational cycle through the state's
read/write ports (TIE requires ``inout`` for same-cycle update).

Codes:

* ``TIE001`` (error) — operand rules violated: more than one
  immediate, immediate not last or used as an output, more than four
  register operands, or an immediate form with more than two register
  operands.  Mirrors the compiler's checks as diagnostics.
* ``TIE002`` (error) — a circuit or critical path names a primitive
  that is not in the calibrated library.
* ``TIE003`` (warning) — a state is read by operations but written by
  none and is not software-writable via ``wur``.
* ``TIE004`` (info) — a state is referenced by no operation at all.
* ``TIE005`` (error) — one operation declares the same state as
  separate ``in`` and ``out`` uses (combinational cycle in the
  generated netlist; declare ``inout`` instead).
* ``TIE006`` (error) — unknown slot class on an operation.
* ``TIE007`` (error) — negative ``extra_cycles``.
* ``TIE008`` (error) — an operation references a state or register
  file the extension does not declare.
* ``TIE009`` (warning) — an operation's compact encoding exceeds the
  48-bit FLIX payload, so it can never be issued from a bundle.
* ``TIE010`` — duplicate FLIX ``format_id`` within the extension
  (error), or a bundle slot class that is neither a TIE slot class nor
  a base instruction kind (warning).
"""

from ..tie.language import RegFile
from ..tie.netlist import PRIMITIVES
from ..tie.flix import OPCODE_BITS, PAYLOAD_BITS
from ..tie.compiler import field_bits
from .diagnostics import DiagnosticReport

#: Slot classes the TIE compiler understands on operations.
VALID_SLOT_CLASSES = ("mem", "compute", "any")

#: Everything a FLIX slot may legitimately list: TIE slot classes plus
#: the base-instruction timing kinds.
KNOWN_SLOT_KINDS = frozenset(VALID_SLOT_CLASSES) | frozenset(
    ("alu", "mul", "div", "load", "store", "branch", "jump", "call",
     "indirect", "nop", "halt"))


def check_extension(extension, report=None):
    """Run all TIE lint checks over one extension."""
    if report is None:
        report = DiagnosticReport()
    source = "tie:%s" % extension.name
    declared_states = set(id(s) for s in extension.states)
    declared_regfiles = set(id(rf) for rf in extension.regfiles)
    read_states = set()
    written_states = set()
    referenced = set()

    for operation in extension.operations:
        _check_operands(operation, report, source)
        _check_circuit(operation.name, operation.circuit, operation.path,
                       report, source)
        _check_slot_class(operation, report, source)
        _check_states(operation, declared_states, report, source)
        _check_payload(operation, report, source)
        for operand in operation.operands:
            if isinstance(operand.kind, RegFile) and \
                    id(operand.kind) not in declared_regfiles:
                report.add("TIE008", "error",
                           "%s: operand %r uses regfile %r, which the "
                           "extension does not declare"
                           % (operation.name, operand.name,
                              operand.kind.name),
                           source, None, None)
        for use in operation.states:
            referenced.add(use.state.name)
            if use.direction in ("in", "inout"):
                read_states.add(use.state.name)
            if use.direction in ("out", "inout"):
                written_states.add(use.state.name)

    for group, circuit in extension.shared_circuits.items():
        _check_circuit("shared circuit %r" % group, circuit, (),
                       report, source)
    for name, path in extension.shared_paths.items():
        _check_circuit("shared path %r" % name, {}, path, report, source)

    for state in extension.states:
        name = state.name
        if name not in referenced:
            report.add("TIE004", "info",
                       "state %r is referenced by no operation" % name,
                       source, None, None)
        elif name in read_states and name not in written_states \
                and not state.read_write:
            report.add("TIE003", "warning",
                       "state %r is read by operations but written by "
                       "none (and has no wur access)" % name,
                       source, None, None)

    _check_formats(extension, report, source)
    return report


def _check_operands(operation, report, source):
    kinds = [op.compact_kind for op in operation.operands]
    imm_positions = [i for i, kind in enumerate(kinds) if kind == "imm"]
    nibbles = sum(1 for kind in kinds if kind != "imm")
    if len(imm_positions) > 1:
        report.add("TIE001", "error",
                   "%s: at most one immediate operand allowed"
                   % operation.name, source, None, None)
    elif imm_positions and imm_positions[0] != len(kinds) - 1:
        report.add("TIE001", "error",
                   "%s: the immediate must be the last operand"
                   % operation.name, source, None, None)
    if nibbles > 4:
        report.add("TIE001", "error",
                   "%s: at most four register operands allowed (got %d)"
                   % (operation.name, nibbles), source, None, None)
    if imm_positions and nibbles > 2:
        report.add("TIE001", "error",
                   "%s: the immediate form allows at most two register "
                   "operands" % operation.name, source, None, None)
    for operand in operation.operands:
        if operand.kind == "imm" and operand.direction == "out":
            report.add("TIE001", "error",
                       "%s: immediate operand %r cannot be an output"
                       % (operation.name, operand.name),
                       source, None, None)


def _check_circuit(owner, circuit, path, report, source):
    for name in circuit:
        if name not in PRIMITIVES:
            report.add("TIE002", "error",
                       "%s: circuit uses unknown primitive %r"
                       % (owner, name), source, None, None)
    for name in path:
        if name not in PRIMITIVES:
            report.add("TIE002", "error",
                       "%s: critical path uses unknown primitive %r"
                       % (owner, name), source, None, None)


def _check_slot_class(operation, report, source):
    if operation.slot_class not in VALID_SLOT_CLASSES:
        report.add("TIE006", "error",
                   "%s: unknown slot class %r (expected one of %s)"
                   % (operation.name, operation.slot_class,
                      ", ".join(VALID_SLOT_CLASSES)),
                   source, None, None)
    if operation.extra_cycles < 0:
        report.add("TIE007", "error",
                   "%s: extra_cycles must be >= 0, got %d"
                   % (operation.name, operation.extra_cycles),
                   source, None, None)


def _check_states(operation, declared_states, report, source):
    seen = {}
    for use in operation.states:
        if id(use.state) not in declared_states:
            report.add("TIE008", "error",
                       "%s: uses state %r, which the extension does "
                       "not declare" % (operation.name, use.state.name),
                       source, None, None)
        directions = seen.setdefault(use.state.name, set())
        directions.add(use.direction)
    for name, directions in seen.items():
        if "in" in directions and "out" in directions:
            report.add("TIE005", "error",
                       "%s: state %r is declared both 'in' and 'out' "
                       "separately — a combinational cycle through the "
                       "state ports; declare it 'inout'"
                       % (operation.name, name),
                       source, None, None)


def _check_payload(operation, report, source):
    bits = OPCODE_BITS
    for operand in operation.operands:
        bits += field_bits(operand.compact_kind)
    if bits > PAYLOAD_BITS:
        report.add("TIE009", "warning",
                   "%s: compact encoding needs %d bits, more than the "
                   "%d-bit FLIX payload — the operation can never be "
                   "bundled" % (operation.name, bits, PAYLOAD_BITS),
                   source, None, None)


def _check_formats(extension, report, source):
    seen_ids = {}
    for flix_format in extension.flix_formats:
        previous = seen_ids.get(flix_format.format_id)
        if previous is not None:
            report.add("TIE010", "error",
                       "FLIX formats %r and %r share format id %d"
                       % (previous, flix_format.name,
                          flix_format.format_id),
                       source, None, None)
        else:
            seen_ids[flix_format.format_id] = flix_format.name
        for slot in flix_format.slots:
            unknown = sorted(slot.classes - KNOWN_SLOT_KINDS)
            if unknown:
                report.add("TIE010", "warning",
                           "format %r slot %r lists unknown slot "
                           "class(es): %s"
                           % (flix_format.name, slot.name,
                              ", ".join(unknown)),
                           source, None, None)
    return report
