"""Dataflow passes over the program CFG: liveness and definedness.

Register semantics follow the simulator: slots of a FLIX bundle execute
in issue order within the node, so a later slot reads the values an
earlier slot produced (the fused-datapath convention of the paper's EIS
bundles).

Checks:

* ``DF001`` — a general-purpose register may be read before any write
  reaches it.  Registers ``a0``..``a7`` are assumed live-in at the
  entry (return address, stack pointer and the ``a2``..``a7`` argument
  registers of the kernel calling convention); the set is overridable
  via ``entry_live``.
* ``DF002`` — dead store: a register write that no path ever reads
  before the value is overwritten.  All registers count as live at
  program exits (the host reads results out of the register file), so
  result-protocol writes are never flagged.
* ``DF003`` — a TIE state is read by the program but no reachable
  instruction (``wur`` or an operation writing it) ever writes it.
  States registered as ``hardware_written`` (engine-maintained, like
  the prefetcher's ``DMA_DONE``) are exempt.
"""

from ..cpu.pipeline import register_uses
from ..isa.assembler import Bundle
from ..isa.registers import NUM_ADDRESS_REGISTERS, register_name

#: Registers assumed initialized at the entry point by default: the
#: link register / stack pointer plus the a2..a7 argument registers.
DEFAULT_ENTRY_LIVE = frozenset(range(8))

#: Timing kinds whose register result being unused is a real dead store
#: (pure value producers without architectural side effects).
_PURE_KINDS = ("alu", "load", "mul", "div")


def node_slots(item):
    """The issue slots of a node, in execution order."""
    return item.slots if isinstance(item, Bundle) else (item,)


def slot_register_uses(item):
    """Per-slot ``(spec, reads, writes)`` tuples for one node."""
    uses = []
    for slot in node_slots(item):
        reads, writes = register_uses(slot.spec, slot.operands)
        uses.append((slot.spec, tuple(reads), tuple(writes)))
    return uses


def check_dataflow(cfg, report, entry_live=None, processor=None):
    """Run DF001/DF002/DF003 into *report*."""
    entry_live = frozenset(DEFAULT_ENTRY_LIVE if entry_live is None
                           else entry_live)
    uses = {node: slot_register_uses(cfg.item(node)) for node in cfg.nodes}
    reachable = cfg.reachable()
    _check_use_before_def(cfg, report, uses, entry_live, reachable)
    _check_dead_stores(cfg, report, uses)
    if processor is not None:
        _check_state_uses(cfg, report, processor, reachable)
    return report


# ---------------------------------------------------------------------------
# DF001: maybe-read-before-write (forward, meet = intersection)
# ---------------------------------------------------------------------------

def _check_use_before_def(cfg, report, uses, entry_live, reachable):
    defined_in = {}
    worklist = [cfg.entry]
    defined_in[cfg.entry] = frozenset(entry_live)
    order = {node: i for i, node in enumerate(cfg.nodes)}
    while worklist:
        node = worklist.pop(0)
        defined = set(defined_in[node])
        for _spec, _reads, writes in uses[node]:
            defined.update(writes)
        out = frozenset(defined)
        for succ in cfg.succ[node]:
            current = defined_in.get(succ)
            if current is None:
                defined_in[succ] = out
                worklist.append(succ)
            else:
                merged = current & out
                if merged != current:
                    defined_in[succ] = merged
                    worklist.append(succ)
    seen = set()
    for node in sorted(reachable, key=lambda n: order[n]):
        defined = set(defined_in.get(node, frozenset()))
        for spec, reads, writes in uses[node]:
            for reg in reads:
                if reg not in defined and (node, reg) not in seen:
                    seen.add((node, reg))
                    item = cfg.item(node)
                    report.add(
                        "DF001", "warning",
                        "%s reads %s, which may be uninitialized here"
                        % (spec.name, register_name(reg)),
                        cfg.program.source_name,
                        getattr(item, "line_number", None), node)
            defined.update(writes)


# ---------------------------------------------------------------------------
# DF002: dead stores (backward liveness)
# ---------------------------------------------------------------------------

def _gen_kill(slot_uses):
    gen = set()
    kill = set()
    for _spec, reads, writes in slot_uses:
        gen.update(r for r in reads if r not in kill)
        kill.update(writes)
    return gen, kill

def _check_dead_stores(cfg, report, uses):
    all_regs = frozenset(range(NUM_ADDRESS_REGISTERS))
    gen_kill = {node: _gen_kill(uses[node]) for node in cfg.nodes}
    live_in = {node: frozenset() for node in cfg.nodes}
    worklist = list(cfg.nodes)
    while worklist:
        node = worklist.pop()
        live_out = set()
        successors = cfg.succ[node]
        if successors:
            for succ in successors:
                live_out |= live_in[succ]
        else:
            live_out = set(all_regs)
        gen, kill = gen_kill[node]
        new_in = frozenset(gen | (live_out - kill))
        if new_in != live_in[node]:
            live_in[node] = new_in
            worklist.extend(cfg.pred[node])
    for node in cfg.nodes:
        successors = cfg.succ[node]
        live = set()
        if successors:
            for succ in successors:
                live |= live_in[succ]
        else:
            live = set(all_regs)
        for spec, reads, writes in reversed(uses[node]):
            if spec.kind in _PURE_KINDS:
                for reg in writes:
                    if reg not in live:
                        item = cfg.item(node)
                        report.add(
                            "DF002", "warning",
                            "dead store: %s writes %s but the value is "
                            "never read" % (spec.name, register_name(reg)),
                            cfg.program.source_name,
                            getattr(item, "line_number", None), node)
            live.difference_update(writes)
            live.update(reads)


# ---------------------------------------------------------------------------
# DF003: TIE states read but never written
# ---------------------------------------------------------------------------

def _operation_map(processor):
    """Map TIE op name -> (read state names, written state names)."""
    mapping = {}
    for extension in getattr(processor, "extensions", ()):
        for operation in getattr(extension, "operations", ()):
            reads = set()
            writes = set()
            for use in operation.states:
                if use.direction in ("in", "inout"):
                    reads.add(use.state.name)
                if use.direction in ("out", "inout"):
                    writes.add(use.state.name)
            mapping[operation.name] = (reads, writes)
    return mapping


def _ur_state_names(processor):
    """Map user-register index -> state name (rur/wur operand)."""
    return {index: name
            for name, index in getattr(processor, "symbols", {}).items()}


def _check_state_uses(cfg, report, processor, reachable):
    op_map = _operation_map(processor)
    ur_names = _ur_state_names(processor)
    # Engine-maintained states (e.g. the prefetcher's DMA_DONE) count
    # as always-written: polling them is their intended use.
    written = set(getattr(processor, "ur_hardware_written", ()))
    reads = []  # (state name, op name, node) in program order
    for node in sorted(reachable):
        for slot in node_slots(cfg.item(node)):
            spec = slot.spec
            if spec.name == "wur":
                name = ur_names.get(slot.operands[1])
                if name is not None:
                    written.add(name)
            elif spec.name == "rur":
                name = ur_names.get(slot.operands[1])
                if name is not None:
                    reads.append((name, spec.name, node))
            elif spec.kind == "tie" and spec.name in op_map:
                op_reads, op_writes = op_map[spec.name]
                written.update(op_writes)
                for name in op_reads:
                    reads.append((name, spec.name, node))
    reported = set()
    for name, op_name, node in reads:
        if name in written or name in reported:
            continue
        reported.add(name)
        item = cfg.item(node)
        report.add(
            "DF003", "warning",
            "TIE state %r is read (first by %s) but the program never "
            "writes it" % (name, op_name),
            cfg.program.source_name,
            getattr(item, "line_number", None), node)
