"""All-to-all comparison logic of the SOP instructions.

The SOP instruction "performs the actual sorted-set operation based on
an all-to-all comparison ... applied on 4 elements of each set" (paper
Table 1).  This module contains the combinational semantics of that
comparator matrix for intersection, union and difference, expressed
over *windows*:

A window is a sorted 4-lane vector; lanes that hold no real element
contain the :data:`~repro.core.common.SENTINEL` (exhausted stream or
consumed-but-not-refilled lane in the non-partial-loading
configuration).  Real elements always occupy a prefix of the lanes.

One SOP step:

1. ``t = min(max(real A lanes), max(real B lanes))`` — the comparison
   threshold.  Every real element ``<= t`` is *consumed* this cycle.
2. The 4x4 comparator matrix classifies consumed elements into the
   operation's result (matches for intersection, the deduplicated
   merge for union, A-only elements for difference).
3. The caller (datapath) shifts consumed lanes out and refills the
   windows — fully with partial loading, only whole drained windows
   without it.

Because elements are consumed only when ``<= t``, both copies of a
common value are always consumed in the same step (see the invariant
discussion in DESIGN.md), which makes all three operations exact.
"""

from .common import LANES, SENTINEL


class SopResult:
    """Outcome of one SOP step."""

    __slots__ = ("consumed_a", "consumed_b", "output")

    def __init__(self, consumed_a, consumed_b, output):
        self.consumed_a = consumed_a
        self.consumed_b = consumed_b
        self.output = output

    @property
    def consumed(self):
        return self.consumed_a + self.consumed_b

    def __repr__(self):
        return "<SopResult -%d/-%d -> %r>" % (
            self.consumed_a, self.consumed_b, self.output)


def valid_count(window):
    """Number of real (non-sentinel) lanes; reals prefix the window."""
    count = 0
    for value in window:
        if value == SENTINEL:
            break
        count += 1
    return count


def _threshold(window_a, valid_a, window_b, valid_b):
    max_a = window_a[valid_a - 1] if valid_a else SENTINEL
    max_b = window_b[valid_b - 1] if valid_b else SENTINEL
    return max_a if max_a < max_b else max_b


def _consumed_counts(window_a, window_b):
    """Lanes consumed on each side (elements ``<= t``)."""
    valid_a = valid_count(window_a)
    valid_b = valid_count(window_b)
    threshold = _threshold(window_a, valid_a, window_b, valid_b)
    consumed_a = sum(1 for i in range(valid_a)
                     if window_a[i] <= threshold)
    consumed_b = sum(1 for i in range(valid_b)
                     if window_b[i] <= threshold)
    return consumed_a, consumed_b


def sop_intersect(window_a, window_b):
    """Intersection step: emit values present in both consumed prefixes."""
    consumed_a, consumed_b = _consumed_counts(window_a, window_b)
    matched_b = set(window_b[:consumed_b])
    output = [value for value in window_a[:consumed_a]
              if value in matched_b]
    return SopResult(consumed_a, consumed_b, output)


def sop_union(window_a, window_b):
    """Union step: sorted merge of both consumed prefixes, deduplicated.

    The Result states are four elements wide (paper Figure 9,
    Result_0..3), so a union step emits at most four *distinct* values;
    when the windows would produce more, consumption is cut back to the
    fourth distinct value.  Cutting at a value boundary preserves the
    both-copies-consumed-together invariant.  The union circuit still
    needs the most write-back wiring of all EIS ops (Table 4): it is
    the only one that writes values originating from both input sets.
    """
    consumed_a, consumed_b = _consumed_counts(window_a, window_b)
    merged = sorted(set(window_a[:consumed_a])
                    | set(window_b[:consumed_b]))
    if len(merged) > LANES:
        threshold = merged[LANES - 1]
        merged = merged[:LANES]
        consumed_a = sum(1 for i in range(consumed_a)
                         if window_a[i] <= threshold)
        consumed_b = sum(1 for i in range(consumed_b)
                         if window_b[i] <= threshold)
    return SopResult(consumed_a, consumed_b, merged)


def sop_difference(window_a, window_b):
    """Difference step (A minus B): consumed A values not in consumed B."""
    consumed_a, consumed_b = _consumed_counts(window_a, window_b)
    matched_b = set(window_b[:consumed_b])
    output = [value for value in window_a[:consumed_a]
              if value not in matched_b]
    return SopResult(consumed_a, consumed_b, output)


SOP_FUNCTIONS = {
    "intersection": sop_intersect,
    "union": sop_union,
    "difference": sop_difference,
}


def comparator_matrix(window_a, window_b):
    """The raw 4x4 all-to-all comparison matrix (for tests/teaching).

    Entry ``[i][j]`` is ``-1/0/+1`` for ``a_i < / == / > b_j`` — the
    signals the three result-selection circuits share ("Op: All" in the
    paper's Table 4 area breakdown).
    """
    matrix = []
    for i in range(LANES):
        row = []
        for j in range(LANES):
            a, b = window_a[i], window_b[j]
            row.append(-1 if a < b else (0 if a == b else 1))
        matrix.append(row)
    return matrix
