"""Scalar baseline kernels (standard instruction set only).

These are the merge-based algorithms of the paper's Figures 2 and 3 in
hand-optimized XR32 assembly.  They run on the baseline configurations
(108Mini, DBA_1LSU) that lack the instruction-set extension, providing
the scalar rows of Table 2.

The kernels keep the current head of each input in a register and only
reload the side that advanced — the usual optimization of merge-based
set code — so the hard-to-predict comparison branch dominates, exactly
the behavior the paper calls out in Section 2.3.
"""

from .common import check_set_input, check_sort_input

# Register protocol (shared by the set kernels):
#   a2/a3 = set A begin/end byte addresses
#   a4/a5 = set B begin/end
#   a6    = result cursor; a7 = result base (for the count)
#   a8/a9 = current head of A / B
# On halt, a2 = number of result elements.

_SET_PROLOGUE = """
main:
  mv a7, a6
  bgeu a2, a3, tail
  bgeu a4, a5, tail
  l32i a8, a2, 0
  l32i a9, a4, 0
"""

_SET_EPILOGUE = """
finish:
  sub a2, a6, a7
  srli a2, a2, 2
  halt
"""


def intersection_scalar_kernel():
    """Figure 3 of the paper: sorted-set intersection, scalar."""
    return _SET_PROLOGUE + """
loop:
  beq a8, a9, both
  bltu a8, a9, adva
advb:
  addi a4, a4, 4
  bgeu a4, a5, finish
  l32i a9, a4, 0
  j loop
adva:
  addi a2, a2, 4
  bgeu a2, a3, finish
  l32i a8, a2, 0
  j loop
both:
  s32i a8, a6, 0
  addi a6, a6, 4
  addi a2, a2, 4
  addi a4, a4, 4
  bgeu a2, a3, finish
  bgeu a4, a5, finish
  l32i a8, a2, 0
  l32i a9, a4, 0
  j loop
tail:
""" + _SET_EPILOGUE


def union_scalar_kernel():
    """Sorted-set union with duplicate elimination across the sets."""
    return _SET_PROLOGUE + """
loop:
  beq a8, a9, both
  bltu a8, a9, adva
advb:
  s32i a9, a6, 0
  addi a6, a6, 4
  addi a4, a4, 4
  bgeu a4, a5, resta
  l32i a9, a4, 0
  j loop
adva:
  s32i a8, a6, 0
  addi a6, a6, 4
  addi a2, a2, 4
  bgeu a2, a3, restb
  l32i a8, a2, 0
  j loop
both:
  s32i a8, a6, 0
  addi a6, a6, 4
  addi a2, a2, 4
  addi a4, a4, 4
  bgeu a2, a3, restb
  bgeu a4, a5, resta
  l32i a8, a2, 0
  l32i a9, a4, 0
  j loop
tail:
  ; at entry one of the sets may be empty: copy whichever remains
resta:
  bgeu a2, a3, restb
  l32i a8, a2, 0
  s32i a8, a6, 0
  addi a6, a6, 4
  addi a2, a2, 4
  j resta
restb:
  bgeu a4, a5, finish
  l32i a9, a4, 0
  s32i a9, a6, 0
  addi a6, a6, 4
  addi a4, a4, 4
  j restb
""" + _SET_EPILOGUE


def difference_scalar_kernel():
    """Sorted-set difference A minus B."""
    return _SET_PROLOGUE + """
loop:
  beq a8, a9, both
  bltu a8, a9, adva
advb:
  addi a4, a4, 4
  bgeu a4, a5, resta
  l32i a9, a4, 0
  j loop
adva:
  s32i a8, a6, 0
  addi a6, a6, 4
  addi a2, a2, 4
  bgeu a2, a3, finish
  l32i a8, a2, 0
  j loop
both:
  addi a2, a2, 4
  addi a4, a4, 4
  bgeu a2, a3, finish
  bgeu a4, a5, resta
  l32i a8, a2, 0
  l32i a9, a4, 0
  j loop
tail:
resta:
  bgeu a2, a3, finish
  l32i a8, a2, 0
  s32i a8, a6, 0
  addi a6, a6, 4
  addi a2, a2, 4
  j resta
""" + _SET_EPILOGUE


def merge_sort_scalar_kernel():
    """Bottom-up scalar merge-sort (the paper's Figure 2 merge loop).

    Register protocol: ``a2`` = source buffer, ``a3`` = data bytes,
    ``a4`` = ping-pong buffer.  On halt ``a2`` holds the buffer with
    the sorted data.
    """
    return """
main:
  movi a5, 4             ; run length in bytes (1 element)
pass_loop:
  bgeu a5, a3, done
  mv a6, a2              ; pair cursor (source)
  mv a7, a4              ; output cursor
pair_loop:
  add a8, a6, a5         ; end A / start B
  add a9, a8, a5         ; nominal end B
  add a10, a2, a3        ; source end
  minu a8, a8, a10
  minu a9, a9, a10
  mv a11, a6             ; cursor A
  mv a12, a8             ; cursor B
merge_loop:
  bgeu a11, a8, drain_b
  bgeu a12, a9, drain_a
  l32i a13, a11, 0
  l32i a14, a12, 0
  bgtu a13, a14, take_b
take_a:
  s32i a13, a7, 0
  addi a7, a7, 4
  addi a11, a11, 4
  j merge_loop
take_b:
  s32i a14, a7, 0
  addi a7, a7, 4
  addi a12, a12, 4
  j merge_loop
drain_a:
  bgeu a11, a8, pair_next
  l32i a13, a11, 0
  s32i a13, a7, 0
  addi a7, a7, 4
  addi a11, a11, 4
  j drain_a
drain_b:
  bgeu a12, a9, pair_next
  l32i a14, a12, 0
  s32i a14, a7, 0
  addi a7, a7, 4
  addi a12, a12, 4
  j drain_b
pair_next:
  mv a6, a9
  add a13, a2, a3
  bltu a6, a13, pair_loop
  mv a12, a2             ; swap buffers, double the run
  mv a2, a4
  mv a4, a12
  slli a5, a5, 1
  j pass_loop
done:
  halt
"""


# ---------------------------------------------------------------------------
# runners
# ---------------------------------------------------------------------------

_SCALAR_KERNELS = {
    "intersection": intersection_scalar_kernel,
    "union": union_scalar_kernel,
    "difference": difference_scalar_kernel,
}


def _cached(processor, key, source):
    from .kernels import load_cached_kernel
    load_cached_kernel(processor, key, source)


def scalar_set_layout(len_a, len_b):
    base_a = 0x0
    base_b = len_a * 4 + 16
    base_c = base_b + len_b * 4 + 16
    return base_a, base_b, base_c


def run_scalar_set_operation(processor, which, set_a, set_b,
                             validate_input=True, trace=None):
    """Run a scalar set operation; returns ``(result_list, RunResult)``."""
    if validate_input:
        check_set_input("set_a", set_a)
        check_set_input("set_b", set_b)
    base_a, base_b, base_c = scalar_set_layout(len(set_a), len(set_b))
    if set_a:
        processor.write_words(base_a, set_a)
    if set_b:
        processor.write_words(base_b, set_b)
    _cached(processor, "scalar-%s" % which, _SCALAR_KERNELS[which]())
    result = processor.run(entry="main", trace=trace, regs={
        "a2": base_a, "a3": base_a + len(set_a) * 4,
        "a4": base_b, "a5": base_b + len(set_b) * 4,
        "a6": base_c,
    })
    count = result.reg("a2")
    values = processor.read_words(base_c, count) if count else []
    return values, result


def run_scalar_merge_sort(processor, values, validate_input=True,
                          trace=None):
    """Run the scalar merge-sort; returns ``(sorted_list, RunResult)``."""
    if validate_input:
        check_sort_input("values", values)
    if not values:
        return [], _empty_run(processor)
    base_src = 0x0
    base_dst = len(values) * 4 + 16
    processor.write_words(base_src, values)
    _cached(processor, "scalar-sort", merge_sort_scalar_kernel())
    result = processor.run(entry="main", trace=trace, regs={
        "a2": base_src, "a3": len(values) * 4, "a4": base_dst,
    })
    output = processor.read_words(result.reg("a2"), len(values))
    return output, result


def _empty_run(processor):
    """RunResult for a degenerate empty-input call."""
    from ..cpu.processor import RunResult
    from ..telemetry.report import RunStats
    return RunResult(0, 0, processor.regs.snapshot(), RunStats())
