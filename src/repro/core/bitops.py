"""The instruction-merging examples of the paper's Section 2.2.

"Calculating a CRC value, for example, requires shift, comparison, and
XOR instructions, which can all be combined into a single instruction.
... For example, reversing the order of the bits in a 32-bit word is
cheap in hardware whereas it requires dozens of instructions in
software."

This module builds that demonstration extension with the TIE framework:

* ``crc_word`` — one CRC-32 update step over a whole 32-bit word
  (polynomial 0xEDB88320, the reflected IEEE polynomial), folding the
  32-iteration shift/mask/xor software loop into one cycle,
* ``bitrev`` — 32-bit bit reversal,
* ``popcnt`` — population count.

The software counterparts (:func:`crc32_software_kernel`,
:func:`bitrev_software_kernel`) are the "dozens of instructions"
realizations used by the comparison example and tests.
"""

from ..tie.flix import FlixFormat, Slot
from ..tie.language import Operand, Operation, State, StateUse, \
    TieExtension

CRC32_POLY = 0xEDB88320
M32 = 0xFFFFFFFF


def crc32_reference(data_words, initial=0xFFFFFFFF):
    """Bitwise-reference CRC-32 over 32-bit words (reflected form)."""
    crc = initial
    for word in data_words:
        crc ^= word & M32
        for _ in range(32):
            crc = (crc >> 1) ^ (CRC32_POLY if crc & 1 else 0)
    return crc ^ 0xFFFFFFFF


def bitrev_reference(word):
    result = 0
    for _ in range(32):
        result = (result << 1) | (word & 1)
        word >>= 1
    return result


def build_bitops_extension():
    """The Section 2.2 demo extension (fresh instance per processor)."""
    crc_state = State("crc_state", width_bits=32, initial=0xFFFFFFFF)

    def crc_semantics(ext, core, word):
        state = ext.state("crc_state")
        crc = state.value ^ (word & M32)
        for _ in range(32):
            crc = (crc >> 1) ^ (CRC32_POLY if crc & 1 else 0)
        state.value = crc

    crc_word = Operation(
        "crc_word",
        operands=[Operand("word", "in", "ar")],
        states=[StateUse(crc_state, "inout")],
        semantics=crc_semantics,
        # 32 unrolled polynomial-division stages: each is one XOR level
        # plus the fixed wiring of the shift (free in hardware).
        circuit={"xor32": 32, "wire_32": 40},
        path=("xor32",) * 4,  # stages pair up via 8-bit table lookup
        group="crc",
        description="One-cycle CRC-32 update over a 32-bit word")

    bitrev = Operation(
        "bitrev",
        operands=[Operand("res", "out", "ar"),
                  Operand("word", "in", "ar")],
        semantics=lambda ext, core, word: bitrev_reference(word & M32),
        circuit={"wire_32": 8},  # pure wiring: zero active logic
        path=(),
        group="bitops",
        description="32-bit bit reversal (wiring only)")

    popcnt = Operation(
        "popcnt",
        operands=[Operand("res", "out", "ar"),
                  Operand("word", "in", "ar")],
        semantics=lambda ext, core, word: bin(word & M32).count("1"),
        circuit={"popcount8": 4, "adder32": 1},
        path=("popcount8", "adder32"),
        group="bitops",
        description="32-bit population count")

    flix = FlixFormat("bitops64", format_id=2, slots=[
        Slot("op", ("compute", "load", "store")),
        Slot("ctl", ("branch", "jump", "alu", "nop")),
    ])
    return TieExtension(
        "bitops",
        states=[crc_state],
        operations=[crc_word, bitrev, popcnt],
        flix_formats=[flix],
        description="Section 2.2 instruction-merging demonstration")


# ---------------------------------------------------------------------------
# software (base-ISA) counterparts
# ---------------------------------------------------------------------------

def crc32_software_kernel():
    """CRC-32 over a word buffer in plain XR32 assembly.

    Register protocol: ``a2`` = buffer base, ``a3`` = word count.
    Returns the CRC in ``a2``.  The inner bit loop is the 32-iteration
    shift/mask/xor sequence the paper's Section 2.2 describes.
    """
    return """
    main:
      li a4, 0xFFFFFFFF      ; crc
      li a5, 0xEDB88320      ; polynomial
    word_loop:
      beqz a3, done
      l32i a6, a2, 0
      xor a4, a4, a6
      movi a7, 32            ; bit counter
    bit_loop:
      andi a8, a4, 1
      srli a4, a4, 1
      beqz a8, no_xor
      xor a4, a4, a5
    no_xor:
      addi a7, a7, -1
      bnez a7, bit_loop
      addi a2, a2, 4
      addi a3, a3, -1
      j word_loop
    done:
      li a6, 0xFFFFFFFF
      xor a2, a4, a6
      halt
    """


def crc32_hardware_kernel(unroll=8):
    """CRC-32 over a word buffer using the ``crc_word`` instruction."""
    lines = [
        "main:",
        "  li a4, 0xFFFFFFFF",
        "  wur a4, crc_state",
        "loop:",
    ]
    for _ in range(unroll):
        lines += [
            "  beqz a3, done",
            "  l32i a6, a2, 0",
            "  { crc_word a6 ; addi a2, a2, 4 }",
            "  addi a3, a3, -1",
        ]
    lines += [
        "  j loop",
        "done:",
        "  rur a4, crc_state",
        "  li a6, 0xFFFFFFFF",
        "  xor a2, a4, a6",
        "  halt",
    ]
    return "\n".join(lines)


def bitrev_software_kernel():
    """Bit reversal in software — the paper's 'dozens of instructions'.

    Register protocol: ``a2`` = input word; result in ``a2``.
    Classic 5-step swap network with masks (about 15 instructions plus
    the mask materializations).
    """
    return """
    main:
      ; swap odd/even bits
      li a4, 0x55555555
      srli a3, a2, 1
      and a3, a3, a4
      and a5, a2, a4
      slli a5, a5, 1
      or a2, a3, a5
      ; swap bit pairs
      li a4, 0x33333333
      srli a3, a2, 2
      and a3, a3, a4
      and a5, a2, a4
      slli a5, a5, 2
      or a2, a3, a5
      ; swap nibbles
      li a4, 0x0F0F0F0F
      srli a3, a2, 4
      and a3, a3, a4
      and a5, a2, a4
      slli a5, a5, 4
      or a2, a3, a5
      ; swap bytes
      li a4, 0x00FF00FF
      srli a3, a2, 8
      and a3, a3, a4
      and a5, a2, a4
      slli a5, a5, 8
      or a2, a3, a5
      ; swap halfwords
      srli a3, a2, 16
      slli a5, a2, 16
      or a2, a3, a5
      halt
    """


def run_crc32(processor, words, hardware=True, base_addr=0x100):
    """Run a CRC-32 kernel over *words*; returns ``(crc, RunResult)``."""
    source = crc32_hardware_kernel() if hardware \
        else crc32_software_kernel()
    processor.write_words(base_addr, words)
    processor.load_program(source)
    result = processor.run(entry="main", regs={"a2": base_addr,
                                               "a3": len(words)})
    return result.reg("a2"), result
