"""Hardware sorting and merging networks.

The EIS realizes Chhugani et al.'s SIMD sorting networks directly in
hardware (paper Section 2.3: "we realize the sorting network in
hardware and issue only two instructions to sort four values").  The
functions here are written as explicit compare-exchange sequences so
that each maps one-to-one onto a combinational network whose size and
depth the synthesis model charges for:

* :func:`sort4` — a 5-comparator, 3-stage Batcher network,
* :func:`merge8` — a 9-comparator, 3-stage bitonic (odd-even) merge of
  two sorted 4-vectors.
"""

from .common import LANES


def _cmp_exchange(values, i, j):
    if values[i] > values[j]:
        values[i], values[j] = values[j], values[i]


#: Compare-exchange schedule of the 4-input Batcher network.
SORT4_SCHEDULE = ((0, 1), (2, 3), (0, 2), (1, 3), (1, 2))

#: Odd-even merge schedule for two sorted 4-vectors (Batcher merge).
MERGE8_SCHEDULE = ((0, 4), (1, 5), (2, 6), (3, 7),
                   (2, 4), (3, 5),
                   (1, 2), (3, 4), (5, 6))


def sort4(values):
    """Sort four values with the 5-comparator Batcher network."""
    if len(values) != LANES:
        raise ValueError("sort4 takes exactly %d values" % LANES)
    result = list(values)
    for i, j in SORT4_SCHEDULE:
        _cmp_exchange(result, i, j)
    return result


def merge8(low, high):
    """Merge two sorted 4-vectors; returns ``(low4, high4)``.

    Classic odd-even merge: concatenate, run the 9-comparator schedule,
    split.  Both inputs must already be sorted (the EIS maintains this
    invariant: run data is sorted, and the kept high half of a previous
    merge is sorted by construction).
    """
    if len(low) != LANES or len(high) != LANES:
        raise ValueError("merge8 takes two 4-vectors")
    result = list(low) + list(high)
    for i, j in MERGE8_SCHEDULE:
        _cmp_exchange(result, i, j)
    return result[:LANES], result[LANES:]


def comparator_count_sort4():
    return len(SORT4_SCHEDULE)


def comparator_count_merge8():
    return len(MERGE8_SCHEDULE)


def network_depth(schedule, width):
    """Stage count of a compare-exchange schedule (critical path)."""
    ready = [0] * width
    for i, j in schedule:
        stage = max(ready[i], ready[j]) + 1
        ready[i] = ready[j] = stage
    return max(ready) if ready else 0
