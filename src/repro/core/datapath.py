"""The EIS datapath: states and per-instruction behavior.

This module models the hardware of the paper's Figures 8 and 9:

* two Load states (one per set, filled by 128-bit LD instructions),
* two Word states holding the 4-element comparison windows,
* the Result states written by SOP,
* the TmpStore FIFO and Store states feeding the 128-bit ST writes,
* the pointer states programmed by ``INIT_STATES()``.

Two datapath classes exist: :class:`SetDatapath` for the three sorted
set operations and :class:`MergeDatapath` for the merge-sort
instructions (which "do not include partial loading and use only one
load-store unit", paper Table 4 discussion).

Partial loading
---------------
With partial loading enabled, every SOP is followed by an LD_P that
tops the windows back up to four valid elements.  Without it, a window
is refilled only once all four of its elements have been consumed, so
subsequent SOPs compare fewer elements and throughput drops — except at
100 % selectivity where both windows always drain completely, which is
exactly the behavior visible in the paper's Figure 13.
"""

from ..cpu.errors import SimulationError
from .common import LANES, SENTINEL
from .sop import SOP_FUNCTIONS, valid_count
from .sortnet import merge8, sort4
from ..tie.language import State, VectorState

#: TmpStore FIFO capacity in elements.  SOP stalls unless 4 lanes are
#: free (one full Result burst), so the FIFO never overflows by
#: construction.
FIFO_CAPACITY = 16

BLOCK_BYTES = 4 * LANES


class SetDatapath:
    """States + behavior of the sorted-set operation instructions."""

    def __init__(self, num_lsus=2, partial_load=True):
        self.num_lsus = num_lsus
        self.partial_load = partial_load

        # Pointer states, programmed by the kernel via wur
        # (INIT_STATES() in the paper's Figure 11).
        self.ptr_a = State("sop_ptr_a")
        self.end_a = State("sop_end_a")
        self.ptr_b = State("sop_ptr_b")
        self.end_b = State("sop_end_b")
        self.ptr_c = State("sop_ptr_c")
        #:

        # Datapath states (Figure 8/9); not software-visible.
        self.load_a = VectorState("sop_load_a", LANES, [SENTINEL] * LANES)
        self.load_b = VectorState("sop_load_b", LANES, [SENTINEL] * LANES)
        self.load_cnt_a = State("sop_load_cnt_a", 3, read_write=False)
        self.load_cnt_b = State("sop_load_cnt_b", 3, read_write=False)
        self.word_a = VectorState("sop_word_a", LANES, [SENTINEL] * LANES)
        self.word_b = VectorState("sop_word_b", LANES, [SENTINEL] * LANES)
        self.result = VectorState("sop_result", LANES, [SENTINEL] * LANES)
        self.result_cnt = State("sop_result_cnt", 4, read_write=False)
        self.fifo = VectorState("sop_tmpstore", FIFO_CAPACITY,
                                [SENTINEL] * FIFO_CAPACITY)
        self.fifo_cnt = State("sop_fifo_cnt", 5, read_write=False)
        self.store = VectorState("sop_store", LANES, [SENTINEL] * LANES)
        self.store_cnt = State("sop_store_cnt", 3, read_write=False)

        # Result element count, read back by the kernel via rur.
        self.count = State("sop_count")

    # -- wiring ---------------------------------------------------------------

    def states(self):
        return [self.ptr_a, self.end_a, self.ptr_b, self.end_b, self.ptr_c,
                self.load_a, self.load_b, self.load_cnt_a, self.load_cnt_b,
                self.word_a, self.word_b, self.result, self.result_cnt,
                self.fifo, self.fifo_cnt, self.store, self.store_cnt,
                self.count]

    def lsu_for_side(self, side):
        """LSU index serving one set's stream (paper Figure 8)."""
        if side == "a":
            return 0
        return 1 if self.num_lsus == 2 else 0

    # -- helper predicates -----------------------------------------------------

    def _pending(self, side):
        """True while the stream still has data in memory or Load state."""
        if side == "a":
            return self.ptr_a.value < self.end_a.value \
                or self.load_cnt_a.value > 0
        return self.ptr_b.value < self.end_b.value \
            or self.load_cnt_b.value > 0

    # -- instruction semantics --------------------------------------------------

    def op_init(self, core):
        """INIT_STATES: clear the datapath (pointers were set via wur)."""
        for state in (self.load_a, self.load_b, self.word_a, self.word_b,
                      self.result, self.fifo, self.store):
            state.reset()
        for state in (self.load_cnt_a, self.load_cnt_b, self.result_cnt,
                      self.fifo_cnt, self.store_cnt, self.count):
            state.value = 0

    def op_ld(self, core, side):
        """LD: one 128-bit load into the side's Load state (Table 1).

        No-op when the Load state still holds elements or the stream is
        exhausted; lanes beyond the stream end are masked to sentinel.
        """
        ptr_state = self.ptr_a if side == "a" else self.ptr_b
        end = (self.end_a if side == "a" else self.end_b).value
        cnt_state = self.load_cnt_a if side == "a" else self.load_cnt_b
        load_state = self.load_a if side == "a" else self.load_b
        if cnt_state.value > 0 or ptr_state.value >= end:
            return
        ptr = ptr_state.value
        block = core.load_block(self.lsu_for_side(side), ptr, LANES)
        lanes = []
        valid = 0
        for i in range(LANES):
            if ptr + 4 * i < end:
                lanes.append(block[i])
                valid += 1
            else:
                lanes.append(SENTINEL)
        load_state.value = lanes
        cnt_state.value = valid
        ptr_state.value = ptr + BLOCK_BYTES

    def op_ldp(self, core, side):
        """LD_P: refill the Word window from the Load state (Table 1).

        With partial loading the window is topped up to four valid
        elements after every SOP; without it, only a fully drained
        window is refilled.
        """
        word = self.word_a if side == "a" else self.word_b
        load_state = self.load_a if side == "a" else self.load_b
        cnt_state = self.load_cnt_a if side == "a" else self.load_cnt_b
        valid = valid_count(word.value)
        if self.partial_load:
            want = LANES - valid
        else:
            want = LANES if valid == 0 else 0
        if want == 0 or cnt_state.value == 0:
            return
        take = want if want < cnt_state.value else cnt_state.value
        taken = load_state.value[:take]
        load_state.value = load_state.value[take:] + [SENTINEL] * take
        cnt_state.value -= take
        lanes = word.value[:valid] + taken
        lanes += [SENTINEL] * (LANES - len(lanes))
        word.value = lanes

    def op_sop(self, core, which):
        """SOP: one all-to-all comparison step (Table 1).

        Stalls (consumes and emits nothing) when the TmpStore FIFO
        cannot absorb a worst-case result burst or when a window is
        empty while its stream still has data (the LD/LD_P pair will
        repair that within the next loop iteration).
        """
        if self.result_cnt.value:
            raise SimulationError(
                "SOP issued before ST_S moved previous results")
        wa = self.word_a.value
        wb = self.word_b.value
        va = valid_count(wa)
        vb = valid_count(wb)
        if FIFO_CAPACITY - self.fifo_cnt.value < LANES:
            return
        if (va == 0 and self._pending("a")) \
                or (vb == 0 and self._pending("b")):
            return
        if va == 0 and vb == 0:
            return
        step = SOP_FUNCTIONS[which](wa, wb)
        if step.output:
            lanes = list(step.output)
            self.result_cnt.value = len(lanes)
            lanes += [SENTINEL] * (LANES - len(lanes))
            self.result.value = lanes
        self.word_a.value = wa[step.consumed_a:va] \
            + [SENTINEL] * (LANES - (va - step.consumed_a))
        self.word_b.value = wb[step.consumed_b:vb] \
            + [SENTINEL] * (LANES - (vb - step.consumed_b))

    def op_st_s(self, core):
        """ST_S: shuffle results into the TmpStore FIFO and Store states."""
        count = self.result_cnt.value
        if count:
            fifo = self.fifo.value
            fill = self.fifo_cnt.value
            for i in range(count):
                fifo[fill + i] = self.result.value[i]
            self.fifo_cnt.value = fill + count
            self.result_cnt.value = 0
            self.result.reset()
        if self.store_cnt.value == 0 and self.fifo_cnt.value >= LANES:
            fifo = self.fifo.value
            self.store.value = fifo[:LANES]
            self.fifo.value = fifo[LANES:] + [SENTINEL] * LANES
            self.fifo_cnt.value -= LANES
            self.store_cnt.value = LANES

    def op_st(self, core):
        """ST: one 128-bit result write (delayed below 4 elements)."""
        if self.store_cnt.value != LANES:
            return
        ptr = self.ptr_c.value
        core.store_block(core.lsu_for(ptr).index, ptr, self.store.value)
        self.ptr_c.value = ptr + BLOCK_BYTES
        self.count.value += LANES
        self.store.reset()
        self.store_cnt.value = 0

    def op_st_flush(self, core):
        """Drain the tail (<4 elements) with word stores (epilogue)."""
        lanes = []
        if self.store_cnt.value:
            lanes.extend(self.store.value[:self.store_cnt.value])
            self.store.reset()
            self.store_cnt.value = 0
        if self.fifo_cnt.value:
            lanes.extend(self.fifo.value[:self.fifo_cnt.value])
            self.fifo.reset()
            self.fifo_cnt.value = 0
        ptr = self.ptr_c.value
        for value in lanes:
            core.store(ptr, value)
            ptr += 4
        self.ptr_c.value = ptr
        self.count.value += len(lanes)

    def more_work(self):
        """Continue flag returned by the fused STORE_SOP (Figure 11)."""
        if self._pending("a") or self._pending("b"):
            return 1
        if valid_count(self.word_a.value) or valid_count(self.word_b.value):
            return 1
        if self.result_cnt.value:
            return 1
        if self.fifo_cnt.value >= LANES or self.store_cnt.value:
            return 1
        return 0


class MergeDatapath:
    """States + behavior of the merge-sort instructions.

    Implements the hardware form of the SIMD bitonic merge: keep the
    high half of the previous 8-element merge, refill the other window
    with four elements from whichever run's staged head is smaller.
    """

    def __init__(self):
        self.ptr_a = State("mrg_ptr_a")
        self.end_a = State("mrg_end_a")
        self.ptr_b = State("mrg_ptr_b")
        self.end_b = State("mrg_end_b")
        self.ptr_c = State("mrg_ptr_c")

        self.stage_a = VectorState("mrg_stage_a", LANES, [SENTINEL] * LANES)
        self.stage_b = VectorState("mrg_stage_b", LANES, [SENTINEL] * LANES)
        self.stage_a_full = State("mrg_stage_a_full", 1, read_write=False)
        self.stage_b_full = State("mrg_stage_b_full", 1, read_write=False)
        self.keep = VectorState("mrg_keep", LANES, [SENTINEL] * LANES)
        self.next = VectorState("mrg_next", LANES, [SENTINEL] * LANES)
        self.keep_full = State("mrg_keep_full", 1, read_write=False)
        self.next_full = State("mrg_next_full", 1, read_write=False)
        self.result = VectorState("mrg_result", LANES, [SENTINEL] * LANES)
        self.result_full = State("mrg_result_full", 1, read_write=False)
        self.store = VectorState("mrg_store", LANES, [SENTINEL] * LANES)
        self.store_full = State("mrg_store_full", 1, read_write=False)

        self.target = State("mrg_target")
        self.emitted = State("mrg_emitted")

    def states(self):
        return [self.ptr_a, self.end_a, self.ptr_b, self.end_b, self.ptr_c,
                self.stage_a, self.stage_b, self.stage_a_full,
                self.stage_b_full, self.keep, self.next, self.keep_full,
                self.next_full, self.result, self.result_full,
                self.store, self.store_full, self.target, self.emitted]

    # -- instruction semantics --------------------------------------------------

    def op_minit(self, core):
        """MINIT: latch run bounds, clear the merge pipeline."""
        for state in (self.stage_a, self.stage_b, self.keep, self.next,
                      self.result, self.store):
            state.reset()
        for state in (self.stage_a_full, self.stage_b_full, self.keep_full,
                      self.next_full, self.result_full, self.store_full,
                      self.emitted):
            state.value = 0
        length_a = self.end_a.value - self.ptr_a.value
        length_b = self.end_b.value - self.ptr_b.value
        self.target.value = (length_a + length_b) // BLOCK_BYTES

    def _refill_stage(self, core, side):
        ptr_state = self.ptr_a if side == "a" else self.ptr_b
        end = (self.end_a if side == "a" else self.end_b).value
        stage = self.stage_a if side == "a" else self.stage_b
        full = self.stage_a_full if side == "a" else self.stage_b_full
        if full.value or ptr_state.value >= end:
            return
        ptr = ptr_state.value
        stage.value = core.load_block(core.lsu_for(ptr).index, ptr, LANES)
        full.value = 1
        ptr_state.value = ptr + BLOCK_BYTES

    def op_mld(self, core):
        """MLD: stage one 128-bit block from a run (Table 1 LD).

        Refills the first *refillable* stage: one that is empty while
        its run still has data in memory.
        """
        if not self.stage_a_full.value \
                and self.ptr_a.value < self.end_a.value:
            self._refill_stage(core, "a")
        elif not self.stage_b_full.value \
                and self.ptr_b.value < self.end_b.value:
            self._refill_stage(core, "b")

    def op_msel(self, core):
        """MSEL: move the staged block with the smaller head into the
        merge window (the LD_P of the merge pipeline)."""
        target = None
        if not self.keep_full.value:
            target, target_full = self.keep, self.keep_full
        elif not self.next_full.value:
            target, target_full = self.next, self.next_full
        else:
            return
        if not self.stage_a_full.value \
                and self.ptr_a.value < self.end_a.value:
            return  # stage A empty but its run still has data: wait
        if not self.stage_b_full.value \
                and self.ptr_b.value < self.end_b.value:
            return
        head_a = self.stage_a.value[0] if self.stage_a_full.value \
            else SENTINEL
        head_b = self.stage_b.value[0] if self.stage_b_full.value \
            else SENTINEL
        if head_a == SENTINEL and head_b == SENTINEL \
                and not (self.stage_a_full.value or self.stage_b_full.value):
            target.value = [SENTINEL] * LANES
            target_full.value = 1
            return
        if head_a <= head_b:
            source, source_full = self.stage_a, self.stage_a_full
        else:
            source, source_full = self.stage_b, self.stage_b_full
        target.value = list(source.value)
        target_full.value = 1
        source.reset()
        source_full.value = 0

    def op_merge(self, core):
        """MERGE: 8-element odd-even merge network; emit the low half."""
        if self.result_full.value:
            return  # back-pressure: store path has not drained yet
        if not (self.keep_full.value and self.next_full.value):
            return
        low, high = merge8(self.keep.value, self.next.value)
        self.result.value = low
        self.result_full.value = 1
        self.keep.value = high
        self.next.reset()
        self.next_full.value = 0

    def op_mst_s(self, core):
        """ST_S of the merge pipeline: Result -> Store."""
        if self.result_full.value and not self.store_full.value:
            self.store.value = list(self.result.value)
            self.store_full.value = 1
            self.result.reset()
            self.result_full.value = 0

    def op_mst(self, core):
        """ST: write one 128-bit output block of the merged stream."""
        if not self.store_full.value:
            return
        if self.emitted.value >= self.target.value:
            return
        ptr = self.ptr_c.value
        core.store_block(core.lsu_for(ptr).index, ptr, self.store.value)
        self.ptr_c.value = ptr + BLOCK_BYTES
        self.emitted.value += 1
        self.store.reset()
        self.store_full.value = 0

    def more_work(self):
        return 1 if self.emitted.value < self.target.value else 0

    # -- presort (LDSORT/STSORT: build sorted runs of four) ---------------------

    def op_ldsort(self, core):
        """LDSORT: load four values and sort them in the network."""
        if self.result_full.value:
            return  # previous run not yet stored
        ptr = self.ptr_a.value
        if ptr >= self.end_a.value:
            return
        block = core.load_block(core.lsu_for(ptr).index, ptr, LANES)
        self.result.value = sort4(block)
        self.result_full.value = 1
        self.ptr_a.value = ptr + BLOCK_BYTES

    def op_stsort(self, core):
        """STSORT: store the sorted four-element run."""
        if not self.result_full.value:
            return
        ptr = self.ptr_c.value
        core.store_block(core.lsu_for(ptr).index, ptr, self.result.value)
        self.ptr_c.value = ptr + BLOCK_BYTES
        self.result.reset()
        self.result_full.value = 0

    def presort_more(self):
        return 1 if self.ptr_a.value < self.end_a.value \
            or self.result_full.value else 0
