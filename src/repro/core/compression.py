"""Delta-compressed RID lists and a decompression instruction.

The paper names compression among the database primitives that are
"good candidates for being processed with specialized circuits"
(Section 1, citing the vectorized decompression work of Lemire &
Boytsov [26] and Willhalm et al. [36]).  This module demonstrates the
point with a third TIE extension built on the same framework:

* **Format (D8)** — a sorted RID list becomes one absolute base word
  followed by words carrying four 8-bit deltas each (strictly sorted
  input means deltas >= 1, so a zero delta byte is free to act as the
  escape marker: the next word is an absolute restart for gaps wider
  than 255).  Typical index-scan RID lists compress close to 4x.
* **Instruction** — ``unpack_d8`` consumes one compressed word per
  cycle and emits four reconstructed values through a 4-lane prefix-sum
  network into a decompression buffer; a ``dcmp_state`` register chain
  carries the running value between words.

The end-to-end payoff is measured in ``examples``/benches: streaming
*compressed* RID lists through the DMA prefetcher moves ~4x fewer
bytes, which matters exactly when transfers are the bottleneck
(the blocking-prefetch case of experiment E7).
"""

from ..tie.language import Operand, Operation, State, StateUse, \
    TieExtension
from .common import check_set_input

M32 = 0xFFFFFFFF

#: Marker delta byte: the following word is an absolute restart.
ESCAPE = 0


def compress_d8(values, validate_input=True):
    """Encode a strictly-sorted RID list into D8 words."""
    if validate_input:
        check_set_input("values", values)
    if not values:
        return []
    words = [values[0]]
    deltas = []
    previous = values[0]
    pending = []  # absolute restarts interleaved after a flushed word

    def flush():
        nonlocal deltas, pending
        while len(deltas) < 4:
            deltas.append(0)  # padding; the decoder stops via count
        word = (deltas[0] | (deltas[1] << 8) | (deltas[2] << 16)
                | (deltas[3] << 24))
        words.append(word)
        words.extend(pending)
        deltas = []
        pending = []

    for value in values[1:]:
        gap = value - previous
        if gap > 255:
            deltas.append(ESCAPE)
            pending.append(value)
        else:
            deltas.append(gap)
        previous = value
        if len(deltas) == 4:
            flush()
    if deltas:
        flush()
    return words


def decompress_d8(words, count):
    """Reference decoder (host side), mirroring the instruction."""
    if count == 0:
        return []
    values = [words[0] & M32]
    current = words[0] & M32
    index = 1
    while len(values) < count:
        word = words[index]
        index += 1
        for lane in range(4):
            if len(values) >= count:
                break
            delta = (word >> (8 * lane)) & 0xFF
            if delta == ESCAPE:
                current = words[index] & M32
                index += 1
            else:
                current += delta
            values.append(current)
    return values


def compression_ratio(values):
    """Raw words / compressed words for one RID list."""
    if not values:
        return 1.0
    return len(values) / len(compress_d8(values))


def build_compression_extension():
    """The D8 decompression extension (fresh instance per processor).

    Software-visible states: ``dcmp_src`` (compressed stream pointer),
    ``dcmp_dst`` (output pointer), ``dcmp_left`` (values still to
    produce).  ``unpack_d8`` processes one compressed word (plus any
    escape restarts) per invocation and returns the continue flag.
    """
    src = State("dcmp_src")
    dst = State("dcmp_dst")
    left = State("dcmp_left")
    current = State("dcmp_current", read_write=False)
    primed = State("dcmp_primed", width_bits=1, read_write=False)

    def unpack_semantics(ext, core):
        src_state = ext.state("dcmp_src")
        dst_state = ext.state("dcmp_dst")
        left_state = ext.state("dcmp_left")
        current_state = ext.state("dcmp_current")
        primed_state = ext.state("dcmp_primed")
        if left_state.value == 0:
            return 0
        if not primed_state.value:
            # first word: the absolute base value
            current_state.value = core.load(src_state.value)
            src_state.value += 4
            core.store(dst_state.value, current_state.value)
            dst_state.value += 4
            left_state.value -= 1
            primed_state.value = 1
            return 1 if left_state.value else 0
        word = core.load(src_state.value)
        src_state.value += 4
        lanes = []
        for lane in range(4):
            if left_state.value == len(lanes):
                break
            delta = (word >> (8 * lane)) & 0xFF
            if delta == ESCAPE:
                current_state.value = core.load(src_state.value)
                src_state.value += 4
            else:
                current_state.value = (current_state.value + delta) \
                    & M32
            lanes.append(current_state.value)
        for offset, value in enumerate(lanes):
            core.store(dst_state.value + 4 * offset, value)
        dst_state.value += 4 * len(lanes)
        left_state.value -= len(lanes)
        return 1 if left_state.value else 0

    def init_semantics(ext, core):
        ext.state("dcmp_primed").value = 0
        ext.state("dcmp_current").value = 0

    init = Operation(
        "dcmp_init",
        states=[StateUse(current, "out"), StateUse(primed, "out")],
        semantics=init_semantics,
        slot_class="compute",
        circuit={"wire_32": 2},
        group="compression",
        description="Reset the D8 decoder state machine")

    unpack = Operation(
        "unpack_d8",
        operands=[Operand("more", "out", "ar")],
        states=[StateUse(src, "inout"), StateUse(dst, "inout"),
                StateUse(left, "inout"), StateUse(current, "inout"),
                StateUse(primed, "inout")],
        semantics=unpack_semantics,
        slot_class="mem",
        # escape restarts consume an extra memory word
        extra_cycles=1,
        circuit={"adder32": 4, "eq32": 4, "mux2_32": 8, "agu": 2,
                 "wire_32": 48},
        path=("adder32", "adder32", "mux2_32"),
        group="compression",
        description="Decode one D8 word: 4-lane delta prefix sum")

    return TieExtension(
        "d8_compression",
        states=[src, dst, left, current, primed],
        operations=[init, unpack],
        description="Delta-compressed RID-list decompression "
                    "(Section 1 candidate primitive)")


def decompress_kernel(unroll=8):
    """Assembly: decompress a D8 stream into a raw buffer.

    Register protocol: ``a2`` = compressed base, ``a3`` = value count,
    ``a4`` = output base.
    """
    lines = [
        "main:",
        "  wur a2, dcmp_src",
        "  wur a4, dcmp_dst",
        "  wur a3, dcmp_left",
        "  dcmp_init",
        "loop:",
    ]
    for _ in range(unroll):
        lines.append("  unpack_d8 a8")
        lines.append("  beqz a8, done")
    lines += [
        "  j loop",
        "done:",
        "  halt",
    ]
    return "\n".join(lines)


def run_decompress(processor, values, compressed_base=0x0,
                   output_base=None):
    """Stage a compressed list, decompress on-core, return values."""
    words = compress_d8(values)
    if output_base is None:
        output_base = compressed_base + 4 * len(words) + 16
    if words:
        processor.write_words(compressed_base, words)
    from .kernels import load_cached_kernel
    load_cached_kernel(processor, "d8-decompress", decompress_kernel)
    result = processor.run(entry="main", regs={
        "a2": compressed_base, "a3": len(values), "a4": output_base})
    output = processor.read_words(output_base, len(values)) \
        if values else []
    return output, result
