"""The database instruction-set extension (EIS).

This is the paper's core contribution (Section 4): the five-instruction
family LD / LD_P / SOP / ST_S / ST for sorted-set intersection, union
and difference, the merge/sort instructions for merge-sort, the fused
operations used in the kernel core loops (``STORE_SOP`` and
``LD_LDP_SHUFFLE``, Figure 11/12), and the FLIX bundle format that
issues them together with loop-control instructions.

:func:`build_db_extension` constructs a fresh extension instance for a
given processor shape (number of LSUs, partial loading on/off).  The
circuit declarations attached to each operation drive the synthesis
area model; their calibration reproduces the paper's Table 4 area
breakdown (union largest — it writes back up to eight results per
operation; merge-sort smallest — no partial loading, single LSU).
"""

from ..tie.flix import FlixFormat, Slot
from ..tie.language import Operand, Operation, StateUse, TieExtension
from .datapath import MergeDatapath, SetDatapath

#: Operations per set operation family, used by the area report.
SET_OP_GROUPS = ("intersection", "union", "difference")

#: Routing-track scale of the single-LSU extension variant.
SINGLE_LSU_WIRE_SCALE = 0.63


def _scale_wires(circuit, factor):
    """Scale the routing-track count of a circuit in place."""
    if "wire_32" in circuit and factor != 1.0:
        circuit["wire_32"] = int(circuit["wire_32"] * factor)
    return circuit


class DbExtension(TieExtension):
    """TIE extension plus its two datapath instances."""

    def __init__(self, name, setdp, mergedp, **kwargs):
        super().__init__(name, **kwargs)
        self.setdp = setdp
        self.mergedp = mergedp


def build_db_extension(num_lsus=2, partial_load=True):
    """Create the EIS for a processor with the given shape."""
    setdp = SetDatapath(num_lsus=num_lsus, partial_load=partial_load)
    mergedp = MergeDatapath()
    operations = []
    operations.extend(_set_operations(setdp, num_lsus))
    operations.extend(_merge_operations(mergedp))
    if num_lsus == 1:
        # A single 128-bit memory port needs substantially less
        # operand/result routing than the dual-port fabric (the paper's
        # DBA_1LSU_EIS is 0.523 mm2 of logic vs 0.645 mm2 with two
        # LSUs, Table 3).
        for operation in operations:
            _scale_wires(operation.circuit, SINGLE_LSU_WIRE_SCALE)
    flix = FlixFormat("db64", format_id=1, slots=[
        Slot("mem", ("mem", "compute")),
        Slot("compute", ("compute",)),
        Slot("ctl", ("branch", "jump", "alu", "nop")),
    ])
    extension = DbExtension(
        "db_eis",
        setdp=setdp,
        mergedp=mergedp,
        states=setdp.states() + mergedp.states(),
        operations=operations,
        flix_formats=[flix],
        # The all-to-all comparator matrix (16 magnitude + 16 equality
        # comparators), threshold min and consumption popcounts are
        # shared by the three SOP result circuits — the paper's
        # "Op: All" row in Table 4.
        shared_circuits={
            "all": _scale_wires(
                {"cmp32": 17, "eq32": 16, "popcount4": 2,
                 "mux2_32": 2, "wire_32": 1000},
                1.0 if num_lsus == 2 else SINGLE_LSU_WIRE_SCALE),
        },
        shared_paths={
            "sop_matrix": ("cmp32", "popcount4", "mux2_32"),
        },
        description="Set-oriented database primitives (paper Section 4)")
    return extension


def _flag_out():
    return Operand("more", "out", "ar")


def _set_operations(dp, num_lsus):
    """The sorted-set instruction family."""
    ptr_states = [StateUse(dp.ptr_a, "inout"), StateUse(dp.end_a, "in"),
                  StateUse(dp.ptr_b, "inout"), StateUse(dp.end_b, "in"),
                  StateUse(dp.ptr_c, "inout")]
    window_states = [StateUse(dp.word_a, "inout"),
                     StateUse(dp.word_b, "inout")]
    load_states = [StateUse(dp.load_a, "inout"), StateUse(dp.load_b,
                                                          "inout"),
                   StateUse(dp.load_cnt_a, "inout"),
                   StateUse(dp.load_cnt_b, "inout")]
    result_states = [StateUse(dp.result, "out"),
                     StateUse(dp.result_cnt, "inout")]
    store_states = [StateUse(dp.fifo, "inout"), StateUse(dp.fifo_cnt,
                                                         "inout"),
                    StateUse(dp.store, "inout"),
                    StateUse(dp.store_cnt, "inout"),
                    StateUse(dp.count, "inout")]

    ops = [
        Operation(
            "sop_init",
            semantics=lambda ext, core: ext.setdp.op_init(core),
            states=ptr_states + window_states + load_states
            + result_states + store_states,
            slot_class="compute", group="all",
            circuit={"inc32": 1},
            description="INIT_STATES: clear the set-operation datapath"),
        Operation(
            "ld_a",
            semantics=lambda ext, core: ext.setdp.op_ld(core, "a"),
            states=[StateUse(dp.ptr_a, "inout"), StateUse(dp.end_a, "in"),
                    StateUse(dp.load_a, "out"),
                    StateUse(dp.load_cnt_a, "inout")],
            slot_class="mem", group="all",
            circuit={"agu": 1, "cmp32": 4, "mux2_32": 4, "wire_32": 200},
            path=("agu",),
            description="LD via LSU0: 128-bit load into Load states (A)"),
        Operation(
            "ld_b",
            semantics=lambda ext, core: ext.setdp.op_ld(core, "b"),
            states=[StateUse(dp.ptr_b, "inout"), StateUse(dp.end_b, "in"),
                    StateUse(dp.load_b, "out"),
                    StateUse(dp.load_cnt_b, "inout")],
            slot_class="mem", group="all",
            circuit={"agu": 1, "cmp32": 4, "mux2_32": 4, "wire_32": 200},
            path=("agu",),
            description="LD via LSU%d: 128-bit load into Load states (B)"
            % (1 if num_lsus == 2 else 0)),
        Operation(
            "ldp_a",
            semantics=lambda ext, core: ext.setdp.op_ldp(core, "a"),
            states=[StateUse(dp.word_a, "inout"),
                    StateUse(dp.load_a, "inout"),
                    StateUse(dp.load_cnt_a, "inout")],
            slot_class="compute", group="all",
            circuit={"crossbar4_32": 2, "popcount4": 1, "wire_32": 100},
            path=("crossbar4_32",),
            description="LD_P: partial reload of Word states (A)"),
        Operation(
            "ldp_b",
            semantics=lambda ext, core: ext.setdp.op_ldp(core, "b"),
            states=[StateUse(dp.word_b, "inout"),
                    StateUse(dp.load_b, "inout"),
                    StateUse(dp.load_cnt_b, "inout")],
            slot_class="compute", group="all",
            circuit={"crossbar4_32": 2, "popcount4": 1, "wire_32": 100},
            path=("crossbar4_32",),
            description="LD_P: partial reload of Word states (B)"),
        Operation(
            "st_s",
            semantics=lambda ext, core: ext.setdp.op_st_s(core),
            states=result_states + store_states,
            slot_class="compute", group="all",
            circuit={"crossbar4_32": 4, "fifo_ctl": 1, "popcount8": 1,
                     "wire_32": 240},
            path=("crossbar4_32", "fifo_ctl"),
            description="ST_S: shuffle results through the TmpStore FIFO"),
        Operation(
            "st_res",
            semantics=lambda ext, core: ext.setdp.op_st(core),
            states=[StateUse(dp.ptr_c, "inout"),
                    StateUse(dp.store, "in"),
                    StateUse(dp.store_cnt, "inout"),
                    StateUse(dp.count, "inout")],
            slot_class="mem", group="all",
            circuit={"agu": 1, "wire_32": 120},
            description="ST: 128-bit result write (delayed below 4)"),
        Operation(
            "st_flush",
            semantics=lambda ext, core: ext.setdp.op_st_flush(core),
            states=store_states + [StateUse(dp.ptr_c, "inout")],
            slot_class="mem", group="all", extra_cycles=4,
            circuit={"agu": 1},
            description="Epilogue drain of the <4-element result tail"),
    ]

    for which, group, circuit, path in (
            ("intersection", "intersection",
             {"prio4": 4, "mux4_32": 4, "popcount4": 1, "wire_32": 956},
             ("cmp32", "prio4", "mux4_32")),
            ("union", "union",
             {"minmax32": 9, "eq32": 8, "mux8_32": 8, "popcount8": 1,
              "wire_32": 2740},
             ("cmp32", "minmax32", "mux8_32")),
            ("difference", "difference",
             {"prio4": 4, "mux4_32": 4, "popcount4": 1, "wire_32": 1336},
             ("cmp32", "prio4", "mux4_32"))):
        short = {"intersection": "int", "union": "uni",
                 "difference": "dif"}[which]
        ops.append(Operation(
            "sop_%s" % short,
            semantics=_make_sop_semantics(which),
            states=window_states + result_states,
            slot_class="compute", group=group,
            circuit=circuit, path=path,
            description="SOP: one %s step over the 4x4 matrix" % which))
        fused_wires = {"intersection": 900, "union": 1738,
                       "difference": 1132}[which]
        ops.append(Operation(
            "store_sop_%s" % short,
            operands=[_flag_out()],
            semantics=_make_store_sop_semantics(which),
            states=window_states + result_states + store_states
            + [StateUse(dp.ptr_c, "inout")],
            slot_class="mem", group=group,
            circuit={"wire_32": fused_wires},
            description="Fused ST + SOP(%s) + continue flag (Figure 11)"
                        % which))

    if num_lsus == 2:
        ops.append(Operation(
            "ld_ldp_shuffle",
            semantics=_ld_ldp_shuffle_2lsu,
            states=load_states + window_states + result_states
            + store_states + ptr_states,
            slot_class="mem", group="all",
            circuit={"wire_32": 185},
            description="Fused ST_S + LD_P(both) + LD(both LSUs)"))
    else:
        ops.append(Operation(
            "ld_shuffle_a",
            semantics=_ld_shuffle_a_1lsu,
            states=load_states + window_states + result_states
            + store_states + [StateUse(dp.ptr_a, "inout"),
                              StateUse(dp.end_a, "in")],
            slot_class="mem", group="all",
            circuit={"wire_32": 90},
            description="Fused ST_S + LD_P(both) + LD(A) for one LSU"))
    return ops


def _make_sop_semantics(which):
    def semantics(ext, core):
        ext.setdp.op_sop(core, which)
    return semantics


def _make_store_sop_semantics(which):
    def semantics(ext, core):
        dp = ext.setdp
        dp.op_st(core)
        dp.op_sop(core, which)
        return dp.more_work()
    return semantics


def _ld_ldp_shuffle_2lsu(ext, core):
    dp = ext.setdp
    dp.op_st_s(core)
    dp.op_ldp(core, "a")
    dp.op_ldp(core, "b")
    dp.op_ld(core, "a")
    dp.op_ld(core, "b")


def _ld_shuffle_a_1lsu(ext, core):
    dp = ext.setdp
    dp.op_st_s(core)
    dp.op_ldp(core, "a")
    dp.op_ldp(core, "b")
    dp.op_ld(core, "a")


def _merge_operations(dp):
    """The merge-sort instruction family (single LSU, Figure 12)."""
    run_states = [StateUse(dp.ptr_a, "inout"), StateUse(dp.end_a, "in"),
                  StateUse(dp.ptr_b, "inout"), StateUse(dp.end_b, "in"),
                  StateUse(dp.ptr_c, "inout")]
    pipe_states = [StateUse(dp.stage_a, "inout"),
                   StateUse(dp.stage_b, "inout"),
                   StateUse(dp.stage_a_full, "inout"),
                   StateUse(dp.stage_b_full, "inout"),
                   StateUse(dp.keep, "inout"), StateUse(dp.next, "inout"),
                   StateUse(dp.keep_full, "inout"),
                   StateUse(dp.next_full, "inout"),
                   StateUse(dp.result, "inout"),
                   StateUse(dp.result_full, "inout"),
                   StateUse(dp.store, "inout"),
                   StateUse(dp.store_full, "inout"),
                   StateUse(dp.target, "in"), StateUse(dp.emitted, "inout")]
    # MINIT derives the target block count from the run bounds and
    # writes it; the other merge ops only read it.
    minit_states = [StateUse(use.state, "inout")
                    if use.state is dp.target else use
                    for use in pipe_states]

    def semantics_minit(ext, core):
        ext.mergedp.op_minit(core)

    def semantics_mldsel(ext, core):
        ext.mergedp.op_msel(core)
        ext.mergedp.op_mld(core)

    def semantics_mld(ext, core):
        ext.mergedp.op_mld(core)

    def semantics_merge_st(ext, core):
        dp = ext.mergedp
        dp.op_mst(core)
        dp.op_mst_s(core)
        dp.op_merge(core)
        return dp.more_work()

    def semantics_ldsort(ext, core):
        ext.mergedp.op_ldsort(core)

    def semantics_stsort(ext, core):
        ext.mergedp.op_stsort(core)
        return ext.mergedp.presort_more()

    return [
        Operation("minit", semantics=semantics_minit,
                  states=run_states + minit_states,
                  slot_class="compute", group="merge_sort",
                  circuit={"inc32": 1, "wire_32": 32},
                  description="Latch run bounds, clear merge pipeline"),
        Operation("mld", semantics=semantics_mld,
                  states=pipe_states[:4] + run_states[:4],
                  slot_class="mem", group="merge_sort",
                  circuit={"agu": 1, "wire_32": 32},
                  description="Stage one 128-bit run block (LSU0)"),
        Operation("mldsel", semantics=semantics_mldsel,
                  states=pipe_states + run_states[:4],
                  slot_class="mem", group="merge_sort",
                  circuit={"cmp32": 1, "mux2_32": 4, "agu": 1,
                           "wire_32": 216},
                  path=("cmp32", "mux2_32", "agu"),
                  description="Select staged block with smaller head, "
                              "refill its stage"),
        Operation("merge_st", operands=[_flag_out()],
                  semantics=semantics_merge_st,
                  states=pipe_states + [StateUse(dp.ptr_c, "inout")],
                  slot_class="mem", group="merge_sort",
                  # The odd-even merge network precomputes all lane
                  # comparisons in parallel; the select path is one
                  # compare stage plus two mux stages.
                  circuit={"minmax32": 9, "agu": 1, "wire_32": 648},
                  path=("minmax32", "mux2_32", "mux2_32"),
                  description="Fused ST + ST_S + 8-element merge network "
                              "+ continue flag (Figure 12)"),
        Operation("ldsort", semantics=semantics_ldsort,
                  states=[StateUse(dp.ptr_a, "inout"),
                          StateUse(dp.end_a, "in"),
                          StateUse(dp.result, "out"),
                          StateUse(dp.result_full, "inout")],
                  slot_class="mem", group="merge_sort",
                  circuit={"minmax32": 5, "agu": 1, "wire_32": 150},
                  path=("minmax32", "mux2_32", "mux2_32"),
                  description="Load 4 values through the sort4 network"),
        Operation("stsort", operands=[_flag_out()],
                  semantics=semantics_stsort,
                  states=[StateUse(dp.ptr_c, "inout"),
                          StateUse(dp.result, "in"),
                          StateUse(dp.result_full, "inout")],
                  slot_class="mem", group="merge_sort",
                  circuit={"agu": 1, "wire_32": 32},
                  description="Store a sorted 4-run + continue flag"),
    ]
