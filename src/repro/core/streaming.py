"""Streaming set operations through the data prefetcher.

The paper keeps its Table 2 workloads inside the local data memories
but states that "system level simulation validates a constant
throughput of the processor for larger data sets due to the
concurrently performed data prefetch" (Section 5.2).  This module
reproduces that system-level experiment:

* the host splits both input sets at common *value thresholds* so each
  chunk pair can be intersected independently (chunk ``i`` of A can
  only match chunk ``i`` of B),
* a descriptor table in local memory drives the kernel, which
  double-buffers: while the SOP loop consumes the current chunk pair,
  the DMA engine bursts the next pair from off-chip memory into the
  other buffer halves (the ``overlap=True`` variant), or fetches
  strictly on demand (``overlap=False``, for quantifying the benefit).
"""

from ..cpu.memory import DMEM1_BASE, MAIN_BASE
from .common import LANES, SENTINEL, check_set_input

BLOCK_BYTES = 4 * LANES

#: Local buffer geometry (bytes per half-buffer).
HALF_BUFFER_BYTES = 16 * 1024

#: Local addresses of the double buffers and the descriptor table.
BUF_A0 = 0x0000
BUF_A1 = BUF_A0 + HALF_BUFFER_BYTES
DESC_BASE = BUF_A1 + HALF_BUFFER_BYTES

#: Off-chip staging addresses of the two sets.
MAIN_A = MAIN_BASE
MAIN_B = MAIN_BASE + 0x0040_0000


def split_at_thresholds(set_a, set_b, chunk_elements):
    """Split both sets at shared value thresholds.

    Walks set A in strides of roughly *chunk_elements* and cuts both
    sets just above the stride's last value, so every value lands in
    the same chunk index in both sets.  Returns a list of
    ``((a_lo, a_hi), (b_lo, b_hi))`` index ranges.
    """
    import bisect
    chunks = []
    pos_a = pos_b = 0
    while pos_a < len(set_a) or pos_b < len(set_b):
        next_a = min(pos_a + chunk_elements, len(set_a))
        if next_a < len(set_a):
            threshold = set_a[next_a - 1]
            next_b = bisect.bisect_right(set_b, threshold, lo=pos_b)
        else:
            remaining_b = len(set_b) - pos_b
            if remaining_b > 2 * chunk_elements:
                next_b = pos_b + chunk_elements
                threshold = set_b[next_b - 1]
                next_a = bisect.bisect_right(set_a, threshold, lo=pos_a)
            else:
                next_b = len(set_b)
        chunks.append(((pos_a, next_a), (pos_b, next_b)))
        pos_a, pos_b = next_a, next_b
    return chunks


def streaming_buffers(num_lsus):
    """``(buf_a0, buf_a1, buf_b0, buf_b1)`` local buffer bases."""
    buf_b0 = DMEM1_BASE if num_lsus == 2 else DESC_BASE + 0x1000
    return BUF_A0, BUF_A1, buf_b0, buf_b0 + HALF_BUFFER_BYTES


def streaming_schedule(chunk_byte_lengths, num_lsus):
    """DMA destination windows of a streaming run, in FIFO order.

    *chunk_byte_lengths* is ``[(a_bytes, b_bytes), ...]`` per chunk
    pair; the kernel alternates buffer halves per chunk (parity of the
    chunk index).  The result feeds
    :func:`repro.analysis.races.check_transfer_schedule`.
    """
    buf_a0, buf_a1, buf_b0, buf_b1 = streaming_buffers(num_lsus)
    windows = []
    for index, (a_bytes, b_bytes) in enumerate(chunk_byte_lengths):
        buf_a = buf_a0 if index % 2 == 0 else buf_a1
        buf_b = buf_b0 if index % 2 == 0 else buf_b1
        windows.append((buf_a, a_bytes, "chunk %d set A" % index))
        windows.append((buf_b, b_bytes, "chunk %d set B" % index))
    return windows


def _validate_schedule(processor, windows, reserved, overlap, key):
    """Reject a descriptor schedule the race checker can refute.

    Error findings raise :class:`~repro.analysis.LintError` unless
    ``REPRO_LINT_WARN_ONLY=1`` downgrades them to warnings.
    """
    import warnings

    from ..analysis import (LintError, LintWarning,
                            check_transfer_schedule, lint_warn_only)
    report = check_transfer_schedule(
        windows, processor=processor, reserved=reserved,
        concurrency=4 if overlap else 2, source_name=key)
    if report.has_errors:
        if not lint_warn_only():
            raise LintError(report)
        for diagnostic in report.errors():
            warnings.warn(diagnostic.format(), LintWarning,
                          stacklevel=3)
    return report


def streaming_kernel(which="intersection", num_lsus=2, overlap=True,
                     unroll=8):
    """Assembly of the double-buffered streaming set-operation kernel.

    Register protocol: ``a2`` = descriptor table address, ``a3`` =
    number of chunk pairs, ``a4`` = result base.  On halt ``a2`` holds
    the result element count.  Descriptors are four words per chunk:
    off-chip source of A, length of A in bytes, source of B, length.
    """
    short = {"intersection": "int", "union": "uni",
             "difference": "dif"}[which]
    _buf_a0, _buf_a1, buf_b0, buf_b1 = streaming_buffers(num_lsus)

    def prefetch_block(tag):
        """Issue the DMA pair for the next chunk (cursor a7/parity a15)."""
        return [
            "  beqz a9, pf_skip_%s" % tag,
            "  beqz a15, pf_h0_%s" % tag,
            "  li a10, %d" % BUF_A1,
            "  li a11, %d" % buf_b1,
            "  j pf_go_%s" % tag,
            "pf_h0_%s:" % tag,
            "  li a10, %d" % BUF_A0,
            "  li a11, %d" % buf_b0,
            "pf_go_%s:" % tag,
            "  l32i a12, a7, 0",
            "  wur a12, DMA_SRC",
            "  wur a10, DMA_DST",
            "  l32i a12, a7, 4",
            "  wur a12, DMA_LEN",
            "  movi a13, 1",
            "  wur a13, DMA_CTRL",
            "  l32i a12, a7, 8",
            "  wur a12, DMA_SRC",
            "  wur a11, DMA_DST",
            "  l32i a12, a7, 12",
            "  wur a12, DMA_LEN",
            "  wur a13, DMA_CTRL",
            "  addi a7, a7, 16",
            "  xori a15, a15, 1",
            "  addi a9, a9, -1",
            "pf_skip_%s:" % tag,
        ]

    lines = [
        "; streaming %s kernel (%s prefetch)" % (
            which, "overlapped" if overlap else "blocking"),
        "main:",
        "  wur a4, sop_ptr_c",
        "  sop_init",
        "  mv a7, a2            ; prefetch descriptor cursor",
        "  mv a9, a3            ; chunks left to prefetch",
        "  movi a15, 0          ; prefetch buffer parity",
        "  movi a6, 0           ; compute buffer parity",
        "  movi a5, 0           ; DMA completions to wait for",
    ]
    if overlap:
        lines += prefetch_block("init")
    lines += ["chunk_loop:"]
    lines += prefetch_block("look" if overlap else "demand")
    lines += [
        "  addi a5, a5, 2",
        "wait_dma:",
        "  rur a8, DMA_DONE",
        "  blt a8, a5, wait_dma",
        "  ; point the datapath at the fetched chunk pair",
        "  beqz a6, c_h0",
        "  li a10, %d" % BUF_A1,
        "  li a11, %d" % buf_b1,
        "  j c_go",
        "c_h0:",
        "  li a10, %d" % BUF_A0,
        "  li a11, %d" % buf_b0,
        "c_go:",
        "  wur a10, sop_ptr_a",
        "  l32i a12, a2, 4",
        "  add a12, a10, a12",
        "  wur a12, sop_end_a",
        "  wur a11, sop_ptr_b",
        "  l32i a12, a2, 12",
        "  add a12, a11, a12",
        "  wur a12, sop_end_b",
        "  ld_a",
        "  ld_b",
        "  ldp_a",
        "  ldp_b",
        "sop_loop:",
    ]
    for _ in range(unroll):
        lines.append("  { store_sop_%s a8 ; beqz a8, chunk_done }" % short)
        if num_lsus == 2:
            lines.append("  { ld_ldp_shuffle }")
        else:
            lines.append("  { ld_shuffle_a }")
            lines.append("  { ld_b }")
    lines += [
        "  j sop_loop",
        "chunk_done:",
        "  addi a2, a2, 16",
        "  xori a6, a6, 1",
        "  addi a3, a3, -1",
        "  bnez a3, chunk_loop",
        "  st_flush",
        "  rur a2, sop_count",
        "  halt",
    ]
    return "\n".join(lines)


def run_streaming_set_operation(processor, which, set_a, set_b,
                                chunk_elements=3072, overlap=True,
                                validate_input=True):
    """Stream a set operation through the prefetcher.

    Stages both sets in off-chip main memory, builds the descriptor
    table, runs the double-buffered kernel, and returns
    ``(result_list, RunResult)``.
    """
    if validate_input:
        check_set_input("set_a", set_a)
        check_set_input("set_b", set_b)
    if processor.prefetcher is None:
        raise ValueError("processor was built without a prefetcher")
    processor.prefetcher.reset()
    max_elements = HALF_BUFFER_BYTES // 4
    if chunk_elements > max_elements:
        raise ValueError("chunk does not fit the half buffer")

    chunks = split_at_thresholds(set_a, set_b, chunk_elements)
    for (a_lo, a_hi), (b_lo, b_hi) in chunks:
        if (a_hi - a_lo) > max_elements or (b_hi - b_lo) > max_elements:
            raise ValueError("a threshold chunk exceeds the half buffer; "
                             "reduce chunk_elements")

    def padded(values):
        pad = (-len(values)) % LANES
        return list(values) + [SENTINEL] * pad

    processor.write_words(MAIN_A, padded(set_a))
    processor.write_words(MAIN_B, padded(set_b))

    descriptors = []
    for (a_lo, a_hi), (b_lo, b_hi) in chunks:
        descriptors += [MAIN_A + a_lo * 4, (a_hi - a_lo) * 4,
                        MAIN_B + b_lo * 4, (b_hi - b_lo) * 4]
    processor.write_words(DESC_BASE, descriptors)

    num_lsus = processor.config.num_lsus
    buf_b0 = streaming_buffers(num_lsus)[2]
    result_base = buf_b0 + 2 * HALF_BUFFER_BYTES + BLOCK_BYTES

    key = "stream-%s-%dlsu-%s" % (which, num_lsus,
                                  "ov" if overlap else "bl")
    windows = streaming_schedule(
        [((a_hi - a_lo) * 4, (b_hi - b_lo) * 4)
         for (a_lo, a_hi), (b_lo, b_hi) in chunks], num_lsus)
    result_bytes = 4 * (len(set_a) + len(set_b) + 2 * LANES)
    _validate_schedule(
        processor, windows,
        reserved=[("descriptor table", DESC_BASE, 4 * len(descriptors)),
                  ("result buffer", result_base, result_bytes)],
        overlap=overlap, key=key)
    from .kernels import load_cached_kernel
    load_cached_kernel(
        processor, key,
        lambda: streaming_kernel(which, num_lsus, overlap))

    result = processor.run(entry="main", regs={
        "a2": DESC_BASE, "a3": len(chunks), "a4": result_base,
    })
    count = result.reg("a2")
    values = processor.read_words(result_base, count) if count else []
    return values, result


# ---------------------------------------------------------------------------
# compressed streaming: decompress-then-intersect (Section 1's
# compression candidate integrated with the set instructions)
# ---------------------------------------------------------------------------

#: Compressed-chunk double buffers (bytes per half).
CHALF_BYTES = 8 * 1024
CBUF_A0 = 0x0000
CBUF_A1 = CBUF_A0 + CHALF_BYTES
#: Raw (decompressed) chunk buffers.
RAW_A = CBUF_A1 + CHALF_BYTES
CDESC_BASE = RAW_A + HALF_BUFFER_BYTES


def compressed_streaming_buffers(num_lsus):
    """``(cbuf_a0, cbuf_a1, cbuf_b0, cbuf_b1, raw_b)`` buffer bases."""
    cbuf_b0 = DMEM1_BASE if num_lsus == 2 else CDESC_BASE + 0x1000
    return (CBUF_A0, CBUF_A1, cbuf_b0, cbuf_b0 + CHALF_BYTES,
            cbuf_b0 + 2 * CHALF_BYTES)


def compressed_streaming_schedule(chunk_byte_lengths, num_lsus):
    """DMA windows of a compressed streaming run, in FIFO order."""
    cbuf_a0, cbuf_a1, cbuf_b0, cbuf_b1, _raw_b = \
        compressed_streaming_buffers(num_lsus)
    windows = []
    for index, (a_bytes, b_bytes) in enumerate(chunk_byte_lengths):
        buf_a = cbuf_a0 if index % 2 == 0 else cbuf_a1
        buf_b = cbuf_b0 if index % 2 == 0 else cbuf_b1
        windows.append((buf_a, a_bytes,
                        "chunk %d compressed A" % index))
        windows.append((buf_b, b_bytes,
                        "chunk %d compressed B" % index))
    return windows


def compressed_streaming_kernel(which="intersection", num_lsus=2,
                                overlap=True, unroll=8,
                                decode_unroll=8):
    """Streaming set operation over *compressed* chunk pairs.

    Per chunk: DMA the compressed streams in, decode both with
    ``unpack_d8`` into raw buffers, then run the normal SOP loop.
    Descriptors are six words per chunk: compressed source/bytes/value
    count for A, then for B.  Register protocol as in
    :func:`streaming_kernel`.
    """
    short = {"intersection": "int", "union": "uni",
             "difference": "dif"}[which]
    _cbuf_a0, _cbuf_a1, cbuf_b0, cbuf_b1, raw_b = \
        compressed_streaming_buffers(num_lsus)

    def prefetch_block(tag):
        return [
            "  beqz a9, pf_skip_%s" % tag,
            "  beqz a15, pf_h0_%s" % tag,
            "  li a10, %d" % CBUF_A1,
            "  li a11, %d" % cbuf_b1,
            "  j pf_go_%s" % tag,
            "pf_h0_%s:" % tag,
            "  li a10, %d" % CBUF_A0,
            "  li a11, %d" % cbuf_b0,
            "pf_go_%s:" % tag,
            "  l32i a12, a7, 0",
            "  wur a12, DMA_SRC",
            "  wur a10, DMA_DST",
            "  l32i a12, a7, 4",
            "  wur a12, DMA_LEN",
            "  movi a13, 1",
            "  wur a13, DMA_CTRL",
            "  l32i a12, a7, 12",
            "  wur a12, DMA_SRC",
            "  wur a11, DMA_DST",
            "  l32i a12, a7, 16",
            "  wur a12, DMA_LEN",
            "  wur a13, DMA_CTRL",
            "  addi a7, a7, 24",
            "  xori a15, a15, 1",
            "  addi a9, a9, -1",
            "pf_skip_%s:" % tag,
        ]

    def decode_block(tag, dst, count_offset):
        lines = [
            "  wur a10, dcmp_src" if tag.endswith("a")
            else "  wur a11, dcmp_src",
            "  li a12, %d" % dst,
            "  wur a12, dcmp_dst",
            "  l32i a13, a2, %d" % count_offset,
            "  wur a13, dcmp_left",
            "  dcmp_init",
            "dc_%s:" % tag,
        ]
        for _ in range(decode_unroll):
            lines.append("  unpack_d8 a8")
            lines.append("  beqz a8, dc_done_%s" % tag)
        lines += ["  j dc_%s" % tag, "dc_done_%s:" % tag]
        return lines

    lines = [
        "; compressed streaming %s kernel" % which,
        "main:",
        "  wur a4, sop_ptr_c",
        "  sop_init",
        "  mv a7, a2",
        "  mv a9, a3",
        "  movi a15, 0",
        "  movi a6, 0",
        "  movi a5, 0",
    ]
    if overlap:
        lines += prefetch_block("init")
    lines += ["chunk_loop:"]
    lines += prefetch_block("look" if overlap else "demand")
    lines += [
        "  addi a5, a5, 2",
        "wait_dma:",
        "  rur a8, DMA_DONE",
        "  blt a8, a5, wait_dma",
        "  beqz a6, c_h0",
        "  li a10, %d" % CBUF_A1,
        "  li a11, %d" % cbuf_b1,
        "  j c_go",
        "c_h0:",
        "  li a10, %d" % CBUF_A0,
        "  li a11, %d" % cbuf_b0,
        "c_go:",
    ]
    lines += decode_block("da", RAW_A, 8)
    lines += decode_block("db", raw_b, 20)
    lines += [
        "  ; aim the set datapath at the decoded chunk pair",
        "  li a10, %d" % RAW_A,
        "  wur a10, sop_ptr_a",
        "  l32i a12, a2, 8",
        "  slli a12, a12, 2",
        "  add a12, a10, a12",
        "  wur a12, sop_end_a",
        "  li a11, %d" % raw_b,
        "  wur a11, sop_ptr_b",
        "  l32i a12, a2, 20",
        "  slli a12, a12, 2",
        "  add a12, a11, a12",
        "  wur a12, sop_end_b",
        "  ld_a",
        "  ld_b",
        "  ldp_a",
        "  ldp_b",
        "sop_loop:",
    ]
    for _ in range(unroll):
        lines.append("  { store_sop_%s a8 ; beqz a8, chunk_done }" % short)
        if num_lsus == 2:
            lines.append("  { ld_ldp_shuffle }")
        else:
            lines.append("  { ld_shuffle_a }")
            lines.append("  { ld_b }")
    lines += [
        "  j sop_loop",
        "chunk_done:",
        "  addi a2, a2, 24",
        "  xori a6, a6, 1",
        "  addi a3, a3, -1",
        "  bnez a3, chunk_loop",
        "  st_flush",
        "  rur a2, sop_count",
        "  halt",
    ]
    return "\n".join(lines)


def run_compressed_streaming_set_operation(processor, which, set_a,
                                           set_b, chunk_elements=3072,
                                           overlap=True,
                                           validate_input=True):
    """Stream *compressed* sets through the prefetcher and operate.

    Requires a processor built with ``compression=True`` and
    ``prefetcher=True``.  Returns ``(result_list, RunResult)``; the
    run's DMA traffic (compressed bytes) is on
    ``processor.prefetcher.interconnect``.
    """
    from .compression import compress_d8
    if validate_input:
        check_set_input("set_a", set_a)
        check_set_input("set_b", set_b)
    if processor.prefetcher is None:
        raise ValueError("processor was built without a prefetcher")
    if "d8_compression" not in processor.extension_states:
        raise ValueError("processor was built without the compression "
                         "extension")
    processor.prefetcher.reset()
    max_raw = HALF_BUFFER_BYTES // 4
    chunks = split_at_thresholds(set_a, set_b, chunk_elements)

    comp_a = []
    comp_b = []
    descriptors = []
    chunk_bytes = []
    for (a_lo, a_hi), (b_lo, b_hi) in chunks:
        if (a_hi - a_lo) > max_raw or (b_hi - b_lo) > max_raw:
            raise ValueError("threshold chunk exceeds the raw buffer; "
                             "reduce chunk_elements")
        words_a = compress_d8(set_a[a_lo:a_hi], validate_input=False)
        words_b = compress_d8(set_b[b_lo:b_hi], validate_input=False)
        if 4 * len(words_a) > CHALF_BYTES \
                or 4 * len(words_b) > CHALF_BYTES:
            raise ValueError("compressed chunk exceeds the compressed "
                             "buffer (adversarial gap pattern); "
                             "reduce chunk_elements")
        descriptors += [MAIN_A + 4 * len(comp_a), 4 * len(words_a),
                        a_hi - a_lo,
                        MAIN_B + 4 * len(comp_b), 4 * len(words_b),
                        b_hi - b_lo]
        chunk_bytes.append((4 * len(words_a), 4 * len(words_b)))
        comp_a.extend(words_a)
        comp_b.extend(words_b)

    if comp_a:
        processor.write_words(MAIN_A, comp_a)
    if comp_b:
        processor.write_words(MAIN_B, comp_b)
    processor.write_words(CDESC_BASE, descriptors)

    num_lsus = processor.config.num_lsus
    _cbuf_a0, _cbuf_a1, _cbuf_b0, _cbuf_b1, raw_b = \
        compressed_streaming_buffers(num_lsus)
    result_base = raw_b + HALF_BUFFER_BYTES + BLOCK_BYTES

    key = "cstream-%s-%dlsu-%s" % (which, num_lsus,
                                   "ov" if overlap else "bl")
    windows = compressed_streaming_schedule(chunk_bytes, num_lsus)
    result_bytes = 4 * (len(set_a) + len(set_b) + 2 * LANES)
    _validate_schedule(
        processor, windows,
        reserved=[("descriptor table", CDESC_BASE, 4 * len(descriptors)),
                  ("result buffer", result_base, result_bytes)],
        overlap=overlap, key=key)
    from .kernels import load_cached_kernel
    load_cached_kernel(
        processor, key,
        lambda: compressed_streaming_kernel(
            which, num_lsus, overlap))
    result = processor.run(entry="main", regs={
        "a2": CDESC_BASE, "a3": len(chunks), "a4": result_base,
    })
    count = result.reg("a2")
    values = processor.read_words(result_base, count) if count else []
    return values, result
