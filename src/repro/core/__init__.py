"""The paper's core contribution: the database instruction-set extension.

Datapath states and semantics (Figures 8/9), the SOP comparison logic,
hardware sorting networks, the TIE operation definitions, and the
kernels that use them (Figures 11/12) — plus the scalar baselines and
the prefetcher-streaming variants.
"""

from .common import LANES, SENTINEL, check_set_input, check_sort_input
from .compression import (build_compression_extension, compress_d8,
                          compression_ratio, decompress_d8,
                          run_decompress)
from .datapath import FIFO_CAPACITY, MergeDatapath, SetDatapath
from .extension import DbExtension, build_db_extension
from .kernels import (merge_sort_kernel, run_merge_sort,
                      run_set_operation, set_operation_kernel)
from .scalar_kernels import (run_scalar_merge_sort,
                             run_scalar_set_operation)
from .sop import (comparator_matrix, sop_difference, sop_intersect,
                  sop_union, valid_count)
from .sortnet import merge8, network_depth, sort4
from .streaming import run_streaming_set_operation, split_at_thresholds

__all__ = [
    "LANES", "SENTINEL", "check_set_input", "check_sort_input",
    "build_compression_extension", "compress_d8", "compression_ratio",
    "decompress_d8", "run_decompress",
    "FIFO_CAPACITY", "MergeDatapath", "SetDatapath",
    "DbExtension", "build_db_extension",
    "merge_sort_kernel", "run_merge_sort", "run_set_operation",
    "set_operation_kernel",
    "run_scalar_merge_sort", "run_scalar_set_operation",
    "comparator_matrix", "sop_difference", "sop_intersect", "sop_union",
    "valid_count", "merge8", "network_depth", "sort4",
    "run_streaming_set_operation", "split_at_thresholds",
]
