"""Shared constants and helpers of the DB instruction-set extension."""

#: Lane width of the EIS datapath: the SOP instruction compares 4
#: elements of each set per operation (paper Section 4, Figure 8).
LANES = 4

#: Sentinel value used to pad exhausted streams and invalid lanes.
#: It is the maximum 32-bit value, so sentinels sort behind every real
#: element; application values must therefore be < 0xFFFFFFFF (the
#: usual reserved-key trick for hardware merge networks).
SENTINEL = 0xFFFFFFFF

M32 = 0xFFFFFFFF


def is_strictly_sorted(values):
    """True when *values* is strictly increasing (a valid sorted set)."""
    return all(a < b for a, b in zip(values, values[1:]))


def check_set_input(name, values):
    """Validate a sorted-set operand: strictly sorted 32-bit, no sentinel.

    The paper's set operations work on duplicate-free sorted RID sets
    obtained from secondary indexes (Section 2.3); this enforces that
    contract at the library boundary.
    """
    for value in values:
        if not 0 <= value < SENTINEL:
            raise ValueError(
                "%s: set elements must be 32-bit values below the "
                "sentinel 0xFFFFFFFF, got %r" % (name, value))
    if not is_strictly_sorted(values):
        raise ValueError("%s: input set must be strictly sorted" % name)


def check_sort_input(name, values):
    """Validate merge-sort input: 32-bit values below the sentinel."""
    for value in values:
        if not 0 <= value < SENTINEL:
            raise ValueError(
                "%s: sortable values must be 32-bit below 0xFFFFFFFF, "
                "got %r" % (name, value))
