"""Calibrated analytic cost model for the builtin kernels.

Serving query traffic through the cycle-accurate ISS means every
predicate node pays per-instruction simulation cost, so DB throughput
is bounded by simulator speed rather than by the modeled hardware.
This module removes the simulator from the serving path while keeping
the *cycle numbers* exact:

* results are computed with plain set algebra / sorting (NumPy when
  available, C-level ``set``/``sorted`` otherwise), and
* cycle counts are predicted from a per-(processor-config, kernel,
  unroll) linear model over *event counts* — how often each control
  path of the kernel executes for a given input.

Why this can be exact: on every catalog configuration the per-access
memory cost is a constant (local data memories have zero wait states,
the 108Mini system memory a fixed three, and no configuration has a
data cache), and every interlock/branch penalty is determined by the
instruction path alone.  Total cycles are therefore *exactly linear*
in the per-path event counts, which we can compute directly from the
operand values:

* scalar set kernels: merged-order event classification (``adva`` /
  ``advb`` / ``both`` / exit variant / drain lengths),
* scalar merge sort: per-pair take/drain interleave counts,
* EIS set kernels: a lean per-block walk of the set datapath that
  counts fused-bundle iterations (not per-instruction simulation),
* EIS merge sort: a structural walk over the pass/pair recurrence
  (its iteration counts are data-independent).

The coefficients are *calibrated*, not hand-derived: a one-time
micro-probe run executes each kernel on the ISS over a corpus of
inputs, an exact rational solver fits the event-count model, and the
fit is differentially validated against held-out probes.  A model that
does not reproduce the ISS bit-for-bit is discarded; the affected
(config, kernel) pair then permanently falls back to the ISS, bumping
the ``costmodel.fallback`` counter — the same degradation pattern as
the superblock fast path (``cpu.run.fallback``).

``REPRO_NO_COSTMODEL=1`` disables the model globally;
``REPRO_COSTMODEL_VERIFY=1`` shadows every prediction with a real ISS
run and falls back on any mismatch (the differential test suite's
belt-and-braces mode).
"""

import bisect
import math
import os
from fractions import Fraction

from .common import LANES
from .kernels import DEFAULT_UNROLL, run_merge_sort, run_set_operation
from .scalar_kernels import (run_scalar_merge_sort,
                             run_scalar_set_operation)

try:
    import numpy as _np
except ImportError:  # pragma: no cover - CI images install numpy
    _np = None

#: Module-level calibration cache, shared across CostModel instances
#: the way compiled kernels are shared across processors:
#: (config signature, kernel kind) -> coefficient list or None (failed).
_CALIBRATIONS = {}


def _operand_list(values):
    """Normalize a kernel operand to a plain list of Python ints.

    The columnar storage layer produces ndarray RID/value vectors;
    everything below the public CostModel API (feature extraction,
    kernel walks, calibration probes) assumes list semantics.
    """
    if _np is not None and isinstance(values, _np.ndarray):
        return values.tolist()
    return values


def clear_calibration_cache():
    _CALIBRATIONS.clear()


def calibration_cache_size():
    return len(_CALIBRATIONS)


# ---------------------------------------------------------------------------
# configuration signature
# ---------------------------------------------------------------------------

def config_signature(processor):
    """Hashable timing identity of a processor, or None if unmodelable.

    Captures every parameter the cycle count of a kernel can depend
    on.  Configurations with caches are refused outright: cache hits
    make the per-access cost history-dependent, which breaks the
    linear event-count model (such configs simply keep using the ISS).
    """
    config = processor.config
    if config.dcache is not None or config.icache is not None:
        return None
    pipe = config.pipeline
    return (
        config.name, config.num_lsus, config.lsu_port_bits,
        config.dmem0_kb, config.dmem1_kb, config.sysmem_wait_states,
        pipe.branch_taken_penalty, pipe.branch_nottaken_penalty,
        pipe.jump_penalty, pipe.call_penalty, pipe.indirect_penalty,
        pipe.load_use_delay, pipe.mul_use_delay, pipe.div_cycles,
        pipe.ifetch_stall_per_redirect,
    )


def _eis_extension(processor):
    for extension in processor.extensions:
        if getattr(extension, "name", "") == "db_eis":
            return extension
    return None


# ---------------------------------------------------------------------------
# exact rational solver
# ---------------------------------------------------------------------------

def solve_exact(rows, targets):
    """Any exact solution of ``rows @ c == targets`` or None.

    Gauss-Jordan over ``Fraction`` so there is no floating-point
    round-off: either the probe system is consistent (the event-count
    model holds) and we return one exact solution (free variables
    pinned to zero), or it is not and calibration fails.
    """
    if not rows:
        return None
    columns = len(rows[0])
    aug = [[Fraction(value) for value in row] + [Fraction(target)]
           for row, target in zip(rows, targets)]
    pivot_columns = []
    rank = 0
    for column in range(columns):
        pivot = next((i for i in range(rank, len(aug))
                      if aug[i][column] != 0), None)
        if pivot is None:
            continue
        aug[rank], aug[pivot] = aug[pivot], aug[rank]
        inverse = Fraction(1) / aug[rank][column]
        aug[rank] = [value * inverse for value in aug[rank]]
        row_r = aug[rank]
        for i in range(len(aug)):
            if i != rank and aug[i][column]:
                factor = aug[i][column]
                aug[i] = [value - factor * pivot_value
                          for value, pivot_value in zip(aug[i], row_r)]
        pivot_columns.append(column)
        rank += 1
        if rank == len(aug):
            break
    for i in range(rank, len(aug)):
        if aug[i][columns] != 0:
            return None  # inconsistent: model does not fit the probes
    coefficients = [Fraction(0)] * columns
    for row_index, column in enumerate(pivot_columns):
        coefficients[column] = aug[row_index][columns]
    return coefficients


def _scale_coefficients(coefficients):
    """``(scaled integer coefficients, common denominator)``.

    Predictions happen per kernel launch, so the hot path uses plain
    integer arithmetic; the common denominator keeps it exact.
    """
    scale = 1
    for coefficient in coefficients:
        denominator = coefficient.denominator
        scale = scale * denominator // math.gcd(scale, denominator)
    return [int(c * scale) for c in coefficients], scale


def _predict(calibration, features):
    coefficients, scale = calibration
    total = 0
    for coefficient, feature in zip(coefficients, features):
        if feature:
            total += coefficient * feature
    if total < 0 or total % scale:
        return None  # feature vector outside the calibrated span
    return total // scale


# ---------------------------------------------------------------------------
# result computation (vectorized set algebra)
# ---------------------------------------------------------------------------

#: Below this operand size the numpy call overhead beats C-level sets.
_NUMPY_CUTOVER = 64


def set_result(which, set_a, set_b):
    """The kernel's result list, computed without the processor."""
    if _np is not None and len(set_a) + len(set_b) >= _NUMPY_CUTOVER:
        a = _np.asarray(set_a, dtype=_np.int64)
        b = _np.asarray(set_b, dtype=_np.int64)
        if which == "intersection":
            out = _np.intersect1d(a, b, assume_unique=True)
        elif which == "union":
            out = _np.union1d(a, b)
        else:
            out = _np.setdiff1d(a, b, assume_unique=True)
        return out.tolist()
    sa, sb = set(set_a), set(set_b)
    if which == "intersection":
        return sorted(sa & sb)
    if which == "union":
        return sorted(sa | sb)
    return sorted(sa - sb)


def sort_result(values):
    if _np is not None and len(values) >= _NUMPY_CUTOVER:
        return _np.sort(_np.asarray(values, dtype=_np.int64)).tolist()
    return sorted(values)


# ---------------------------------------------------------------------------
# feature extraction: scalar set kernels
# ---------------------------------------------------------------------------

# Feature layout (per operation; drain features appended as noted):
#   [both_nonempty, a_empty, b_empty_only,
#    n_adva, n_advb, n_both,
#    term_adva, term_advb, term_both_a, term_both_b,
#    n_drain_a (union/difference), n_drain_b (union)]

def scalar_set_features(which, set_a, set_b):
    drains = {"intersection": 0, "difference": 1, "union": 2}[which]
    features = [0] * (10 + drains)
    if not set_a:
        features[1] = 1
        if drains == 2:
            features[11] = len(set_b)
        return features
    if not set_b:
        features[2] = 1
        if drains >= 1:
            features[10] = len(set_a)
        return features
    features[0] = 1
    last_a, last_b = set_a[-1], set_b[-1]
    ceiling = last_a if last_a < last_b else last_b
    in_a = ceiling == last_a or _contains(set_a, ceiling)
    in_b = ceiling == last_b or _contains(set_b, ceiling)
    count_a = bisect.bisect_right(set_a, ceiling)
    count_b = bisect.bisect_right(set_b, ceiling)
    n_both = _common_below(set_a, count_a, set_b, count_b)
    n_adva = count_a - n_both
    n_advb = count_b - n_both
    if in_a and in_b:
        n_both -= 1
        features[8 if ceiling == last_a else 9] = 1
    elif in_a:  # ceiling == last_a: A exhausts via adva
        n_adva -= 1
        features[6] = 1
    else:
        n_advb -= 1
        features[7] = 1
    features[3] = n_adva
    features[4] = n_advb
    features[5] = n_both
    if drains >= 1:
        features[10] = len(set_a) - count_a
    if drains == 2:
        features[11] = len(set_b) - count_b
    return features


def _contains(sorted_values, value):
    index = bisect.bisect_left(sorted_values, value)
    return index < len(sorted_values) and sorted_values[index] == value


def _common_below(set_a, count_a, set_b, count_b):
    """Distinct values present in both strictly-sorted prefixes."""
    if _np is not None and count_a + count_b >= _NUMPY_CUTOVER:
        return int(_np.intersect1d(
            _np.asarray(set_a[:count_a], dtype=_np.int64),
            _np.asarray(set_b[:count_b], dtype=_np.int64),
            assume_unique=True).size)
    return len(set(set_a[:count_a]) & set(set_b[:count_b]))


# ---------------------------------------------------------------------------
# feature extraction: scalar merge sort
# ---------------------------------------------------------------------------

# Feature layout:
#   [1, n_pass, n_pair, n_take_a, n_take_b,
#    n_pair_drain_a, n_pair_drain_b, n_drain_a, n_drain_b]

def scalar_sort_features(values):
    n = len(values)
    features = [1, 0, 0, 0, 0, 0, 0, 0, 0]
    if n <= 1:
        return features
    current = list(values)
    run = 1
    while run < n:
        features[1] += 1
        merged = []
        position = 0
        while position < n:
            end_a = min(position + run, n)
            end_b = min(position + 2 * run, n)
            run_a = current[position:end_a]
            run_b = current[end_a:end_b]
            features[2] += 1
            if not run_b:
                features[5] += 1
                features[7] += len(run_a)
            else:
                # Elements of B emitted before A's last element (ties
                # emit A first: the kernel's bgtu takes B only on >).
                before_a = bisect.bisect_left(run_b, run_a[-1])
                before_b = bisect.bisect_right(run_a, run_b[-1])
                if len(run_a) + before_a < len(run_b) + before_b:
                    # A exhausts first; the rest of B drains.
                    features[3] += len(run_a)
                    features[4] += before_a
                    features[6] += 1
                    features[8] += len(run_b) - before_a
                else:
                    features[3] += before_b
                    features[4] += len(run_b)
                    features[5] += 1
                    features[7] += len(run_a) - before_b
            merged.extend(sorted(run_a + run_b))
            position = end_b
        current = merged
        run *= 2
    return features


# ---------------------------------------------------------------------------
# feature extraction: EIS set kernels (lean datapath walk)
# ---------------------------------------------------------------------------

class _WalkError(Exception):
    """The lean walk hit a state it cannot model; fall back to ISS."""


_SET_WALK_OPS = {"intersection": 0, "union": 1, "difference": 2}


def eis_set_features(which, set_a, set_b, partial_load,
                     unroll=DEFAULT_UNROLL):
    """[1, k, wraps, block_loads, block_stores, flush_lanes, result].

    ``k`` is the number of ``store_sop`` bundles the kernel executes
    (the single data-dependent quantity of the Figure 11 loop), and
    ``wraps`` the resulting back-jump count of the ``unroll``-deep
    loop body.  The trailing features cover the 128-bit loads/stores
    and the sub-block flush tail so configurations with non-zero
    memory wait states stay in-model.

    The walk mirrors :class:`repro.core.datapath.SetDatapath` op for
    op (ST, SOP, ST_S, LDP, LD in the fused-bundle order — identical
    on 1- and 2-LSU cores), but exploits that the comparison window
    and the Load stage always hold *contiguous slices* of the sorted,
    duplicate-free operands: the entire datapath state reduces to a
    handful of integers per side (window start/valid, staged load
    count) plus FIFO/store occupancy, and each SOP step to a few
    comparisons against the threshold ``min(max A lane, max B lane)``
    (:mod:`repro.core.sop` semantics) — no window vectors, no sentinel
    padding.
    """
    op = _SET_WALK_OPS[which]
    len_a = len(set_a)
    len_b = len(set_b)
    aws = bws = 0  # window start: element index into the operand
    av = bv = 0  # valid (unconsumed) window lanes
    la = lb = 0  # elements staged in the Load state
    result_cnt = fifo_cnt = store_cnt = 0
    stored = 0
    block_loads = block_stores = 0
    # kernel prologue: sop_init, ld_a, ld_b, ldp_a, ldp_b
    if len_a:
        la = LANES if len_a >= LANES else len_a
        block_loads += 1
        av, la = la, 0
    if len_b:
        lb = LANES if len_b >= LANES else len_b
        block_loads += 1
        bv, lb = lb, 0
    iterations = 0
    limit = 4 * (len_a + len_b) + 64
    while True:
        # ST: retire a completed 128-bit store block
        if store_cnt == LANES:
            stored += LANES
            store_cnt = 0
            block_stores += 1
        # SOP: stall on FIFO pressure or an empty-but-pending window
        if result_cnt:
            raise _WalkError("SOP before ST_S drained results")
        if fifo_cnt <= 3 * LANES \
                and not (av == 0 and aws < len_a) \
                and not (bv == 0 and bws < len_b) \
                and (av or bv):
            if av and bv:
                max_a = set_a[aws + av - 1]
                max_b = set_b[bws + bv - 1]
                if max_a <= max_b:
                    threshold = max_a
                    ca = av
                    cb = 0
                    while cb < bv and set_b[bws + cb] <= threshold:
                        cb += 1
                else:
                    threshold = max_b
                    cb = bv
                    ca = 0
                    while ca < av and set_a[aws + ca] <= threshold:
                        ca += 1
            elif av:  # B exhausted: drain A
                ca, cb = av, 0
            else:  # A exhausted: drain B
                ca, cb = 0, bv
            overlap = 0
            if ca and cb:
                i, j = aws, bws
                end_a, end_b = aws + ca, bws + cb
                while i < end_a and j < end_b:
                    x = set_a[i]
                    y = set_b[j]
                    if x < y:
                        i += 1
                    elif y < x:
                        j += 1
                    else:
                        overlap += 1
                        i += 1
                        j += 1
            if op == 0:
                result_cnt = overlap
            elif op == 2:
                result_cnt = ca - overlap
            else:
                result_cnt = ca + cb - overlap
                if result_cnt > LANES:
                    # Result states are 4 wide: cut consumption back
                    # to the fourth distinct merged value (value-
                    # boundary cut keeps the both-copies invariant).
                    i, j = aws, bws
                    end_a, end_b = aws + ca, bws + cb
                    cut = 0
                    for _ in range(LANES):
                        x = set_a[i] if i < end_a else None
                        y = set_b[j] if j < end_b else None
                        if y is None or (x is not None and x < y):
                            cut = x
                            i += 1
                        elif x is None or y < x:
                            cut = y
                            j += 1
                        else:
                            cut = x
                            i += 1
                            j += 1
                    ca = 0
                    while ca < av and set_a[aws + ca] <= cut:
                        ca += 1
                    cb = 0
                    while cb < bv and set_b[bws + cb] <= cut:
                        cb += 1
                    result_cnt = LANES
            aws += ca
            av -= ca
            bws += cb
            bv -= cb
        iterations += 1
        if not (av or bv or result_cnt or store_cnt
                or fifo_cnt >= LANES
                or aws + av < len_a or bws + bv < len_b):
            break
        if iterations > limit:
            raise _WalkError("set walk failed to converge")
        # ST_S: results -> FIFO, FIFO -> store stage when it is free
        if result_cnt:
            fifo_cnt += result_cnt
            result_cnt = 0
        if store_cnt == 0 and fifo_cnt >= LANES:
            fifo_cnt -= LANES
            store_cnt = LANES
        # LDP: refill windows from the Load state (all consumed lanes
        # with partial loading, whole drained windows without)
        want = LANES - av if partial_load \
            else (LANES if av == 0 else 0)
        if want and la:
            take = want if want < la else la
            av += take
            la -= take
        want = LANES - bv if partial_load \
            else (LANES if bv == 0 else 0)
        if want and lb:
            take = want if want < lb else lb
            bv += take
            lb -= take
        # LD: stage the next 128-bit block once the Load state drains
        if not la:
            staged = aws + av
            if staged < len_a:
                remaining = len_a - staged
                la = LANES if remaining >= LANES else remaining
                block_loads += 1
        if not lb:
            staged = bws + bv
            if staged < len_b:
                remaining = len_b - staged
                lb = LANES if remaining >= LANES else remaining
                block_loads += 1
    flush_lanes = store_cnt + fifo_cnt
    total = stored + flush_lanes
    return [1, iterations, (iterations - 1) // unroll,
            block_loads, block_stores, flush_lanes], total


# ---------------------------------------------------------------------------
# feature extraction: EIS merge sort (structural walk)
# ---------------------------------------------------------------------------

def eis_sort_features(length, presort_unroll=16, merge_unroll=16):
    """[1, presort_iters, presort_wraps, passes, pairs,
    sum_targets, merge_wraps].

    The EIS merge pipeline refills the consumed stage in the same
    MLDSEL and fires the merge network every iteration, so each pair
    of runs takes exactly ``target + 2`` fused-bundle iterations where
    ``target`` is the pair's 128-bit block count — the cycle count is
    a pure function of the (padded) input length.
    """
    padded = length + (-length) % LANES
    blocks = padded // LANES
    presort = max(blocks, 1)
    features = [1, presort, (presort - 1) // presort_unroll, 0, 0, 0, 0]
    run = LANES
    while run < padded:
        features[3] += 1
        position = 0
        while position < padded:
            end = min(position + 2 * run, padded)
            target = (end - position) // LANES
            iterations = target + 2
            features[4] += 1
            features[5] += target
            features[6] += (iterations - 1) // merge_unroll
            position = end
        run *= 2
    return features


# ---------------------------------------------------------------------------
# probe corpora
# ---------------------------------------------------------------------------

def _sorted_sample(rng, size, universe):
    if size <= 0:
        return []
    return sorted(rng.sample(range(universe), size))


def _set_probe_inputs():
    """Deterministic calibration + validation inputs for set kernels."""
    import random
    rng = random.Random(0x5E7CA1)
    probes = [
        ([], []), ([], [5]), ([7], []), ([3], [3]), ([3], [9]),
        ([9], [3]), ([1, 2, 3, 4], [1, 2, 3, 4]),
        (list(range(0, 40, 2)), list(range(1, 41, 2))),
        (list(range(10)), list(range(5, 15))),
        (list(range(30)), [29]), ([0], list(range(30))),
        (list(range(0, 64, 3)), list(range(0, 64, 4))),
        (list(range(8)), list(range(8, 16))),
        (list(range(8, 16)), list(range(8))),
        (list(range(0, 200, 2)), list(range(1, 200, 2))),
    ]
    for _ in range(12):
        size_a = rng.randrange(0, 60)
        size_b = rng.randrange(0, 60)
        probes.append((_sorted_sample(rng, size_a, 160),
                       _sorted_sample(rng, size_b, 160)))
    validation = [
        (list(range(1, 26, 2)), list(range(0, 26, 3))),
        ([2], []), ([], [2, 4, 6]), ([5, 6, 7], [5, 6, 7, 8]),
    ]
    for _ in range(8):
        size_a = rng.randrange(0, 80)
        size_b = rng.randrange(0, 80)
        validation.append((_sorted_sample(rng, size_a, 220),
                           _sorted_sample(rng, size_b, 220)))
    return probes, validation


def _sort_probe_inputs():
    import random
    rng = random.Random(0xB17_50F7)
    sizes = [1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 17, 25, 31, 32, 40,
             52, 64, 68, 96, 128, 140]
    probes = [([rng.randrange(0, 4000) for _ in range(size)],)
              for size in sizes]
    probes.append(([7],))
    probes.append(([9, 9, 9, 9, 9, 1],))
    probes.append((list(range(48)),))
    probes.append((list(range(48, 0, -1)),))
    validation = [([rng.randrange(0, 4000) for _ in range(size)],)
                  for size in (9, 11, 19, 27, 37, 45, 70, 100, 130)]
    return probes, validation


_SET_PROBES = None
_SORT_PROBES = None


def _set_probes():
    global _SET_PROBES
    if _SET_PROBES is None:
        _SET_PROBES = _set_probe_inputs()
    return _SET_PROBES


def _sort_probes():
    global _SORT_PROBES
    if _SORT_PROBES is None:
        _SORT_PROBES = _sort_probe_inputs()
    return _SORT_PROBES


# ---------------------------------------------------------------------------
# the cost model
# ---------------------------------------------------------------------------

class CostModel:
    """Exact-cycle kernel execution without instruction simulation.

    One instance can serve any number of processors; calibrations are
    cached per configuration signature (module-level, like the kernel
    compile cache).  Every public entry point returns
    ``(values, cycles, source)`` where *source* is ``"costmodel"`` or
    ``"iss"`` (the fallback), and the values/cycles are bit-identical
    between the two sources by construction.
    """

    def __init__(self, enabled=None, verify=None):
        if enabled is None:
            enabled = os.environ.get("REPRO_NO_COSTMODEL", "") != "1"
        if verify is None:
            verify = os.environ.get("REPRO_COSTMODEL_VERIFY", "") == "1"
        self.enabled = enabled
        self.verify = verify
        self.counters = {"hits": 0, "fallbacks": 0, "calibrations": 0,
                         "calibration_failures": 0, "mismatches": 0}

    # -- public API ----------------------------------------------------------

    def set_operation(self, processor, which, set_a, set_b,
                      unroll=DEFAULT_UNROLL):
        """Model one set kernel; ``(values, cycles, source)``.

        Operands may be plain lists or NumPy arrays (the columnar
        storage layer hands over ndarray scan results directly); the
        kernel walk, features and calibration always see lists.
        """
        set_a = _operand_list(set_a)
        set_b = _operand_list(set_b)
        extension = _eis_extension(processor)
        if extension is not None:
            partial = bool(extension.setdp.partial_load)
            kind = ("eis_set", which, partial, unroll)

            def runner(proc, a, b):
                return run_set_operation(proc, which, a, b,
                                         unroll=unroll,
                                         validate_input=False)

            def features(a, b):
                computed, total = eis_set_features(which, a, b, partial,
                                                   unroll)
                if total != len(set_result(which, a, b)):
                    raise _WalkError("walk/result count mismatch")
                return computed
        else:
            kind = ("scalar_set", which)

            def runner(proc, a, b):
                return run_scalar_set_operation(proc, which, a, b,
                                                validate_input=False)

            def features(a, b):
                return scalar_set_features(which, a, b)

        def result(a, b):
            return set_result(which, a, b)

        return self._execute(processor, kind, runner, features, result,
                             _set_probes(), (set_a, set_b))

    def merge_sort(self, processor, values):
        """Model one sort kernel; ``(values, cycles, source)``.

        *values* may be a list or a NumPy array (see
        :meth:`set_operation`).
        """
        values = _operand_list(values)
        extension = _eis_extension(processor)
        if extension is not None:
            kind = ("eis_sort",)

            def runner(proc, data):
                return run_merge_sort(proc, data, validate_input=False)

            def features(data):
                return eis_sort_features(len(data))
        else:
            if not values:
                # mirror run_scalar_merge_sort's degenerate empty run
                return [], 0, "costmodel"
            kind = ("scalar_sort",)

            def runner(proc, data):
                return run_scalar_merge_sort(proc, data,
                                             validate_input=False)

            def features(data):
                return scalar_sort_features(data)

        probes, validation = _sort_probes()
        if extension is None:
            probes = [p for p in probes if p[0]]
            validation = [p for p in validation if p[0]]
        return self._execute(processor, kind, runner, features,
                             sort_result, (probes, validation),
                             (values,))

    def stats(self):
        """Counter snapshot (``costmodel.*`` in engine telemetry)."""
        return dict(self.counters)

    # -- internals -----------------------------------------------------------

    def _execute(self, processor, kind, runner, feature_fn, result_fn,
                 probe_sets, args):
        coefficients = None
        if self.enabled and getattr(processor, "_fault_hook",
                                    None) is None:
            coefficients = self._calibration(processor, kind, runner,
                                             feature_fn, probe_sets)
        if coefficients is None:
            values, run = runner(processor, *args)
            self.counters["fallbacks"] += 1
            return values, run.cycles, "iss"
        try:
            features = feature_fn(*args)
        except _WalkError:
            features = None
        cycles = _predict(coefficients, features) \
            if features is not None else None
        if cycles is None:
            values, run = runner(processor, *args)
            self.counters["fallbacks"] += 1
            return values, run.cycles, "iss"
        values = result_fn(*args)
        if self.verify:
            iss_values, iss_run = runner(processor, *args)
            if iss_values != values or iss_run.cycles != cycles:
                self.counters["mismatches"] += 1
                self.counters["fallbacks"] += 1
                return iss_values, iss_run.cycles, "iss"
        self.counters["hits"] += 1
        return values, cycles, "costmodel"

    def _calibration(self, processor, kind, runner, feature_fn,
                     probe_sets):
        signature = config_signature(processor)
        if signature is None:
            return None
        key = (signature, kind)
        if key in _CALIBRATIONS:
            return _CALIBRATIONS[key]
        coefficients = self._calibrate(processor, runner, feature_fn,
                                       probe_sets)
        _CALIBRATIONS[key] = coefficients
        if coefficients is None:
            self.counters["calibration_failures"] += 1
        else:
            self.counters["calibrations"] += 1
        return coefficients

    def _calibrate(self, processor, runner, feature_fn, probe_sets):
        """Fit and differentially validate one (config, kernel) model."""
        probes, validation = probe_sets
        rows = []
        cycles = []
        try:
            for args in probes:
                rows.append(feature_fn(*args))
                _values, run = runner(processor, *args)
                cycles.append(run.cycles)
            solution = solve_exact(rows, cycles)
            if solution is None:
                return None
            coefficients = _scale_coefficients(solution)
            for args in validation:
                predicted = _predict(coefficients, feature_fn(*args))
                _values, run = runner(processor, *args)
                if predicted != run.cycles:
                    return None
        except Exception:
            # any probe failure (walk divergence, simulation error,
            # unexpected input shape) means "cannot model": fall back
            return None
        return coefficients


_DEFAULT_MODEL = None


def default_cost_model():
    """Process-wide shared CostModel (calibrations amortize across
    executors, engines and CLI invocations)."""
    global _DEFAULT_MODEL
    if _DEFAULT_MODEL is None:
        _DEFAULT_MODEL = CostModel()
    return _DEFAULT_MODEL
