"""EIS kernels: the assembly programs that use the new instructions.

These are the reproduction of the paper's Figure 11 (sorted-set core
loop) and Figure 12 (merge-sort core loop), including the loop
unrolling discussed in Section 4 ("if 32 loops are unrolled the average
number of cycles per loop is reduced to 2.03").

Each generator emits assembly text for a given processor shape; the
``run_*`` helpers stage the workload into the local data memories,
execute the kernel and read back the result.
"""

import hashlib

from ..cpu.memory import DMEM1_BASE
from .common import LANES, SENTINEL, check_set_input, check_sort_input

#: Default unroll factor of the set-operation core loop (paper: 32).
DEFAULT_UNROLL = 32

_SET_OPS = {"intersection": "int", "union": "uni", "difference": "dif"}

BLOCK_BYTES = 4 * LANES


def _pad_words(values):
    """Round a buffer up to a whole number of 128-bit blocks."""
    pad = (-len(values)) % LANES
    return list(values) + [SENTINEL] * pad


# ---------------------------------------------------------------------------
# kernel generators
# ---------------------------------------------------------------------------

def set_operation_kernel(which, num_lsus=2, unroll=DEFAULT_UNROLL):
    """Assembly of the sorted-set kernel (Figure 11).

    Register protocol: ``a2``/``a3`` = set A begin/end byte addresses,
    ``a4``/``a5`` = set B begin/end, ``a6`` = result base.  On halt,
    ``a2`` holds the number of result elements.
    """
    if which not in _SET_OPS:
        raise ValueError("unknown set operation %r" % which)
    short = _SET_OPS[which]
    lines = [
        "; %s kernel, %d LSU(s), unroll x%d" % (which, num_lsus, unroll),
        "main:",
        "  wur a2, sop_ptr_a",
        "  wur a3, sop_end_a",
        "  wur a4, sop_ptr_b",
        "  wur a5, sop_end_b",
        "  wur a6, sop_ptr_c",
        "  sop_init",
        "  ld_a",
        "  ld_b",
        "  ldp_a",
        "  ldp_b",
        "loop:",
    ]
    for _ in range(unroll):
        lines.append("  { store_sop_%s a8 ; beqz a8, drain }" % short)
        if num_lsus == 2:
            lines.append("  { ld_ldp_shuffle }")
        else:
            lines.append("  { ld_shuffle_a }")
            lines.append("  { ld_b }")
    lines += [
        "  j loop",
        "drain:",
        "  st_flush",
        "  rur a2, sop_count",
        "  halt",
    ]
    return "\n".join(lines)


def merge_sort_kernel(presort_unroll=16, merge_unroll=16):
    """Assembly of the full merge-sort (presort pass + merge passes).

    Register protocol: ``a2`` = source buffer, ``a3`` = data bytes
    (multiple of 16), ``a4`` = ping-pong buffer.  On halt ``a2`` holds
    the buffer containing the sorted data.
    """
    lines = [
        "; merge-sort kernel (Figure 12 core loop)",
        "main:",
        "  ; ---- presort: build sorted runs of four (LDSORT/STSORT)",
        "  wur a2, mrg_ptr_a",
        "  add a5, a2, a3",
        "  wur a5, mrg_end_a",
        "  wur a4, mrg_ptr_c",
        "  movi a8, 0           ; run B is unused during the presort",
        "  wur a8, mrg_ptr_b",
        "  wur a8, mrg_end_b",
        "  minit",
        "presort:",
    ]
    for _ in range(presort_unroll):
        lines.append("  { ldsort }")
        lines.append("  { stsort a8 ; beqz a8, presorted }")
    lines += [
        "  j presort",
        "presorted:",
        "  ; ---- swap buffers; presorted data is now the source",
        "  mv a12, a2",
        "  mv a2, a4",
        "  mv a4, a12",
        "  movi a5, 16          ; run length in bytes (4 elements)",
        "pass_loop:",
        "  bgeu a5, a3, done    ; run covers the array -> sorted",
        "  mv a6, a2            ; pair cursor in source",
        "  mv a7, a4            ; output cursor",
        "pair_loop:",
        "  add a8, a6, a5       ; end of run A / start of run B",
        "  add a9, a8, a5       ; nominal end of run B",
        "  add a10, a2, a3      ; end of source data",
        "  minu a8, a8, a10",
        "  minu a9, a9, a10",
        "  wur a6, mrg_ptr_a",
        "  wur a8, mrg_end_a",
        "  wur a8, mrg_ptr_b",
        "  wur a9, mrg_end_b",
        "  wur a7, mrg_ptr_c",
        "  minit",
        "  { mld }",
        "  { mld }",
        "  { mldsel }",
        "  { mldsel }",
        "merge_loop:",
    ]
    for _ in range(merge_unroll):
        lines.append("  { merge_st a11 ; beqz a11, pair_done }")
        lines.append("  { mldsel }")
    lines += [
        "  j merge_loop",
        "pair_done:",
        "  sub a12, a9, a6      ; bytes merged in this pair",
        "  add a7, a7, a12",
        "  mv a6, a9",
        "  add a13, a2, a3",
        "  bltu a6, a13, pair_loop",
        "  ; ---- next pass: swap buffers, double the run length",
        "  mv a12, a2",
        "  mv a2, a4",
        "  mv a4, a12",
        "  slli a5, a5, 1",
        "  j pass_loop",
        "done:",
        "  halt",
    ]
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# buffer placement
# ---------------------------------------------------------------------------

def set_operation_layout(processor, len_a, len_b):
    """Byte addresses for A, B and the result on this processor.

    With two LSUs each set lives in its own local data memory (paper
    Figure 8); the result stream shares LSU1's memory (Figure 9).
    With one LSU everything lives in dmem0.
    """
    words_a = -(-len_a // LANES) * LANES
    words_b = -(-len_b // LANES) * LANES
    base_a = 0x0
    if processor.config.num_lsus == 2:
        base_b = DMEM1_BASE
        base_c = DMEM1_BASE + words_b * 4 + BLOCK_BYTES
    else:
        base_b = words_a * 4 + BLOCK_BYTES
        base_c = base_b + words_b * 4 + BLOCK_BYTES
    return base_a, base_b, base_c


def sort_layout(processor, n_padded):
    """Source and ping-pong buffer addresses for merge-sort."""
    base_src = 0x0
    if processor.config.num_lsus == 2:
        base_dst = DMEM1_BASE
    else:
        base_dst = n_padded * 4 + BLOCK_BYTES
    return base_src, base_dst


def builtin_kernel_sources(processor):
    """``(name, source)`` of every builtin kernel *processor* can run.

    Used by ``repro lint`` and the CI smoke check to verify that all
    shipped kernels are free of static-analysis errors on every
    configuration.
    """
    from .scalar_kernels import (difference_scalar_kernel,
                                 intersection_scalar_kernel,
                                 merge_sort_scalar_kernel,
                                 union_scalar_kernel)
    sources = [
        ("intersection.scalar", intersection_scalar_kernel()),
        ("union.scalar", union_scalar_kernel()),
        ("difference.scalar", difference_scalar_kernel()),
        ("sort.scalar", merge_sort_scalar_kernel()),
    ]
    if processor.flix_formats:
        num_lsus = processor.config.num_lsus
        for which in _SET_OPS:
            sources.append(("%s.eis" % which,
                            set_operation_kernel(which, num_lsus=num_lsus)))
        sources.append(("sort.eis", merge_sort_kernel()))
    if "dcmp_src" in processor.symbols:
        from .compression import decompress_kernel
        sources.append(("decompress.d8", decompress_kernel()))
    return sources


# ---------------------------------------------------------------------------
# compiled-program caching
# ---------------------------------------------------------------------------

class PortableProgram:
    """Processor-independent form of an assembled kernel program.

    Assembled :class:`~repro.isa.assembler.Program` objects are bound
    to the processor that assembled them: TIE operation executors close
    over their extension instance (per-core datapath state), so sharing
    a Program across cores would corrupt state.  This class stores only
    names and operand tuples; :meth:`bind` rebuilds a Program against a
    target processor's own ISA and FLIX formats, skipping the parse.
    """

    __slots__ = ("entries", "labels", "source_name", "fingerprint")

    def __init__(self, program):
        from ..isa.assembler import Bundle, BundleTail
        entries = []
        for item in program.items:
            if isinstance(item, BundleTail):
                continue  # re-created from the bundle size on bind
            if isinstance(item, Bundle):
                entries.append(("b",
                                tuple((slot.spec.name, tuple(slot.operands))
                                      for slot in item.slots),
                                item.flix_format.name, item.line_number))
            else:
                entries.append(("i", item.spec.name, tuple(item.operands),
                                item.line_number))
        self.entries = tuple(entries)
        self.labels = dict(program.labels)
        self.source_name = program.source_name
        #: Self-integrity digest; re-checked on every cache hit so a
        #: corrupted or mutated cache entry is rebuilt, never executed.
        self.fingerprint = self.compute_fingerprint()

    def compute_fingerprint(self):
        digest = hashlib.sha256()
        digest.update(repr(self.entries).encode("utf-8"))
        digest.update(repr(sorted(self.labels.items())).encode("utf-8"))
        return digest.hexdigest()

    def validate(self):
        """Structural sanity; returns False instead of raising.

        Checked on every cache hit (see :func:`load_cached_kernel`):
        entry shapes, and label targets within the program's word range
        (each bundle entry occupies one extra tail word on bind).
        """
        try:
            if self.fingerprint != self.compute_fingerprint():
                return False
            words = 0
            for entry in self.entries:
                if entry[0] == "i":
                    _tag, name, operands, _line = entry
                    if not isinstance(name, str) \
                            or not isinstance(operands, tuple):
                        return False
                    words += 1
                elif entry[0] == "b":
                    _tag, slots, format_name, _line = entry
                    if not isinstance(format_name, str):
                        return False
                    for slot in slots:
                        slot_name, slot_operands = slot
                        if not isinstance(slot_name, str) \
                                or not isinstance(slot_operands, tuple):
                            return False
                    words += 2  # bundle + tail
                else:
                    return False
            for target in self.labels.values():
                if not 0 <= target <= words:
                    return False
        except Exception:
            return False
        return True

    def bind(self, processor):
        """Rebuild the program against *processor*'s ISA instances."""
        from ..isa.assembler import BUNDLE_TAIL, AsmItem, Bundle, Program
        isa = processor.isa
        formats = {fmt.name: fmt for fmt in processor.flix_formats}
        items = []
        for entry in self.entries:
            if entry[0] == "i":
                _tag, name, operands, line = entry
                items.append(AsmItem(isa.lookup(name), operands, line))
            else:
                _tag, slots, format_name, line = entry
                bundle_slots = [AsmItem(isa.lookup(name), operands, line)
                                for name, operands in slots]
                items.append(Bundle(bundle_slots, formats[format_name],
                                    line))
                items.append(BUNDLE_TAIL)
        return Program(items, dict(self.labels), self.source_name)


#: (config name, extension names, source sha256) -> PortableProgram.
_PORTABLE_CACHE = {}
#: ``invalid`` counts cache entries that failed validation on lookup
#: and were rebuilt (reported as ``kernels.cache.invalid``, see
#: docs/OBSERVABILITY.md).
_PORTABLE_STATS = {"hits": 0, "misses": 0, "invalid": 0}


def portable_cache_stats():
    """Hit/miss/invalid counters of the cross-processor kernel cache."""
    return dict(_PORTABLE_STATS)


def clear_portable_cache():
    _PORTABLE_CACHE.clear()
    _PORTABLE_STATS["hits"] = 0
    _PORTABLE_STATS["misses"] = 0
    _PORTABLE_STATS["invalid"] = 0


def _portable_key(processor, source):
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    extensions = tuple(sorted(
        getattr(ext, "name", type(ext).__name__)
        for ext in processor.extensions))
    return (processor.config.name, extensions, digest)


def load_cached_kernel(processor, key, source, lint=True):
    """Assemble *source* once and load it, reusing earlier compiles.

    Two cache levels: the per-processor ``_kernel_cache`` keeps bound
    Programs (so repeat runs skip everything, and the benchmark harness
    can re-lint exactly what executed), while a module-level cache of
    :class:`PortableProgram` keyed by (config name, extension set,
    source hash) shares the parse and lint across processor instances —
    experiment sweeps build many identically-configured cores.

    *source* may be the assembly text or a zero-argument callable
    producing it; the callable is only invoked on a per-processor miss.

    Both cache levels validate on lookup instead of trusting their
    entries (docs/ROBUSTNESS.md): a portable entry must pass its
    self-integrity fingerprint and structural checks, and a
    per-processor entry must still match the processor's configuration,
    extension set and ISA instances.  A failed check rebuilds the
    program from source and bumps the ``invalid`` counter — a corrupted
    cache costs a recompile, never a crash (and never silently runs
    the wrong kernel).
    """
    cache = getattr(processor, "_kernel_cache", None)
    if cache is None:
        cache = processor._kernel_cache = {}
    entry = cache.get(key)
    if entry is not None:
        program, config_name, extension_names = entry
        if config_name == processor.config.name \
                and extension_names == _extension_names(processor) \
                and _program_matches_isa(program, processor):
            processor.load_program(program)
            return program
        _PORTABLE_STATS["invalid"] += 1
        del cache[key]
    if callable(source):
        source = source()
    portable_key = _portable_key(processor, source)
    portable = _PORTABLE_CACHE.get(portable_key)
    if portable is not None and not portable.validate():
        _PORTABLE_STATS["invalid"] += 1
        del _PORTABLE_CACHE[portable_key]
        portable = None
    if portable is None:
        _PORTABLE_STATS["misses"] += 1
        program = processor.assembler.assemble(source, key)
        if lint:
            from ..analysis import lint_or_raise
            lint_or_raise(program, processor, deep=True)
        _PORTABLE_CACHE[portable_key] = PortableProgram(program)
    else:
        # already parsed (and linted) on an identical configuration
        _PORTABLE_STATS["hits"] += 1
        try:
            program = portable.bind(processor)
        except Exception:
            # e.g. an ISA mismatch the key failed to capture; rebuild.
            _PORTABLE_STATS["invalid"] += 1
            del _PORTABLE_CACHE[portable_key]
            program = processor.assembler.assemble(source, key)
            if lint:
                from ..analysis import lint_or_raise
                lint_or_raise(program, processor, deep=True)
            _PORTABLE_CACHE[portable_key] = PortableProgram(program)
    cache[key] = (program, processor.config.name,
                  _extension_names(processor))
    processor.load_program(program)
    return program


def _extension_names(processor):
    return tuple(sorted(getattr(ext, "name", type(ext).__name__)
                        for ext in processor.extensions))


def _program_matches_isa(program, processor):
    """Whether every item of *program* is bound to *processor*'s ISA.

    Guards the per-processor cache against entries that were bound
    against another core (TIE executors close over per-core state, so
    running them here would corrupt both machines).
    """
    from ..isa.assembler import Bundle, BundleTail
    isa = processor.isa
    try:
        for item in program.items:
            if isinstance(item, BundleTail):
                continue
            if isinstance(item, Bundle):
                for slot in item.slots:
                    if isa.lookup(slot.spec.name) is not slot.spec:
                        return False
            elif isa.lookup(item.spec.name) is not item.spec:
                return False
    except Exception:
        return False
    return True


# ---------------------------------------------------------------------------
# runners
# ---------------------------------------------------------------------------

def _load_cached_program(processor, key, source):
    return load_cached_kernel(processor, key, source)


def run_set_operation(processor, which, set_a, set_b,
                      unroll=DEFAULT_UNROLL, validate_input=True,
                      trace=None):
    """Run one EIS set operation; returns ``(result_list, RunResult)``."""
    if validate_input:
        check_set_input("set_a", set_a)
        check_set_input("set_b", set_b)
    num_lsus = processor.config.num_lsus
    base_a, base_b, base_c = set_operation_layout(processor, len(set_a),
                                                  len(set_b))
    processor.write_words(base_a, _pad_words(set_a))
    processor.write_words(base_b, _pad_words(set_b))
    key = "eis-%s-%dlsu-u%d" % (which, num_lsus, unroll)
    load_cached_kernel(
        processor, key,
        lambda: set_operation_kernel(which, num_lsus=num_lsus,
                                     unroll=unroll))
    result = processor.run(entry="main", trace=trace, regs={
        "a2": base_a, "a3": base_a + len(set_a) * 4,
        "a4": base_b, "a5": base_b + len(set_b) * 4,
        "a6": base_c,
    })
    count = result.reg("a2")
    values = processor.read_words(base_c, count) if count else []
    return values, result


def run_merge_sort(processor, values, validate_input=True, trace=None):
    """Run the EIS merge-sort; returns ``(sorted_list, RunResult)``."""
    if validate_input:
        check_sort_input("values", values)
    padded = _pad_words(values)
    base_src, base_dst = sort_layout(processor, len(padded))
    processor.write_words(base_src, padded)
    key = "eis-sort"
    load_cached_kernel(processor, key, merge_sort_kernel)
    result = processor.run(entry="main", trace=trace, regs={
        "a2": base_src, "a3": len(padded) * 4, "a4": base_dst,
    })
    out_base = result.reg("a2")
    output = processor.read_words(out_base, len(values))
    return output, result
