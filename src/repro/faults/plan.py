"""Fault model: what can break, and deterministic sampling thereof.

Every fault class is a small value object describing one hardware
mishap.  A :class:`FaultPlan` bundles the faults of one trial;
:func:`sample_plan` draws a plan from a seeded ``random.Random`` and a
:class:`TrialProfile` describing the machine/workload under test, so
the same seed always yields the same plan — across processes and
across ``--parallel`` worker counts (docs/ROBUSTNESS.md).
"""

M32 = 0xFFFFFFFF


class Fault:
    """Base class: one injectable hardware mishap."""

    kind = "fault"

    def to_dict(self):
        payload = {"kind": self.kind}
        for slot in self.__slots__:
            payload[slot] = getattr(self, slot)
        return payload

    def describe(self):
        return " ".join("%s=%r" % (k, v) for k, v in
                        sorted(self.to_dict().items()))

    def __repr__(self):
        return "<%s %s>" % (type(self).__name__, self.describe())


class MemoryBitFlip(Fault):
    """Flip one bit of one data-memory word.

    ``after_accesses`` = 0 flips at arm time (a latent corruption the
    run starts with); otherwise the flip triggers when the region has
    served that many accesses (a mid-run upset).
    """

    kind = "mem_flip"
    __slots__ = ("region", "word_index", "bit", "after_accesses")

    def __init__(self, region, word_index, bit, after_accesses=0):
        self.region = region
        self.word_index = word_index
        self.bit = bit
        self.after_accesses = after_accesses


class RegisterCorrupt(Fault):
    """XOR a core address register with a mask at instruction *at_step*."""

    kind = "reg_corrupt"
    __slots__ = ("reg", "mask", "at_step")

    def __init__(self, reg, mask, at_step):
        self.reg = reg
        self.mask = mask & M32
        self.at_step = at_step


class StateCorrupt(Fault):
    """XOR one lane of a TIE (EIS) state at instruction *at_step*.

    ``lane`` indexes into vector states; scalar states ignore it.
    """

    kind = "state_corrupt"
    __slots__ = ("extension", "state", "lane", "mask", "at_step")

    def __init__(self, extension, state, lane, mask, at_step):
        self.extension = extension
        self.state = state
        self.lane = lane
        self.mask = mask & M32
        self.at_step = at_step


class OpcodeCorrupt(Fault):
    """XOR an integer operand of one program entry (IMEM bit flip).

    Applied to a :class:`~repro.core.kernels.PortableProgram` *copy*
    before binding — the equivalent of a flipped instruction-memory
    word surviving into decode.  Non-integer operands (labels already
    resolve to ints; register operands are ints too) make the fault a
    no-op.
    """

    kind = "opcode_corrupt"
    __slots__ = ("entry_index", "operand_index", "mask")

    def __init__(self, entry_index, operand_index, mask):
        self.entry_index = entry_index
        self.operand_index = operand_index
        self.mask = mask & M32


class DmaDrop(Fault):
    """Lose DMA descriptor number *descriptor* in the interconnect."""

    kind = "dma_drop"
    __slots__ = ("descriptor",)

    def __init__(self, descriptor):
        self.descriptor = descriptor


class DmaDelay(Fault):
    """Delay DMA descriptor number *descriptor* by *extra_cycles*."""

    kind = "dma_delay"
    __slots__ = ("descriptor", "extra_cycles")

    def __init__(self, descriptor, extra_cycles):
        self.descriptor = descriptor
        self.extra_cycles = extra_cycles


class LsuDelay(Fault):
    """Spike LSU access latency for a window of accesses.

    Accesses number ``after_accesses .. after_accesses + length - 1``
    (counted per LSU across loads and stores) each cost
    ``extra_cycles`` extra — a flaky memory controller, in the paper's
    terms a burst of unexpected wait states.
    """

    kind = "lsu_delay"
    __slots__ = ("lsu", "after_accesses", "extra_cycles", "length")

    def __init__(self, lsu, after_accesses, extra_cycles, length=8):
        self.lsu = lsu
        self.after_accesses = after_accesses
        self.extra_cycles = extra_cycles
        self.length = length


class FaultPlan:
    """The faults of one trial, in injection order."""

    __slots__ = ("faults",)

    def __init__(self, faults=()):
        self.faults = list(faults)

    def to_dict(self):
        return {"faults": [fault.to_dict() for fault in self.faults]}

    def __iter__(self):
        return iter(self.faults)

    def __len__(self):
        return len(self.faults)

    def __repr__(self):
        return "<FaultPlan %d fault(s)>" % len(self.faults)


class TrialProfile:
    """What the sampler may target for one kernel/config/workload.

    - ``memory_ranges``: list of ``(region_name, first_word, n_words)``
      covering the staged workload buffers.
    - ``registers``: core register indices the kernel actually uses.
    - ``steps``: instruction count of the fault-free reference run.
    - ``entries``: program entry count (for IMEM corruption).
    - ``states``: list of ``(extension_name, state_name, lanes)``.
    - ``num_lsus`` / ``dma_descriptors``: hardware-shape facts.
    """

    __slots__ = ("memory_ranges", "registers", "steps", "entries",
                 "states", "num_lsus", "dma_descriptors")

    def __init__(self, memory_ranges, registers, steps, entries,
                 states=(), num_lsus=1, dma_descriptors=0):
        self.memory_ranges = list(memory_ranges)
        self.registers = list(registers)
        self.steps = max(1, steps)
        self.entries = max(1, entries)
        self.states = list(states)
        self.num_lsus = num_lsus
        self.dma_descriptors = dma_descriptors


def _sample_mem_flip(rng, profile):
    region, first, count = rng.choice(profile.memory_ranges)
    # Half the flips are latent (pre-run), half mid-run.
    after = 0 if rng.random() < 0.5 \
        else rng.randrange(1, 2 * profile.steps)
    return MemoryBitFlip(region, first + rng.randrange(count),
                         rng.randrange(32), after)


def _sample_reg_corrupt(rng, profile):
    return RegisterCorrupt(rng.choice(profile.registers),
                           1 << rng.randrange(32),
                           rng.randrange(profile.steps))


def _sample_state_corrupt(rng, profile):
    extension, state, lanes = rng.choice(profile.states)
    return StateCorrupt(extension, state, rng.randrange(max(1, lanes)),
                        1 << rng.randrange(32),
                        rng.randrange(profile.steps))


def _sample_opcode_corrupt(rng, profile):
    return OpcodeCorrupt(rng.randrange(profile.entries),
                         rng.randrange(4), 1 << rng.randrange(5))


def _sample_dma_drop(rng, profile):
    return DmaDrop(rng.randrange(profile.dma_descriptors))


def _sample_dma_delay(rng, profile):
    return DmaDelay(rng.randrange(profile.dma_descriptors),
                    rng.randrange(100, 10_000))


def _sample_lsu_delay(rng, profile):
    return LsuDelay(rng.randrange(profile.num_lsus),
                    rng.randrange(1, 2 * profile.steps),
                    rng.randrange(1, 64),
                    length=rng.randrange(1, 32))


#: (sampler, weight, availability predicate).  Timing-only faults
#: (LSU/DMA delays) are deliberately in the mix: they must be *masked*
#: by a correct machine, which is the campaign's negative control.
_SAMPLERS = (
    (_sample_mem_flip, 4, lambda p: bool(p.memory_ranges)),
    (_sample_reg_corrupt, 3, lambda p: bool(p.registers)),
    (_sample_state_corrupt, 2, lambda p: bool(p.states)),
    (_sample_opcode_corrupt, 2, lambda p: True),
    (_sample_lsu_delay, 3, lambda p: True),
    (_sample_dma_drop, 2, lambda p: p.dma_descriptors > 0),
    (_sample_dma_delay, 2, lambda p: p.dma_descriptors > 0),
)


def sample_plan(rng, profile):
    """Draw one :class:`FaultPlan` (currently: exactly one fault).

    One fault per trial keeps the outcome classification attributable;
    campaigns get coverage from trial count, not per-trial fault count.
    """
    available = [(sampler, weight) for sampler, weight, usable
                 in _SAMPLERS if usable(profile)]
    total = sum(weight for _, weight in available)
    pick = rng.randrange(total)
    for sampler, weight in available:
        pick -= weight
        if pick < 0:
            return FaultPlan([sampler(rng, profile)])
    raise AssertionError("unreachable")
