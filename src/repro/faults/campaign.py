"""Seeded fault-injection campaigns (``repro faults campaign``).

A campaign runs one kernel N times, each trial under a fresh fault
plan sampled from the trial's own seeded RNG, and classifies each
outcome (docs/ROBUSTNESS.md):

``masked``
    The run completed with the reference result — the fault landed in
    dead data, timing-only state, or was otherwise absorbed.
``wrong_result``
    The run completed but produced a different result: silent data
    corruption, the worst case.
``detected``
    The simulated machine caught the fault itself (``MemoryFault`` or
    another :class:`~repro.cpu.errors.SimulationError`) — the RTL-like
    checks did their job.
``hang``
    The watchdog tripped (:class:`ExecutionLimitExceeded`): the fault
    broke forward progress, e.g. a dropped DMA descriptor under a
    ``DMA_DONE`` polling loop.
``crash``
    The *simulator* (not the simulated machine) fell over — harness
    territory, surfaced separately so tooling bugs never masquerade as
    hardware detections.

Determinism contract: the same (kernel, config, size, seed, trials)
produces byte-identical campaign reports, in-process or across any
``--parallel`` worker count — trial RNGs are seeded per trial index
and wall-clock time is kept out of the report.
"""

import random

from ..configs.catalog import CONFIG_NAMES, build_processor, has_eis
from ..cpu.errors import ExecutionLimitExceeded, SimulationError
from ..cpu.memory import MAIN_BASE
from ..cpu.watchdog import Watchdog
from ..isa.errors import IsaError
from ..telemetry.registry import MetricsRegistry
from ..workloads.sets import generate_set_pair
from .injector import FaultInjector
from .plan import OpcodeCorrupt, TrialProfile, sample_plan

#: Outcome classes, in report order.
OUTCOMES = ("masked", "wrong_result", "detected", "hang", "crash")


# ---------------------------------------------------------------------------
# campaign kernels
# ---------------------------------------------------------------------------

def dma_poll_kernel():
    """Double-buffer-style DMA kernel: fill, poll ``DMA_DONE``, reduce.

    Register protocol: ``a2`` = burst source byte address, ``a3`` =
    destination byte address, ``a4`` = burst bytes.  On halt ``a2``
    holds the word-sum of the transferred buffer.  A dropped descriptor
    leaves ``DMA_DONE`` at zero forever, which is exactly the hang the
    watchdog exists for.
    """
    return "\n".join([
        "; DMA fill + poll + reduce (fault-campaign kernel)",
        "main:",
        "  wur a2, DMA_SRC",
        "  wur a3, DMA_DST",
        "  wur a4, DMA_LEN",
        "  movi a8, 1",
        "  wur a8, DMA_CTRL",
        "wait:",
        "  rur a9, DMA_DONE",
        "  beqz a9, wait",
        "  mv a5, a3",
        "  add a6, a3, a4",
        "  movi a7, 0",
        "sum:",
        "  l32i a9, a5, 0",
        "  add a7, a7, a9",
        "  addi a5, a5, 4",
        "  bltu a5, a6, sum",
        "  mv a2, a7",
        "  halt",
    ])


class _KernelHarness:
    """One campaign kernel: how to build, stage, run and read it."""

    def __init__(self, name, default_config, registers, needs_eis=False,
                 needs_prefetcher=False, dma_descriptors=0):
        self.name = name
        self.default_config = default_config
        self.registers = registers
        self.needs_eis = needs_eis
        self.needs_prefetcher = needs_prefetcher
        self.dma_descriptors = dma_descriptors

    def build(self, config):
        return build_processor(config, prefetcher=self.needs_prefetcher)

    def check_config(self, config):
        if config not in CONFIG_NAMES:
            raise ValueError("unknown config %r" % config)
        if self.needs_eis and not has_eis(config):
            raise ValueError("kernel %r needs an EIS configuration, "
                             "got %r" % (self.name, config))

    # stage() loads the (possibly IMEM-corrupted) program, writes the
    # workload into memory, and returns (regs, ranges, reader).


def _word_range(processor, base_addr, n_words):
    region = processor.memory_map.region_for(base_addr)
    return (region.name, (base_addr - region.base) // 4, n_words)


def _load(processor, key, source, injector):
    """Load *source*, applying the plan's IMEM faults to a copy."""
    from ..core.kernels import PortableProgram, load_cached_kernel
    corrupting = injector is not None and any(
        isinstance(fault, OpcodeCorrupt) for fault in injector.plan)
    if not corrupting:
        load_cached_kernel(processor, key, source)
        return
    program = processor.assembler.assemble(source, key)
    portable = injector.corrupt_program(PortableProgram(program))
    processor.load_program(portable.bind(processor))


class _SetIntersection(_KernelHarness):
    """EIS or scalar sorted-set intersection."""

    def __init__(self, name, default_config, scalar):
        super().__init__(name, default_config,
                         registers=list(range(2, 10)),
                         needs_eis=not scalar)
        self.scalar = scalar

    def stage(self, processor, size, seed, injector):
        set_a, set_b = generate_set_pair(size, selectivity=0.5, seed=seed)
        if self.scalar:
            from ..core.scalar_kernels import (intersection_scalar_kernel,
                                               scalar_set_layout)
            base_a, base_b, base_c = scalar_set_layout(len(set_a),
                                                       len(set_b))
            words_a, words_b = list(set_a), list(set_b)
            _load(processor, "faults-scalar-int",
                  intersection_scalar_kernel(), injector)
        else:
            from ..core.kernels import (_pad_words, set_operation_kernel,
                                        set_operation_layout)
            base_a, base_b, base_c = set_operation_layout(
                processor, len(set_a), len(set_b))
            words_a, words_b = _pad_words(set_a), _pad_words(set_b)
            _load(processor, "faults-eis-int",
                  set_operation_kernel(
                      "intersection",
                      num_lsus=processor.config.num_lsus), injector)
        processor.write_words(base_a, words_a)
        processor.write_words(base_b, words_b)
        regs = {"a2": base_a, "a3": base_a + len(set_a) * 4,
                "a4": base_b, "a5": base_b + len(set_b) * 4,
                "a6": base_c}
        ranges = [_word_range(processor, base_a, len(words_a)),
                  _word_range(processor, base_b, len(words_b))]

        def reader(result):
            count = result.reg("a2")
            return processor.read_words(base_c, count) if count else []
        return regs, ranges, reader


class _DmaPoll(_KernelHarness):
    """DMA fill + poll + reduce on a prefetcher-equipped core."""

    def __init__(self, name, default_config):
        super().__init__(name, default_config,
                         registers=list(range(2, 10)),
                         needs_prefetcher=True, dma_descriptors=1)

    def stage(self, processor, size, seed, injector):
        rng = random.Random("dma-data:%d:%s" % (size, seed))
        words = [rng.getrandbits(32) for _ in range(size)]
        src, dst = MAIN_BASE, 0x0
        processor.write_words(src, words)
        _load(processor, "faults-dma-poll", dma_poll_kernel(), injector)
        regs = {"a2": src, "a3": dst, "a4": size * 4}
        ranges = [_word_range(processor, src, size),
                  _word_range(processor, dst, size)]

        def reader(result):
            return [result.reg("a2")]
        return regs, ranges, reader


KERNELS = {
    "intersection": _SetIntersection("intersection", "DBA_2LSU_EIS",
                                     scalar=False),
    "scalar": _SetIntersection("scalar", "DBA_1LSU", scalar=True),
    "dma_poll": _DmaPoll("dma_poll", "DBA_1LSU"),
}


def campaign_kernel_sources():
    """``(name, source)`` of campaign-only kernels, for ``repro lint``.

    The set kernels are already linted through the builtin sweep; only
    the DMA polling kernel is campaign-specific.
    """
    return [("dma_poll.faults", dma_poll_kernel())]


# ---------------------------------------------------------------------------
# reference runs (memoized per process)
# ---------------------------------------------------------------------------

_REFERENCE_CACHE = {}


def _reference(kernel, config, size, seed):
    """Fault-free reference: expected result plus the trial profile."""
    key = (kernel, config, size, seed)
    cached = _REFERENCE_CACHE.get(key)
    if cached is not None:
        return cached
    harness = KERNELS[kernel]
    processor = harness.build(config)
    regs, ranges, reader = harness.stage(processor, size, seed, None)
    result = processor.run(entry="main", regs=regs)
    from ..core.kernels import PortableProgram
    entries = len(PortableProgram(processor.program).entries)
    states = []
    for extension in processor.extensions:
        for state in getattr(extension, "states", ()):
            lanes = len(state.value) if isinstance(state.value, list) else 1
            states.append((extension.name, state.name, lanes))
    profile = TrialProfile(
        memory_ranges=ranges, registers=harness.registers,
        steps=result.instructions, entries=entries, states=states,
        num_lsus=len(processor.lsus),
        dma_descriptors=harness.dma_descriptors)
    reference = {"result": reader(result), "cycles": result.cycles,
                 "profile": profile}
    _REFERENCE_CACHE[key] = reference
    return reference


# ---------------------------------------------------------------------------
# trials
# ---------------------------------------------------------------------------

def run_trial(kernel, config, size, seed, trial):
    """One seeded trial; returns its JSON-ready outcome dict."""
    reference = _reference(kernel, config, size, seed)
    rng = random.Random("campaign:%s:%s:%d:%s:%d"
                        % (kernel, config, size, seed, trial))
    plan = sample_plan(rng, reference["profile"])
    harness = KERNELS[kernel]
    fuel = Watchdog.fuel_for(reference["cycles"])
    processor = harness.build(config)
    injector = FaultInjector(processor, plan)
    outcome, detail = None, None
    try:
        regs, _ranges, reader = harness.stage(processor, size, seed,
                                              injector)
        injector.arm()
        try:
            # Always the reference interpreter: fault triggers (and the
            # watchdog trip point on a hang) are defined against its
            # per-instruction semantics, while the fast path checks at
            # superblock granularity — running trials there would make
            # hang details depend on REPRO_NO_FASTPATH.
            result = processor.run_interpreted(entry="main", regs=regs,
                                               max_cycles=fuel)
            values = reader(result)
        finally:
            injector.disarm()
        outcome = "masked" if values == reference["result"] \
            else "wrong_result"
    except ExecutionLimitExceeded as exc:
        outcome, detail = "hang", str(exc)
    except (SimulationError, IsaError, LookupError) as exc:
        # LookupError covers illegal encodings from IMEM corruption
        # (e.g. a flipped register-index bit selecting a nonexistent
        # register) — the machine rejecting garbage, not a harness bug.
        outcome, detail = "detected", "%s: %s" % (type(exc).__name__, exc)
    except Exception as exc:
        outcome, detail = "crash", "%s: %s" % (type(exc).__name__, exc)
    report = {"trial": trial,
              "faults": plan.to_dict()["faults"],
              "fired": len(injector.fired),
              "outcome": outcome}
    if detail is not None:
        report["detail"] = detail
    return report


def _campaign_worker(kernel, config, size, seed, lo, hi):
    """Supervisor worker: trials ``lo .. hi-1`` of one campaign."""
    return [run_trial(kernel, config, size, seed, trial)
            for trial in range(lo, hi)]


# ---------------------------------------------------------------------------
# campaign driver
# ---------------------------------------------------------------------------

def run_campaign(kernel, config=None, size=400, trials=20, seed=42,
                 jobs=1, timeout=None, retries=1, log=None):
    """Run a fault campaign; returns the JSON-ready report dict.

    With ``jobs > 1`` the trial range is fanned over the crash-isolated
    :mod:`repro.supervisor`; the report is identical for every job
    count (trial seeding does not depend on the chunking).
    """
    if kernel not in KERNELS:
        raise ValueError("unknown campaign kernel %r; available: %s"
                         % (kernel, ", ".join(sorted(KERNELS))))
    harness = KERNELS[kernel]
    config = config or harness.default_config
    harness.check_config(config)

    trial_reports = [None] * trials
    if jobs <= 1 or trials <= 1:
        for trial in range(trials):
            trial_reports[trial] = run_trial(kernel, config, size, seed,
                                             trial)
    else:
        from ..supervisor import Task, supervise
        jobs = min(jobs, trials)
        bounds = [trials * i // jobs for i in range(jobs + 1)]
        tasks = [Task("trials[%d:%d]" % (lo, hi), _campaign_worker,
                      (kernel, config, size, seed, lo, hi))
                 for lo, hi in zip(bounds, bounds[1:]) if hi > lo]
        report = supervise(tasks, jobs=jobs, timeout=timeout,
                           retries=retries, log=log)
        for task, outcome in zip(tasks, report.outcomes):
            lo, hi = task.args[4], task.args[5]
            if outcome.ok:
                trial_reports[lo:hi] = outcome.value
            else:
                for trial in range(lo, hi):
                    trial_reports[trial] = {
                        "trial": trial, "faults": [], "fired": 0,
                        "outcome": "crash",
                        "detail": "supervisor: %s" % outcome.status}

    summary = {name: 0 for name in OUTCOMES}
    fired = 0
    for trial_report in trial_reports:
        summary[trial_report["outcome"]] += 1
        fired += trial_report["fired"]

    registry = MetricsRegistry()
    scope = registry.scope("faults")
    scope.counter("trials").value = trials
    scope.counter("fired").value = fired
    for name in OUTCOMES:
        scope.counter(name).value = summary[name]

    return {
        "campaign": {"kernel": kernel, "config": config, "size": size,
                     "seed": seed, "trials": trials},
        "trials": trial_reports,
        "summary": summary,
        "metrics": registry.snapshot().as_dict(),
    }
