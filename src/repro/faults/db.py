"""Db-layer chaos: seeded fault campaigns against the sharded tier.

Where :mod:`repro.faults.campaign` attacks the simulated *hardware*
(bit flips, dropped DMA descriptors), this module attacks the sharded
*serving layer* (:class:`~repro.db.shard.ShardedEngine`): shard
workers die, responses straggle, RID lists are corrupted on the
response channel.  A campaign (``repro db chaos``) runs a
deterministic query batch N times, one sampled fault per trial, and
classifies every trial against the unsharded reference engine:

``masked``
    Every query completed byte-identical to the reference — the fault
    was absorbed by a replica failover, a hedge, a detected-corruption
    retransmit, or it landed in dead data.
``degraded``
    One or more queries returned a *typed partial answer*
    (``complete=False``, a strict subset of the reference RIDs) —
    the engine lost a shard and said so.
``wrong_result``
    A query's answer disagrees with the reference without being
    flagged (a complete answer that differs, or a degraded answer
    that is not a subset): silent corruption, the worst case.  The CI
    chaos job gates this class to zero.
``failed``
    An exception escaped ``execute_batch`` — in strict mode a typed
    :class:`~repro.db.failover.ShardError`, anything else is a
    harness bug.
``hang``
    A query's modeled makespan exceeded the campaign fuel
    (``64 x`` the fault-free maximum) — a wedged response with no
    deadline armed.

Determinism contract: identical parameters produce byte-identical
campaign reports — trial RNGs are string-seeded per trial index, all
timing is modeled cycles, and wall-clock never enters the report.
"""

import random

from .plan import M32, Fault, FaultPlan

#: Outcome classes, in report order.
DB_OUTCOMES = ("masked", "degraded", "wrong_result", "failed", "hang")

#: CLI spellings of the fault kinds.
DB_FAULT_KINDS = ("kill", "delay", "corrupt")

#: A wedged response: effectively-infinite extra cycles (half of all
#: sampled delays), the straggler the deadline machinery exists for.
WEDGE_CYCLES = 1 << 40

#: ``hang`` classification: makespan beyond this multiple of the
#: fault-free maximum means the fault broke forward progress.
HANG_FUEL_FACTOR = 64


# ---------------------------------------------------------------------------
# fault model
# ---------------------------------------------------------------------------

class WorkerKill(Fault):
    """Engine *host* stops answering from query *at_query* onwards.

    Persistent — a dead worker stays dead for the rest of the batch;
    every dispatch to it (primary or replica duty) fails.
    """

    kind = "worker_kill"
    __slots__ = ("host", "at_query")

    def __init__(self, host, at_query):
        self.host = host
        self.at_query = at_query


class ResponseDelay(Fault):
    """Shard *shard*'s response to *query_index* takes *extra_cycles*.

    One-shot; half of all sampled delays are :data:`WEDGE_CYCLES`
    wedges (a response that never usefully arrives), the rest are
    bounded stragglers.
    """

    kind = "response_delay"
    __slots__ = ("shard", "query_index", "extra_cycles")

    def __init__(self, shard, query_index, extra_cycles):
        self.shard = shard
        self.query_index = query_index
        self.extra_cycles = extra_cycles


class ResponseCorrupt(Fault):
    """Mutate shard *shard*'s RID list for *query_index* in flight.

    One-shot, applied on the first delivery for the (shard, query)
    pair.  ``mode`` picks the mutation — ``drop`` (lose one RID),
    ``flip`` (XOR one bit of one RID), ``inject`` (insert a bogus
    RID); ``element`` / ``bit`` are the deterministic coordinates.
    The sender-side checksum must *detect* every one of these.
    """

    kind = "response_corrupt"
    __slots__ = ("shard", "query_index", "mode", "element", "bit")

    def __init__(self, shard, query_index, mode, element, bit):
        if mode not in ("drop", "flip", "inject"):
            raise ValueError("unknown corruption mode %r" % (mode,))
        self.shard = shard
        self.query_index = query_index
        self.mode = mode
        self.element = element
        self.bit = bit


class DbTrialProfile:
    """What the sampler may target for one campaign configuration."""

    __slots__ = ("shards", "queries", "delay_scale")

    def __init__(self, shards, queries, delay_scale):
        self.shards = max(1, shards)
        self.queries = max(1, queries)
        self.delay_scale = max(2, delay_scale)


def _sample_kill(rng, profile):
    return WorkerKill(rng.randrange(profile.shards),
                      rng.randrange(profile.queries))


def _sample_delay(rng, profile):
    extra = WEDGE_CYCLES if rng.random() < 0.5 \
        else rng.randrange(1, profile.delay_scale)
    return ResponseDelay(rng.randrange(profile.shards),
                         rng.randrange(profile.queries), extra)


def _sample_corrupt(rng, profile):
    return ResponseCorrupt(rng.randrange(profile.shards),
                           rng.randrange(profile.queries),
                           rng.choice(("drop", "flip", "inject")),
                           rng.randrange(1 << 16), rng.randrange(31))


_DB_SAMPLERS = {"kill": (_sample_kill, 4),
                "delay": (_sample_delay, 3),
                "corrupt": (_sample_corrupt, 3)}


def sample_db_plan(rng, profile, kinds=DB_FAULT_KINDS):
    """One-fault :class:`FaultPlan` for a db-layer trial.

    One fault per trial keeps the outcome attributable, exactly like
    the cpu-layer campaigns; *kinds* restricts the mix (the CI
    acceptance runs are kill-only).
    """
    available = []
    for kind in kinds:
        if kind not in _DB_SAMPLERS:
            raise ValueError("unknown db fault kind %r (one of %s)"
                             % (kind, ", ".join(DB_FAULT_KINDS)))
        available.append(_DB_SAMPLERS[kind])
    total = sum(weight for _sampler, weight in available)
    pick = rng.randrange(total)
    for sampler, weight in available:
        pick -= weight
        if pick < 0:
            return FaultPlan([sampler(rng, profile)])
    raise AssertionError("unreachable")


# ---------------------------------------------------------------------------
# injector
# ---------------------------------------------------------------------------

class DbFaultInjector:
    """Arms a :class:`FaultPlan` of db-layer faults on a sharded engine.

    The engine consults it at dispatch (:meth:`host_killed`) and
    delivery (:meth:`delay_cycles`, :meth:`deliver`) time; an unarmed
    engine (``fault_injector=None``) pays nothing.  ``fired`` logs
    every actual trigger for the trial report.
    """

    def __init__(self, plan):
        self.plan = plan
        self.fired = []
        self._kills = {}
        self._delays = {}
        self._corrupts = {}
        for fault in plan:
            if isinstance(fault, WorkerKill):
                at = self._kills.get(fault.host)
                self._kills[fault.host] = fault.at_query if at is None \
                    else min(at, fault.at_query)
            elif isinstance(fault, ResponseDelay):
                self._delays[(fault.shard, fault.query_index)] = fault
            elif isinstance(fault, ResponseCorrupt):
                self._corrupts[(fault.shard, fault.query_index)] = fault
            else:
                raise TypeError("not a db-layer fault: %r" % (fault,))

    def host_killed(self, host, query_index):
        """Is engine *host* dead for *query_index*?  (Persistent.)"""
        at = self._kills.get(host)
        if at is None or query_index < at:
            return False
        self.fired.append(("worker_kill",
                           "host %d at query %d" % (host, query_index)))
        return True

    def delay_cycles(self, shard, query_index):
        """Extra response cycles for this delivery (one-shot)."""
        fault = self._delays.pop((shard, query_index), None)
        if fault is None:
            return 0
        self.fired.append(("response_delay",
                           "shard %d query %d +%d cycles"
                           % (shard, query_index, fault.extra_cycles)))
        return fault.extra_cycles

    def deliver(self, shard, query_index, rids):
        """Pass a RID list through the response channel.

        Returns ``(rids, mutated)``; a corruption fault keyed on this
        (shard, query) mutates the list once.  No-op mutations (e.g.
        dropping from an empty list) do not count as fired.
        """
        fault = self._corrupts.get((shard, query_index))
        if fault is None:
            return rids, False
        rids = list(rids)
        count = len(rids)
        if fault.mode == "drop":
            if not count:
                return rids, False
            del rids[fault.element % count]
        elif fault.mode == "flip":
            if not count:
                return rids, False
            rids[fault.element % count] ^= (1 << fault.bit)
        else:  # inject
            rids.insert(fault.element % (count + 1),
                        (fault.element ^ (1 << fault.bit)) & M32)
        del self._corrupts[(fault.shard, fault.query_index)]
        self.fired.append(("response_corrupt",
                           "shard %d query %d %s"
                           % (shard, query_index, fault.mode)))
        return rids, True


# ---------------------------------------------------------------------------
# campaign
# ---------------------------------------------------------------------------

def chaos_queries(table, count, seed):
    """WHERE-only query batch whose every query touches every shard.

    Broad predicates (wide price ranges, OR'd equality arms) keep
    every shard contributing rows to every query, so a killed shard
    always shows up — as a failover (replicated) or as a degraded
    subset (unreplicated) — instead of hiding behind pruning.  No
    ORDER BY / LIMIT: a degraded answer is then exactly "the reference
    minus the dead shard's rows", which keeps the subset check in the
    classifier sound.
    """
    from ..db.engine import Query
    from ..db.predicates import Eq, Range
    rng = random.Random("db-chaos-queries:%d:%s" % (count, seed))
    queries = []
    for _ in range(count):
        low = rng.randrange(500)
        predicate = Range("price", low, low + 400 + rng.randrange(300))
        if rng.random() < 0.5:
            predicate = predicate | Eq("status", rng.randrange(4))
        if rng.random() < 0.3:
            predicate = predicate & Range("region", 0,
                                          3 + rng.randrange(4))
        queries.append(Query(table, predicate))
    return queries


def _classify(results, reference, fuel):
    """Outcome of one trial's batch vs the unsharded reference."""
    degraded = 0
    failovers = 0
    wrong = None
    hang = False
    for index, (result, expected) in enumerate(zip(results, reference)):
        failovers += result.failovers
        if result.makespan_cycles > fuel:
            hang = True
        if result.complete:
            if result.rids != expected:
                wrong = ("query %d: complete answer differs from "
                         "reference" % index)
        else:
            degraded += 1
            if not set(result.rids) <= set(expected):
                wrong = ("query %d: degraded answer is not a subset "
                         "of the reference" % index)
    if wrong is not None:
        return "wrong_result", wrong, degraded, failovers
    if hang:
        return "hang", "makespan exceeded the %d-cycle fuel" % fuel, \
            degraded, failovers
    if degraded:
        return "degraded", None, degraded, failovers
    return "masked", None, degraded, failovers


def run_db_campaign(shards=4, replication=1, trials=24, seed=42,
                    rows=512, queries=12, deadline="auto",
                    kinds=DB_FAULT_KINDS, partitioner="hash",
                    breaker_threshold=3, breaker_cooldown=4,
                    hedge_fraction=0.5, delta_batches=0, delta_rows=32,
                    log=None):
    """Run a db-layer chaos campaign; returns the JSON-ready report.

    *deadline* is ``"auto"`` (8x the fault-free per-shard maximum, so
    wedged responses are hedged/failed instead of waited out),
    ``"none"`` / ``None`` (no deadline — wedges classify as ``hang``),
    or an explicit modeled-cycle budget.

    *delta_batches* > 0 swaps the row-oriented demo table for a
    columnar Z-set table mutated by the shared Zipfian delta stream
    (``repro.workloads.sets.generate_delta_stream``) before the
    campaign: the trials then exercise failover over a sparse RID
    space with tombstones and annihilated ghosts.  Requires NumPy; the
    default of 0 keeps the campaign (and its report) byte-identical to
    the row-oriented harness.
    """
    from ..db.bench import build_demo_table
    from ..db.engine import QueryEngine
    from ..db.shard import FAULT_COUNTERS, ShardedEngine

    kinds = tuple(kinds)
    if not kinds:
        raise ValueError("need at least one fault kind")
    for kind in kinds:
        if kind not in _DB_SAMPLERS:
            raise ValueError("unknown db fault kind %r (one of %s)"
                             % (kind, ", ".join(DB_FAULT_KINDS)))
    delta_report = None
    if delta_batches:
        from ..db.columnar import ColumnarTable, DeltaBatch
        from ..workloads.sets import generate_delta_stream
        initial, specs = generate_delta_stream(
            rows, delta_batches,
            {"status": 4, "region": 8, "price": 1000},
            inserts_per_batch=delta_rows,
            deletes_per_batch=max(1, delta_rows // 2), seed=seed)
        table = ColumnarTable("orders", initial)
        for column in ("status", "region", "price"):
            table.create_index(column)
        annihilated = 0
        for spec in specs:
            outcome = table.apply_delta(DeltaBatch.from_spec(spec))
            annihilated += outcome["annihilated"]
        delta_report = {"batches": delta_batches,
                        "rows_per_batch": delta_rows,
                        "annihilated": annihilated,
                        "live_rows": table.row_count,
                        "rid_limit": table.rid_limit(),
                        "compactions": table.compactions}
    else:
        table = build_demo_table(rows=rows, seed=seed)
    batch = chaos_queries(table, queries, seed)

    reference = [result.rids for result
                 in QueryEngine().execute_batch(batch)]

    def build_engine(injector=None):
        return ShardedEngine(shards=shards, partitioner=partitioner,
                             replication=replication, strict=False,
                             deadline_cycles=deadline_cycles,
                             hedge_fraction=hedge_fraction,
                             breaker_threshold=breaker_threshold,
                             breaker_cooldown=breaker_cooldown,
                             fault_injector=injector)

    # Fault-free sharded baseline: calibrates the deadline and the
    # hang fuel, and sanity-checks the harness's own parity.
    deadline_cycles = None
    baseline = build_engine()
    base_results = baseline.execute_batch(batch)
    for index, (result, expected) in enumerate(zip(base_results,
                                                   reference)):
        if result.rids != expected:
            raise AssertionError("fault-free sharded run diverged on "
                                 "query %d" % index)
    max_shard = max(max(result.shard_cycles)
                    for result in base_results)
    max_makespan = max(result.makespan_cycles
                       for result in base_results)
    if deadline == "auto":
        deadline_cycles = 8 * max(1, max_shard)
    elif deadline in (None, "none"):
        deadline_cycles = None
    else:
        deadline_cycles = int(deadline)
    fuel = HANG_FUEL_FACTOR * max(1, max_makespan)
    profile = DbTrialProfile(shards=shards, queries=len(batch),
                             delay_scale=4 * max(1, max_shard))

    trial_reports = []
    fault_totals = {name: 0 for name in FAULT_COUNTERS}
    breaker_trips = 0
    for trial in range(trials):
        rng = random.Random("db-chaos:%d:%d:%d:%d:%s:%s:%d"
                            % (shards, replication, rows, len(batch),
                               seed, ",".join(kinds), trial))
        plan = sample_db_plan(rng, profile, kinds)
        injector = DbFaultInjector(plan)
        engine = build_engine(injector)
        outcome = detail = None
        degraded_queries = failovers = 0
        try:
            results = engine.execute_batch(batch)
        except Exception as exc:
            outcome = "failed"
            detail = "%s: %s" % (type(exc).__name__, exc)
        else:
            outcome, detail, degraded_queries, failovers = \
                _classify(results, reference, fuel)
        snapshot = engine.metrics_snapshot()
        for name in fault_totals:
            fault_totals[name] += snapshot.get("db.fault." + name, 0)
        breaker_trips += sum(
            snapshot.get("db.shard.%d.breaker.trips" % position, 0)
            for position in range(shards))
        report = {"trial": trial,
                  "faults": plan.to_dict()["faults"],
                  "fired": len(injector.fired),
                  "outcome": outcome,
                  "queries_degraded": degraded_queries,
                  "failovers": failovers}
        if detail is not None:
            report["detail"] = detail
        trial_reports.append(report)
        if log is not None:
            log("trial %2d: %-12s %s"
                % (trial, outcome,
                   "; ".join(fault.describe() for fault in plan)))

    summary = {name: 0 for name in DB_OUTCOMES}
    fired = 0
    for report in trial_reports:
        summary[report["outcome"]] += 1
        fired += report["fired"]

    campaign = {"layer": "db", "shards": shards,
                "replication": replication, "rows": rows,
                "queries": len(batch), "trials": trials,
                "seed": seed, "kinds": list(kinds),
                "partitioner": partitioner,
                "deadline_cycles": deadline_cycles,
                "fuel_cycles": fuel,
                "breaker_threshold": breaker_threshold,
                "breaker_cooldown": breaker_cooldown}
    if delta_report is not None:
        campaign["delta"] = delta_report
    return {
        "campaign": campaign,
        "trials": trial_reports,
        "summary": summary,
        "fired": fired,
        "faults": {"db.fault.%s" % name: value
                   for name, value in sorted(fault_totals.items())},
        "breaker_trips": breaker_trips,
    }
