"""Seeded fault injection for the processor simulator.

The paper's numbers rest on long cycle-accurate simulations; this
package answers the robustness question those runs raise — *what does
the machine (and the harness) do when something breaks mid-run?* — by
injecting deterministic, seeded faults into the simulated hardware and
classifying the outcome of each run (docs/ROBUSTNESS.md):

- :mod:`repro.faults.plan` declares the fault model: data-memory and
  instruction-word bit flips, core/EIS register-state corruption,
  dropped or delayed DMA descriptors, and LSU latency spikes.
- :mod:`repro.faults.injector` arms a plan on a live processor via
  the zero-cost-when-unarmed hooks of the cpu layer.
- :mod:`repro.faults.campaign` runs seeded campaigns (``repro faults
  campaign``) and classifies every trial as masked / wrong-result /
  detected / hang / crash.
- :mod:`repro.faults.db` attacks the *serving* layer instead: worker
  kills, response delays and response corruption against the sharded
  engine, with seeded ``repro db chaos`` campaigns classified as
  masked / degraded / wrong-result / failed / hang.
"""

from .campaign import run_campaign
from .db import DbFaultInjector, run_db_campaign, sample_db_plan
from .injector import FaultInjector
from .plan import FaultPlan, sample_plan

__all__ = ["DbFaultInjector", "FaultInjector", "FaultPlan",
           "run_campaign", "run_db_campaign", "sample_db_plan",
           "sample_plan"]
