"""Arms a :class:`~repro.faults.plan.FaultPlan` on a live processor.

The cpu layer exposes dormant hook points (``Memory.fault_hook``,
``LoadStoreUnit.fault_hook``, ``DataPrefetcher.fault_hook`` and the
processor's per-instruction hook) that cost one ``is not None``
comparison when unarmed.  The injector installs closures on exactly
the hooks its plan needs, applies arm-time faults immediately, and
keeps a ``fired`` log of every fault that actually triggered.

Arming the processor hook also forces :meth:`Processor.run` onto the
reference interpreter — the compiled fast path has no per-instruction
hook by design (docs/PERFORMANCE.md keeps it lean), and fault
campaigns want the reference semantics anyway.
"""

from ..cpu.errors import ConfigurationError
from .plan import (DmaDelay, DmaDrop, LsuDelay, MemoryBitFlip, OpcodeCorrupt,
                   RegisterCorrupt, StateCorrupt)

M32 = 0xFFFFFFFF


class FaultInjector:
    """Installs one plan's faults on one processor."""

    def __init__(self, processor, plan):
        self.processor = processor
        self.plan = plan
        #: Log of faults that actually triggered: ``(kind, when)``.
        self.fired = []
        self._armed = False
        self._hooked_regions = []
        self._hooked_lsus = []
        self._hooked_prefetcher = None

    # -- context-manager sugar ----------------------------------------------

    def __enter__(self):
        self.arm()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.disarm()
        return False

    # -- arming --------------------------------------------------------------

    def arm(self):
        """Apply arm-time faults and install hooks for the rest."""
        if self._armed:
            raise ConfigurationError("fault injector is already armed")
        self._armed = True
        processor = self.processor
        regions = {region.name: region for region in processor.memory_map}

        mem_pending = {}
        step_faults = []
        lsu_faults = {}
        dma_faults = []
        for fault in self.plan:
            if isinstance(fault, MemoryBitFlip):
                region = regions.get(fault.region)
                if region is None:
                    continue
                if fault.after_accesses == 0:
                    self._flip(region, fault)
                else:
                    mem_pending.setdefault(fault.region, []).append(fault)
            elif isinstance(fault, (RegisterCorrupt, StateCorrupt)):
                step_faults.append(fault)
            elif isinstance(fault, LsuDelay):
                lsu_faults.setdefault(fault.lsu, []).append(fault)
            elif isinstance(fault, (DmaDrop, DmaDelay)):
                dma_faults.append(fault)
            # OpcodeCorrupt is applied by corrupt_program(), not a hook.

        for name, pending in mem_pending.items():
            region = regions[name]
            region.fault_hook = self._memory_hook(pending)
            self._hooked_regions.append(region)
        if step_faults or mem_pending:
            # mem_pending alone also arms the processor hook: it forces
            # the interpreter, whose access pattern the trigger counts
            # are defined against.
            processor._fault_hook = self._step_hook(step_faults)
        for index, faults in lsu_faults.items():
            if index >= len(processor.lsus):
                continue
            lsu = processor.lsus[index]
            lsu.fault_hook = self._lsu_hook(faults)
            self._hooked_lsus.append(lsu)
        if dma_faults:
            engine = getattr(processor, "prefetcher", None)
            if engine is not None:
                engine.fault_hook = self._dma_hook(dma_faults)
                self._hooked_prefetcher = engine
        return self

    def disarm(self):
        """Remove every installed hook (applied flips stay applied)."""
        for region in self._hooked_regions:
            region.fault_hook = None
        for lsu in self._hooked_lsus:
            lsu.fault_hook = None
        if self._hooked_prefetcher is not None:
            self._hooked_prefetcher.fault_hook = None
        self.processor._fault_hook = None
        self._hooked_regions = []
        self._hooked_lsus = []
        self._hooked_prefetcher = None
        self._armed = False

    # -- program (IMEM) corruption -------------------------------------------

    def corrupt_program(self, portable):
        """A corrupted copy of *portable* per the plan's IMEM faults.

        The input is never mutated — portable programs are shared
        through the kernel cache.  Returns the input unchanged when the
        plan has no applicable :class:`OpcodeCorrupt` fault.
        """
        from ..core.kernels import PortableProgram
        entries = list(portable.entries)
        changed = False
        for fault in self.plan:
            if not isinstance(fault, OpcodeCorrupt):
                continue
            index = fault.entry_index % len(entries)
            entry = self._corrupt_entry(entries[index], fault)
            if entry is not None:
                entries[index] = entry
                changed = True
                self.fired.append((fault.kind, "arm"))
        if not changed:
            return portable
        clone = PortableProgram.__new__(PortableProgram)
        clone.entries = tuple(entries)
        clone.labels = dict(portable.labels)
        clone.source_name = portable.source_name + "+fault"
        clone.fingerprint = clone.compute_fingerprint()
        return clone

    @staticmethod
    def _corrupt_entry(entry, fault):
        if entry[0] == "i":
            tag, name, operands, line = entry
            targets = [i for i, op in enumerate(operands)
                       if isinstance(op, int)]
            if not targets:
                return None
            index = targets[fault.operand_index % len(targets)]
            operands = tuple(
                (op ^ fault.mask) if i == index else op
                for i, op in enumerate(operands))
            return (tag, name, operands, line)
        tag, slots, format_name, line = entry
        targets = [(si, oi) for si, (_name, ops) in enumerate(slots)
                   for oi, op in enumerate(ops) if isinstance(op, int)]
        if not targets:
            return None
        slot_index, op_index = targets[fault.operand_index % len(targets)]
        new_slots = []
        for si, (name, ops) in enumerate(slots):
            if si == slot_index:
                ops = tuple((op ^ fault.mask) if oi == op_index else op
                            for oi, op in enumerate(ops))
            new_slots.append((name, ops))
        return (tag, tuple(new_slots), format_name, line)

    # -- fault application ----------------------------------------------------

    def _flip(self, region, fault, when="arm"):
        if not 0 <= fault.word_index < len(region.words):
            return
        region.words[fault.word_index] ^= (1 << fault.bit)
        self.fired.append((fault.kind, when))

    def _memory_hook(self, pending):
        counter = [0]
        faults = sorted(pending, key=lambda f: f.after_accesses)

        def hook(region, addr, kind):
            counter[0] += 1
            while faults and faults[0].after_accesses <= counter[0]:
                self._flip(region, faults.pop(0),
                           "access %d" % counter[0])
        return hook

    def _step_hook(self, step_faults):
        counter = [0]
        faults = sorted(step_faults, key=lambda f: f.at_step)

        def hook(core, pc, cycle):
            step = counter[0]
            counter[0] += 1
            while faults and faults[0].at_step <= step:
                self._apply_step_fault(core, faults.pop(0), step)
        return hook

    def _apply_step_fault(self, core, fault, step):
        if isinstance(fault, RegisterCorrupt):
            values = core.regs._values
            if 0 <= fault.reg < len(values):
                values[fault.reg] = (values[fault.reg] ^ fault.mask) & M32
                self.fired.append((fault.kind, "step %d" % step))
            return
        for extension in core.extensions:
            if getattr(extension, "name", None) != fault.extension:
                continue
            state = None
            for candidate in getattr(extension, "states", ()):
                if candidate.name == fault.state:
                    state = candidate
                    break
            if state is None:
                return
            if isinstance(state.value, list):
                lane = fault.lane % len(state.value)
                state.value[lane] = (state.value[lane] ^ fault.mask) & M32
            else:
                state.value = (state.value ^ fault.mask) & state.mask
            self.fired.append((fault.kind, "step %d" % step))
            return

    def _lsu_hook(self, faults):
        counter = [0]

        def hook(lsu, addr, is_write):
            counter[0] += 1
            extra = 0
            for fault in faults:
                begin = fault.after_accesses
                if begin <= counter[0] < begin + fault.length:
                    extra += fault.extra_cycles
                    if counter[0] == begin:
                        self.fired.append((fault.kind,
                                           "access %d" % counter[0]))
            return extra
        return hook

    def _dma_hook(self, faults):
        counter = [0]

        def hook(engine, src, dst, nbytes):
            descriptor = counter[0]
            counter[0] += 1
            for fault in faults:
                if fault.descriptor != descriptor:
                    continue
                self.fired.append((fault.kind,
                                   "descriptor %d" % descriptor))
                if isinstance(fault, DmaDrop):
                    return ("drop",)
                return ("delay", fault.extra_cycles)
            return None
        return hook
