"""FLIX: Flexible Length Instruction Xtension bundle formats.

The paper sets the VLIW instruction width to 64 bits (Section 3.2).  A
bundle occupies two 32-bit instruction-memory words: the header word
carries the FLIX marker opcode, the format id and the slot count; the
remaining 16 header bits plus the full second word form a 48-bit
payload pool into which the slots are bit-packed.

Each slot stores the 8-bit opcode of its operation followed by compact
operand fields (4 bits per register, 10 bits per immediate or branch
offset).  Branch offsets are re-encoded relative to the word after the
bundle, giving a ±511-word range — ample for the unrolled kernel loops.
"""

from ..isa.encoding import pack_flix_header
from ..isa.errors import EncodingError
from .compiler import compact_operand_kinds, field_bits
from .language import TieError

PAYLOAD_BITS = 48
OPCODE_BITS = 8


class Slot:
    """One issue slot of a FLIX format.

    *classes* lists what the slot's hardware can execute: TIE slot
    classes (``"mem"``, ``"compute"``) and/or base instruction kinds
    (``"alu"``, ``"branch"``, ``"jump"``, ``"load"``, ``"store"``,
    ``"nop"``).
    """

    def __init__(self, name, classes):
        self.name = name
        self.classes = frozenset(classes)

    def accepts(self, spec):
        if spec.kind == "tie":
            slot_class = getattr(spec, "slot_class", None)
            # slot_class is carried on the TIE operation; the spec kind
            # collapses to "tie", so consult the per-op class recorded
            # at bind time.
            return slot_class in self.classes or "any" in self.classes
        return spec.kind in self.classes or "any" in self.classes

    def __repr__(self):
        return "<Slot %s %s>" % (self.name, sorted(self.classes))


class FlixFormat:
    """A 64-bit bundle format with ordered slots."""

    def __init__(self, name, format_id, slots):
        if not 0 <= format_id < 16:
            raise TieError("format id must fit in 4 bits")
        self.name = name
        self.format_id = format_id
        self.slots = list(slots)
        self._isa = None

    def bind(self, isa):
        """Associate with a processor's ISA (for opcode lookup)."""
        self._isa = isa

    # -- slot matching -------------------------------------------------------

    def accepts(self, items):
        """Greedy in-order assignment of bundle items to slots."""
        if len(items) > len(self.slots):
            return False
        slot_index = 0
        for item in items:
            placed = False
            while slot_index < len(self.slots):
                if self.slots[slot_index].accepts(item.spec):
                    placed = True
                    slot_index += 1
                    break
                slot_index += 1
            if not placed:
                return False
        return True

    # -- binary encoding ------------------------------------------------------

    def encode_bundle(self, bundle, index):
        """Encode to ``(header_word, payload_word)``.

        *index* is the bundle's word index (branch offsets are relative
        to ``index + 2``).
        """
        bits = []
        for slot_item in bundle.slots:
            spec = slot_item.spec
            bits.append((spec.opcode, OPCODE_BITS))
            kinds = compact_operand_kinds(spec)
            operands = _encoding_operands(spec, slot_item.operands, index)
            for kind, value in zip(kinds, operands):
                width = field_bits(kind)
                if kind in ("imm", "off"):
                    lo = -(1 << (width - 1))
                    hi = 1 << (width - 1)
                    if not lo <= value < hi:
                        raise EncodingError(
                            "%s: %s field %d out of range in bundle"
                            % (spec.name, kind, value))
                    value &= (1 << width) - 1
                elif not 0 <= value < (1 << width):
                    raise EncodingError(
                        "%s: register field %d out of range"
                        % (spec.name, value))
                bits.append((value, width))
        total = sum(width for _v, width in bits)
        if total > PAYLOAD_BITS:
            raise EncodingError(
                "bundle payload needs %d bits, only %d available"
                % (total, PAYLOAD_BITS))
        payload = 0
        used = 0
        for value, width in bits:
            payload = (payload << width) | value
            used += width
        payload <<= PAYLOAD_BITS - used
        header = pack_flix_header(self.format_id, len(bundle.slots))
        header |= (payload >> 32) & 0xFFFF
        return header, payload & 0xFFFFFFFF

    def decode_bundle(self, header_word, payload_word, slot_count, index):
        """Decode back to a list of ``(spec, operands)`` pairs."""
        if self._isa is None:
            raise EncodingError("FLIX format %s is not bound to an ISA"
                                % self.name)
        pool = ((header_word & 0xFFFF) << 32) | payload_word
        cursor = PAYLOAD_BITS
        slots = []
        for _ in range(slot_count):
            cursor -= OPCODE_BITS
            opcode = (pool >> cursor) & 0xFF
            spec = self._isa.lookup_opcode(opcode)
            kinds = compact_operand_kinds(spec)
            fields = []
            for kind in kinds:
                width = field_bits(kind)
                cursor -= width
                value = (pool >> cursor) & ((1 << width) - 1)
                if kind in ("imm", "off"):
                    sign = 1 << (width - 1)
                    value = (value & (sign - 1)) - (value & sign)
                fields.append(value)
            operands = _decoding_operands(spec, fields, index)
            slots.append((spec, operands))
        return slots

    def __repr__(self):
        return "<FlixFormat %s id=%d slots=%d>" % (
            self.name, self.format_id, len(self.slots))


def _encoding_operands(spec, operands, index):
    """Map decode-time operands to encodable field values.

    TIE operands are packed in declaration order (immediates are
    validated to come last), so no padding or reordering is needed —
    unlike the 32-bit scalar encodings which pad to format arity.
    """
    if getattr(spec, "operand_kinds", None) is not None:
        return operands
    values = list(operands)
    if spec.fmt in ("B", "BZ", "J"):
        values[-1] = values[-1] - (index + 2)
    return values


def _decoding_operands(spec, fields, index):
    if getattr(spec, "operand_kinds", None) is not None:
        return tuple(fields)
    values = list(fields)
    if spec.fmt in ("B", "BZ", "J"):
        values[-1] = values[-1] + index + 2
    return tuple(values)
