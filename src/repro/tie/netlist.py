"""Structural hardware cost model for TIE extensions.

The paper synthesizes every processor configuration with Synopsys
Design Compiler to obtain area, maximum frequency and power (Section
5.1/5.3).  We replace full logic synthesis with a structural model:
every TIE operation declares the datapath primitives it instantiates
(comparators, muxes, adders, ...), each primitive has a calibrated cost
in NAND2 gate equivalents (GE) and a propagation delay in FO4 units,
and the technology libraries in :mod:`repro.synth.technology` convert
GE to mm² and FO4 to nanoseconds.

This level of modeling reproduces the paper's synthesis observations:
the union datapath is the largest op (extra result-write wiring), the
merge-sort circuits are the smallest (no partial loading, one LSU), and
merging many primitives into one instruction stretches the critical
path and costs core frequency (Section 2.2).
"""

from .language import TieError


class Primitive:
    """One datapath building block with GE area and FO4 delay."""

    __slots__ = ("name", "ge", "delay_fo4")

    def __init__(self, name, ge, delay_fo4):
        self.name = name
        self.ge = ge
        self.delay_fo4 = delay_fo4

    def __repr__(self):
        return "<Primitive %s %dGE %dFO4>" % (self.name, self.ge,
                                              self.delay_fo4)


def _p(name, ge, delay):
    return name, Primitive(name, ge, delay)


#: Calibrated primitive library (GE = NAND2 equivalents at standard
#: drive; delays in FO4 inverter delays).  Values follow standard-cell
#: estimates for static CMOS implementations.
PRIMITIVES = dict((
    _p("ff_bit", 6, 1),              # one flip-flop bit (setup+clk->q)
    _p("lat_bit", 4, 1),
    _p("and32", 32, 1),
    _p("or32", 32, 1),
    _p("xor32", 48, 2),
    _p("mux2_32", 64, 2),            # 2:1 mux, 32 bit
    _p("mux4_32", 170, 4),
    _p("mux8_32", 380, 6),
    _p("crossbar4_32", 760, 5),      # 4x4 32-bit shuffle crossbar
    _p("eq32", 100, 7),              # 32-bit equality comparator
    _p("cmp32", 230, 12),            # 32-bit magnitude comparator
    _p("minmax32", 360, 15),         # compare + two muxes
    _p("adder32", 350, 13),
    _p("inc32", 120, 9),
    _p("popcount4", 30, 5),
    _p("popcount8", 75, 7),
    _p("prio4", 25, 4),              # 4-way priority encoder
    _p("prio8", 60, 6),
    _p("shift_barrel32", 450, 12),
    _p("fifo_ctl", 220, 6),          # small FIFO control logic
    _p("agu", 420, 10),              # address generation (ptr+bounds)
    _p("wire_32", 16, 1),            # 32-bit routing track buffer
))


def primitive(name):
    try:
        return PRIMITIVES[name]
    except KeyError:
        raise TieError("unknown primitive %r" % name) from None


class Netlist:
    """Aggregated GE area by report group plus critical-path registry."""

    def __init__(self, name):
        self.name = name
        self.groups = {}
        self.paths = {}

    def add(self, group, ge):
        self.groups[group] = self.groups.get(group, 0) + ge

    def add_path(self, name, delay_fo4):
        current = self.paths.get(name, 0)
        if delay_fo4 > current:
            self.paths[name] = delay_fo4

    def total_ge(self):
        return sum(self.groups.values())

    def longest_path_fo4(self):
        return max(self.paths.values()) if self.paths else 0

    def merged_with(self, other):
        merged = Netlist("%s+%s" % (self.name, other.name))
        for source in (self, other):
            for group, ge in source.groups.items():
                merged.add(group, ge)
            for name, delay in source.paths.items():
                merged.add_path(name, delay)
        return merged

    def share(self, group):
        total = self.total_ge()
        return self.groups.get(group, 0) / total if total else 0.0

    def __repr__(self):
        return "<Netlist %s %d GE>" % (self.name, self.total_ge())


def circuit_cost(circuit):
    """Total GE of a primitive-count mapping."""
    return sum(primitive(name).ge * count
               for name, count in circuit.items())


def path_delay(path):
    """Series delay (FO4) of a chain of primitives."""
    return sum(primitive(name).delay_fo4 for name in path)


#: Per-bit cost of one state write port (input mux + enable fanout).
STATE_WRITE_PORT_GE = 2.8
#: Per-bit cost of one state read port (output buffering/fanout).
STATE_READ_PORT_GE = 1.2
#: Decode + control logic per operation.
DECODE_PER_OP_GE = 400
#: Operand routing per touched state bit (result/operand mux fabric).
DECODE_PER_TOUCHED_BIT_GE = 1.1


def extension_netlist(extension):
    """Build the netlist of one TIE extension.

    Groups:

    * ``states`` — flip-flops of every state/regfile bit plus the
      read/write port muxing each operation's access adds (this is what
      makes the paper's "States" row 14.7 % of the processor, far more
      than the raw flop count),
    * ``decode`` — shared instruction decode and operand routing,
    * one ``op:<group>`` entry per operation group, from the declared
      circuits plus any extension-level shared circuits.
    """
    netlist = Netlist(extension.name)
    ff = primitive("ff_bit").ge

    state_bits = sum(state.width_bits for state in extension.states)
    regfile_bits = sum(rf.width_bits * rf.size
                       for rf in extension.regfiles)
    states_ge = (state_bits + regfile_bits) * ff
    # Port costs: each operation touching a state adds one port.
    for operation in extension.operations:
        for use in operation.states:
            bits = use.state.width_bits
            if use.direction in ("in", "inout"):
                states_ge += bits * STATE_READ_PORT_GE
            if use.direction in ("out", "inout"):
                states_ge += bits * STATE_WRITE_PORT_GE
    netlist.add("states", int(states_ge))

    decode_ge = 0
    for operation in extension.operations:
        decode_ge += DECODE_PER_OP_GE
        touched_bits = sum(use.state.width_bits for use in operation.states
                           if use.direction in ("out", "inout"))
        decode_ge += touched_bits * DECODE_PER_TOUCHED_BIT_GE
    netlist.add("decode", int(decode_ge))

    for operation in extension.operations:
        netlist.add("op:%s" % operation.group,
                    circuit_cost(operation.circuit))
        if operation.path:
            netlist.add_path(operation.name, path_delay(operation.path))
    for group, circuit in extension.shared_circuits.items():
        netlist.add("op:%s" % group, circuit_cost(circuit))
    for name, path in extension.shared_paths.items():
        netlist.add_path(name, path_delay(path))
    return netlist
