"""TIE-like instruction-extension framework.

The reproduction of Tensilica's TIE tool chain (paper Sections 2.1 and
3.1-3.2): declare states, register files and operations; attach them to
a processor to get executable instructions, assembler support, FLIX
bundle formats, compiler intrinsics and a synthesis netlist.
"""

from .compiler import attach_extension, compile_operation
from .flix import FlixFormat, Slot
from .intrinsics import Intrinsics
from .language import (Operand, Operation, RegFile, State, StateUse,
                       TieError, TieExtension, VectorState)
from .netlist import (Netlist, PRIMITIVES, Primitive, circuit_cost,
                      extension_netlist, path_delay, primitive)

__all__ = [
    "attach_extension", "compile_operation",
    "FlixFormat", "Slot", "Intrinsics",
    "Operand", "Operation", "RegFile", "State", "StateUse",
    "TieError", "TieExtension", "VectorState",
    "Netlist", "PRIMITIVES", "Primitive", "circuit_cost",
    "extension_netlist", "path_delay", "primitive",
]
