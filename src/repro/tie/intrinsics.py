"""Intrinsic-style direct invocation of TIE operations.

The processor generator emits compiler intrinsics for each new
instruction (paper Section 3.1: "The newly introduced instructions are
made available by intrinsics").  This module provides the equivalent
for host-side testing: call a single extension operation on a live
processor without assembling a program.  The paper's verification
methodology — "a dedicated unit test for each newly introduced
instruction" — is implemented on top of this in ``tests/core``.
"""

from ..isa.errors import IsaError
from .language import TieError


class Intrinsics:
    """Callable façade over a processor's TIE operations.

    ``Intrinsics(proc).sop_intersect(...)`` executes the operation's
    semantics on the live processor state.  Inputs are matched to the
    operation's ``in`` operands in declaration order; outputs are
    returned (a bare value for a single output, a tuple otherwise).
    """

    def __init__(self, processor):
        self._processor = processor

    def __getattr__(self, name):
        processor = self.__dict__["_processor"]
        try:
            spec = processor.isa.lookup(name)
        except IsaError:
            raise AttributeError(name) from None
        if spec.kind != "tie":
            raise TieError("%s is not a TIE operation" % name)
        extension = processor.extension_states[spec.extension]
        operation = extension.operation(name)
        return _IntrinsicCall(processor, spec, operation)


class _IntrinsicCall:
    """Executes one TIE op with Python-level operand values."""

    def __init__(self, processor, spec, operation):
        self.processor = processor
        self.spec = spec
        self.operation = operation

    def __call__(self, *values):
        processor = self.processor
        operands = []
        scratch_ar = 8  # a8..a15 stage intrinsic values
        scratch_rf = {}
        value_iter = iter(values)
        in_count = sum(1 for op in self.operation.operands
                       if op.direction == "in")
        if len(values) != in_count:
            raise TieError("%s takes %d inputs, got %d"
                           % (self.spec.name, in_count, len(values)))
        for operand in self.operation.operands:
            if operand.kind == "imm":
                operands.append(next(value_iter))
                continue
            if operand.kind == "ar":
                if operand.direction == "in":
                    if scratch_ar > 15:
                        raise TieError("too many AR operands to stage")
                    processor.regs[scratch_ar] = next(value_iter)
                operands.append(scratch_ar)
                scratch_ar += 1
                continue
            regfile = operand.kind
            index = scratch_rf.get(regfile.name, 0)
            if operand.direction == "in":
                regfile.write(index, next(value_iter))
            operands.append(index)
            scratch_rf[regfile.name] = index + 1
        processor.mem_extra = 0
        self.spec.executor(processor, tuple(operands))
        outputs = []
        for operand, slot in zip(self.operation.operands, operands):
            if operand.direction != "out":
                continue
            if operand.kind == "ar":
                outputs.append(processor.regs[slot])
            else:
                outputs.append(operand.kind.read(slot))
        if not outputs:
            return None
        if len(outputs) == 1:
            return outputs[0]
        return tuple(outputs)
