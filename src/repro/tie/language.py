"""A TIE-like extension description language.

The paper builds its instruction-set extension with Tensilica's TIE
language (Section 3.2, Figure 5): designers declare *states*, *register
files* and *operations*, and the processor generator produces a
simulator, compiler intrinsics and synthesizable RTL.  This module is
the declarative layer of our Python equivalent; the
:mod:`repro.tie.compiler` turns these declarations into executable
instructions, and :mod:`repro.tie.netlist` derives the hardware cost
model used by :mod:`repro.synth`.

Example (the paper's Figure 5, verbatim semantics)::

    state8 = State("state8", width_bits=8)        # 8'h0, add_read_write
    reg32 = RegFile("reg32", width_bits=32, size=8, prefix="v")
    add3_shift = Operation(
        "add3_shift",
        operands=[Operand("res", "out", "ar"),
                  Operand("in0", "in", reg32),
                  Operand("in1", "in", reg32),
                  Operand("in2", "in", reg32)],
        states=[StateUse(state8, "in")],
        semantics=lambda ext, core, in0, in1, in2:
            ((in0 + in1 + in2) >> ext.state("state8").value) & 0xFFFFFFFF,
    )
"""

from ..isa.errors import IsaError

M32 = 0xFFFFFFFF


class TieError(IsaError):
    """Invalid TIE declaration or usage."""


class State:
    """A TIE state: private processor-internal storage.

    States are read and written by operations *in the same cycle the
    instruction executes*; in contrast to register-file entries, the
    program (not the compiler) manages their contents.  States up to
    32 bits wide are exposed to software through ``rur``/``wur``
    (TIE's ``add_read_write``) under their own name.
    """

    def __init__(self, name, width_bits=32, initial=0, read_write=True):
        if width_bits < 1:
            raise TieError("state width must be positive")
        self.name = name
        self.width_bits = width_bits
        self.mask = (1 << width_bits) - 1
        self.initial = initial & self.mask
        self.read_write = read_write and width_bits <= 32
        self.value = self.initial

    def reset(self):
        self.value = self.initial

    def write(self, value):
        self.value = value & self.mask

    def __repr__(self):
        return "<State %s %db = 0x%x>" % (self.name, self.width_bits,
                                          self.value)


class VectorState(State):
    """A state holding a short vector of 32-bit elements.

    Models the paper's Load/Word/Result/Store states (Figure 8/9),
    which each keep four 32-bit elements.  The vector is stored as a
    Python list for direct datapath-style manipulation.
    """

    def __init__(self, name, lanes=4, initial=None):
        super().__init__(name, width_bits=32 * lanes, read_write=False)
        self.lanes = lanes
        self.initial_vector = list(initial) if initial is not None \
            else [0] * lanes
        if len(self.initial_vector) != lanes:
            raise TieError("initial vector length mismatch")
        self.value = list(self.initial_vector)

    def reset(self):
        self.value = list(self.initial_vector)

    def write(self, value):
        if len(value) != self.lanes:
            raise TieError("%s: expected %d lanes, got %d"
                           % (self.name, self.lanes, len(value)))
        self.value = [v & M32 for v in value]

    def __repr__(self):
        return "<VectorState %s %s>" % (self.name, self.value)


class RegFile:
    """A user-defined register file (TIE ``regfile``).

    Entries are addressed in assembly as ``<prefix><index>``, e.g. the
    Figure 5 file ``regfile reg32 32 8 reg`` with prefix ``v`` gives
    ``v0`` .. ``v7``.
    """

    def __init__(self, name, width_bits=32, size=8, prefix=None):
        if size < 1 or size > 16:
            raise TieError("regfile size must be 1..16 (4-bit operand)")
        self.name = name
        self.width_bits = width_bits
        self.mask = (1 << width_bits) - 1
        self.size = size
        self.prefix = prefix or name
        self.values = [0] * size

    def parse(self, token):
        token = token.strip()
        if token.startswith(self.prefix):
            tail = token[len(self.prefix):]
            if tail.isdigit():
                index = int(tail)
                if 0 <= index < self.size:
                    return index
        raise TieError("not a %s register: %r" % (self.name, token))

    def read(self, index):
        return self.values[index]

    def write(self, index, value):
        self.values[index] = value & self.mask

    def reset(self):
        self.values = [0] * self.size

    def __repr__(self):
        return "<RegFile %s %dx%db>" % (self.name, self.size,
                                        self.width_bits)


class Operand:
    """One operand of a TIE operation."""

    def __init__(self, name, direction, kind):
        if direction not in ("in", "out"):
            raise TieError("operand direction must be 'in' or 'out'")
        if not (kind in ("ar", "imm") or isinstance(kind, RegFile)):
            raise TieError("operand kind must be 'ar', 'imm' or a RegFile")
        self.name = name
        self.direction = direction
        self.kind = kind

    @property
    def compact_kind(self):
        if self.kind == "ar":
            return "ar"
        if self.kind == "imm":
            return "imm"
        return "rf:%s" % self.kind.name

    def __repr__(self):
        return "<Operand %s %s %s>" % (self.name, self.direction,
                                       self.compact_kind)


class StateUse:
    """Declares that an operation reads and/or writes a state."""

    def __init__(self, state, direction):
        if direction not in ("in", "out", "inout"):
            raise TieError("state direction must be in/out/inout")
        self.state = state
        self.direction = direction


class Operation:
    """A TIE operation: semantics plus hardware-cost description.

    Parameters
    ----------
    semantics:
        ``f(extension, core, *in_values) -> out value(s)``.  Receives
        the values of the ``in`` operands in declaration order and must
        return one value per ``out`` operand (a bare value when there
        is exactly one).  State access goes through the extension.
    slot_class:
        FLIX scheduling class (``"mem"``, ``"compute"``, ``"any"``);
        determines which bundle slots accept the operation.
    circuit:
        Mapping of primitive name to count, consumed by the synthesis
        netlist (:mod:`repro.tie.netlist`).
    """

    def __init__(self, name, operands=(), states=(), semantics=None,
                 slot_class="compute", extra_cycles=0, circuit=None,
                 path=(), group=None, description=""):
        self.name = name
        self.operands = list(operands)
        self.states = list(states)
        if semantics is None:
            raise TieError("operation %s needs semantics" % name)
        self.semantics = semantics
        self.slot_class = slot_class
        self.extra_cycles = extra_cycles
        self.circuit = dict(circuit or {})
        #: Series chain of primitives forming the op's critical path.
        self.path = tuple(path)
        #: Area-report group (Table 4 style); defaults to the op name.
        self.group = group or name
        self.description = description
        out_count = sum(1 for op in self.operands
                        if op.direction == "out")
        self._single_out = out_count == 1
        self._out_count = out_count

    def __repr__(self):
        return "<Operation %s(%s)>" % (
            self.name, ", ".join(o.name for o in self.operands))


class TieExtension:
    """A named bundle of states, register files, operations and formats.

    One extension instance attaches to exactly one processor (states
    are per-core hardware).  Configuration catalogs therefore construct
    a fresh extension per processor.
    """

    def __init__(self, name, states=(), regfiles=(), operations=(),
                 flix_formats=(), shared_circuits=None, shared_paths=None,
                 description=""):
        self.name = name
        self.states = list(states)
        self.regfiles = list(regfiles)
        self.operations = list(operations)
        self.flix_formats = list(flix_formats)
        #: Circuits shared by several operations, keyed by area-report
        #: group (e.g. the all-to-all comparator matrix shared by the
        #: three SOP result circuits -> group "all").
        self.shared_circuits = dict(shared_circuits or {})
        #: Critical paths through shared circuitry: name -> primitive
        #: chain.
        self.shared_paths = dict(shared_paths or {})
        self.description = description
        self.core = None
        self._attached = False

    def state(self, name):
        for state in self.states:
            if state.name == name:
                return state
        raise TieError("no state named %r in extension %s"
                       % (name, self.name))

    def regfile(self, name):
        for regfile in self.regfiles:
            if regfile.name == name:
                return regfile
        raise TieError("no regfile named %r in extension %s"
                       % (name, self.name))

    def operation(self, name):
        for operation in self.operations:
            if operation.name == name:
                return operation
        raise TieError("no operation named %r in extension %s"
                       % (name, self.name))

    def reset(self):
        for state in self.states:
            state.reset()
        for regfile in self.regfiles:
            regfile.reset()

    def snapshot_state(self):
        """Copy of every state/regfile value, for run rollback.

        Used by the processor's fast-path fallback and paranoid-mode
        replay (docs/ROBUSTNESS.md): values are copied, never aliased,
        so a later run cannot mutate the snapshot.
        """
        return ([list(s.value) if isinstance(s.value, list) else s.value
                 for s in self.states],
                [list(rf.values) for rf in self.regfiles])

    def restore_state(self, snap):
        state_values, regfile_values = snap
        for state, value in zip(self.states, state_values):
            state.value = list(value) if isinstance(value, list) else value
        for regfile, values in zip(self.regfiles, regfile_values):
            regfile.values = list(values)

    def attach(self, processor):
        """Register this extension with a processor (TIE compile)."""
        from .compiler import attach_extension
        if self._attached:
            raise TieError("extension %s is already attached" % self.name)
        attach_extension(self, processor)
        self._attached = True
        self.core = processor

    def netlist(self):
        """Structural netlist of the extension for synthesis."""
        from .netlist import extension_netlist
        return extension_netlist(self)
