"""TIE compiler: turns extension declarations into executable ISA.

This is the reproduction's "processor generator" (paper Figure 4): it
takes a :class:`~repro.tie.language.TieExtension` and registers, on a
concrete processor instance,

* ``rur``/``wur`` access for every ``add_read_write`` state,
* the user register files (visible to the assembler),
* one :class:`~repro.isa.instructions.InstructionSpec` per operation,
  with an executor closure that moves operand values between the base
  register file / user register files and the semantics function,
* the FLIX bundle formats.
"""

from ..isa.instructions import InstructionSpec  # noqa: F401
from .language import TieError

#: Compact operand field widths inside FLIX slots (bits).
AR_FIELD_BITS = 4
RF_FIELD_BITS = 4
IMM_FIELD_BITS = 10


def attach_extension(extension, processor):
    """Register *extension* with *processor* (both are mutated)."""
    if not hasattr(processor, "regfiles"):
        processor.regfiles = {}
    for state in extension.states:
        if state.read_write:
            processor.register_user_register(
                state.name,
                _state_reader(state),
                _state_writer(state))
    for regfile in extension.regfiles:
        if regfile.name in processor.regfiles:
            raise TieError("regfile %r already registered" % regfile.name)
        processor.regfiles[regfile.name] = regfile
    for operation in extension.operations:
        spec = compile_operation(operation, extension, processor.isa)
        processor.isa.add(spec)
    for flix_format in extension.flix_formats:
        flix_format.bind(processor.isa)
        processor.flix_formats.append(flix_format)
    processor.extension_states[extension.name] = extension


def _state_reader(state):
    return lambda: state.value


def _state_writer(state):
    return state.write


def compile_operation(operation, extension, isa):
    """Build the :class:`InstructionSpec` for one TIE operation."""
    kinds = tuple(op.compact_kind for op in operation.operands)
    _validate_operands(operation, kinds)
    fmt = _choose_format(operation.name, kinds)
    executor = _make_executor(operation, extension)
    spec = InstructionSpec(
        name=operation.name,
        opcode=isa.allocate_extension_opcode(),
        fmt=fmt,
        kind="tie",
        executor=executor,
        extension=extension.name,
        extra_cycles=operation.extra_cycles)
    spec.operand_kinds = kinds
    spec.slot_class = operation.slot_class
    spec.reads_positions = tuple(
        index for index, op in enumerate(operation.operands)
        if op.direction == "in" and op.kind == "ar")
    spec.writes_positions = tuple(
        index for index, op in enumerate(operation.operands)
        if op.direction == "out" and op.kind == "ar")
    return spec


def _validate_operands(operation, kinds):
    imm_positions = [i for i, kind in enumerate(kinds) if kind == "imm"]
    if len(imm_positions) > 1:
        raise TieError("%s: at most one immediate operand"
                       % operation.name)
    if imm_positions and imm_positions[0] != len(kinds) - 1:
        raise TieError("%s: the immediate must be the last operand"
                       % operation.name)
    nibbles = sum(1 for kind in kinds if kind != "imm")
    if nibbles > 4:
        raise TieError("%s: at most four register operands"
                       % operation.name)
    for op in operation.operands:
        if op.kind == "imm" and op.direction == "out":
            raise TieError("%s: immediates cannot be outputs"
                           % operation.name)


def _choose_format(name, kinds):
    has_imm = "imm" in kinds
    nibbles = sum(1 for kind in kinds if kind != "imm")
    if not kinds:
        return "N"
    if has_imm:
        if nibbles > 2:
            raise TieError("%s: immediate form allows at most two "
                           "register operands" % name)
        return "I"
    if nibbles > 3:
        return "R4"
    return "R"


def _make_executor(operation, extension):
    """Compile the operand marshalling around the semantics function."""
    in_moves = []
    out_moves = []
    for position, operand in enumerate(operation.operands):
        if operand.direction == "in":
            in_moves.append((position, operand.kind))
        else:
            out_moves.append((position, operand.kind))
    semantics = operation.semantics
    single_out = len(out_moves) == 1
    name = operation.name

    def executor(core, operands, _in=tuple(in_moves),
                 _out=tuple(out_moves), _ext=extension):
        args = []
        regs = core.regs
        for position, kind in _in:
            value = operands[position]
            if kind == "ar":
                args.append(regs[value])
            elif kind == "imm":
                args.append(value)
            else:
                args.append(kind.values[value])
        result = semantics(_ext, core, *args)
        if not _out:
            return
        if single_out:
            results = (result,)
        else:
            results = result
            try:
                count = len(results)
            except TypeError:
                count = -1
            if count != len(_out):
                raise TieError(
                    "%s semantics returned %r for %d outputs"
                    % (name, result, len(_out)))
        for (position, kind), value in zip(_out, results):
            target = operands[position]
            if kind == "ar":
                regs[target] = value
            else:
                kind.write(target, value)

    return executor


def compact_operand_kinds(spec):
    """Compact kinds of any spec (TIE or base) for FLIX slot packing."""
    kinds = getattr(spec, "operand_kinds", None)
    if kinds is not None:
        return kinds
    return spec.format.operand_kinds


def field_bits(kind):
    if kind in ("ar", "reg") or kind.startswith("rf:"):
        return AR_FIELD_BITS
    if kind in ("imm", "off"):
        return IMM_FIELD_BITS
    raise TieError("unknown compact operand kind %r" % kind)
