"""x86 processor models for the Section 5.4 comparisons.

The paper compares its processor against published single-thread
numbers on two Intel machines (Tables 5 and 6).  This module carries
those processors' specifications (as quoted by the paper) and a cost
model that converts simulated-SSE operation counts into cycles.

The cost model uses per-class reciprocal throughputs typical of the
respective microarchitectures plus one calibration factor per
published measurement, absorbing memory-system effects the operation
counts cannot see.  With calibration, the models land on the published
60 M elements/s (swsort on the Q9550) and 1100 M elements/s (swset on
the i7-920); the *shape* across sizes then follows from the executable
algorithms.
"""

from .swset import swset_intersect
from .swsort import swsort


class X86Processor:
    """Specification sheet of one comparison processor (paper values)."""

    def __init__(self, name, clock_mhz, tdp_w, cores, threads, feature_nm,
                 die_mm2):
        self.name = name
        self.clock_mhz = clock_mhz
        self.tdp_w = tdp_w
        self.cores = cores
        self.threads = threads
        self.feature_nm = feature_nm
        self.die_mm2 = die_mm2

    def __repr__(self):
        return "<X86Processor %s %.2fGHz %dW>" % (
            self.name, self.clock_mhz / 1000.0, self.tdp_w)


#: Intel Core 2 Quad Q9550 as quoted in the paper's Table 5.
Q9550 = X86Processor("Intel Q9550", 3220.0, 95, 4, 4, 45, 214)

#: Intel Core i7-920 as quoted in the paper's Table 6.
I7_920 = X86Processor("Intel i7-920", 2670.0, 130, 4, 8, 45, 263)

#: Published single-thread throughputs the paper compares against
#: (million elements per second).
PUBLISHED_SWSORT_MEPS = 60.0
PUBLISHED_SWSET_MEPS = 1100.0

#: Reciprocal throughput (cycles per operation) per SIMD op class on a
#: Core-2/Nehalem-class out-of-order core.
DEFAULT_CPI = {
    "load": 1.0,
    "store": 1.0,
    "minmax": 0.8,
    "shuffle": 0.8,
    "compare": 0.9,
    "mask": 1.2,
    "scalar": 0.35,
}


class X86CostModel:
    """Operation counts -> cycles -> throughput on one processor."""

    def __init__(self, processor, cpi=None, calibration=1.0):
        self.processor = processor
        self.cpi = dict(cpi or DEFAULT_CPI)
        #: Multiplier on raw cycles absorbing cache/memory effects.
        self.calibration = calibration

    def cycles(self, counts):
        raw = sum(counts.get(name, 0) * per_op
                  for name, per_op in self.cpi.items())
        return raw * self.calibration

    def throughput_meps(self, counts, elements):
        cycles = self.cycles(counts)
        if cycles <= 0:
            return 0.0
        return elements * self.processor.clock_mhz / cycles

    def energy_per_element_nj(self, throughput_meps):
        """TDP-based energy per element (the paper's comparison basis)."""
        if throughput_meps <= 0:
            return float("inf")
        return self.processor.tdp_w * 1000.0 / throughput_meps


# Calibration factors, fixed so the models reproduce the published
# throughputs at the papers' reference sizes (see tests/baselines).
# swsort < 1: the Q9550 issues up to three SIMD uops per cycle on this
# shuffle/minmax-heavy kernel; swset > 1: STTNI and the compress-store
# are slower in practice than the raw uop counts suggest.
SWSORT_CALIBRATION = 0.860
SWSET_CALIBRATION = 1.330


def swsort_model():
    return X86CostModel(Q9550, calibration=SWSORT_CALIBRATION)


def swset_model():
    return X86CostModel(I7_920, calibration=SWSET_CALIBRATION)


def measure_swsort(values, model=None):
    """Run swsort and return ``(sorted, throughput_meps, machine)``."""
    model = model or swsort_model()
    result, machine = swsort(values)
    throughput = model.throughput_meps(machine.counts, len(values))
    return result, throughput, machine


def measure_swset(set_a, set_b, model=None):
    """Run swset and return ``(result, throughput_meps, machine)``.

    Throughput uses the paper's definition: ``(|A| + |B|) / time``.
    """
    model = model or swset_model()
    result, machine = swset_intersect(set_a, set_b)
    throughput = model.throughput_meps(machine.counts,
                                       len(set_a) + len(set_b))
    return result, throughput, machine


def extrapolate_sort_throughput(sample_values, target_size, model=None):
    """Predict swsort throughput at *target_size* from a sample run.

    Merge-sort work per element grows with ``log2`` of the size; the
    sample run yields operations per element-pass, which extrapolates
    to the published measurement's 512K values without simulating all
    of them.
    """
    import math
    model = model or swsort_model()
    sample_size = len(sample_values)
    _result, machine = swsort(list(sample_values))
    cycles_sample = model.cycles(machine.counts)
    passes_sample = max(math.ceil(math.log2(max(sample_size, 2) / 4.0)), 1) \
        + 1  # merge passes + the in-register presort pass
    per_elem_pass = cycles_sample / (sample_size * passes_sample)
    passes_target = max(math.ceil(math.log2(target_size / 4.0)), 1) + 1
    cycles_target = per_elem_pass * target_size * passes_target
    return target_size * model.processor.clock_mhz / cycles_target
