"""swset: the SIMD sorted-set intersection of Schlegel et al. [33].

The paper's Table 6 baseline.  The algorithm compares blocks of the two
sets with an all-to-all comparison instruction (STTNI-style) and
advances the block of the set whose maximum is smaller — exactly the
scheme the paper generalizes in hardware (Section 2.3: "the indices of
at least one input set are increased ... instead of one").

Runs on the simulated SSE unit; the operation counts feed the i7-920
cost model calibrated to the published 1100 M elements/s.
"""

from .sse import LANES, SimdMachine

#: Reference size of the published measurement (two 10M-element sets).
REFERENCE_SIZE = 10_000_000


def swset_intersect(set_a, set_b, machine=None):
    """SIMD sorted-set intersection; returns ``(result, SimdMachine)``."""
    machine = machine or SimdMachine()
    result = []
    len_a, len_b = len(set_a), len(set_b)
    pos_a = pos_b = 0
    while len_a - pos_a >= LANES and len_b - pos_b >= LANES:
        block_a = machine.load(set_a, pos_a)
        block_b = machine.load(set_b, pos_b)
        mask = machine.all_to_all_eq(block_a, block_b)
        bits = machine.movemask(mask)
        machine.scalar(2)  # extract/branch on the mask
        for lane in range(LANES):
            if bits & (1 << lane):
                result.append(block_a[lane])
                machine.scalar(2)  # compress-store of one match
        max_a = block_a[LANES - 1]
        max_b = block_b[LANES - 1]
        machine.scalar(3)  # tail compare + advance + loop branch
        if max_a <= max_b:
            pos_a += LANES
        if max_b <= max_a:
            pos_b += LANES
    # scalar tail (fewer than 4 elements left in one set)
    while pos_a < len_a and pos_b < len_b:
        a, b = set_a[pos_a], set_b[pos_b]
        machine.scalar(4)
        if a == b:
            result.append(a)
            pos_a += 1
            pos_b += 1
        elif a < b:
            pos_a += 1
        else:
            pos_b += 1
    return result, machine
