"""A simulated 128-bit SIMD (SSE-class) vector unit.

The paper's Section 5.4 comparison points are software algorithms on
x86 SIMD: the merge-sort of Chhugani et al. [6] and the sorted-set
intersection of Schlegel et al. [33].  To make those baselines
*executable* rather than just quoted numbers, this module provides a
minimal 128-bit vector machine (4 x 32-bit lanes) with the instruction
repertoire those algorithms need, and counts every operation by class
so the x86 cost model (:mod:`repro.baselines.x86`) can convert runs
into cycle estimates.
"""

M32 = 0xFFFFFFFF
LANES = 4


class SimdMachine:
    """Executes 4x32-bit vector operations and counts them by class.

    Vectors are plain tuples of four ints; the machine is purely an
    accounting device plus semantics, mirroring how the algorithms
    would use SSE intrinsics (``_mm_min_epu32``, ``_mm_shuffle_epi32``,
    ``_mm_cmpeq_epi32``, ...).
    """

    #: Operation classes tracked for the cost model.
    CLASSES = ("load", "store", "minmax", "shuffle", "compare", "mask",
               "scalar")

    def __init__(self):
        self.counts = {name: 0 for name in self.CLASSES}

    def _count(self, name, amount=1):
        self.counts[name] += amount

    def total_ops(self):
        return sum(self.counts.values())

    def reset(self):
        for name in self.counts:
            self.counts[name] = 0

    # -- memory ---------------------------------------------------------------

    def load(self, buffer, index):
        """Aligned 128-bit load of buffer[index:index+4]."""
        self._count("load")
        return tuple(buffer[index:index + LANES])

    def store(self, buffer, index, vector):
        self._count("store")
        buffer[index:index + LANES] = list(vector)

    # -- arithmetic ------------------------------------------------------------

    def min(self, a, b):
        self._count("minmax")
        return tuple(x if x < y else y for x, y in zip(a, b))

    def max(self, a, b):
        self._count("minmax")
        return tuple(x if x > y else y for x, y in zip(a, b))

    # -- data movement -----------------------------------------------------------

    def shuffle(self, vector, order):
        """``_mm_shuffle_epi32``-style lane permutation."""
        self._count("shuffle")
        return tuple(vector[i] for i in order)

    def unpack_lo(self, a, b):
        self._count("shuffle")
        return (a[0], b[0], a[1], b[1])

    def unpack_hi(self, a, b):
        self._count("shuffle")
        return (a[2], b[2], a[3], b[3])

    def blend(self, a, b, mask):
        self._count("shuffle")
        return tuple(b[i] if mask[i] else a[i] for i in range(LANES))

    def movelh(self, a, b):
        """``movlhps``: low 64 bits of a, low 64 bits of b."""
        self._count("shuffle")
        return (a[0], a[1], b[0], b[1])

    def movehl(self, a, b):
        """``movhlps``: high 64 bits of a, high 64 bits of b."""
        self._count("shuffle")
        return (a[2], a[3], b[2], b[3])

    def shuffle2(self, a, b, order):
        """``shufps``: two lanes from a, two lanes from b."""
        self._count("shuffle")
        return (a[order[0]], a[order[1]], b[order[2]], b[order[3]])

    def broadcast(self, value):
        self._count("shuffle")
        return (value & M32,) * LANES

    # -- comparison --------------------------------------------------------------

    def cmpeq(self, a, b):
        self._count("compare")
        return tuple(1 if x == y else 0 for x, y in zip(a, b))

    def cmpgt(self, a, b):
        self._count("compare")
        return tuple(1 if x > y else 0 for x, y in zip(a, b))

    def all_to_all_eq(self, a, b):
        """STTNI-style full comparison (``_mm_cmpestrm`` analog).

        Compares every lane of *a* against every lane of *b* and
        returns the per-lane-of-a match mask — the instruction the
        paper's Section 2.3 highlights as the key to SIMD sorted-set
        intersection [33].  Counted as a single (expensive) compare op
        plus a mask op, matching STTNI's 2-uop footprint.
        """
        self._count("compare")
        self._count("mask")
        in_b = set(b)
        return tuple(1 if x in in_b else 0 for x in a)

    def movemask(self, mask_vector):
        self._count("mask")
        bits = 0
        for i, bit in enumerate(mask_vector):
            if bit:
                bits |= 1 << i
        return bits

    # -- scalar bookkeeping --------------------------------------------------------

    def scalar(self, amount=1):
        """Account scalar loop/pointer instructions around the SIMD."""
        self._count("scalar", amount)


def transpose4(machine, rows):
    """4x4 transpose with unpack operations (8 shuffles)."""
    r0, r1, r2, r3 = rows
    t0 = machine.unpack_lo(r0, r1)
    t1 = machine.unpack_hi(r0, r1)
    t2 = machine.unpack_lo(r2, r3)
    t3 = machine.unpack_hi(r2, r3)
    c0 = (t0[0], t0[1], t2[0], t2[1])
    c1 = (t0[2], t0[3], t2[2], t2[3])
    c2 = (t1[0], t1[1], t3[0], t3[1])
    c3 = (t1[2], t1[3], t3[2], t3[3])
    machine.scalar(4)  # the final recombination shuffles
    return c0, c1, c2, c3


def bitonic_merge4(machine, a, b):
    """Merge two sorted 4-vectors into sorted ``(low, high)`` vectors.

    The classic 3-level SSE bitonic merge network of swsort's merge
    kernel [6]: reversing one input makes the 8-sequence bitonic, then
    three min/max levels with stride 4, 2 and 1 sort it.
    """
    y = machine.shuffle(b, (3, 2, 1, 0))
    # stride-4 compare-exchange
    lo = machine.min(a, y)
    hi = machine.max(a, y)
    # stride-2 within each half
    v1 = machine.movelh(lo, hi)         # (lo0, lo1, hi0, hi1)
    v2 = machine.movehl(lo, hi)         # (lo2, lo3, hi2, hi3)
    m = machine.min(v1, v2)
    big = machine.max(v1, v2)
    lo2 = machine.movelh(m, big)        # (m0, m1, M0, M1)
    hi2 = machine.movehl(m, big)        # (m2, m3, M2, M3)
    # stride-1 within each half
    w1 = machine.shuffle2(lo2, hi2, (0, 2, 0, 2))
    w2 = machine.shuffle2(lo2, hi2, (1, 3, 1, 3))
    n = machine.min(w1, w2)
    big2 = machine.max(w1, w2)
    low = machine.unpack_lo(n, big2)    # (n0, N0, n1, N1)
    high = machine.unpack_hi(n, big2)   # (n2, N2, n3, N3)
    return low, high
