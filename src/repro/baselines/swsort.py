"""swsort: the SIMD merge-sort of Chhugani et al. [6], executable.

The paper's Table 5 compares its hardware merge-sort (hwsort) against
the published single-thread performance of this algorithm on an Intel
Q9550.  Here the algorithm actually runs on the simulated SSE unit
(:mod:`repro.baselines.sse`):

1. *In-register phase*: load 4x4 values, sort across registers with a
   min/max odd-even network, transpose — yields sorted runs of 4.
2. *Merge phases*: repeatedly merge run pairs with the 4-wide bitonic
   merge network, streaming 4 values per network invocation.

The operation counts feed the x86 cost model; the model is calibrated
so that sorting the reference 512K values matches the published
60 M elements/s on the Q9550 (Table 5).
"""

from .sse import LANES, SimdMachine, bitonic_merge4, transpose4

#: Reference size used by Chhugani et al.'s single-thread measurement.
REFERENCE_SIZE = 512_000


def _sort_columns(machine, rows):
    """Sort four 4-vectors element-wise (an odd-even network per lane)."""
    r0, r1, r2, r3 = rows
    lo01, hi01 = machine.min(r0, r1), machine.max(r0, r1)
    lo23, hi23 = machine.min(r2, r3), machine.max(r2, r3)
    lo = machine.min(lo01, lo23)
    mid1 = machine.max(lo01, lo23)
    mid2 = machine.min(hi01, hi23)
    hi = machine.max(hi01, hi23)
    mid_lo = machine.min(mid1, mid2)
    mid_hi = machine.max(mid1, mid2)
    return lo, mid_lo, mid_hi, hi


def presort_runs(machine, values):
    """Phase 1: produce sorted runs of four (in-register sort)."""
    output = list(values)
    for base in range(0, len(values) - len(values) % (LANES * LANES),
                      LANES * LANES):
        rows = [machine.load(values, base + LANES * i)
                for i in range(LANES)]
        cols = transpose4(machine, list(rows))
        sorted_cols = _sort_columns(machine, list(cols))
        runs = transpose4(machine, list(sorted_cols))
        for i, run in enumerate(runs):
            machine.store(output, base + LANES * i, run)
        machine.scalar(2)  # loop increment + bound check
    # tail: scalar insertion per run of 4
    tail = len(values) - len(values) % (LANES * LANES)
    for base in range(tail, len(values), LANES):
        chunk = sorted(values[base:base + LANES])
        output[base:base + len(chunk)] = chunk
        machine.scalar(6 * len(chunk))
    return output


def merge_pass(machine, source, run_length):
    """One merge pass: merge adjacent run pairs with the SIMD network."""
    n = len(source)
    output = [0] * n
    for start in range(0, n, 2 * run_length):
        end_a = min(start + run_length, n)
        end_b = min(start + 2 * run_length, n)
        _merge_runs(machine, source, start, end_a, end_b, output)
        machine.scalar(4)  # run bookkeeping
    return output


def _merge_runs(machine, source, start, end_a, end_b, output):
    pos_a, pos_b, pos_out = start, end_a, start
    if end_a - start < LANES or end_b - end_a < LANES:
        # short runs: scalar merge (also covers the odd tail run)
        merged = sorted(source[start:end_b])
        output[start:end_b] = merged
        machine.scalar(8 * max(end_b - start, 1))
        return
    keep = machine.load(source, pos_a)
    pos_a += LANES
    nxt = machine.load(source, pos_b)
    pos_b += LANES
    while True:
        low, keep = bitonic_merge4(machine, keep, nxt)
        machine.store(output, pos_out, low)
        pos_out += LANES
        machine.scalar(3)  # head compare + pointer update + branch
        a_left = end_a - pos_a
        b_left = end_b - pos_b
        # refill from the run whose next element is smaller; once that
        # run cannot supply a whole vector the network must stop (its
        # short tail may hold elements smaller than the other run's
        # next block), and the scalar drain takes over.
        next_a = source[pos_a] if a_left > 0 else None
        next_b = source[pos_b] if b_left > 0 else None
        if next_b is None or (next_a is not None and next_a <= next_b):
            if a_left < LANES:
                break
            nxt = machine.load(source, pos_a)
            pos_a += LANES
        else:
            if b_left < LANES:
                break
            nxt = machine.load(source, pos_b)
            pos_b += LANES
    # drain: merge the kept vector with the scalar remainders
    remainder = sorted(list(keep) + source[pos_a:end_a]
                       + source[pos_b:end_b])
    output[pos_out:pos_out + len(remainder)] = remainder
    machine.scalar(6 * max(len(remainder), 1))


def swsort(values, machine=None):
    """Full SIMD merge-sort; returns ``(sorted_list, SimdMachine)``."""
    machine = machine or SimdMachine()
    if not values:
        return [], machine
    data = presort_runs(machine, list(values))
    run_length = LANES
    while run_length < len(data):
        data = merge_pass(machine, data, run_length)
        run_length *= 2
    return data, machine
