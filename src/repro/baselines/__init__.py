"""x86 SIMD baselines of the paper's Section 5.4 comparison."""

from .sse import SimdMachine, bitonic_merge4, transpose4
from .swset import swset_intersect
from .swsort import swsort
from .x86 import (I7_920, PUBLISHED_SWSET_MEPS, PUBLISHED_SWSORT_MEPS,
                  Q9550, X86CostModel, X86Processor,
                  extrapolate_sort_throughput, measure_swset,
                  measure_swsort, swset_model, swsort_model)

__all__ = ["SimdMachine", "bitonic_merge4", "transpose4",
           "swset_intersect", "swsort",
           "I7_920", "PUBLISHED_SWSET_MEPS", "PUBLISHED_SWSORT_MEPS",
           "Q9550", "X86CostModel", "X86Processor",
           "extrapolate_sort_throughput", "measure_swset",
           "measure_swsort", "swset_model", "swsort_model"]
