"""Shared infrastructure of the experiment harnesses.

Every experiment module exposes ``run(...)`` returning an
:class:`ExperimentResult` whose rows mirror the corresponding paper
table/figure, together with the paper's reference values so reports and
tests can compare shape.  Beyond the fixed-width text rendering,
results serialize to JSON artifacts (``repro experiments --artifacts
DIR``) so downstream tooling can diff regenerated numbers across PRs
without scraping tables.
"""

import json
import os
import re

#: Schema tag embedded in serialized experiment artifacts.
EXPERIMENT_SCHEMA = "repro.experiment/v1"


class ExperimentResult:
    """Rows of one regenerated table or figure."""

    def __init__(self, experiment_id, title, headers, rows, notes=()):
        self.experiment_id = experiment_id
        self.title = title
        self.headers = list(headers)
        self.rows = [list(row) for row in rows]
        self.notes = list(notes)

    def column(self, header):
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def row_by(self, header, value):
        index = self.headers.index(header)
        for row in self.rows:
            if row[index] == value:
                return dict(zip(self.headers, row))
        raise KeyError("no row with %s == %r" % (header, value))

    def format(self):
        """Render as a fixed-width text table."""
        def fmt(value):
            if isinstance(value, float):
                if value != 0 and abs(value) < 10:
                    return "%.3f" % value
                return "%.1f" % value
            return str(value)

        table = [self.headers] + [[fmt(v) for v in row]
                                  for row in self.rows]
        widths = [max(len(row[i]) for row in table)
                  for i in range(len(self.headers))]
        lines = ["%s — %s" % (self.experiment_id, self.title)]
        lines.append("  ".join(h.ljust(w)
                               for h, w in zip(table[0], widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in table[1:]:
            lines.append("  ".join(cell.rjust(w)
                                   for cell, w in zip(row, widths)))
        for note in self.notes:
            lines.append("note: %s" % note)
        return "\n".join(lines)

    # -- machine-readable artifacts ------------------------------------------

    def to_dict(self):
        return {
            "schema": EXPERIMENT_SCHEMA,
            "experiment": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent)

    def save(self, directory):
        """Write ``<experiment_id>.json`` into *directory*; return path."""
        os.makedirs(directory, exist_ok=True)
        slug = re.sub(r"[^A-Za-z0-9._-]+", "_",
                      self.experiment_id).strip("_").lower()
        path = os.path.join(directory, "%s.json" % slug)
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")
        return path

    def __repr__(self):
        return "<ExperimentResult %s: %d rows>" % (self.experiment_id,
                                                   len(self.rows))


def ratio(measured, reference):
    """Measured/reference ratio, tolerant of zero references."""
    if not reference:
        return float("nan")
    return measured / reference


def lint_notes(processor, label=""):
    """Enforcing static verification of a processor's builtin kernels.

    Error-severity findings raise
    :class:`~repro.analysis.LintError` — a regenerated table must not
    be built from kernels the verifier can refute.  Set
    ``REPRO_LINT_WARN_ONLY=1`` to downgrade errors to warnings (e.g.
    to reproduce a fault-campaign finding).  Warning-severity findings
    are returned as human-readable note strings (empty when clean) for
    ``ExperimentResult.notes``.
    """
    from ..analysis import (LintError, lint_processor, lint_program,
                            lint_warn_only)
    from ..core.kernels import builtin_kernel_sources

    report = lint_processor(processor)
    for kernel_name, source in builtin_kernel_sources(processor):
        program = processor.assembler.assemble(source, kernel_name)
        report.extend(lint_program(program, processor, deep=True))
    if report.has_errors and not lint_warn_only():
        raise LintError(report)
    prefix = "%s: " % label if label else ""
    return ["%slint: %s" % (prefix, diagnostic.format())
            for diagnostic in report.at_least("warning")]
