"""Shared infrastructure of the experiment harnesses.

Every experiment module exposes ``run(...)`` returning an
:class:`ExperimentResult` whose rows mirror the corresponding paper
table/figure, together with the paper's reference values so reports and
tests can compare shape.
"""


class ExperimentResult:
    """Rows of one regenerated table or figure."""

    def __init__(self, experiment_id, title, headers, rows, notes=()):
        self.experiment_id = experiment_id
        self.title = title
        self.headers = list(headers)
        self.rows = [list(row) for row in rows]
        self.notes = list(notes)

    def column(self, header):
        index = self.headers.index(header)
        return [row[index] for row in self.rows]

    def row_by(self, header, value):
        index = self.headers.index(header)
        for row in self.rows:
            if row[index] == value:
                return dict(zip(self.headers, row))
        raise KeyError("no row with %s == %r" % (header, value))

    def format(self):
        """Render as a fixed-width text table."""
        def fmt(value):
            if isinstance(value, float):
                if value != 0 and abs(value) < 10:
                    return "%.3f" % value
                return "%.1f" % value
            return str(value)

        table = [self.headers] + [[fmt(v) for v in row]
                                  for row in self.rows]
        widths = [max(len(row[i]) for row in table)
                  for i in range(len(self.headers))]
        lines = ["%s — %s" % (self.experiment_id, self.title)]
        lines.append("  ".join(h.ljust(w)
                               for h, w in zip(table[0], widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in table[1:]:
            lines.append("  ".join(cell.rjust(w)
                                   for cell, w in zip(row, widths)))
        for note in self.notes:
            lines.append("note: %s" % note)
        return "\n".join(lines)

    def __repr__(self):
        return "<ExperimentResult %s: %d rows>" % (self.experiment_id,
                                                   len(self.rows))


def ratio(measured, reference):
    """Measured/reference ratio, tolerant of zero references."""
    if not reference:
        return float("nan")
    return measured / reference
