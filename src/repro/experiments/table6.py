"""Experiment E6 — the paper's Table 6 (intersection comparison).

hwset (our EIS intersection on DBA_2LSU_EIS with partial loading,
2x2500 values at 50 % selectivity) vs swset (Schlegel et al.'s SIMD
intersection on an Intel i7-920, published single-thread throughput for
two 10M-element sets).  The swset number is re-derived by running the
executable baseline at a sample size — the algorithm's per-element cost
is size-invariant, which the tests verify.
"""

from ..baselines.x86 import I7_920, PUBLISHED_SWSET_MEPS, measure_swset
from ..configs.catalog import build_processor
from ..core.kernels import run_set_operation
from ..synth.synthesis import synthesize_config
from ..workloads.sets import generate_set_pair
from .base import ExperimentResult

#: The paper's Table 6.
PAPER_TABLE6 = {
    "Intel i7-920": {"throughput_meps": 1100.0, "clock_mhz": 2670,
                     "tdp_w": 130.0, "cores": "4/8", "feature_nm": 45,
                     "area_mm2": 263.0},
    "DBA_2LSU_EIS": {"throughput_meps": 1203.0, "clock_mhz": 410,
                     "tdp_w": 0.135, "cores": "1/1", "feature_nm": 65,
                     "area_mm2": 1.5},
}


def run(hw_set_size=2500, sw_sample_size=50_000, selectivity=0.5,
        seed=42):
    """Regenerate the sorted-set intersection comparison table."""
    report = synthesize_config("DBA_2LSU_EIS")
    processor = build_processor("DBA_2LSU_EIS", partial_load=True)
    set_a, set_b = generate_set_pair(hw_set_size,
                                     selectivity=selectivity, seed=seed)
    output, run_result = run_set_operation(processor, "intersection",
                                           set_a, set_b)
    if output != sorted(set(set_a) & set(set_b)):
        raise AssertionError("hwset produced a wrong result")
    hw_throughput = run_result.throughput_meps(len(set_a) + len(set_b),
                                               report.fmax_mhz)

    sw_a, sw_b = generate_set_pair(sw_sample_size,
                                   selectivity=selectivity,
                                   seed=seed + 1)
    _result, sw_throughput, _machine = measure_swset(sw_a, sw_b)

    rows = [
        ["Intel i7-920 (swset)", round(sw_throughput, 1),
         round(I7_920.clock_mhz), I7_920.tdp_w,
         "%d/%d" % (I7_920.cores, I7_920.threads), I7_920.feature_nm,
         I7_920.die_mm2],
        ["DBA_2LSU_EIS (hwset)", round(hw_throughput, 1),
         round(report.fmax_mhz), round(report.power_mw / 1000.0, 3),
         "1/1", 65, round(report.total_mm2, 1)],
    ]
    return ExperimentResult(
        "Table 6", "Sorted-set intersection comparison",
        ["processor", "throughput_meps", "clock_mhz", "max_tdp_w",
         "cores_threads", "feature_nm", "area_mm2"],
        rows,
        notes=["swset model calibrated to the published %.0f M/s for "
               "2x10M sets" % PUBLISHED_SWSET_MEPS,
               "hwset intersects 2x%d values at %.0f%% selectivity"
               % (hw_set_size, selectivity * 100)])
