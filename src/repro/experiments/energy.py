"""Experiment E8 — the paper's headline energy claim.

Abstract/Section 5.4: "Our processor requires in various configurations
more than 960x less energy than a high-end x86 processor while
providing the same performance."  The 960x comes from the TDP ratio of
the i7-920 (130 W) against DBA_2LSU_EIS (0.135 W) at comparable
intersection throughput; this experiment derives the ratios from the
reproduced Tables 3, 5 and 6.
"""

from ..baselines.x86 import I7_920, Q9550
from ..synth.power import energy_per_element_nj
from ..synth.synthesis import synthesize_config
from .base import ExperimentResult
from .table5 import run as run_table5
from .table6 import run as run_table6

#: Ratio the paper's abstract quotes (130 W / 0.135 W).
PAPER_POWER_RATIO = 960.0


def run(seed=42):
    """Energy-efficiency comparison derived from E3, E5 and E6."""
    report = synthesize_config("DBA_2LSU_EIS")
    dba_watts = report.power_mw / 1000.0

    table6 = run_table6(seed=seed)
    hw_set = table6.row_by("processor", "DBA_2LSU_EIS (hwset)")
    sw_set = table6.row_by("processor", "Intel i7-920 (swset)")
    table5 = run_table5(seed=seed)
    hw_sort = table5.row_by("processor", "DBA_2LSU_EIS (hwsort)")
    sw_sort = table5.row_by("processor", "Intel Q9550 (swsort)")

    rows = [
        ["intersection", "Intel i7-920", sw_set["throughput_meps"],
         I7_920.tdp_w,
         round(energy_per_element_nj(I7_920.tdp_w * 1000.0,
                                     sw_set["throughput_meps"]), 2)],
        ["intersection", "DBA_2LSU_EIS", hw_set["throughput_meps"],
         dba_watts,
         round(energy_per_element_nj(report.power_mw,
                                     hw_set["throughput_meps"]), 4)],
        ["merge-sort", "Intel Q9550", sw_sort["throughput_meps"],
         Q9550.tdp_w,
         round(energy_per_element_nj(Q9550.tdp_w * 1000.0,
                                     sw_sort["throughput_meps"]), 2)],
        ["merge-sort", "DBA_2LSU_EIS", hw_sort["throughput_meps"],
         dba_watts,
         round(energy_per_element_nj(report.power_mw,
                                     hw_sort["throughput_meps"]), 4)],
    ]
    power_ratio = I7_920.tdp_w / dba_watts
    energy_ratio_set = (
        energy_per_element_nj(I7_920.tdp_w * 1000.0,
                              sw_set["throughput_meps"])
        / energy_per_element_nj(report.power_mw,
                                hw_set["throughput_meps"]))
    return ExperimentResult(
        "Energy",
        "Energy-efficiency comparison (paper headline: >960x)",
        ["workload", "processor", "throughput_meps", "power_w",
         "energy_nj_per_element"],
        rows,
        notes=["power ratio i7-920 / DBA_2LSU_EIS: %.0fx (paper: >%.0fx)"
               % (power_ratio, PAPER_POWER_RATIO),
               "energy-per-element ratio (intersection): %.0fx"
               % energy_ratio_set])
