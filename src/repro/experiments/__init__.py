"""Experiment harnesses: one module per paper table/figure.

See DESIGN.md for the experiment index (E1..E8) and EXPERIMENTS.md for
paper-vs-measured records.  ``python -m repro.experiments <id>`` runs
one experiment and prints the regenerated table.
"""

from . import (compression_tradeoff, energy, figure13, iso_area,
               prefetch_validation, scale_out, table2, table3, table4,
               table5, table6)
from .base import ExperimentResult

EXPERIMENTS = {
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "figure13": figure13.run,
    "prefetch": prefetch_validation.run,
    "energy": energy.run,
    "iso_area": iso_area.run,
    "compression": compression_tradeoff.run,
    "scale_out": scale_out.run,
}

__all__ = ["EXPERIMENTS", "ExperimentResult", "compression_tradeoff",
           "energy", "figure13", "iso_area", "prefetch_validation",
           "scale_out", "table2", "table3", "table4", "table5",
           "table6"]
