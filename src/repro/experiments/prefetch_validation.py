"""Experiment E7 — system-level prefetcher validation.

Section 5.2: "If more values should be used, the data prefetcher is
required for reloading elements.  System level simulation validates a
constant throughput of the processor for larger data sets due to the
concurrently performed data prefetch."

This experiment intersects set pairs well beyond the local-store
capacity, streamed through the DMA prefetcher with double buffering,
and reports throughput per size — plus the same runs with blocking
(non-overlapped) transfers to quantify what the concurrency buys.
"""

from ..configs.catalog import build_processor
from ..core.kernels import run_set_operation
from ..core.streaming import run_streaming_set_operation
from ..synth.synthesis import synthesize_config
from ..workloads.sets import generate_set_pair
from .base import ExperimentResult

DEFAULT_SIZES = (8_000, 16_000, 32_000, 64_000)


def run(sizes=DEFAULT_SIZES, selectivity=0.5, seed=42,
        name="DBA_2LSU_EIS", which="intersection", check_results=True):
    """Throughput vs set size, streamed vs local-only reference."""
    fmax = synthesize_config(name).fmax_mhz
    processor = build_processor(name, partial_load=True, prefetcher=True,
                                sim_headroom_kb=1024)
    rows = []

    reference_a, reference_b = generate_set_pair(
        5000, selectivity=selectivity, seed=seed)
    _values, local_result = run_set_operation(processor, which,
                                              reference_a, reference_b)
    local_meps = local_result.throughput_meps(10_000, fmax)
    rows.append(["local-only", 5000, round(local_meps, 1), "-"])

    for size in sizes:
        set_a, set_b = generate_set_pair(size, selectivity=selectivity,
                                         seed=seed)
        expected = sorted(set(set_a) & set(set_b)) \
            if which == "intersection" else None
        values, overlapped = run_streaming_set_operation(
            processor, which, set_a, set_b, overlap=True)
        if check_results and expected is not None and values != expected:
            raise AssertionError("streamed %s wrong at size %d"
                                 % (which, size))
        _values, blocking = run_streaming_set_operation(
            processor, which, set_a, set_b, overlap=False)
        rows.append(["streamed+overlap", size,
                     round(overlapped.throughput_meps(2 * size, fmax), 1),
                     round(blocking.throughput_meps(2 * size, fmax), 1)])
    return ExperimentResult(
        "Prefetch",
        "Constant throughput beyond the local store (Section 5.2 claim)",
        ["mode", "elements_per_set", "throughput_meps",
         "blocking_meps"],
        rows,
        notes=["streamed runs double-buffer 12KB chunks through the DMA "
               "prefetcher; 'blocking' disables the overlap"])
