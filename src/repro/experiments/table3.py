"""Experiment E3 — the paper's Table 3 (synthesis results).

Logic area, memory area, maximum frequency and power of the five
configurations at 65 nm, plus DBA_2LSU_EIS at 28 nm.
"""

from ..synth.synthesis import synthesize_config
from ..synth.technology import GF_28NM_SLP, TSMC_65NM_LP
from .base import ExperimentResult

#: The paper's Table 3: (logic mm², memory mm², fmax MHz, power mW).
PAPER_TABLE3 = {
    ("65nm", "108Mini"): (0.2201, 0.0, 442, 27.4),
    ("65nm", "DBA_1LSU"): (0.177, 0.874, 435, 56.6),
    ("65nm", "DBA_2LSU"): (0.177, 0.870, 429, 57.1),
    ("65nm", "DBA_1LSU_EIS"): (0.523, 0.874, 424, 123.5),
    ("65nm", "DBA_2LSU_EIS"): (0.645, 0.870, 410, 135.1),
    ("28nm", "DBA_2LSU_EIS"): (0.169, 0.232, 500, 47.0),
}

ROWS_65NM = ("108Mini", "DBA_1LSU", "DBA_2LSU", "DBA_1LSU_EIS",
             "DBA_2LSU_EIS")


def run():
    """Regenerate Table 3 from the structural synthesis model."""
    rows = []
    for name in ROWS_65NM:
        report = synthesize_config(name, technology=TSMC_65NM_LP)
        rows.append(["65nm", name, round(report.logic_mm2, 3),
                     round(report.memory_mm2, 3),
                     round(report.fmax_mhz),
                     round(report.power_mw, 1)])
    report28 = synthesize_config("DBA_2LSU_EIS", technology=GF_28NM_SLP)
    rows.append(["28nm", "DBA_2LSU_EIS", round(report28.logic_mm2, 3),
                 round(report28.memory_mm2, 3), round(report28.fmax_mhz),
                 round(report28.power_mw, 1)])
    return ExperimentResult(
        "Table 3", "Synthesis results",
        ["technology", "processor", "logic_mm2", "memory_mm2",
         "fmax_mhz", "power_mw"],
        rows,
        notes=["power at fmax, typical case (65nm: 25C/1.25V; "
               "28nm SLP/SLVT: 25C/0.8V)"])
