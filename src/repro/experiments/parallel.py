"""Multiprocess fan-out of independent experiment ids.

Each experiment regenerates one paper table/figure from its own
processor instances, so experiments are independent of each other and
parallelize trivially across worker processes.  The worker entry point
lives in this real module (not ``__main__``) so it stays picklable
under every multiprocessing start method; results cross the process
boundary as the same JSON-ready dicts the artifact files use and are
rebuilt into :class:`~repro.experiments.base.ExperimentResult` in the
parent, which then prints and saves them in the requested order.

Scheduling goes through :mod:`repro.supervisor`: one crashing,
hanging or killed experiment no longer takes the sweep's other
results with it — its siblings complete, the failure is reported per
experiment, and transient failures are retried.
"""

import os

from ..supervisor import Task, supervise
from .base import ExperimentResult

#: Workload-size overrides applied by ``--quick`` (same shapes, faster).
QUICK_OVERRIDES = {
    "table2": {"set_size": 1000, "sort_size": 1024},
    "figure13": {"set_size": 800},
    "prefetch": {"sizes": (8_000, 16_000)},
    "scale_out": {"rows": 4096, "query_count": 12,
                  "shard_counts": (1, 2, 4)},
}

#: Experiments that accept the ``--cost-model`` opt-in (cycle counts
#: from the calibrated cost model instead of the ISS; bit-exact).
COST_MODEL_EXPERIMENTS = frozenset({"table2", "table5", "scale_out"})


def run_experiment(name, quick=False, cost_model=False):
    """Run one experiment by id, honoring the ``--quick`` overrides."""
    from . import EXPERIMENTS
    runner = EXPERIMENTS[name]
    kwargs = {}
    if quick and name in QUICK_OVERRIDES:
        kwargs.update(QUICK_OVERRIDES[name])
    if cost_model and name in COST_MODEL_EXPERIMENTS:
        kwargs["cost_model"] = True
    return runner(**kwargs)


def _run_worker(name, quick, cost_model=False):
    """Process-pool entry point: run and return a picklable dict.

    The payload carries the experiment result *and* the worker's own
    telemetry (the module-level kernel-cache counters) so per-process
    metrics stop vanishing with the worker — the parent merges them
    into :attr:`SweepOutcome.metrics`.
    """
    # Test-only fault injection: environment variables cross the
    # process boundary under every multiprocessing start method, which
    # is exactly what the supervisor tests need to crash or wedge one
    # specific worker.
    if os.environ.get("REPRO_FAIL_EXPERIMENT") == name:
        raise RuntimeError("injected failure in experiment %r" % name)
    if os.environ.get("REPRO_HANG_EXPERIMENT") == name:
        import time
        time.sleep(3600)
    result = run_experiment(name, quick, cost_model).to_dict()
    from ..core.kernels import portable_cache_stats
    stats = portable_cache_stats()
    return {
        "result": result,
        "metrics": {"kernels.cache.%s" % key: value
                    for key, value in sorted(stats.items())},
    }


def result_from_dict(payload):
    """Rebuild an :class:`ExperimentResult` from its ``to_dict`` form."""
    return ExperimentResult(payload["experiment"], payload["title"],
                            payload["headers"], payload["rows"],
                            payload.get("notes", ()))


class SweepOutcome:
    """Results plus per-experiment statuses of one parallel sweep."""

    def __init__(self, results, report, metrics=None):
        #: :class:`ExperimentResult` list in input order; ``None`` for
        #: experiments that failed or timed out.
        self.results = results
        #: The underlying :class:`repro.supervisor.SuperviseReport`.
        self.report = report
        #: Merged sweep telemetry: ``supervisor.*`` counters plus each
        #: worker's metrics under ``worker.<experiment>.*`` and the
        #: aggregated ``kernels.cache.*`` totals.
        self.metrics = {} if metrics is None else metrics

    @property
    def ok(self):
        return self.report.ok

    def status_table(self):
        return self.report.status_table()


def _unwrap(value):
    """``(result_dict, metrics_dict)`` from a worker payload.

    Accepts the bare ``ExperimentResult.to_dict()`` shape too, so
    hand-built payloads (and older pickles) keep working.
    """
    if isinstance(value, dict) and "result" in value:
        return value["result"], value.get("metrics") or {}
    return value, {}


def _merge_sweep_metrics(report, worker_metrics):
    """One flat metrics dict for the whole sweep."""
    from ..telemetry.registry import MetricsRegistry

    registry = MetricsRegistry()
    registry.merge_values(report.snapshot.as_dict())
    for name, values in worker_metrics:
        registry.merge_values(values, prefix="worker.%s" % name)
        # aggregate totals across workers (cache economics of the
        # sweep as a whole)
        registry.merge_values(values)
    return registry.snapshot().as_dict()


def run_parallel(names, quick=False, jobs=2, timeout=None, retries=1,
                 backoff=0.5, log=None, cost_model=False):
    """Run *names* across *jobs* crash-isolated worker processes.

    Returns a :class:`SweepOutcome` whose ``results`` list is in input
    order.  A failing experiment costs only its own slot: sibling
    results are always preserved, and per-experiment statuses
    (``ok`` / ``retried`` / ``failed`` / ``timeout``) ride along on
    ``outcome.report``.  Worker telemetry (kernel-cache counters that
    previously died with each process) is merged into
    ``outcome.metrics`` alongside the supervisor's own counters.
    """
    jobs = max(1, min(jobs, len(names)))
    tasks = [Task(name, _run_worker, (name, quick, cost_model))
             for name in names]
    report = supervise(tasks, jobs=jobs, timeout=timeout, retries=retries,
                       backoff=backoff, log=log)
    results = []
    worker_metrics = []
    for name, outcome in zip(names, report.outcomes):
        if not outcome.ok:
            results.append(None)
            continue
        payload, metrics = _unwrap(outcome.value)
        results.append(result_from_dict(payload))
        if metrics:
            worker_metrics.append((name, metrics))
    metrics = _merge_sweep_metrics(report, worker_metrics)
    return SweepOutcome(results, report, metrics)
