"""Multiprocess fan-out of independent experiment ids.

Each experiment regenerates one paper table/figure from its own
processor instances, so experiments are independent of each other and
parallelize trivially across worker processes.  The worker entry point
lives in this real module (not ``__main__``) so it stays picklable
under every multiprocessing start method; results cross the process
boundary as the same JSON-ready dicts the artifact files use and are
rebuilt into :class:`~repro.experiments.base.ExperimentResult` in the
parent, which then prints and saves them in the requested order.
"""

import concurrent.futures

from .base import ExperimentResult

#: Workload-size overrides applied by ``--quick`` (same shapes, faster).
QUICK_OVERRIDES = {
    "table2": {"set_size": 1000, "sort_size": 1024},
    "figure13": {"set_size": 800},
    "prefetch": {"sizes": (8_000, 16_000)},
}


def run_experiment(name, quick=False):
    """Run one experiment by id, honoring the ``--quick`` overrides."""
    from . import EXPERIMENTS
    runner = EXPERIMENTS[name]
    if quick and name in QUICK_OVERRIDES:
        return runner(**QUICK_OVERRIDES[name])
    return runner()


def _run_worker(name, quick):
    """Process-pool entry point: run and return a picklable dict."""
    return run_experiment(name, quick).to_dict()


def result_from_dict(payload):
    """Rebuild an :class:`ExperimentResult` from its ``to_dict`` form."""
    return ExperimentResult(payload["experiment"], payload["title"],
                            payload["headers"], payload["rows"],
                            payload.get("notes", ()))


def run_parallel(names, quick=False, jobs=2):
    """Run *names* across *jobs* worker processes.

    Returns the :class:`ExperimentResult` list in input order (the
    scheduling order is whatever finishes first).  Exceptions raised by
    a worker propagate to the caller.
    """
    jobs = max(1, min(jobs, len(names)))
    results = [None] * len(names)
    with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {pool.submit(_run_worker, name, quick): position
                   for position, name in enumerate(names)}
        for future in concurrent.futures.as_completed(futures):
            results[futures[future]] = result_from_dict(future.result())
    return results
