"""Experiment E9 — the Section 5.4 iso-area scaling argument.

Quantifies the paper's discussion paragraphs: tile DBA_2LSU_EIS cores
into the die areas of the comparison x86 processors and derive core
counts, aggregate throughput, power and energy — under both the
default and the paper's "pessimistic" uncore assumptions.
"""

from ..baselines.x86 import (I7_920, PUBLISHED_SWSET_MEPS,
                             PUBLISHED_SWSORT_MEPS, Q9550)
from ..configs.catalog import build_processor
from ..core.kernels import run_merge_sort, run_set_operation
from ..synth.scaling import ManyCoreModel
from ..synth.synthesis import synthesize_config
from ..workloads.sets import generate_set_pair
from ..workloads.sorting import random_values
from .base import ExperimentResult


def run(seed=42, sort_size=6500, set_size=5000):
    """Iso-area comparison against the Q9550 (sort) and i7-920 (sets)."""
    report = synthesize_config("DBA_2LSU_EIS")
    processor = build_processor("DBA_2LSU_EIS", partial_load=True)

    values = random_values(sort_size, seed=seed)
    _out, sort_stats = run_merge_sort(processor, values)
    sort_meps = sort_stats.throughput_meps(sort_size, report.fmax_mhz)

    set_a, set_b = generate_set_pair(set_size, selectivity=0.5,
                                     seed=seed)
    _out, set_stats = run_set_operation(processor, "intersection",
                                        set_a, set_b)
    set_meps = set_stats.throughput_meps(2 * set_size, report.fmax_mhz)

    rows = []
    for label, uncore in (("default (25% uncore)", 0.25),
                          ("pessimistic (50% uncore)", 0.50)):
        model = ManyCoreModel(report, uncore_share=uncore)
        sort_summary = model.iso_area_summary(Q9550.die_mm2, sort_meps)
        rows.append([
            "merge-sort vs Q9550", label, sort_summary["cores"],
            round(sort_summary["throughput_meps"], 1),
            PUBLISHED_SWSORT_MEPS,
            round(sort_summary["power_w"], 1), Q9550.tdp_w])
        set_summary = model.iso_area_summary(I7_920.die_mm2, set_meps)
        rows.append([
            "intersection vs i7-920", label, set_summary["cores"],
            round(set_summary["throughput_meps"], 1),
            PUBLISHED_SWSET_MEPS,
            round(set_summary["power_w"], 1), I7_920.tdp_w])

    pessimistic_cores = ManyCoreModel(
        report, uncore_share=0.50).cores_in_area(Q9550.die_mm2)
    return ExperimentResult(
        "Iso-area",
        "Many-core scaling at the x86 competitors' die sizes "
        "(Section 5.4 discussion)",
        ["comparison", "assumption", "cores", "aggregate_meps",
         "x86_singlethread_meps", "power_w", "x86_tdp_w"],
        rows,
        notes=["paper: 'an order of magnitude more cores than the "
               "Intel Q9550' (4 cores) even pessimistically — model "
               "gives %d cores (%.0fx)" % (pessimistic_cores,
                                           pessimistic_cores / 4.0),
               "per-core throughput measured on the simulator; "
               "aggregate assumes 85% parallel efficiency"])
