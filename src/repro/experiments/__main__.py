"""Command-line entry point: ``python -m repro.experiments [ids...]``.

Without arguments, every experiment runs in paper order.  ``--quick``
shrinks workload sizes (same shapes, faster turnaround).
``--artifacts DIR`` additionally writes each result as a JSON artifact
next to its printed text table (see :mod:`repro.experiments.base`).
"""

import sys

from . import EXPERIMENTS, figure13, table2


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    quick = "--quick" in argv
    if quick:
        argv.remove("--quick")
    artifacts = None
    if "--artifacts" in argv:
        position = argv.index("--artifacts")
        if position + 1 >= len(argv):
            print("--artifacts requires a directory argument")
            return 2
        artifacts = argv[position + 1]
        del argv[position:position + 2]
    names = argv or ["table2", "table3", "table4", "table5", "table6",
                     "figure13", "prefetch", "energy", "iso_area",
                     "compression"]
    for name in names:
        runner = EXPERIMENTS.get(name)
        if runner is None:
            print("unknown experiment %r; available: %s"
                  % (name, ", ".join(sorted(EXPERIMENTS))))
            return 2
        if quick and name == "table2":
            result = table2.run(set_size=1000, sort_size=1024)
        elif quick and name == "figure13":
            result = figure13.run(set_size=800)
        elif quick and name == "prefetch":
            from . import prefetch_validation
            result = prefetch_validation.run(sizes=(8_000, 16_000))
        else:
            result = runner()
        print(result.format())
        if artifacts:
            print("artifact: %s" % result.save(artifacts))
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
