"""Command-line entry point: ``python -m repro.experiments [ids...]``.

Without arguments, every experiment runs in paper order.  ``--quick``
shrinks workload sizes (same shapes, faster turnaround).
``--artifacts DIR`` additionally writes each result as a JSON artifact
next to its printed text table (see :mod:`repro.experiments.base`).
``--parallel N`` fans independent experiment ids over N worker
processes and merges their artifacts in the requested order.
"""

import sys

from . import EXPERIMENTS

DEFAULT_ORDER = ["table2", "table3", "table4", "table5", "table6",
                 "figure13", "prefetch", "energy", "iso_area",
                 "compression"]


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    quick = "--quick" in argv
    if quick:
        argv.remove("--quick")
    artifacts = None
    if "--artifacts" in argv:
        position = argv.index("--artifacts")
        if position + 1 >= len(argv):
            print("--artifacts requires a directory argument")
            return 2
        artifacts = argv[position + 1]
        del argv[position:position + 2]
    parallel = 1
    if "--parallel" in argv:
        position = argv.index("--parallel")
        if position + 1 >= len(argv):
            print("--parallel requires a worker count argument")
            return 2
        try:
            parallel = int(argv[position + 1])
        except ValueError:
            print("--parallel requires an integer, got %r"
                  % argv[position + 1])
            return 2
        if parallel < 1:
            print("--parallel requires a positive worker count")
            return 2
        del argv[position:position + 2]
    names = argv or list(DEFAULT_ORDER)
    for name in names:
        if name not in EXPERIMENTS:
            print("unknown experiment %r; available: %s"
                  % (name, ", ".join(sorted(EXPERIMENTS))))
            return 2

    from .parallel import run_experiment, run_parallel
    if parallel > 1 and len(names) > 1:
        results = run_parallel(names, quick=quick, jobs=parallel)
        for result in results:
            _emit(result, artifacts)
    else:
        for name in names:
            _emit(run_experiment(name, quick=quick), artifacts)
    return 0


def _emit(result, artifacts):
    print(result.format())
    if artifacts:
        print("artifact: %s" % result.save(artifacts))
    print()


if __name__ == "__main__":
    raise SystemExit(main())
