"""Command-line entry point: ``python -m repro.experiments [ids...]``.

Without arguments, every experiment runs in paper order.  ``--quick``
shrinks workload sizes (same shapes, faster turnaround).
``--cost-model`` opts the experiments that support it (table2, table5)
into the calibrated cost-model fast path for kernel cycle counts —
bit-exact against the ISS, so the tables are unchanged, just faster.
``--artifacts DIR`` additionally writes each result as a JSON artifact
next to its printed text table (see :mod:`repro.experiments.base`).
``--parallel N`` fans independent experiment ids over N crash-isolated
worker processes (see :mod:`repro.supervisor`) and merges their
artifacts in the requested order; ``--timeout``/``--retries`` tune the
supervisor's per-experiment budget.  A failing experiment never costs
its siblings' results: the sweep finishes, prints a per-experiment
status table and exits nonzero.
"""

import sys

from . import EXPERIMENTS

DEFAULT_ORDER = ["table2", "table3", "table4", "table5", "table6",
                 "figure13", "prefetch", "energy", "iso_area",
                 "compression", "scale_out"]


def _take_option(argv, flag, cast, check, default):
    """Pop ``flag VALUE`` from *argv*; returns the parsed value."""
    if flag not in argv:
        return default, None
    position = argv.index(flag)
    if position + 1 >= len(argv):
        return None, "%s requires an argument" % flag
    raw = argv[position + 1]
    try:
        value = cast(raw)
    except ValueError:
        return None, "%s: invalid value %r" % (flag, raw)
    if not check(value):
        return None, "%s: invalid value %r" % (flag, raw)
    del argv[position:position + 2]
    return value, None


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    quick = "--quick" in argv
    if quick:
        argv.remove("--quick")
    cost_model = "--cost-model" in argv
    if cost_model:
        argv.remove("--cost-model")
    artifacts, error = _take_option(argv, "--artifacts", str,
                                    lambda v: True, None)
    if error:
        print(error)
        return 2
    parallel, error = _take_option(argv, "--parallel", int,
                                   lambda v: v >= 1, 1)
    if error:
        print(error)
        return 2
    timeout, error = _take_option(argv, "--timeout", float,
                                  lambda v: v > 0, None)
    if error:
        print(error)
        return 2
    retries, error = _take_option(argv, "--retries", int,
                                  lambda v: v >= 0, 1)
    if error:
        print(error)
        return 2
    names = argv or list(DEFAULT_ORDER)
    for name in names:
        if name not in EXPERIMENTS:
            print("unknown experiment %r; available: %s"
                  % (name, ", ".join(sorted(EXPERIMENTS))))
            return 2

    from .parallel import run_experiment, run_parallel
    if parallel > 1 and len(names) > 1:
        outcome = run_parallel(names, quick=quick, jobs=parallel,
                               timeout=timeout, retries=retries,
                               cost_model=cost_model)
        for result in outcome.results:
            if result is not None:
                _emit(result, artifacts)
        _emit_sweep_metrics(outcome.metrics, artifacts)
        if not outcome.ok:
            print("experiment status:")
            for line in outcome.status_table():
                print("  " + line)
            return 1
        return 0

    # Serial path: same isolation contract, in-process — a failing
    # experiment is reported but does not abort its siblings.
    failures = []
    for name in names:
        try:
            result = run_experiment(name, quick=quick,
                                    cost_model=cost_model)
        except Exception as exc:
            failures.append((name, "%s: %s" % (type(exc).__name__, exc)))
            continue
        _emit(result, artifacts)
    if failures:
        print("experiment status:")
        for name, detail in failures:
            print("  %-24s %-8s — %s" % (name, "failed", detail))
        return 1
    return 0


def _emit(result, artifacts):
    print(result.format())
    if artifacts:
        print("artifact: %s" % result.save(artifacts))
    print()


def _emit_sweep_metrics(metrics, artifacts):
    """One summary line (and optional JSON artifact) per sweep."""
    if not metrics:
        return
    get = metrics.get
    print("sweep metrics: %d submitted (%d ok, %d retried), kernel "
          "cache %d hits / %d misses across workers"
          % (get("supervisor.submitted", 0), get("supervisor.ok", 0),
             get("supervisor.retried", 0),
             get("kernels.cache.hits", 0),
             get("kernels.cache.misses", 0)))
    if artifacts:
        import json
        import os
        os.makedirs(artifacts, exist_ok=True)
        path = os.path.join(artifacts, "sweep_metrics.json")
        with open(path, "w") as handle:
            json.dump(metrics, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("artifact: %s" % path)
    print()


if __name__ == "__main__":
    raise SystemExit(main())
