"""Experiment E4 — the paper's Table 4.

Relative logic-area share of each component of the DBA_2LSU_EIS
processor: the basic core, the shared decoding/muxing fabric, the TIE
states, the shared all-to-all comparison circuitry, and the per-
operation result circuits.
"""

from ..synth.synthesis import synthesize_config
from .base import ExperimentResult

#: The paper's Table 4 (percent of total logic area).
PAPER_TABLE4 = {
    "basic_core": 20.5,
    "decode": 14.4,
    "states": 14.7,
    "op:all": 11.3,
    "op:intersection": 6.8,
    "op:difference": 9.0,
    "op:union": 17.6,
    "op:merge_sort": 5.7,
}

#: Human-readable labels in the paper's wording.
LABELS = {
    "basic_core": "Basic Core",
    "decode": "Decoding/Muxing",
    "states": "States",
    "op:all": "Op: All",
    "op:intersection": "Op: Intersection",
    "op:difference": "Op: Difference",
    "op:union": "Op: Union",
    "op:merge_sort": "Op: Merge-Sort",
}

ROW_ORDER = ("basic_core", "decode", "states", "op:all",
             "op:intersection", "op:difference", "op:union",
             "op:merge_sort")


def run(name="DBA_2LSU_EIS"):
    """Regenerate the component-area breakdown."""
    report = synthesize_config(name)
    breakdown = report.breakdown()
    rows = []
    for key in ROW_ORDER:
        rows.append([LABELS[key], round(breakdown.get(key, 0.0) * 100, 1),
                     round(report.netlist.groups.get(key, 0) / 1000.0, 1)])
    rows.append(["SUM", round(sum(row[1] for row in rows), 1),
                 round(report.netlist.total_ge() / 1000.0, 1)])
    return ExperimentResult(
        "Table 4",
        "Relative area consumption per newly introduced instruction "
        "(%s)" % name,
        ["part", "area_percent", "kGE"],
        rows)
