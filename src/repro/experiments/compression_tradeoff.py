"""Experiment E10 — compressed RID streams vs interconnect bandwidth.

The paper names compression among the primitives worth specialized
circuits (Section 1).  This ablation integrates the D8 decompression
instruction with the streaming set-operation pipeline and sweeps the
on-chip interconnect bandwidth: decompression trades compute cycles
(~0.8 per value through the prefix-sum network) for a ~4x reduction in
DMA traffic, so it loses on a wide NoC and wins once transfers become
the bottleneck — the crossover this experiment locates.
"""

from ..configs.catalog import build_processor
from ..core.streaming import (run_compressed_streaming_set_operation,
                              run_streaming_set_operation)
from ..cpu.interconnect import Interconnect
from ..synth.synthesis import synthesize_config
from ..workloads.sets import generate_set_pair
from .base import ExperimentResult

DEFAULT_BANDWIDTHS = (16, 4, 2, 1)


def run(size=16_000, selectivity=0.5, seed=42,
        bandwidths=DEFAULT_BANDWIDTHS, check_results=True):
    """Raw vs compressed streaming intersection per NoC bandwidth."""
    fmax = synthesize_config("DBA_2LSU_EIS").fmax_mhz
    # dense RID-like sets: deltas must fit the D8 byte encoding
    set_a, set_b = generate_set_pair(size, selectivity=selectivity,
                                     seed=seed, max_value=16 * size)
    expected = sorted(set(set_a) & set(set_b))
    rows = []
    for bytes_per_cycle in bandwidths:
        processor = build_processor(
            "DBA_2LSU_EIS", prefetcher=True, compression=True,
            sim_headroom_kb=1024,
            interconnect=Interconnect(bytes_per_cycle=bytes_per_cycle))
        raw_result, raw = run_streaming_set_operation(
            processor, "intersection", set_a, set_b, overlap=True)
        compressed_result, compressed = \
            run_compressed_streaming_set_operation(
                processor, "intersection", set_a, set_b, overlap=True)
        if check_results:
            assert raw_result == expected
            assert compressed_result == expected
        raw_meps = raw.throughput_meps(2 * size, fmax)
        compressed_meps = compressed.throughput_meps(2 * size, fmax)
        rows.append([bytes_per_cycle, round(raw_meps, 1),
                     round(compressed_meps, 1),
                     "compressed" if compressed_meps > raw_meps
                     else "raw"])
    return ExperimentResult(
        "Compression",
        "Streaming intersection: raw vs D8-compressed RID streams",
        ["noc_bytes_per_cycle", "raw_meps", "compressed_meps",
         "winner"],
        rows,
        notes=["2x%d dense RID lists at %.0f%% selectivity; "
               "compressed streams move ~4x fewer bytes but spend "
               "~0.8 cycles/value decoding" % (size, selectivity * 100)])
