"""Experiment E11 — measured sharded scale-out (Section 5.4, made real).

``iso_area.py`` answers the paper's iso-area argument with a
closed-form area/throughput model.  This experiment runs the actual
system instead: the same WHERE-heavy query batch is served by a single
:class:`~repro.db.engine.QueryEngine` and by
:class:`~repro.db.shard.ShardedEngine` at increasing shard counts, and
the speedup is computed from *modeled cycles* — per-query makespan =
max(per-shard WHERE cycles) + interconnect gather traffic + EIS union
merge — so scatter/gather overhead and partition skew are measured,
not assumed.

Two partition balances are swept:

* **uniform** — hash partitioning on the RID; shards hold equal rows
  and near-equal work (the iso-area model's implicit assumption);
* **zipfian** — hash partitioning on a Zipf-distributed column, which
  co-locates equal values and hands the hottest value's rows to one
  shard; the ``skew`` column (max shard cycles x shards / total) shows
  what that costs.

The ``speedup`` column is serial cycles / sum of query makespans; the
CI ``scale-out`` job gates ``uniform x 4 shards >= 2.0``.
"""

import random

from ..baselines.x86 import Q9550
from ..db.bench import build_demo_table
from ..db.engine import Query, QueryEngine
from ..db.executor import RID_BITS
from ..db.predicates import Eq, In, Range
from ..db.shard import ShardedEngine
from ..db.table import Table
from ..synth.scaling import ManyCoreModel
from ..synth.synthesis import synthesize_config
from ..workloads.sets import generate_zipfian_column
from .base import ExperimentResult

#: Zipf skew of the value-partitioned workload's partition column.
ZIPF_THETA = 1.1
#: Distinct values of the partition column (hash-by-value buckets).
ZIPF_CARDINALITY = 64


def _zipf_table(rows, seed):
    """The demo table plus a Zipf-popular ``key`` partition column."""
    base = build_demo_table(rows=rows, seed=seed)
    columns = {name: list(values)
               for name, values in base.columns.items()}
    columns["key"] = generate_zipfian_column(
        rows, ZIPF_CARDINALITY, theta=ZIPF_THETA, seed=seed + 1)
    table = Table("demo_zipf", columns)
    for name in columns:
        table.create_index(name)
    return table


def _where_queries(table, count, seed):
    """WHERE-heavy conjunctive query batch (no ORDER BY tail).

    The scale-out story is about the scatterable WHERE work; ORDER BY
    runs serially on the coordinator, so sort-heavy batches would
    measure Amdahl's law rather than the shard fabric.  Shapes are
    deep conjunctions — index ANDing, the paper's motivating use case
    — whose set-operation operands are large (low-cardinality scans)
    while final results are small, so the gather reduce moves little
    data relative to the scattered WHERE work.
    """
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        status = Eq("status", rng.randrange(4))
        region = In("region", tuple(sorted(
            rng.sample(range(8), rng.randint(2, 4)))))
        low = rng.randrange(0, 700)
        width = rng.randrange(150, 300)
        price = Range("price", low, low + width)
        narrow_width = rng.randrange(30, 80)
        low2 = low + rng.randrange(0, width - narrow_width)
        narrow = Range("price", low2, low2 + narrow_width)
        shape = rng.random()
        if shape < 0.6:
            predicate = ((status & region) & price) & narrow
        elif shape < 0.85:
            predicate = (region & price) & narrow
        else:
            predicate = ((status & region) & price) - narrow
        queries.append(Query(table, predicate=predicate))
    return queries


#: Shard count of the ORDER BY comparison rows (partitioned vs serial
#: coordinator sort at the same fan-out).
ORDERBY_SHARDS = 4


def _orderby_queries(table, count, seed):
    """ORDER BY-tailed batch for the partitioned-sort comparison.

    Moderate-selectivity WHERE plus a sort (and usually a LIMIT) —
    the shape the WHERE-heavy batch deliberately avoids.  With
    per-shard sorts folded into the scattered work the sort tail
    parallelizes too; the ``orderby-serial`` row keeps the
    coordinator-side sort for contrast.
    """
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        low = rng.randrange(0, 600)
        price = Range("price", low, low + rng.randrange(250, 400))
        region = In("region", tuple(sorted(rng.sample(range(8), 3))))
        queries.append(Query(table, predicate=price & region,
                             order_by="price",
                             descending=rng.random() < 0.5,
                             limit=rng.choice((10, 25, None))))
    return queries


def _serve_single(table, queries, cost_model):
    engine = QueryEngine(cost_model=cost_model)
    results = engine.execute_batch(queries)
    return sum(result.stats.cycles for result in results)


def _serve_sharded(table, queries, shards, partition_column,
                   cost_model, partitioned_order_by=True):
    engine = ShardedEngine(shards=shards, partitioner="hash",
                           partition_column=partition_column,
                           cost_model=cost_model,
                           partitioned_order_by=partitioned_order_by)
    results = engine.execute_batch(queries)
    makespan = sum(result.makespan_cycles for result in results)
    snapshot = engine.metrics_snapshot()
    shard_cycles = [snapshot["db.shard.%d.cycles" % index]
                    for index in range(shards)]
    total = sum(shard_cycles)
    skew = (max(shard_cycles) * shards / total) if total else 1.0
    return {
        "makespan": makespan,
        "shard_cycles": shard_cycles,
        "skew": skew,
        "skipped": snapshot["db.shard.skipped"],
        "merge_cycles": snapshot["db.shard.gather.merge_cycles"],
        "transfer_cycles":
            snapshot["db.shard.gather.transfer_cycles"],
        "bytes_moved": snapshot["db.shard.gather.bytes_moved"],
    }


def run(seed=42, rows=8192, query_count=24, shard_counts=(1, 2, 4, 8),
        cost_model=False):
    """Measured shard-count sweep, uniform vs Zipfian partitions."""
    workloads = [
        ("uniform", build_demo_table(rows=rows, seed=seed), None),
        ("zipfian", _zipf_table(rows, seed), "key"),
    ]
    rows_out = []
    uniform4 = None
    for label, table, partition_column in workloads:
        queries = _where_queries(table, query_count, seed + 7)
        serial = _serve_single(table, queries, cost_model)
        for shards in shard_counts:
            measured = _serve_sharded(table, queries, shards,
                                      partition_column, cost_model)
            speedup = serial / measured["makespan"] \
                if measured["makespan"] else float("inf")
            if label == "uniform" and shards == 4:
                uniform4 = speedup
            rows_out.append([
                label, shards, round(speedup, 2), serial,
                measured["makespan"], max(measured["shard_cycles"]),
                round(measured["skew"], 2), measured["skipped"],
                measured["merge_cycles"] + measured["transfer_cycles"],
                measured["bytes_moved"]])

    # ORDER BY comparison: the same batch under the partitioned
    # per-shard sort vs the serial coordinator sort.  The table stays
    # within the RID packing budget (pack = key << RID_BITS | rid).
    orderby_rows = min(rows, 1 << RID_BITS)
    orderby_table = build_demo_table(rows=orderby_rows, seed=seed)
    orderby_queries = _orderby_queries(orderby_table, query_count,
                                       seed + 11)
    orderby_serial = _serve_single(orderby_table, orderby_queries,
                                   cost_model)
    orderby_makespans = {}
    for label, partitioned in (("orderby", True),
                               ("orderby-serial", False)):
        measured = _serve_sharded(orderby_table, orderby_queries,
                                  ORDERBY_SHARDS, None, cost_model,
                                  partitioned_order_by=partitioned)
        orderby_makespans[label] = measured["makespan"]
        speedup = orderby_serial / measured["makespan"] \
            if measured["makespan"] else float("inf")
        rows_out.append([
            label, ORDERBY_SHARDS, round(speedup, 2), orderby_serial,
            measured["makespan"], max(measured["shard_cycles"]),
            round(measured["skew"], 2), measured["skipped"],
            measured["merge_cycles"] + measured["transfer_cycles"],
            measured["bytes_moved"]])

    report = synthesize_config("DBA_2LSU_EIS")
    model = ManyCoreModel(report, uncore_share=0.50)
    cores = model.cores_in_area(Q9550.die_mm2)
    notes = [
        "speedup = single-engine cycles / sum of per-query makespans "
        "(max shard WHERE + gather transfer + EIS union merge)",
        "closed-form iso-area model fits %d cores in a Q9550 die at "
        "85%% assumed efficiency; the measured rows above replace "
        "that assumption with scatter/gather accounting" % cores,
        "gather reduce runs on the same EIS union kernel as query "
        "ORs; transfer cycles use the prefetcher's interconnect "
        "model (60-cycle setup + 16 B/cycle)",
    ]
    if orderby_makespans["orderby"]:
        notes.append(
            "partitioned ORDER BY folds per-shard sorts into the "
            "scattered work: %d vs %d makespan cycles at %d shards "
            "(%.2fx; CI gates partitioned < serial)" % (
                orderby_makespans["orderby"],
                orderby_makespans["orderby-serial"], ORDERBY_SHARDS,
                orderby_makespans["orderby-serial"]
                / orderby_makespans["orderby"]))
    if uniform4 is not None:
        notes.insert(0, "uniform 4-shard speedup: %.2fx (CI gates "
                        ">= 2.0x)" % uniform4)
    return ExperimentResult(
        "Scale-out",
        "Measured sharded scale-out vs single-core EIS "
        "(Section 5.4 iso-area, running system)",
        ["workload", "shards", "speedup", "serial_cycles",
         "makespan_cycles", "max_shard_cycles", "skew", "skipped",
         "gather_cycles", "gather_bytes"],
        rows_out,
        notes=notes)
