"""Experiment E1 — the paper's Table 2.

Maximum throughput (million elements per second) of the six processor
configurations for intersection, union, difference and merge-sort.
Workloads follow Section 5.2: two 5000-element sets at 50 % selectivity
and a 6500-element sort (the maxima that fit the local data memories).

Core frequencies come from the synthesis model (Table 3 column), so
this experiment exercises the full flow: netlist -> fmax -> cycle-level
simulation -> throughput.
"""

from ..configs.catalog import TABLE2_ROWS, build_processor, row_label
from ..core.kernels import run_merge_sort, run_set_operation
from ..core.scalar_kernels import (run_scalar_merge_sort,
                                   run_scalar_set_operation)
from ..synth.synthesis import synthesize_config
from ..workloads.sets import generate_set_pair
from ..workloads.sorting import random_values
from .base import ExperimentResult, lint_notes

#: The paper's Table 2 (million elements per second).
PAPER_TABLE2 = {
    ("108Mini", None): {"f": 442, "intersection": 31.3, "union": 26.4,
                        "difference": 35.7, "sort": 1.7},
    ("DBA_1LSU", None): {"f": 435, "intersection": 50.7, "union": 47.7,
                         "difference": 50.4, "sort": 3.2},
    ("DBA_1LSU_EIS", False): {"f": 424, "intersection": 513.4,
                              "union": 665.0, "difference": 658.8,
                              "sort": 29.3},
    ("DBA_2LSU_EIS", False): {"f": 410, "intersection": 693.0,
                              "union": 643.0, "difference": 637.0,
                              "sort": 28.3},
    ("DBA_1LSU_EIS", True): {"f": 424, "intersection": 859.0,
                             "union": 574.2, "difference": 859.0,
                             "sort": 29.3},
    ("DBA_2LSU_EIS", True): {"f": 410, "intersection": 1203.0,
                             "union": 780.4, "difference": 1192.6,
                             "sort": 28.3},
}

SET_OPS = ("intersection", "union", "difference")


def run(set_size=5000, sort_size=6500, selectivity=0.5, seed=42,
        rows=TABLE2_ROWS, check_results=True, cost_model=False):
    """Regenerate Table 2; smaller sizes preserve the shape.

    *cost_model* opts into the calibrated cost-model fast path for the
    kernel cycle counts (bit-exact vs the ISS by construction; any
    uncalibratable case silently falls back to simulation).  The ISS
    remains the default so the paper numbers keep their provenance.
    """
    model = None
    if cost_model:
        from ..core.costmodel import default_cost_model
        model = default_cost_model()
    set_a, set_b = generate_set_pair(set_size, selectivity=selectivity,
                                     seed=seed)
    sort_values = random_values(sort_size, seed=seed)
    truth = {
        "intersection": sorted(set(set_a) & set(set_b)),
        "union": sorted(set(set_a) | set(set_b)),
        "difference": sorted(set(set_a) - set(set_b)),
        "sort": sorted(sort_values),
    }
    result_rows = []
    notes = ["sets: 2x%d elements at %.0f%% selectivity; sort: %d "
             "values" % (set_size, selectivity * 100, sort_size)]
    linted = set()
    for name, partial in rows:
        processor = build_processor(name, partial_load=bool(partial))
        if name not in linted:
            linted.add(name)
            notes.extend(lint_notes(processor, label=name))
        fmax = synthesize_config(name, partial_load=bool(partial)).fmax_mhz
        row = [row_label(name, partial), round(fmax)]
        for which in SET_OPS:
            if model is not None:
                values, cycles, _source = model.set_operation(
                    processor, which, set_a, set_b)
            elif partial is None:
                values, run_result = run_scalar_set_operation(
                    processor, which, set_a, set_b)
                cycles = run_result.cycles
            else:
                values, run_result = run_set_operation(
                    processor, which, set_a, set_b)
                cycles = run_result.cycles
            if check_results and values != truth[which]:
                raise AssertionError("%s produced a wrong %s result"
                                     % (name, which))
            elements = len(set_a) + len(set_b)
            row.append(elements * fmax / cycles if cycles else 0.0)
        if model is not None:
            values, cycles, _source = model.merge_sort(processor,
                                                       sort_values)
        elif partial is None:
            values, run_result = run_scalar_merge_sort(processor,
                                                       sort_values)
            cycles = run_result.cycles
        else:
            values, run_result = run_merge_sort(processor, sort_values)
            cycles = run_result.cycles
        if check_results and values != truth["sort"]:
            raise AssertionError("%s produced a wrong sort result" % name)
        row.append(len(sort_values) * fmax / cycles if cycles else 0.0)
        result_rows.append(row)
    if model is not None:
        notes.append("cycle counts via the calibrated cost model "
                     "(bit-exact vs the ISS; %d fallbacks)"
                     % model.stats()["fallbacks"])
    return ExperimentResult(
        "Table 2",
        "Maximum throughput [million elements per second]",
        ["configuration", "f[MHz]", "intersection", "union",
         "difference", "merge_sort"],
        result_rows,
        notes=notes)
