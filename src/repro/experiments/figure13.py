"""Experiment E2 — the paper's Figure 13.

Intersection throughput as a function of selectivity (0..100 %) for the
six processor configurations.  The paper's qualitative findings, all of
which this experiment reproduces:

* throughput increases with selectivity for every configuration,
* the EIS configurations' curves rise faster than the scalar ones,
* partial loading wins at every selectivity *except* 100 %, where both
  refill policies advance by four elements per set and iteration and
  the curves meet.
"""

from ..configs.catalog import TABLE2_ROWS, build_processor, row_label
from ..core.kernels import run_set_operation
from ..core.scalar_kernels import run_scalar_set_operation
from ..synth.synthesis import synthesize_config
from ..workloads.sets import generate_set_pair
from .base import ExperimentResult

DEFAULT_SELECTIVITIES = tuple(i / 10.0 for i in range(11))


def run(set_size=5000, selectivities=DEFAULT_SELECTIVITIES, seed=42,
        rows=TABLE2_ROWS, which="intersection", check_results=True):
    """Sweep selectivity; one result row per (configuration, point)."""
    result_rows = []
    workloads = [
        (selectivity,) + generate_set_pair(set_size,
                                           selectivity=selectivity,
                                           seed=seed)
        for selectivity in selectivities
    ]
    for name, partial in rows:
        processor = build_processor(name, partial_load=bool(partial))
        fmax = synthesize_config(name, partial_load=bool(partial)).fmax_mhz
        label = row_label(name, partial)
        for selectivity, set_a, set_b in workloads:
            if partial is None:
                values, run_result = run_scalar_set_operation(
                    processor, which, set_a, set_b)
            else:
                values, run_result = run_set_operation(
                    processor, which, set_a, set_b)
            if check_results:
                expected = _expected(which, set_a, set_b)
                if values != expected:
                    raise AssertionError(
                        "%s wrong at selectivity %.1f" % (label,
                                                          selectivity))
            result_rows.append([
                label, round(selectivity * 100),
                run_result.throughput_meps(len(set_a) + len(set_b),
                                           fmax)])
    return ExperimentResult(
        "Figure 13",
        "%s throughput vs selectivity" % which.capitalize(),
        ["configuration", "selectivity_percent", "throughput_meps"],
        result_rows,
        notes=["sets: 2x%d elements" % set_size])


def _expected(which, set_a, set_b):
    if which == "intersection":
        return sorted(set(set_a) & set(set_b))
    if which == "union":
        return sorted(set(set_a) | set(set_b))
    return sorted(set(set_a) - set(set_b))


def series(result, configuration):
    """Extract one configuration's (selectivity, throughput) curve."""
    points = []
    for row in result.rows:
        if row[0] == configuration:
            points.append((row[1], row[2]))
    return sorted(points)


def render_ascii(result, width=60):
    """A quick terminal plot of all curves (one row per point)."""
    throughputs = result.column("throughput_meps")
    peak = max(throughputs) or 1.0
    lines = []
    current = None
    for label, selectivity, throughput in result.rows:
        if label != current:
            lines.append(label)
            current = label
        bar = "#" * max(1, int(width * throughput / peak))
        lines.append("  %3d%% %-*s %8.1f" % (selectivity, width, bar,
                                             throughput))
    return "\n".join(lines)
