"""Experiment E5 — the paper's Table 5 (merge-sort comparison).

hwsort (our merge-sort instructions on DBA_2LSU_EIS, 6500 values) vs
swsort (Chhugani et al.'s SIMD merge-sort on an Intel Q9550, published
single-thread throughput for 512K values).  The swsort column is both
quoted (published number) and re-derived from the executable baseline's
cost model.
"""

from ..baselines.swsort import REFERENCE_SIZE
from ..baselines.x86 import (PUBLISHED_SWSORT_MEPS, Q9550,
                             extrapolate_sort_throughput)
from ..configs.catalog import build_processor
from ..core.kernels import run_merge_sort
from ..synth.synthesis import synthesize_config
from ..workloads.sorting import random_values
from .base import ExperimentResult

#: The paper's Table 5.
PAPER_TABLE5 = {
    "Intel Q9550": {"throughput_meps": 60.0, "clock_mhz": 3220,
                    "tdp_w": 95.0, "cores": "4/4", "feature_nm": 45,
                    "area_mm2": 214.0},
    "DBA_2LSU_EIS": {"throughput_meps": 28.3, "clock_mhz": 410,
                     "tdp_w": 0.135, "cores": "1/1", "feature_nm": 65,
                     "area_mm2": 1.5},
}


def run(sort_size=6500, swsort_sample=8192, seed=42,
        cost_model=False):
    """Regenerate the merge-sort comparison table.

    *cost_model* opts into the calibrated cost-model fast path for the
    hwsort cycle count (bit-exact vs the ISS; default stays ISS).
    """
    report = synthesize_config("DBA_2LSU_EIS")
    processor = build_processor("DBA_2LSU_EIS")
    values = random_values(sort_size, seed=seed)
    if cost_model:
        from ..core.costmodel import default_cost_model
        output, cycles, _source = default_cost_model().merge_sort(
            processor, values)
    else:
        output, run_result = run_merge_sort(processor, values)
        cycles = run_result.cycles
    if output != sorted(values):
        raise AssertionError("hwsort produced a wrong result")
    hw_throughput = len(values) * report.fmax_mhz / cycles \
        if cycles else 0.0

    sample = random_values(swsort_sample, seed=seed + 1)
    sw_throughput = extrapolate_sort_throughput(sample, REFERENCE_SIZE)

    rows = [
        ["Intel Q9550 (swsort)", round(sw_throughput, 1),
         round(Q9550.clock_mhz), Q9550.tdp_w,
         "%d/%d" % (Q9550.cores, Q9550.threads), Q9550.feature_nm,
         Q9550.die_mm2],
        ["DBA_2LSU_EIS (hwsort)", round(hw_throughput, 1),
         round(report.fmax_mhz), round(report.power_mw / 1000.0, 3),
         "1/1", 65, round(report.total_mm2, 1)],
    ]
    notes = ["swsort model calibrated to the published %.0f M/s at "
             "%d values" % (PUBLISHED_SWSORT_MEPS, REFERENCE_SIZE),
             "hwsort sorts %d values (local-store capacity)"
             % sort_size]
    if cost_model:
        notes.append("hwsort cycle count via the calibrated cost "
                     "model (bit-exact vs the ISS)")
    return ExperimentResult(
        "Table 5", "Merge-sort comparison",
        ["processor", "throughput_meps", "clock_mhz", "max_tdp_w",
         "cores_threads", "feature_nm", "area_mm2"],
        rows,
        notes=notes)
