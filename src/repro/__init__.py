"""repro — reproduction of "An Application-Specific Instruction Set for
Accelerating Set-Oriented Database Primitives" (SIGMOD 2014).

Quickstart::

    from repro import build_processor, run_set_operation
    from repro.workloads import generate_set_pair

    processor = build_processor("DBA_2LSU_EIS")
    a, b = generate_set_pair(5000, selectivity=0.5, seed=1)
    result, stats = run_set_operation(processor, "intersection", a, b)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .configs import CONFIG_NAMES, build_processor
from .core import (run_merge_sort, run_scalar_merge_sort,
                   run_scalar_set_operation, run_set_operation,
                   run_streaming_set_operation)
from .synth import synthesize_config
from .telemetry import MetricsRegistry, RunReport, RunStats

__version__ = "1.0.0"

__all__ = ["CONFIG_NAMES", "build_processor", "run_merge_sort",
           "run_scalar_merge_sort", "run_scalar_set_operation",
           "run_set_operation", "run_streaming_set_operation",
           "synthesize_config", "MetricsRegistry", "RunReport",
           "RunStats", "__version__"]
