"""Table partitioning for sharded scale-out.

The paper's Section 5.4 iso-area discussion spends one x86 die's area
on N small EIS cores; :mod:`repro.db.shard` makes that concrete by
splitting a :class:`~repro.db.table.Table` into N disjoint partitions,
one per simulated processor.  This module owns the partitioning
policies and the partition-level reasoning the sharded engine needs:

* :class:`HashPartitioner` — rows scatter by a multiplicative hash of
  the RID (balanced, the uniform baseline) or of a column value
  (co-locates equal values, which is what makes skewed value
  distributions produce skewed shards);
* :class:`RangePartitioner` — contiguous RID slices, or equal-depth
  value ranges over a column (classic range sharding);
* :func:`partition_table` — materializes shard sub-tables whose rows
  keep ascending global-RID order, so a shard's sorted *local* RID
  list maps to a sorted *global* RID list and the gather reduce can
  run on the EIS union/merge kernels directly;
* :func:`shard_may_match` — the scatter-time pruning analysis: a
  shard whose partition provably holds no row for the query's leaves
  returns an empty RID list without dispatching any work
  (``db.shard.skipped``).
"""

import bisect

from .predicates import And, AndNot, Eq, In, Leaf, Or, Range
from .table import Table


def _mix32(value):
    """Deterministic 32-bit integer hash (xorshift-multiply avalanche).

    Python's builtin ``hash`` is identity on small ints, which would
    turn hash partitioning into modulo striping; this mixer spreads
    consecutive RIDs and clustered values across shards.
    """
    value &= 0xFFFFFFFF
    value = ((value ^ (value >> 16)) * 0x45D9F3B) & 0xFFFFFFFF
    value = ((value ^ (value >> 16)) * 0x45D9F3B) & 0xFFFFFFFF
    return value ^ (value >> 16)


class Partitioner:
    """Maps every row of a table to one of ``shards`` partitions."""

    kind = None

    def __init__(self, shards, column=None):
        if shards < 1:
            raise ValueError("need at least one shard")
        self.shards = shards
        self.column = column

    def assign(self, table):
        """Shard id per row, in RID order (length == row_count)."""
        raise NotImplementedError

    def router(self, table):
        """Frozen per-table routing closure ``(rid, row) -> shard``.

        Captured at partition time so delta batches route rows
        *incrementally*: the closure must agree with :meth:`assign` on
        every existing row and extend deterministically to new RIDs —
        range bounds in particular are frozen here, never recomputed,
        so existing rows never move shards under deltas.
        """
        raise NotImplementedError

    def describe(self):
        target = self.column if self.column is not None else "rid"
        return "%s(%s) x %d" % (self.kind, target, self.shards)

    def __repr__(self):
        return "<%s %s>" % (type(self).__name__, self.describe())


class HashPartitioner(Partitioner):
    """Rows scatter by hash of the RID (default) or a column value."""

    kind = "hash"

    def assign(self, table):
        shards = self.shards
        if self.column is None:
            return [_mix32(rid) % shards for rid in table.all_rids()]
        return [_mix32(value) % shards
                for value in table.column(self.column)]

    def router(self, table):
        shards = self.shards
        if self.column is None:
            return lambda rid, row: _mix32(rid) % shards
        column = self.column
        return lambda rid, row: _mix32(row[column]) % shards


class RangePartitioner(Partitioner):
    """Contiguous RID slices, or value ranges over a column.

    With a *column*, cut points default to equal-depth quantiles of
    the column's values (computed deterministically from the sorted
    column); pass explicit *bounds* (``shards - 1`` ascending cut
    values, rows with ``value <= bounds[i]`` land at or before shard
    ``i``) to pin the ranges.
    """

    kind = "range"

    def __init__(self, shards, column=None, bounds=None):
        super().__init__(shards, column)
        if bounds is not None:
            bounds = list(bounds)
            if len(bounds) != shards - 1:
                raise ValueError("need shards - 1 bounds, got %d"
                                 % len(bounds))
            if bounds != sorted(bounds):
                raise ValueError("bounds must be ascending")
        self.bounds = bounds

    def assign(self, table):
        rows = table.row_count
        if self.column is None:
            # balanced contiguous slices of the RID space
            return [(rid * self.shards) // rows for rid in range(rows)]
        values = table.column(self.column)
        bounds = self.bounds
        if bounds is None:
            bounds = self._quantile_bounds(values)
        return [bisect.bisect_right(bounds, value) for value in values]

    def _quantile_bounds(self, values):
        ordered = sorted(values)
        rows = len(values)
        return [ordered[(rows * cut) // self.shards - 1]
                for cut in range(1, self.shards)]

    def router(self, table):
        if self.column is not None:
            bounds = self.bounds
            if bounds is None:
                bounds = self._quantile_bounds(
                    table.column(self.column))
            column = self.column
            return lambda rid, row: bisect.bisect_right(bounds,
                                                        row[column])
        # RID mode: freeze the RID cut points of the current
        # assignment.  rid_bounds[i] is the highest RID in shards
        # 0..i, so bisect_left (elements strictly below the probe)
        # lands existing rows exactly where assign() put them and new
        # (higher) RIDs in the last shard.
        assignments = self.assign(table)
        all_rids = table.all_rids()
        rid_bounds = []
        previous = -1
        for position, shard_id in enumerate(assignments):
            while len(rid_bounds) < shard_id:
                rid_bounds.append(previous)
            previous = all_rids[position]
        while len(rid_bounds) < self.shards - 1:
            rid_bounds.append(previous)
        return lambda rid, row: bisect.bisect_left(rid_bounds, rid)


PARTITIONER_KINDS = ("hash", "range")


def make_partitioner(kind, shards, column=None):
    """Partitioner from its CLI spelling (``hash`` / ``range``)."""
    if isinstance(kind, Partitioner):
        return kind
    if kind == "hash":
        return HashPartitioner(shards, column=column)
    if kind == "range":
        return RangePartitioner(shards, column=column)
    raise ValueError("unknown partitioner %r (one of %s)"
                     % (kind, ", ".join(PARTITIONER_KINDS)))


class TableShard:
    """One partition: a sub-table plus its local-to-global RID map.

    ``global_rids[local_rid]`` is strictly ascending by construction
    (rows are appended in global RID order), so mapping a sorted local
    RID list yields a sorted global RID list — the operand format of
    the EIS set instructions the gather reduce runs on.

    ``global_rids`` is ``None`` for columnar shards: their sub-tables
    keep the parent's global RIDs directly (sparse RID space), so
    :meth:`to_global` is the identity and delta batches can replay
    onto the shard without renumbering anything.
    """

    __slots__ = ("shard_id", "table", "global_rids")

    def __init__(self, shard_id, table, global_rids):
        self.shard_id = shard_id
        self.table = table
        self.global_rids = global_rids

    @property
    def row_count(self):
        return self.table.row_count

    def to_global(self, local_rids):
        """Map shard-local RIDs to global RIDs (order-preserving)."""
        global_rids = self.global_rids
        if global_rids is None:
            return list(local_rids)
        return [global_rids[rid] for rid in local_rids]

    def held_rids(self):
        """Global RIDs this shard holds (sorted)."""
        if self.global_rids is None:
            return self.table.all_rids()
        return list(self.global_rids)

    def __repr__(self):
        return "<TableShard %d: %d rows>" % (self.shard_id,
                                             self.row_count)


def partition_table(table, partitioner):
    """Split *table* into ``partitioner.shards`` :class:`TableShard`\\ s.

    Every secondary index of the parent is rebuilt on each shard (leaf
    scans run shard-locally), and shard row order preserves global RID
    order so local results map back sorted.
    """
    assignments = partitioner.assign(table)
    if len(assignments) != table.row_count:
        raise ValueError("partitioner assigned %d rows of %d"
                         % (len(assignments), table.row_count))
    shards = partitioner.shards
    all_rids = table.all_rids()
    position_lists = [[] for _ in range(shards)]
    for position, shard_id in enumerate(assignments):
        if not 0 <= shard_id < shards:
            raise ValueError("row %d assigned to shard %r (of %d)"
                             % (all_rids[position], shard_id, shards))
        position_lists[shard_id].append(position)
    indexed = [name for name in table.columns if table.has_index(name)]
    columnar = hasattr(table, "subset")
    result = []
    for shard_id, positions in enumerate(position_lists):
        name = "%s/shard%d" % (table.name, shard_id)
        global_rids = [all_rids[position] for position in positions]
        if columnar:
            # Columnar shards keep the parent's (sparse) global RID
            # space — no local/global map to maintain under deltas.
            shard_table = table.subset(name, global_rids)
            shard = TableShard(shard_id, shard_table, None)
        else:
            columns = {col: [values[position]
                             for position in positions]
                       for col, values in table.columns.items()}
            shard = TableShard(shard_id, Table(name, columns),
                               global_rids)
        for col in indexed:
            shard.table.create_index(col)
        result.append(shard)
    return result


# ---------------------------------------------------------------------------
# scatter-time pruning
# ---------------------------------------------------------------------------

def _leaf_may_match(table, leaf):
    """Can this leaf scan return any row on *table*?

    Probes the secondary index without materializing RID lists
    (:meth:`~repro.db.table.SecondaryIndex.count_eq` /
    ``count_range``); an unindexed column conservatively answers yes.
    """
    if not table.has_index(leaf.column):
        return True
    index = table.index(leaf.column)
    if isinstance(leaf, Eq):
        return index.count_eq(leaf.value) > 0
    if isinstance(leaf, Range):
        return index.count_range(leaf.low, leaf.high) > 0
    if isinstance(leaf, In):
        return any(index.count_eq(value) > 0 for value in leaf.values)
    return True  # unknown leaf shape: never prune


def shard_may_match(table, predicate):
    """Can *predicate* select any row of this shard's *table*?

    A sound (never prunes a matching shard) recursive emptiness
    analysis over the predicate tree:

    * a leaf may match iff its index probe finds at least one row;
    * ``AND`` needs both sides, ``OR`` needs either side;
    * ``ANDNOT`` needs only its left side (the subtrahend cannot add
      rows).

    ``False`` means the shard provably contributes nothing and the
    scatter can skip it outright.
    """
    if table.row_count == 0:
        return False
    if predicate is None:
        return True
    if isinstance(predicate, Leaf):
        return _leaf_may_match(table, predicate)
    if isinstance(predicate, And):
        return (shard_may_match(table, predicate.left)
                and shard_may_match(table, predicate.right))
    if isinstance(predicate, AndNot):
        return shard_may_match(table, predicate.left)
    if isinstance(predicate, Or):
        return (shard_may_match(table, predicate.left)
                or shard_may_match(table, predicate.right))
    return True  # unknown combinator: never prune


def plan_replicas(loads, shards, replication, budget=None):
    """Replica host assignment: hottest shards first, peer-hosted.

    Returns ``placement[shard] = [host, ...]`` — the engine indices
    (other than the primary, which is always ``shard`` itself) that
    also hold shard *shard*'s rows.  Shard ``i``'s rank-``r`` replica
    lives on engine ``(i + r) % shards``, so replicas spread evenly
    and no engine hosts two copies of the same shard; ``replication``
    is therefore bounded by ``shards - 1``.

    *loads* is the per-shard load vector (row counts at partition
    time, or measured cycles) — the same vector :func:`skew_ratio`
    grades.  With a *budget* (a cap on total replica placements, for
    when replica memory is scarce), the hottest shards are served
    first, round by round: every shard above a load rank gets its
    first replica before any shard gets its second, so a Zipfian hot
    shard is always the first to be protected.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    if not 0 <= replication <= shards - 1:
        raise ValueError("replication must be within 0..shards-1 "
                         "(each copy needs a distinct engine), got %d "
                         "for %d shard(s)" % (replication, shards))
    loads = list(loads)
    if len(loads) != shards:
        raise ValueError("load vector covers %d shard(s) of %d"
                         % (len(loads), shards))
    placement = [[] for _ in range(shards)]
    if not replication:
        return placement
    remaining = shards * replication if budget is None else budget
    order = sorted(range(shards), key=lambda i: (-loads[i], i))
    for rank in range(1, replication + 1):
        for shard in order:
            if remaining <= 0:
                return placement
            placement[shard].append((shard + rank) % shards)
            remaining -= 1
    return placement


def partition_sizes(shards):
    """Row count per shard (the partition-balance vector)."""
    return [shard.row_count for shard in shards]


def skew_ratio(values):
    """Max-over-mean imbalance of a per-shard load vector.

    ``1.0`` is perfectly balanced; ``len(values)`` means one shard
    carries everything.  Empty or all-zero vectors report ``1.0``
    (nothing is imbalanced about no load).
    """
    values = list(values)
    total = sum(values)
    if not values or not total:
        return 1.0
    return max(values) * len(values) / total
