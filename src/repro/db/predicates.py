"""Predicate trees over indexed columns.

A WHERE clause is a tree of leaf predicates (equality, range, IN) and
AND / OR / ANDNOT combinators.  Leaves resolve to RID lists via
secondary-index scans; combinators map one-to-one onto the EIS set
instructions (AND -> intersection, OR -> union, ANDNOT -> difference)
— the paper's "INTERSECT, UNION, or DIFFERENCE" clause processing
(Section 2.3).
"""


class Predicate:
    """Base class; subclasses implement ``scan`` or expose children."""

    def __and__(self, other):
        return And(self, other)

    def __or__(self, other):
        return Or(self, other)

    def __sub__(self, other):
        return AndNot(self, other)


class Leaf(Predicate):
    """A predicate answered by one secondary-index scan."""

    def __init__(self, column):
        self.column = column

    def scan(self, table):
        raise NotImplementedError

    def required_index(self):
        return self.column


class Eq(Leaf):
    def __init__(self, column, value):
        super().__init__(column)
        self.value = value

    def scan(self, table):
        return table.index(self.column).scan_eq(self.value)

    def __repr__(self):
        return "%s = %r" % (self.column, self.value)


class Range(Leaf):
    """Inclusive range predicate: low <= column <= high."""

    def __init__(self, column, low=None, high=None):
        super().__init__(column)
        self.low = low
        self.high = high

    def scan(self, table):
        return table.index(self.column).scan_range(self.low, self.high)

    def __repr__(self):
        return "%s in [%r, %r]" % (self.column, self.low, self.high)


class In(Leaf):
    def __init__(self, column, values):
        super().__init__(column)
        self.values = tuple(values)

    def scan(self, table):
        return table.index(self.column).scan_in(self.values)

    def __repr__(self):
        return "%s IN %r" % (self.column, self.values)


class Combinator(Predicate):
    """A set operation over two sub-predicates' RID lists."""

    operation = None

    def __init__(self, left, right):
        self.left = left
        self.right = right

    def __repr__(self):
        return "(%r %s %r)" % (self.left,
                               type(self).__name__.upper(), self.right)


class And(Combinator):
    operation = "intersection"


class Or(Combinator):
    operation = "union"


class AndNot(Combinator):
    """Rows matching *left* but not *right* (NOT via difference)."""

    operation = "difference"


def signature(predicate):
    """Hashable structural identity of a predicate (sub)tree.

    Two predicates with equal signatures scan/compute identical RID
    lists on the same table — the cache key of the query engine's
    scan cache and common-subexpression reuse.
    """
    if isinstance(predicate, Eq):
        return ("eq", predicate.column, predicate.value)
    if isinstance(predicate, Range):
        return ("range", predicate.column, predicate.low,
                predicate.high)
    if isinstance(predicate, In):
        return ("in", predicate.column, predicate.values)
    if isinstance(predicate, Combinator):
        return (predicate.operation, signature(predicate.left),
                signature(predicate.right))
    raise TypeError("unsignable predicate: %r" % (predicate,))


def leaves(predicate):
    """All leaf predicates of a tree, left to right."""
    if isinstance(predicate, Leaf):
        return [predicate]
    return leaves(predicate.left) + leaves(predicate.right)


def validate_indexes(predicate, table):
    """Ensure every leaf's column has a secondary index."""
    missing = sorted({leaf.column for leaf in leaves(predicate)
                      if not table.has_index(leaf.column)})
    if missing:
        raise KeyError("missing secondary indexes on %s; call "
                       "Table.create_index" % ", ".join(missing))
