"""Query-engine benchmark workload and harness.

Shared by ``repro db bench``, ``benchmarks/bench_db_engine.py`` and the
CI throughput gate: builds a deterministic table + query batch, serves
it through the cost-model engine, through a pure-ISS engine, and
through the ISS path the engine replaced (a per-query
:class:`~repro.db.executor.QueryExecutor` loop — no scan cache, no
common-subexpression reuse).  The two engines must return identical
RIDs and cycle counts query-for-query; the reported speedup is the
cost-model engine against the plain ISS serving path.
"""

import random
import time

from ..configs.catalog import build_processor
from .engine import Query, QueryEngine
from .executor import QueryExecutor
from .predicates import Eq, In, Range
from .table import Table

COLUMNS = ("status", "region", "price")


def build_demo_table(rows=800, seed=42):
    """A deterministic three-column table with all indexes built."""
    rng = random.Random(seed)
    table = Table("orders", {
        "status": [rng.randrange(4) for _ in range(rows)],
        "region": [rng.randrange(8) for _ in range(rows)],
        "price": [rng.randrange(1000) for _ in range(rows)],
    })
    for column in COLUMNS:
        table.create_index(column)
    return table


def demo_queries(table, count=32, seed=7):
    """A deterministic query batch with mixed shapes.

    Roughly a quarter of the batch repeats an earlier query verbatim
    (the CSE / scan-cache case of batch traffic); the rest vary the
    predicate parameters.
    """
    rng = random.Random(seed)
    queries = []
    for _ in range(count):
        if queries and rng.random() < 0.25:
            earlier = rng.choice(queries)
            queries.append(Query(table, earlier.predicate,
                                 order_by=earlier.order_by,
                                 limit=earlier.limit))
            continue
        predicate = (Eq("status", rng.randrange(4))
                     & Range("price", rng.randrange(300),
                             300 + rng.randrange(700)))
        if rng.random() < 0.5:
            predicate = predicate | Eq("region", rng.randrange(8))
        if rng.random() < 0.25:
            predicate = predicate - In("region",
                                       (rng.randrange(8),
                                        rng.randrange(8)))
        order_by = "price" if rng.random() < 0.7 else None
        # serving traffic is LIMIT-heavy; the occasional full fetch
        # keeps the materialization path honest
        limit = None if rng.random() < 0.2 else rng.choice((10, 50))
        queries.append(Query(table, predicate, order_by=order_by,
                             limit=limit))
    return queries


def _serve_rounds(queries, repeat, **engine_kwargs):
    """Serve the batch *repeat* times on fresh engines; best round."""
    best = None
    last = None
    for _ in range(repeat):
        engine = QueryEngine(**engine_kwargs)
        started = time.perf_counter()
        results = engine.execute_batch(queries)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
        last = (engine, results)
    engine, results = last
    return engine, results, best


def _serve_baseline(table, queries, repeat, config):
    """The pre-engine ISS serving path: one ``select`` per query.

    A fresh :class:`QueryExecutor` per round, no scan cache, no
    cross-query reuse — every query pays the full simulator cost.
    """
    best = None
    rows = None
    for _ in range(repeat):
        executor = QueryExecutor(build_processor(config))
        started = time.perf_counter()
        served = [executor.select(query.table, query.predicate,
                                  order_by=query.order_by,
                                  descending=query.descending,
                                  columns=query.columns,
                                  limit=query.limit)[0]
                  for query in queries]
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
        rows = served
    return rows, best


def _serve_sharded(queries, repeat, shards, **engine_kwargs):
    """Serve the batch *repeat* times on fresh sharded engines."""
    from .shard import ShardedEngine
    best = None
    last = None
    for _ in range(repeat):
        engine = ShardedEngine(shards=shards, **engine_kwargs)
        started = time.perf_counter()
        results = engine.execute_batch(queries)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best:
            best = elapsed
        last = (engine, results)
    engine, results = last
    return engine, results, best


def run_bench(config="DBA_2LSU_EIS", rows=1600, queries=64, repeat=3,
              seed=42, log=None, workers=1, trace_out=None, shards=0):
    """Benchmark engine-vs-ISS batch serving; returns a JSON-able dict.

    With *trace_out*, one extra (untimed) serving pass runs after the
    timed rounds with a :class:`~repro.telemetry.querytrace.
    QueryTracer` attached and *workers* processes, and the merged
    Perfetto trace is written there — the timed rounds stay unperturbed
    by tracing overhead.

    Calibration happens on a warmup batch so the timed rounds measure
    steady-state serving, matching how a long-lived engine behaves.
    The speedup denominator is the plain ISS serving path (a
    per-query executor loop); parity is checked two ways — RIDs and
    cycles query-for-query against an ISS-backed engine, and row
    payloads against the baseline loop.  The fast path gets three
    rounds per ISS round: its rounds are an order of magnitude
    shorter, so scheduling noise needs more best-of samples to reach
    the same confidence.
    """
    table = build_demo_table(rows=rows, seed=seed)
    batch = demo_queries(table, count=queries, seed=seed + 1)
    if log:
        log("db bench: %d queries over %d rows on %s (best of %d)"
            % (len(batch), rows, config, repeat))

    QueryEngine(config=config).execute_batch(batch)  # calibrate

    engine, fast_results, fast_time = _serve_rounds(
        batch, repeat * 3, config=config, cost_model=True)
    iss_engine, iss_results, iss_engine_time = _serve_rounds(
        batch, repeat, config=config, cost_model=False)
    baseline_rows, iss_time = _serve_baseline(table, batch, repeat,
                                              config)

    rid_parity = all(fast.rids == ref.rids for fast, ref
                     in zip(fast_results, iss_results))
    cycle_parity = all(fast.stats.cycles == ref.stats.cycles
                       for fast, ref in zip(fast_results, iss_results))
    row_parity = all(fast.rows == ref for fast, ref
                     in zip(fast_results, baseline_rows))
    fast_qps = len(batch) / fast_time if fast_time else 0.0
    iss_qps = len(batch) / iss_time if iss_time else 0.0
    report = {
        "schema": "repro.bench-db-engine/v1",
        "config": config,
        "rows": rows,
        "queries": len(batch),
        "repeat": repeat,
        "seed": seed,
        "rid_parity": rid_parity,
        "cycle_parity": cycle_parity,
        "row_parity": row_parity,
        "costmodel": {
            "seconds": fast_time,
            "queries_per_second": fast_qps,
        },
        "iss": {
            "seconds": iss_time,
            "queries_per_second": iss_qps,
        },
        "iss_engine": {
            "seconds": iss_engine_time,
            "queries_per_second": (len(batch) / iss_engine_time
                                   if iss_engine_time else 0.0),
        },
        "speedup": fast_qps / iss_qps if iss_qps else 0.0,
        "engine_metrics": engine.metrics_snapshot(),
    }
    if shards and shards > 1:
        sharded, shard_results, shard_time = _serve_sharded(
            batch, repeat, shards, config=config, cost_model=True)
        shard_rid_parity = all(fast.rids == got.rids for fast, got
                               in zip(fast_results, shard_results))
        serial_cycles = sum(result.stats.cycles
                            for result in fast_results)
        makespan_cycles = sum(result.makespan_cycles
                              for result in shard_results)
        snapshot = sharded.metrics_snapshot()
        shard_cycles = [snapshot["db.shard.%d.cycles" % index]
                        for index in range(shards)]
        total = sum(shard_cycles)
        report["shard"] = {
            "shards": shards,
            "partitioner": sharded.partitioner.describe(),
            "rid_parity": shard_rid_parity,
            "seconds": shard_time,
            "queries_per_second": (len(batch) / shard_time
                                   if shard_time else 0.0),
            "serial_cycles": serial_cycles,
            "makespan_cycles": makespan_cycles,
            "modeled_speedup": (serial_cycles / makespan_cycles
                                if makespan_cycles else 0.0),
            "shard_cycles": shard_cycles,
            "skew": (max(shard_cycles) * shards / total
                     if total else 1.0),
            "skipped": snapshot["db.shard.skipped"],
            "gather_merge_cycles":
                snapshot["db.shard.gather.merge_cycles"],
            "gather_transfer_cycles":
                snapshot["db.shard.gather.transfer_cycles"],
            "gather_bytes": snapshot["db.shard.gather.bytes_moved"],
        }
        if log:
            log("  sharded (x%d):     %8.1f queries/s (%.4f s), "
                "modeled %.2fx, skew %.2f, rid parity: %s"
                % (shards, report["shard"]["queries_per_second"],
                   shard_time, report["shard"]["modeled_speedup"],
                   report["shard"]["skew"], shard_rid_parity))
    if trace_out:
        from ..telemetry.querytrace import (QueryTracer,
                                            write_query_trace)

        tracer = QueryTracer(label="db bench")
        trace_engine = QueryEngine(config=config, cost_model=True)
        trace_engine.execute_batch(batch, workers=workers,
                                   tracer=tracer)
        write_query_trace(trace_out, tracer)
        report["trace"] = {
            "path": trace_out,
            "workers": workers,
            "processes": 1 + len(tracer.children),
            "dropped": tracer.total_dropped,
        }
        if log:
            log("  trace: %d processes -> %s"
                % (report["trace"]["processes"], trace_out))
    if log:
        log("  cost-model engine: %8.1f queries/s (%.4f s)"
            % (fast_qps, fast_time))
        log("  iss engine:        %8.1f queries/s (%.4f s)"
            % (report["iss_engine"]["queries_per_second"],
               iss_engine_time))
        log("  iss baseline:      %8.1f queries/s (%.4f s)"
            % (iss_qps, iss_time))
        log("  speedup:    %.1fx  (rid parity: %s, cycle parity: %s, "
            "row parity: %s)"
            % (report["speedup"], rid_parity, cycle_parity,
               row_parity))
    return report
