"""Struct-of-arrays columnar tables with Z-set delta maintenance.

The row-oriented :class:`~repro.db.table.Table` rebuilds every
secondary index from scratch whenever data changes, so the serving
path is bottlenecked upstream of the accelerated set algebra.  This
module adopts the Z-set/weighted-delta model (tables as multisets with
integer weights; updates arrive as batches of +1/-1-weighted rows) over
NumPy struct-of-arrays storage:

* :class:`ColumnarTable` keeps each column as one ``uint32`` ndarray
  plus a parallel ``int8`` weight vector and a strictly-ascending RID
  vector.  RIDs are stable for the lifetime of a row — deletion flips
  the weight to zero (a tombstone) and physical removal is deferred to
  compaction, so derived state never has to renumber anything.
* :class:`DeltaBatch` carries one update: full inserted rows plus RIDs
  to delete.  A delete aimed at a row inserted by the same batch
  annihilates both sides ("ghost" rows) — neither is ever observable,
  matching the Z-set addition ``+1 + -1 = 0``.
* :class:`ColumnarIndex` is the argsort/searchsorted rebuild of
  :class:`~repro.db.table.SecondaryIndex`: postings are ``(value,
  rid)`` pairs in value order.  Delta batches *merge* into the
  postings (``np.searchsorted`` positions + one ``np.insert``) instead
  of re-sorting the column; deletions are tombstone-filtered at scan
  time through the table's live-RID lookup.  Range and membership
  scans read a parallel RID-ordered view of the column, so their
  results are born RID-sorted — no per-call ``sorted()``.

Scan results cross back into the engine as plain Python lists of
``int``: the EIS kernels, the calibrated cost model and the parity
suites all speak sorted RID lists, and keeping the boundary type
unchanged is what makes columnar results byte-identical to the
row-oriented reference.

The module imports without NumPy (the CI ``tests`` job runs the pure
fallback paths); constructing a :class:`ColumnarTable` without NumPy
raises a clear error.
"""

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

from ..core.common import SENTINEL

#: Compact once dead rows exceed this fraction of physical storage.
DEFAULT_COMPACT_THRESHOLD = 0.5


def _require_numpy():
    if _np is None:
        raise ImportError(
            "repro.db.columnar requires numpy; install the 'dev' extra "
            "or use the row-oriented repro.db.table.Table")


class DeltaBatch:
    """One Z-set update: ±1-weighted rows.

    ``inserts`` maps every column name to an equal-length list of new
    values (full rows; partial rows are rejected by the table).
    ``delete_rids`` names existing live rows to retract — or rows
    inserted by this very batch, in which case both sides annihilate.

    ``insert_rids`` pre-assigns global RIDs to the inserted rows; it is
    used by the sharded delta router to replay a coordinator-assigned
    batch onto shard tables and must be strictly ascending and above
    every RID the target table has ever assigned.
    """

    __slots__ = ("inserts", "delete_rids", "insert_rids")

    def __init__(self, inserts=None, delete_rids=(), insert_rids=None):
        self.inserts = dict(inserts) if inserts else {}
        length = None
        for column_name, values in self.inserts.items():
            values = list(values)
            if length is None:
                length = len(values)
            elif len(values) != length:
                raise ValueError("delta insert column lengths differ "
                                 "(%s)" % column_name)
            self.inserts[column_name] = values
        deletes = [int(rid) for rid in delete_rids]
        if len(set(deletes)) != len(deletes):
            raise ValueError("delta deletes the same RID twice; "
                             "Z-set weights stay within {-1, 0, +1}")
        self.delete_rids = deletes
        if insert_rids is not None:
            insert_rids = [int(rid) for rid in insert_rids]
            if len(insert_rids) != self.insert_count:
                raise ValueError("insert_rids length does not match "
                                 "inserted rows")
            if any(b <= a for a, b in zip(insert_rids, insert_rids[1:])):
                raise ValueError("insert_rids must be strictly "
                                 "ascending")
        self.insert_rids = insert_rids

    @property
    def insert_count(self):
        for values in self.inserts.values():
            return len(values)
        return 0

    @classmethod
    def from_spec(cls, spec):
        """Build from a plain-dict spec (the workload generator's
        output): ``{"insert": {col: [...]}, "delete_rids": [...]}``."""
        return cls(inserts=spec.get("insert") or None,
                   delete_rids=spec.get("delete_rids", ()))

    def __repr__(self):
        return "<DeltaBatch +%d rows -%d rids>" % (
            self.insert_count, len(self.delete_rids))


class ColumnarTable:
    """Struct-of-arrays table with stable RIDs and weighted rows.

    Mirrors the :class:`~repro.db.table.Table` read API (``row_count``,
    ``columns``, ``column``, ``fetch``, ``create_index`` /``index``/
    ``has_index``) so the engine, planner lint and partitioner treat
    both interchangeably, and adds :meth:`apply_delta` plus the
    RID-space accessors (:meth:`all_rids`, :meth:`rid_limit`,
    :meth:`rid_indexed_column`) the executor's packing path uses.
    """

    def __init__(self, name, columns, rids=None,
                 compact_threshold=DEFAULT_COMPACT_THRESHOLD):
        _require_numpy()
        self.name = name
        self._data = {}
        length = None
        for column_name, values in columns.items():
            array = _np.asarray(list(values), dtype=_np.int64)
            if array.size and (array.min() < 0
                               or array.max() >= SENTINEL):
                raise ValueError(
                    "%s.%s: values must be 32-bit below the "
                    "sentinel" % (name, column_name))
            if length is None:
                length = int(array.size)
            elif int(array.size) != length:
                raise ValueError("column lengths differ in table %s"
                                 % name)
            self._data[column_name] = array.astype(_np.uint32)
        length = length or 0
        if rids is None:
            self._rids = _np.arange(length, dtype=_np.int64)
        else:
            self._rids = _np.asarray(list(rids), dtype=_np.int64)
            if int(self._rids.size) != length:
                raise ValueError("rid vector length does not match "
                                 "columns in table %s" % name)
            if self._rids.size and (self._rids.min() < 0 or _np.any(
                    _np.diff(self._rids) <= 0)):
                raise ValueError("rids must be strictly ascending")
        self._weights = _np.ones(length, dtype=_np.int8)
        self._next_rid = int(self._rids[-1]) + 1 if length else 0
        self._alive = _np.zeros(self._next_rid, dtype=bool)
        self._alive[self._rids] = True
        self._live = length
        self._dead = 0
        self.compact_threshold = compact_threshold
        self.version = 0
        self.compactions = 0
        self._indexes = {}
        self._memo = {}

    # -- read API (Table-compatible) ---------------------------------

    @property
    def row_count(self):
        return self._live

    @property
    def columns(self):
        """Live values per column, as plain lists (compat shim)."""
        cached = self._memo.get("columns")
        if cached is None:
            cached = {name: self.column(name) for name in self._data}
            self._memo["columns"] = cached
        return cached

    def column(self, name):
        key = ("column", name)
        cached = self._memo.get(key)
        if cached is None:
            _rids, values = self._live_view(name)
            cached = values.tolist()
            self._memo[key] = cached
        return cached

    def _live_view(self, name):
        """``(rids, values)`` ndarrays of live rows, in RID order.

        This is the parallel RID-sorted view backing the sort-free
        range/membership scans: ``self._rids`` is strictly ascending,
        so any boolean mask over it yields RID-sorted output.
        """
        if name not in self._data:
            raise KeyError("table %s has no column %r"
                           % (self.name, name))
        key = ("live", name)
        cached = self._memo.get(key)
        if cached is None:
            mask = self._memo.get("live_mask")
            if mask is None:
                mask = self._weights > 0
                self._memo["live_mask"] = mask
            cached = (self._rids[mask], self._data[name][mask])
            self._memo[key] = cached
        return cached

    def all_rids(self):
        """Sorted live RIDs as a plain list (the full-scan operand)."""
        cached = self._memo.get("all_rids")
        if cached is None:
            mask = self._weights > 0
            cached = self._rids[mask].tolist()
            self._memo["all_rids"] = cached
        return cached

    def rid_limit(self):
        """Exclusive upper bound of the RID space ever assigned."""
        return self._next_rid

    def rid_indexed_column(self, name):
        """Dense ``array[rid] -> value`` lookup for the packing path.

        Memoized per version; the executor's packed-key cache keys on
        object identity, so returning the same array until the next
        delta keeps that cache honest.
        """
        key = ("rid_indexed", name)
        cached = self._memo.get(key)
        if cached is None:
            rids, values = self._live_view(name)
            cached = _np.zeros(self._next_rid, dtype=_np.int64)
            cached[rids] = values
            self._memo[key] = cached
        return cached

    def fetch(self, rids, column_names=None):
        """Materialize rows (as dicts) for a RID list, vectorized."""
        names = list(column_names or self._data)
        if not len(rids):
            return []
        positions = self._positions_of(_np.asarray(list(rids),
                                                   dtype=_np.int64))
        columns = [self._data[name][positions].tolist()
                   for name in names]
        return [dict(zip(names, row)) for row in zip(*columns)]

    def _positions_of(self, rids):
        """Physical positions of live *rids*; KeyError on misses."""
        positions = _np.searchsorted(self._rids, rids)
        valid = positions < self._rids.size
        if not valid.all():
            raise KeyError("table %s has no live row %d" % (
                self.name, int(rids[_np.argmin(valid)])))
        hit = self._rids[positions] == rids
        live = self._weights[positions] > 0
        ok = hit & live
        if not ok.all():
            raise KeyError("table %s has no live row %d" % (
                self.name, int(rids[int(_np.argmin(ok))])))
        return positions

    # -- indexes -----------------------------------------------------

    def create_index(self, column_name):
        """Build (or return) the columnar index on a column."""
        if column_name not in self._indexes:
            if column_name not in self._data:
                raise KeyError("table %s has no column %r"
                               % (self.name, column_name))
            self._indexes[column_name] = ColumnarIndex(self,
                                                       column_name)
        return self._indexes[column_name]

    def index(self, column_name):
        if column_name not in self._indexes:
            raise KeyError("no index on %s.%s; call create_index"
                           % (self.name, column_name))
        return self._indexes[column_name]

    def has_index(self, column_name):
        return column_name in self._indexes

    # -- delta maintenance -------------------------------------------

    def apply_delta(self, batch):
        """Apply one ±1-weighted :class:`DeltaBatch`.

        Returns an outcome dict: effective ``insert_rids`` /
        ``insert_columns`` / ``deleted_rids`` (ghosts excluded),
        ``annihilated`` count, per-column ``touched`` value arrays
        (the cache-invalidation footprint) and whether compaction ran.
        """
        count = batch.insert_count
        if batch.inserts and set(batch.inserts) != set(self._data):
            raise ValueError("delta inserts must carry full rows of "
                             "table %s" % self.name)
        if batch.insert_rids is not None:
            new_rids = _np.asarray(batch.insert_rids, dtype=_np.int64)
            if new_rids.size and int(new_rids[0]) < self._next_rid:
                raise ValueError("pre-assigned insert rids collide "
                                 "with table %s rid space" % self.name)
        else:
            new_rids = _np.arange(self._next_rid,
                                  self._next_rid + count,
                                  dtype=_np.int64)
        insert_columns = {}
        for column_name, values in batch.inserts.items():
            array = _np.asarray(values, dtype=_np.int64)
            if array.size and (array.min() < 0
                               or array.max() >= SENTINEL):
                raise ValueError(
                    "%s.%s: values must be 32-bit below the "
                    "sentinel" % (self.name, column_name))
            insert_columns[column_name] = array
        deletes = _np.asarray(batch.delete_rids, dtype=_np.int64)

        ghost_mask = _np.isin(deletes, new_rids)
        ghosts = deletes[ghost_mask]
        deletes = deletes[~ghost_mask]
        deletes.sort()
        keep = ~_np.isin(new_rids, ghosts)
        eff_rids = new_rids[keep]
        eff_columns = {name: values[keep]
                       for name, values in insert_columns.items()}

        positions = (self._positions_of(deletes) if deletes.size
                     else _np.empty(0, dtype=_np.int64))

        touched = {}
        for name in self._data:
            parts = [self._data[name][positions].astype(_np.int64)]
            if name in eff_columns:
                parts.append(eff_columns[name])
            touched[name] = _np.unique(_np.concatenate(parts))

        # Retract: weight -> 0 tombstones, physical removal deferred.
        if deletes.size:
            self._weights[positions] = 0
            self._alive[deletes] = False
            self._dead += int(deletes.size)
            self._live -= int(deletes.size)
        # Insert: append; RID order is preserved because every new RID
        # is above everything previously assigned.
        if eff_rids.size:
            for name in self._data:
                self._data[name] = _np.concatenate(
                    [self._data[name],
                     eff_columns[name].astype(_np.uint32)])
            self._rids = _np.concatenate([self._rids, eff_rids])
            self._weights = _np.concatenate(
                [self._weights, _np.ones(eff_rids.size, dtype=_np.int8)])
            self._live += int(eff_rids.size)
        if count:
            # Ghost rows still consume RID space: the workload
            # generator mirrors this assignment deterministically.
            self._next_rid = max(self._next_rid,
                                 int(new_rids[-1]) + 1)
        if self._next_rid > self._alive.size:
            grown = _np.zeros(self._next_rid, dtype=bool)
            grown[:self._alive.size] = self._alive
            grown[eff_rids] = True
            self._alive = grown
        elif eff_rids.size:
            self._alive[eff_rids] = True
        self.version += 1
        self._memo = {}

        for index in self._indexes.values():
            index.apply_delta(eff_columns.get(index.column_name),
                              eff_rids)

        compacted = False
        if self._rids.size and (self._dead / self._rids.size
                                > self.compact_threshold):
            self._compact()
            compacted = True
        return {"insert_rids": eff_rids,
                "insert_columns": eff_columns,
                "deleted_rids": deletes,
                "annihilated": int(ghosts.size),
                "touched": touched,
                "compacted": compacted}

    def _compact(self):
        """Drop tombstoned rows; annihilated weight leaves storage."""
        mask = self._weights > 0
        for name in self._data:
            self._data[name] = self._data[name][mask]
        self._rids = self._rids[mask]
        self._weights = _np.ones(self._rids.size, dtype=_np.int8)
        self._dead = 0
        self.compactions += 1
        self._memo = {}
        for index in self._indexes.values():
            index.rebuild()

    def subset(self, name, rids):
        """New table holding *rids* (which stay the global RIDs).

        Shard tables built this way share the parent's RID space, so
        shard-local scan results are already global and partition
        parity is positional-mapping-free.
        """
        rid_array = _np.asarray(list(rids), dtype=_np.int64)
        order = _np.argsort(rid_array, kind="stable")
        rid_array = rid_array[order]
        positions = (self._positions_of(rid_array) if rid_array.size
                     else _np.empty(0, dtype=_np.int64))
        columns = {column_name: values[positions]
                   for column_name, values in self._data.items()}
        return ColumnarTable(name, columns, rids=rid_array,
                             compact_threshold=self.compact_threshold)

    def __repr__(self):
        return "<ColumnarTable %s %d rows x %d columns (v%d)>" % (
            self.name, self._live, len(self._data), self.version)


class ColumnarIndex:
    """argsort/searchsorted postings with incremental delta merge.

    Postings are ``(value, rid)`` pairs in value order (RID-ascending
    within one value, because RIDs are assigned monotonically and the
    build sort is stable).  A delta batch merges its pairs at
    ``np.searchsorted`` positions in one ``np.insert`` — no full
    re-sort.  Deleted rows stay in the postings as tombstones and are
    filtered at scan time against the table's live-RID lookup; the
    table drops them wholesale on compaction via :meth:`rebuild`.
    """

    def __init__(self, table, column_name):
        self._table = table
        self.column_name = column_name
        self.rebuilds = 0
        self.delta_merges = 0
        self.rebuild()

    def rebuild(self):
        """Full argsort rebuild from live rows (used at build time and
        after compaction)."""
        mask = self._table._weights > 0
        values = self._table._data[self.column_name][mask]
        rids = self._table._rids[mask]
        order = _np.argsort(values, kind="stable")
        self._keys = values[order].astype(_np.int64)
        self._postings = rids[order]
        self.rebuilds += 1

    def apply_delta(self, values, rids):
        """Merge inserted ``(value, rid)`` pairs into the postings.

        Deletions need no work here — they tombstone through the
        table's weight vector.  ``side="right"`` placement keeps equal
        keys RID-ascending because every delta RID is above every
        existing one.
        """
        if values is None or not len(rids):
            return
        order = _np.lexsort((rids, values))
        values = values[order]
        rids = rids[order]
        positions = _np.searchsorted(self._keys, values, side="right")
        self._keys = _np.insert(self._keys, positions, values)
        self._postings = _np.insert(self._postings, positions, rids)
        self.delta_merges += 1

    def _live(self, rids):
        return rids[self._table._alive[rids]]

    def scan_eq(self, value):
        """RIDs of rows where column == value (sorted list)."""
        start = _np.searchsorted(self._keys, value, side="left")
        end = _np.searchsorted(self._keys, value, side="right")
        if start == end:
            return []
        return self._live(self._postings[start:end]).tolist()

    def scan_range(self, low=None, high=None):
        """RIDs where low <= column <= high, born RID-sorted.

        Reads the RID-ordered live view instead of the value-ordered
        postings, so no sort is needed at any size.
        """
        rids, values = self._table._live_view(self.column_name)
        mask = _np.ones(values.size, dtype=bool)
        if low is not None:
            mask &= values >= low
        if high is not None:
            mask &= values <= high
        return rids[mask].tolist()

    def scan_in(self, values):
        """RIDs where column is in *values*, born RID-sorted.

        Matches the row-oriented reference exactly, including its
        duplicate-RID output when *values* itself has duplicates.
        """
        values = list(values)
        rids, live_values = self._table._live_view(self.column_name)
        if len(values) == len(set(values)):
            mask = _np.isin(live_values, _np.asarray(values,
                                                     dtype=_np.int64))
            return rids[mask].tolist()
        # Duplicate probe values replicate their matches (reference
        # semantics): count multiplicity per probe value.
        out = []
        counts = {}
        for value in values:
            counts[value] = counts.get(value, 0) + 1
        masks = _np.zeros(live_values.size, dtype=_np.int64)
        for value, multiplicity in counts.items():
            masks += multiplicity * (live_values == value)
        return _np.repeat(rids, masks).tolist()

    def count_eq(self, value):
        """Exact matching-row count (tombstones excluded)."""
        start = _np.searchsorted(self._keys, value, side="left")
        end = _np.searchsorted(self._keys, value, side="right")
        if start == end:
            return 0
        return int(self._table._alive[
            self._postings[start:end]].sum())

    def count_range(self, low=None, high=None):
        """Exact matching-row count for a range probe."""
        keys = self._keys
        start = 0 if low is None else int(
            _np.searchsorted(keys, low, side="left"))
        end = keys.size if high is None else int(
            _np.searchsorted(keys, high, side="right"))
        if start >= end:
            return 0
        return int(self._table._alive[
            self._postings[start:end]].sum())

    def distinct_values(self):
        rids, values = self._table._live_view(self.column_name)
        return _np.unique(values).tolist()

    def __repr__(self):
        return "<ColumnarIndex %s: %d postings, %d merges>" % (
            self.column_name, int(self._keys.size), self.delta_merges)


def delta_mask(predicate, columns):
    """Vectorized predicate evaluation over delta rows.

    *columns* maps column names to equal-length ndarrays (the delta
    batch's inserted rows).  Returns a boolean ndarray — the rows the
    predicate matches — used to maintain standing queries without
    rescanning the table.
    """
    kind = type(predicate).__name__
    if kind == "Eq":
        return columns[predicate.column] == predicate.value
    if kind == "Range":
        values = columns[predicate.column]
        mask = _np.ones(values.size, dtype=bool)
        if predicate.low is not None:
            mask &= values >= predicate.low
        if predicate.high is not None:
            mask &= values <= predicate.high
        return mask
    if kind == "In":
        return _np.isin(columns[predicate.column],
                        _np.asarray(list(predicate.values),
                                    dtype=_np.int64))
    if kind == "And":
        return delta_mask(predicate.left, columns) \
            & delta_mask(predicate.right, columns)
    if kind == "Or":
        return delta_mask(predicate.left, columns) \
            | delta_mask(predicate.right, columns)
    if kind == "AndNot":
        return delta_mask(predicate.left, columns) \
            & ~delta_mask(predicate.right, columns)
    raise TypeError("unknown predicate node %r" % (predicate,))


def signature_affected(sig, touched):
    """Whether a cached predicate signature overlaps a delta's
    touched-value footprint.

    *touched* maps column names to sorted ndarrays of values that some
    inserted or deleted row carried.  A cache entry survives a delta
    exactly when no leaf of its predicate can match any touched value —
    the vectorized membership/overlap checks below.
    """
    kind = sig[0]
    if kind == "eq":
        _kind, column, value = sig
        values = touched.get(column)
        if values is None or not values.size:
            return False
        return bool(_np.isin(value, values, assume_unique=False))
    if kind == "range":
        _kind, column, low, high = sig
        values = touched.get(column)
        if values is None or not values.size:
            return False
        mask = _np.ones(values.size, dtype=bool)
        if low is not None:
            mask &= values >= low
        if high is not None:
            mask &= values <= high
        return bool(mask.any())
    if kind == "in":
        _kind, column, members = sig
        values = touched.get(column)
        if values is None or not values.size:
            return False
        return bool(_np.isin(_np.asarray(list(members),
                                         dtype=_np.int64),
                             values).any())
    # Combinator: ("and"|"or"|"andnot", left_sig, right_sig).
    return signature_affected(sig[1], touched) \
        or signature_affected(sig[2], touched)
