"""Batched query serving on the database processor.

:class:`QueryEngine` is the serving layer above
:class:`~repro.db.executor.QueryExecutor`, built for query *traffic*
rather than single microbenchmarks:

* **cost-model fast path** — kernels run through the calibrated
  :class:`~repro.core.costmodel.CostModel` by default, so a query
  costs vectorized set algebra instead of per-instruction simulation
  while reporting the identical cycle counts;
* **scan cache** — secondary-index scans are memoized per (table,
  leaf-predicate signature) across the engine's lifetime;
* **common-subexpression reuse** — identical predicate subtrees
  within one batch are evaluated once, and the cycles the reuse
  avoided are tracked as ``db.engine.cycles_saved``;
* **executor pool** — batches can fan out across worker processes via
  :mod:`repro.supervisor` (each worker builds its own processor and
  executor, the same crash-isolation infrastructure the experiment
  sweeps use);
* **telemetry** — ``db.engine.*`` counters (queries, cache hits,
  cycles by source, cycles saved) plus the cost model's
  ``costmodel.*`` counters in one registry snapshot.

The ISS remains the default everywhere else; pass
``cost_model=False`` to serve through the simulator (the benchmark
baseline, and the differential suite's reference).
"""

import time
from contextlib import nullcontext

from ..configs.catalog import build_processor
from ..core.costmodel import CostModel, default_cost_model
from ..supervisor import Task, supervise
from ..telemetry.querytrace import QueryTracer
from ..telemetry.registry import MetricsRegistry
# The columnar module imports without numpy; only constructing a
# ColumnarTable (and therefore reaching these helpers) requires it.
from .columnar import delta_mask, signature_affected
from .executor import QueryExecutor, QueryStats, _merge_stats
from .planlint import lint_query_or_raise
from .predicates import Combinator, Leaf, signature


class Query:
    """One SELECT: WHERE tree + ORDER BY + projection + limit."""

    __slots__ = ("table", "predicate", "order_by", "descending",
                 "columns", "limit")

    def __init__(self, table, predicate=None, order_by=None,
                 descending=False, columns=None, limit=None):
        self.table = table
        self.predicate = predicate
        self.order_by = order_by
        self.descending = descending
        self.columns = columns
        self.limit = limit

    def __repr__(self):
        return "<Query %s where=%r order_by=%r limit=%r>" % (
            self.table.name, self.predicate, self.order_by, self.limit)


class QueryResult:
    """Rows + RIDs + per-query :class:`QueryStats`."""

    __slots__ = ("rows", "rids", "stats")

    def __init__(self, rows, rids, stats):
        self.rows = rows
        self.rids = rids
        self.stats = stats

    def __repr__(self):
        return "<QueryResult %d rows, %d cycles>" % (
            len(self.rows), self.stats.cycles)


class StandingQuery:
    """A registered query maintained incrementally under deltas.

    Holds the current sorted matching-RID list; each
    :meth:`QueryEngine.apply_delta` re-evaluates the predicate only
    over the delta's rows (vectorized, via
    :func:`~repro.db.columnar.delta_mask`) and folds the result in —
    the table is never rescanned.
    """

    __slots__ = ("query", "rids", "_members")

    def __init__(self, query, rids):
        self.query = query
        self.rids = list(rids)
        self._members = set(self.rids)

    def _fold(self, added, removed):
        if removed:
            dead = set(removed)
            self._members -= dead
            self.rids = [rid for rid in self.rids if rid not in dead]
        if added:
            # New RIDs are above everything ever assigned, so
            # appending keeps the list sorted.
            self.rids.extend(added)
            self._members.update(added)

    def __repr__(self):
        return "<StandingQuery %s: %d rids>" % (
            self.query.table.name, len(self.rids))


class StandingUpdate:
    """Output delta of one standing query for one input delta."""

    __slots__ = ("standing", "added", "removed")

    def __init__(self, standing, added, removed):
        self.standing = standing
        self.added = added
        self.removed = removed

    def __repr__(self):
        return "<StandingUpdate +%d -%d>" % (len(self.added),
                                             len(self.removed))


class QueryEngine:
    """Serves query batches on one processor configuration.

    *cost_model* may be ``True`` (the process-wide shared
    :func:`~repro.core.costmodel.default_cost_model`), ``False`` /
    ``None`` (pure ISS), or a :class:`CostModel` instance.
    """

    def __init__(self, config="DBA_2LSU_EIS", processor=None,
                 partial_load=True, cost_model=True, registry=None):
        if processor is None:
            processor = build_processor(config,
                                        partial_load=partial_load)
        self.processor = processor
        self.config_name = processor.config.name
        self.partial_load = partial_load
        if cost_model is True:
            cost_model = default_cost_model()
        elif cost_model is False:
            cost_model = None
        self.cost_model = cost_model
        self.executor = QueryExecutor(processor, cost_model=cost_model)
        # Not ``registry or ...``: an empty registry is falsy
        # (``__len__``) and a caller-shared one must still be adopted.
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        scope = self.registry.scope("db.engine")
        self._queries = scope.counter("queries")
        self._batches = scope.counter("batches")
        self._rows = scope.counter("rows")
        self._cycles_iss = scope.counter("cycles_iss")
        self._cycles_costmodel = scope.counter("cycles_costmodel")
        self._cycles_saved = scope.counter("cycles_saved")
        self._scan_hits = scope.counter("scan_cache.hits")
        self._scan_misses = scope.counter("scan_cache.misses")
        self._cse_hits = scope.counter("cse.hits")
        self._short_circuits = scope.counter("short_circuits")
        self._last_qps = scope.gauge("last_batch_qps")
        self._query_cycles = scope.histogram("query_cycles")
        self._queue_depth = scope.gauge("queue_depth")
        self._workers = scope.gauge("workers")
        self._active_workers = scope.gauge("active_workers")
        self._deltas = scope.counter("deltas")
        self._delta_rows = scope.counter("delta_rows")
        self._scan_invalidated = scope.counter(
            "scan_cache.invalidated")
        self._standing_count = scope.gauge("standing.registered")
        self._standing_updates = scope.counter("standing.updates")
        self._standing_scanned = scope.counter("standing.rows_scanned")
        #: (id(table), signature) -> RID list; tables are pinned so
        #: the id() keys stay unique for the engine's lifetime.
        self._scan_cache = {}
        self._pinned_tables = {}
        #: id(table) -> [StandingQuery, ...]
        self._standing = {}

    # -- single query ---------------------------------------------------------

    def execute(self, query, tracer=None):
        """Serve one :class:`Query`; returns a :class:`QueryResult`."""
        return self._execute_one(query, cse=None, tracer=tracer)

    # -- batches --------------------------------------------------------------

    def execute_batch(self, queries, workers=1, timeout=None,
                      tracer=None):
        """Serve a batch; returns :class:`QueryResult` per query.

        With ``workers > 1`` the batch fans out over a supervised
        process pool (one executor per worker); caches then live per
        worker chunk, so reuse-heavy traffic profits most from the
        in-process path.  Worker counters come back namespaced as
        ``db.engine.worker.<i>.*`` plus aggregated totals, so pooled
        serving no longer loses child-process telemetry.

        *tracer* (a :class:`~repro.telemetry.querytrace.QueryTracer`)
        records wall-clock and modeled-cycle spans for the batch; in
        pooled mode each worker's trace is reattached as a child
        payload for the merged Perfetto export.
        """
        queries = list(queries)
        started = time.perf_counter()
        self._queue_depth.set(len(queries))
        batch = tracer.span("batch", queries=len(queries)) \
            if tracer is not None else nullcontext()
        try:
            with batch:
                if workers > 1 and len(queries) > 1:
                    results = self._execute_parallel(
                        queries, workers, timeout, tracer)
                else:
                    self._workers.set(1)
                    self._active_workers.set(1)
                    cse = {}
                    results = [self._execute_one(query, cse, tracer,
                                                 index)
                               for index, query in enumerate(queries)]
        finally:
            self._queue_depth.set(0)
        elapsed = time.perf_counter() - started
        self._batches.add(1)
        if elapsed > 0:
            self._last_qps.set(len(queries) / elapsed)
        return results

    # -- predicate evaluation (shard scatter entry point) ---------------------

    def evaluate_predicate(self, table, predicate, stats=None,
                           cse=None, tracer=None, index=0):
        """Evaluate a WHERE tree on *table*; ``(rids, stats)``.

        The scatter half of sharded execution
        (:class:`~repro.db.shard.ShardedEngine`): a shard evaluates the
        query's predicate tree against its partition through this
        engine — scan cache, CSE and cycle attribution included —
        without the ORDER BY / fetch tail the coordinator owns.
        """
        if stats is None:
            stats = QueryStats()
        rids = self._evaluate(table, predicate, stats, cse, tracer,
                              index)
        return rids, stats

    # -- delta maintenance ----------------------------------------------------

    def apply_delta(self, table, batch):
        """Apply a :class:`~repro.db.columnar.DeltaBatch` to *table*
        and maintain all derived engine state.

        * Scan-cache entries survive unless some leaf of their
          predicate can match a value the delta touched (checked
          vectorized against the delta's per-column value footprint).
        * Standing queries are re-evaluated only over the delta's rows
          and each emits a :class:`StandingUpdate` output delta.

        Returns ``{"table": <table outcome>, "invalidated": n,
        "updates": [StandingUpdate, ...]}``.
        """
        if not hasattr(table, "apply_delta"):
            raise TypeError(
                "table %r is not delta-capable; build a "
                "repro.db.columnar.ColumnarTable" % (table.name,))
        outcome = table.apply_delta(batch)
        touched = outcome["touched"]
        invalidated = self._invalidate_scan_cache(id(table), touched)
        updates = []
        insert_rids = outcome["insert_rids"]
        removed_candidates = set(outcome["deleted_rids"].tolist())
        for standing in self._standing.get(id(table), ()):
            if len(insert_rids):
                mask = delta_mask(standing.query.predicate,
                                  outcome["insert_columns"])
                added = insert_rids[mask].tolist()
            else:
                added = []
            removed = sorted(standing._members & removed_candidates)
            standing._fold(added, removed)
            updates.append(StandingUpdate(standing, added, removed))
            self._standing_updates.add(1)
            self._standing_scanned.add(
                len(insert_rids) + len(removed_candidates))
        self._deltas.add(1)
        self._delta_rows.add(len(insert_rids)
                             + len(removed_candidates))
        self._scan_invalidated.add(invalidated)
        return {"table": outcome, "invalidated": invalidated,
                "updates": updates}

    def _invalidate_scan_cache(self, table_id, touched):
        """Drop cache entries whose predicate overlaps *touched*."""
        stale = [key for key in self._scan_cache
                 if key[0] == table_id
                 and signature_affected(key[1], touched)]
        for key in stale:
            del self._scan_cache[key]
        return len(stale)

    def register_standing(self, query):
        """Register *query* for incremental maintenance.

        The query must be a pure WHERE shape (no ORDER BY / limit /
        projection — the output is a sorted RID set, a Z-set view).
        It is evaluated once now; afterwards
        :meth:`apply_delta` maintains it from delta rows alone.
        """
        if query.predicate is None or query.order_by is not None \
                or query.limit is not None or query.columns:
            raise ValueError("standing queries are pure WHERE shapes")
        lint_query_or_raise(query, engine=self)
        rids, _stats = self.evaluate_predicate(query.table,
                                               query.predicate)
        standing = StandingQuery(query, rids)
        self._standing.setdefault(id(query.table), []).append(standing)
        self._pinned_tables[id(query.table)] = query.table
        self._standing_count.set(
            sum(len(group) for group in self._standing.values()))
        return standing

    # -- internals ------------------------------------------------------------

    def _execute_one(self, query, cse, tracer=None, index=0):
        table = query.table
        stats = QueryStats()
        span = tracer.span("query", query=index, table=table.name) \
            if tracer is not None else nullcontext()
        with span:
            with (tracer.span("plan", query=index)
                  if tracer is not None else nullcontext()):
                lint_query_or_raise(query, engine=self)
            if query.predicate is not None:
                rids = self._evaluate(table, query.predicate, stats,
                                      cse, tracer, index)
            else:
                rids = table.all_rids()
            if query.order_by is not None:
                sort = tracer.span("sort", query=index,
                                   column=query.order_by) \
                    if tracer is not None else nullcontext()
                with sort:
                    rids, sort_stats = self.executor.order_by(
                        table, rids, query.order_by, query.descending)
                _merge_stats(stats, sort_stats)
                self._record_cycles(tracer, "sort.%s" % query.order_by,
                                    sort_stats.cycles_by_source, index)
            if query.limit is not None:
                rids = rids[:query.limit]
            with (tracer.span("fetch", query=index)
                  if tracer is not None else nullcontext()):
                rows = table.fetch(rids, query.columns)
        self._account(stats, len(rows))
        return QueryResult(rows, rids, stats)

    def _evaluate(self, table, predicate, stats, cse, tracer=None,
                  index=0):
        if isinstance(predicate, Leaf):
            stats.index_scans += 1
            key = (id(table), signature(predicate))
            cached = self._scan_cache.get(key)
            if cached is not None:
                self._scan_hits.add(1)
                if tracer is not None:
                    with tracer.span("scan.cached", query=index):
                        return list(cached)
                return list(cached)
            scan = tracer.span("scan", query=index) \
                if tracer is not None else nullcontext()
            with scan:
                rids = predicate.scan(table)
            self._pinned_tables[id(table)] = table
            self._scan_cache[key] = rids
            self._scan_misses.add(1)
            return list(rids)
        if not isinstance(predicate, Combinator):
            raise TypeError("not a predicate: %r" % (predicate,))
        key = (id(table), signature(predicate))
        if cse is not None:
            hit = cse.get(key)
            if hit is not None:
                rids, avoided = hit
                self._cse_hits.add(1)
                self._cycles_saved.add(avoided)
                if tracer is not None:
                    with tracer.span("cse", query=index,
                                     cycles_avoided=avoided):
                        return list(rids)
                return list(rids)
        before = stats.cycles
        left = self._evaluate(table, predicate.left, stats, cse,
                              tracer, index)
        right = self._evaluate(table, predicate.right, stats, cse,
                               tracer, index)
        name = "set.%s" % predicate.operation
        by_source_before = dict(stats.cycles_by_source)
        with (tracer.span(name, query=index)
              if tracer is not None else nullcontext()):
            rids = self.executor.set_operation(predicate.operation,
                                               left, right, stats)
        if tracer is not None:
            delta = {source: cycles - by_source_before.get(source, 0)
                     for source, cycles
                     in stats.cycles_by_source.items()}
            self._record_cycles(tracer, name, delta, index)
        if cse is not None:
            cse[key] = (list(rids), stats.cycles - before)
        return rids

    def _record_cycles(self, tracer, name, by_source, index):
        """Modeled-cycle spans, one per nonzero attribution source."""
        if tracer is None:
            return
        for source in sorted(by_source):
            cycles = by_source[source]
            if cycles:
                tracer.cycles(name, cycles, source, {"query": index})

    def _account(self, stats, row_count):
        self._queries.add(1)
        self._rows.add(row_count)
        self._cycles_iss.add(stats.cycles_by_source.get("iss", 0))
        self._cycles_costmodel.add(
            stats.cycles_by_source.get("costmodel", 0))
        self._short_circuits.add(stats.short_circuits)
        self._query_cycles.observe(stats.cycles)

    # -- parallel workers -----------------------------------------------------

    def _execute_parallel(self, queries, workers, timeout, tracer=None):
        chunks = [[] for _ in range(workers)]
        for index, query in enumerate(queries):
            chunks[index % workers].append((index, query))
        chunks = [chunk for chunk in chunks if chunk]
        self._workers.set(workers)
        self._active_workers.set(len(chunks))
        dispatch = tracer.span("dispatch", chunks=len(chunks)) \
            if tracer is not None else nullcontext()
        with dispatch:
            tasks = []
            for chunk_index, chunk in enumerate(chunks):
                spec = self._worker_spec(chunk, chunk_index, tracer)
                tasks.append(Task("chunk-%d" % chunk_index,
                                  _serve_worker_chunk, (spec,)))
            report = supervise(tasks, jobs=len(tasks), timeout=timeout,
                               retries=1)
        gather = tracer.span("gather") \
            if tracer is not None else nullcontext()
        with gather:
            results = [None] * len(queries)
            for chunk_index, (chunk, outcome) in enumerate(
                    zip(chunks, report.outcomes)):
                if not outcome.ok:
                    raise RuntimeError("query worker %s failed: %s"
                                       % (outcome.key, outcome.error))
                payload = outcome.value
                for (index, _query), served in zip(chunk,
                                                   payload["results"]):
                    rows, rids, stats = served
                    self._account(stats, len(rows))
                    results[index] = QueryResult(rows, rids, stats)
                self._merge_worker_metrics(chunk_index,
                                           payload["metrics"])
                if tracer is not None and payload.get("trace"):
                    tracer.add_child(payload["trace"])
            self.registry.merge_values(report.snapshot.as_dict(),
                                       prefix="db.engine")
        return results

    def _merge_worker_metrics(self, worker_index, values):
        """Fold a worker engine's snapshot into this registry.

        Child counters used to die with the subprocess; they now come
        back namespaced (``db.engine.worker.<i>.*``, including the
        worker's ``costmodel.*`` stats) and the cache-economics
        counters that :meth:`_account` does not already aggregate
        (scan cache, CSE, cycles saved) are added to the engine
        totals.  Query/row/cycle totals are *not* re-added — the
        parent accounts those per result.
        """
        trimmed = {}
        for name, value in values.items():
            if name.startswith("db.engine."):
                trimmed[name[len("db.engine."):]] = value
            else:
                trimmed[name] = value
        self.registry.merge_values(
            trimmed, prefix="db.engine.worker.%d" % worker_index)
        self._scan_hits.add(values.get("db.engine.scan_cache.hits", 0))
        self._scan_misses.add(
            values.get("db.engine.scan_cache.misses", 0))
        self._cse_hits.add(values.get("db.engine.cse.hits", 0))
        self._cycles_saved.add(values.get("db.engine.cycles_saved", 0))

    def _worker_spec(self, chunk, chunk_index=0, tracer=None):
        tables = {}
        query_specs = []
        for index, query in chunk:
            table = query.table
            if id(table) not in tables:
                tables[id(table)] = {
                    "name": table.name,
                    "columns": {name: list(values) for name, values
                                in table.columns.items()},
                    "indexes": [column for column in table.columns
                                if table.has_index(column)],
                    # Live global RIDs, position-aligned with the
                    # column lists: columnar tables have sparse RID
                    # spaces, so workers serve dense local RIDs and
                    # the results are mapped back through this.
                    "rids": table.all_rids(),
                }
            query_specs.append({
                "table": id(table),
                "predicate": query.predicate,
                "order_by": query.order_by,
                "descending": query.descending,
                "columns": query.columns,
                "limit": query.limit,
                "index": index,
            })
        return {
            "config": self.config_name,
            "partial_load": self.partial_load,
            "cost_model": self.cost_model is not None,
            "tables": tables,
            "queries": query_specs,
            "worker": chunk_index,
            "trace": tracer is not None,
            "trace_limit": tracer.limit if tracer is not None else 0,
        }

    # -- introspection --------------------------------------------------------

    def metrics_snapshot(self):
        """``db.engine.*`` + ``costmodel.*`` values as a flat dict."""
        values = self.registry.snapshot().as_dict()
        if self.cost_model is not None:
            for name, value in self.cost_model.stats().items():
                values["costmodel.%s" % name] = value
        return values

    def clear_caches(self):
        self._scan_cache.clear()
        self._pinned_tables.clear()

    def __repr__(self):
        return "<QueryEngine %s cost_model=%s>" % (
            self.config_name, self.cost_model is not None)


def _serve_worker_chunk(spec):
    """Worker-process entry: rebuild engine state, serve the chunk.

    Module-level (picklable) by supervisor contract.  Each worker gets
    its own processor, executor and caches; CSE still applies within
    the chunk.  The return payload carries the served rows *and* the
    worker's observability state — its engine metrics snapshot and
    (when the parent traces) its :class:`QueryTracer` payload — so
    spans and counters no longer die inside the subprocess.
    """
    from .table import Table
    engine = QueryEngine(config=spec["config"],
                         partial_load=spec["partial_load"],
                         cost_model=CostModel()
                         if spec["cost_model"] else False)
    tracer = None
    if spec.get("trace"):
        tracer = QueryTracer(
            label="worker %d" % spec.get("worker", 0),
            limit=spec.get("trace_limit") or 100_000)
    tables = {}
    for table_id, payload in spec["tables"].items():
        table = Table(payload["name"], payload["columns"])
        for column in payload["indexes"]:
            table.create_index(column)
        tables[table_id] = table
    cse = {}
    payloads = []
    for query_spec in spec["queries"]:
        table_id = query_spec["table"]
        query = Query(tables[table_id],
                      predicate=query_spec["predicate"],
                      order_by=query_spec["order_by"],
                      descending=query_spec["descending"],
                      columns=query_spec["columns"],
                      limit=query_spec["limit"])
        result = engine._execute_one(query, cse, tracer,
                                     query_spec.get("index", 0))
        # Map dense local RIDs back to the parent's (possibly sparse)
        # global RID space; the map is ascending, so order, ties and
        # limits are preserved exactly.
        global_rids = spec["tables"][table_id].get("rids")
        rids = result.rids if global_rids is None \
            else [global_rids[rid] for rid in result.rids]
        payloads.append((result.rows, rids, result.stats))
    return {
        "results": payloads,
        "metrics": engine.metrics_snapshot(),
        "trace": tracer.to_payload() if tracer is not None else None,
    }
