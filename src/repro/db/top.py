"""``repro db top`` — a live terminal view of a serving engine.

Drives the demo workload (:mod:`repro.db.bench`) through one
long-lived :class:`~repro.db.engine.QueryEngine` and redraws a compact
dashboard between batches: throughput, queue depth, worker
utilization, scan-cache and CSE economics, and the p50/p95/p99 query
cycle quantiles the :class:`~repro.telemetry.registry.Histogram`
reservoir now estimates.  With ``--metrics-out`` every frame is also
flushed as a JSONL snapshot (:class:`~repro.telemetry.export.
JsonlExporter`) so a soak run leaves a machine-readable trail.

Rendering is split from driving (:func:`render_dashboard` is a pure
snapshot → text function) so tests and other front ends can reuse the
view without a terminal.
"""

import time

from ..telemetry.export import JsonlExporter
from .bench import build_demo_table, demo_queries
from .engine import QueryEngine

#: ANSI clear-screen + home, used between live frames.
CLEAR = "\x1b[2J\x1b[H"


def _rate(hits, misses):
    total = hits + misses
    return hits / total if total else 0.0


def render_dashboard(snapshot, frame=0, elapsed=0.0, workers=1):
    """The dashboard text for one engine metrics snapshot (a dict)."""
    get = snapshot.get
    quantiles = get("db.engine.query_cycles", {}) or {}
    requested = get("db.engine.workers", 0) or workers
    active = get("db.engine.active_workers", 0)
    utilization = active / requested if requested else 0.0
    lines = []
    lines.append("repro db top — frame %d (%.1fs)" % (frame, elapsed))
    lines.append("")
    lines.append("  queries served   %12d    batches %d"
                 % (get("db.engine.queries", 0),
                    get("db.engine.batches", 0)))
    lines.append("  last batch       %12.1f q/s"
                 % get("db.engine.last_batch_qps", 0))
    lines.append("  queue depth      %12d    workers %d/%d (%.0f%%)"
                 % (get("db.engine.queue_depth", 0), active, requested,
                    utilization * 100))
    lines.append("  scan cache       %11.1f%%    (%d hits, %d misses)"
                 % (_rate(get("db.engine.scan_cache.hits", 0),
                          get("db.engine.scan_cache.misses", 0)) * 100,
                    get("db.engine.scan_cache.hits", 0),
                    get("db.engine.scan_cache.misses", 0)))
    lines.append("  cse reuse        %12d    cycles saved %d"
                 % (get("db.engine.cse.hits", 0),
                    get("db.engine.cycles_saved", 0)))
    lines.append("  cycles           %12d iss  %d costmodel"
                 % (get("db.engine.cycles_iss", 0),
                    get("db.engine.cycles_costmodel", 0)))
    lines.append("  query cycles     p50 %-10s p95 %-10s p99 %s"
                 % (quantiles.get("p50"), quantiles.get("p95"),
                    quantiles.get("p99")))
    worker_rows = sorted(
        {name.split(".")[3] for name in snapshot
         if name.startswith("db.engine.worker.")
         and name.split(".")[3].isdigit()}, key=int)
    for worker in worker_rows:
        prefix = "db.engine.worker.%s." % worker
        lines.append(
            "    worker %-3s queries %-6d scan hits %-5d cse %d"
            % (worker, get(prefix + "queries", 0),
               get(prefix + "scan_cache.hits", 0),
               get(prefix + "cse.hits", 0)))
    shard_rows = sorted(
        {name.split(".")[2] for name in snapshot
         if name.startswith("db.shard.")
         and name.split(".")[2].isdigit()}, key=int)
    if shard_rows:
        lines.append("  shards %9d    skew %.2f    skipped %d    "
                     "gather %d merge + %d transfer cycles"
                     % (get("db.shard.shards", len(shard_rows)),
                        get("db.shard.skew", 0) or 0,
                        get("db.shard.skipped", 0),
                        get("db.shard.gather.merge_cycles", 0),
                        get("db.shard.gather.transfer_cycles", 0)))
        for shard in shard_rows:
            prefix = "db.shard.%s." % shard
            lines.append(
                "    shard %-4s cycles %-9d rows %-7d held %-6d "
                "queue %-3d skipped %d"
                % (shard, get(prefix + "cycles", 0),
                   get(prefix + "rows", 0),
                   get(prefix + "rows_held", 0),
                   get(prefix + "queue_depth", 0),
                   get(prefix + "skipped", 0)))
    return "\n".join(lines)


def run_top(config="DBA_2LSU_EIS", rows=400, queries=32, workers=1,
            frames=0, interval=1.0, seed=42, clear=True,
            metrics_out=None, out=None, sleep=time.sleep, shards=0):
    """Serve demo batches forever (or *frames* times), redrawing.

    Returns the final metrics snapshot.  *frames* ``<= 0`` runs until
    interrupted; *out* defaults to :func:`print` and *sleep* is
    injectable for tests.  ``shards > 1`` serves through a
    :class:`~repro.db.shard.ShardedEngine` instead, adding a per-shard
    dashboard row (cycles, rows scanned, queue depth) so partition
    skew is visible live.
    """
    emit = print if out is None else out
    table = build_demo_table(rows=rows, seed=seed)
    if shards and shards > 1:
        from .shard import ShardedEngine
        engine = ShardedEngine(config=config, shards=shards)
    else:
        engine = QueryEngine(config=config)
    exporter = JsonlExporter(metrics_out) if metrics_out else None
    started = time.perf_counter()
    frame = 0
    snapshot = engine.metrics_snapshot()
    try:
        while frames <= 0 or frame < frames:
            frame += 1
            batch = demo_queries(table, count=queries,
                                 seed=seed + frame)
            engine.execute_batch(batch, workers=workers)
            snapshot = engine.metrics_snapshot()
            text = render_dashboard(
                snapshot, frame=frame,
                elapsed=time.perf_counter() - started,
                workers=workers)
            emit((CLEAR + text) if clear else text)
            if exporter is not None:
                exporter.flush(
                    {name: value for name, value in snapshot.items()
                     if isinstance(value, (int, float, dict))},
                    label="frame-%d" % frame)
            if (frames <= 0 or frame < frames) and interval > 0:
                sleep(interval)
    except KeyboardInterrupt:
        pass
    return snapshot
