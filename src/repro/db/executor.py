"""Query execution on the database processor.

Evaluates WHERE-clause predicate trees by running the RID-list set
algebra on a processor built from :mod:`repro.configs` — with the EIS
kernels when the processor has the extension, falling back to the
scalar kernels otherwise — and ORDER BY via the merge-sort
instructions using key/RID packing.

The executor reports per-query cycle counts and (given a synthesis
report) latency and energy, turning the paper's microbenchmarks into
end-to-end query numbers (see ``examples/query_engine.py``).

Two execution paths produce those cycle counts:

* the default ISS path simulates every kernel instruction, and
* an opt-in :class:`~repro.core.costmodel.CostModel` computes results
  with plain set algebra and predicts the identical cycle count from
  a calibrated event-count model (``repro.db.engine`` enables it for
  batch serving; paper experiments keep the ISS default).

:class:`QueryStats` attributes cycles to their source (``iss`` vs
``costmodel``) so mixed-path runs stay auditable.
"""

from ..core.kernels import run_merge_sort, run_set_operation
from ..core.scalar_kernels import (run_scalar_merge_sort,
                                   run_scalar_set_operation)
from .predicates import Combinator, Leaf, validate_indexes

#: Bit budget for ORDER BY key/RID packing: key << RID_BITS | rid.
RID_BITS = 12


class QueryStats:
    """Accumulated accelerator usage of one query."""

    def __init__(self):
        self.set_operations = 0
        self.sort_operations = 0
        self.cycles = 0
        self.index_scans = 0
        self.short_circuits = 0
        self.cycles_by_source = {"iss": 0, "costmodel": 0}

    def add_cycles(self, cycles, source="iss"):
        self.cycles += cycles
        self.cycles_by_source[source] = \
            self.cycles_by_source.get(source, 0) + cycles

    def add_run(self, run_result, source="iss"):
        self.add_cycles(run_result.cycles, source)

    def latency_us(self, clock_mhz):
        return self.cycles / clock_mhz

    def energy_uj(self, power_mw, clock_mhz):
        return power_mw * self.latency_us(clock_mhz) / 1000.0

    def to_dict(self):
        """JSON form (embedded in run reports and bench artifacts)."""
        return {
            "set_operations": self.set_operations,
            "sort_operations": self.sort_operations,
            "index_scans": self.index_scans,
            "short_circuits": self.short_circuits,
            "cycles": self.cycles,
            "cycles_by_source": dict(self.cycles_by_source),
        }

    def __repr__(self):
        return ("<QueryStats %d cycles, %d set ops, %d sorts, %d "
                "scans>" % (self.cycles, self.set_operations,
                            self.sort_operations, self.index_scans))


class QueryExecutor:
    """Runs predicate trees and ORDER BY on one processor instance.

    *cost_model* (a :class:`repro.core.costmodel.CostModel` or None)
    selects the execution path for kernels; None means pure ISS.
    """

    def __init__(self, processor, cost_model=None):
        self.processor = processor
        self.cost_model = cost_model
        self._has_eis = "db_eis" in processor.extension_states
        #: (id(table), column) -> (column list, pre-shifted keys);
        #: the identity of the column list guards against id() reuse.
        self._packed_key_cache = {}

    # -- WHERE ---------------------------------------------------------------

    def where(self, table, predicate):
        """Evaluate a predicate tree; returns ``(rids, QueryStats)``."""
        validate_indexes(predicate, table)
        stats = QueryStats()
        rids = self._evaluate(table, predicate, stats)
        return rids, stats

    def _evaluate(self, table, predicate, stats):
        if isinstance(predicate, Leaf):
            stats.index_scans += 1
            return predicate.scan(table)
        if not isinstance(predicate, Combinator):
            raise TypeError("not a predicate: %r" % (predicate,))
        left = self._evaluate(table, predicate.left, stats)
        right = self._evaluate(table, predicate.right, stats)
        return self.set_operation(predicate.operation, left, right,
                                  stats)

    def set_operation(self, which, left, right, stats):
        """One cycle-accounted RID-list set operation.

        Empty operands short-circuit without launching a kernel (and
        without charging cycles — identically on the ISS and the
        cost-model paths, so the two stay differentially comparable).
        """
        if len(left) == 0 or len(right) == 0:
            # len() instead of truthiness: operands may be ndarrays.
            stats.short_circuits += 1
            if which == "intersection":
                return []
            if which == "union":
                return list(left) if len(left) else list(right)
            return list(left)  # difference: A - empty = A, empty - B = []
        if which == "intersection" and len(right) < len(left):
            # index-ANDing order: smaller list first (Raman et al.)
            left, right = right, left
        stats.set_operations += 1
        if self.cost_model is not None:
            values, cycles, source = self.cost_model.set_operation(
                self.processor, which, left, right)
            stats.add_cycles(cycles, source)
            return values
        result, run_result = self._set_operation(which, left, right)
        stats.add_run(run_result, "iss")
        return result

    def _set_operation(self, which, left, right):
        if self._has_eis:
            return run_set_operation(self.processor, which, left,
                                     right, validate_input=False)
        return run_scalar_set_operation(self.processor, which, left,
                                        right, validate_input=False)

    # -- ORDER BY -------------------------------------------------------------

    def order_by(self, table, rids, key_column, descending=False):
        """Sort a RID list by a key column on the processor.

        Keys and RIDs are packed into single 32-bit words
        (``key << 12 | rid``) so the merge-sort instructions order
        whole rows — the standard key/pointer packing used with
        hardware sorters.  Requires ``row_count <= 4096`` and keys
        below ``2**19`` (dictionary-encode larger domains first).
        """
        stats = QueryStats()
        if len(rids) == 0:
            return [], stats
        packed = self.pack_rids(table, rids, key_column)
        sorted_packed, stats = self.sort_packed(packed, stats)
        ordered = [value & ((1 << RID_BITS) - 1)
                   for value in sorted_packed]
        if descending:
            ordered.reverse()
        return ordered, stats

    def pack_rids(self, table, rids, key_column):
        """``key << RID_BITS | rid`` packed words for a RID list.

        Pure packing, no cycles charged — the sharded engine packs per
        shard and sorts the pieces in parallel, so packing and sorting
        are separate steps.
        """
        if table.rid_limit() > (1 << RID_BITS):
            raise ValueError(
                "ORDER BY packing supports up to %d rows; shard or "
                "widen RID_BITS" % (1 << RID_BITS))
        shifted = self._shifted_keys(table, key_column)
        if isinstance(shifted, list):
            return [shifted[rid] | rid for rid in rids]
        # ndarray path (columnar tables): since rid < 2**RID_BITS and
        # the shifted key is a multiple of 2**RID_BITS, | equals +.
        return (shifted.take(list(rids)) + list(rids)).tolist()

    def sort_packed(self, packed, stats=None):
        """Cycle-accounted merge sort of pre-packed key/RID words."""
        if stats is None:
            stats = QueryStats()
        if len(packed) == 0:
            return [], stats
        stats.sort_operations += 1
        if self.cost_model is not None:
            sorted_packed, cycles, source = self.cost_model.merge_sort(
                self.processor, packed)
            stats.add_cycles(cycles, source)
        else:
            sorted_packed, run_result = self._sort(packed)
            stats.add_run(run_result, "iss")
        return sorted_packed, stats

    def _shifted_keys(self, table, key_column):
        """Memoized ``key << RID_BITS`` per (table, column).

        Validates the key domain once per column instead of per row;
        repeated ORDER BYs (the common batch-serving case) skip both
        the column lookup and the per-row shifting.
        """
        cache_key = (id(table), key_column)
        cached = self._packed_key_cache.get(cache_key)
        keys = table.rid_indexed_column(key_column)
        if cached is not None and cached[0] is keys:
            # Columnar tables memoize rid_indexed_column per version,
            # so a delta naturally rotates this cache entry too.
            return cached[1]
        key_bits = 32 - RID_BITS - 1  # keep below the sentinel
        limit = 1 << key_bits
        if isinstance(keys, list):
            if keys and max(keys) >= limit:
                raise ValueError(
                    "ORDER BY keys must be below 2**%d; dictionary-"
                    "encode the column" % key_bits)
            shifted = [key << RID_BITS for key in keys]
        else:
            if len(keys) and int(keys.max()) >= limit:
                raise ValueError(
                    "ORDER BY keys must be below 2**%d; dictionary-"
                    "encode the column" % key_bits)
            shifted = keys << RID_BITS
        self._packed_key_cache[cache_key] = (keys, shifted)
        return shifted

    def _sort(self, values):
        if self._has_eis:
            return run_merge_sort(self.processor, values,
                                  validate_input=False)
        return run_scalar_merge_sort(self.processor, values,
                                     validate_input=False)

    # -- full query -----------------------------------------------------------

    def select(self, table, predicate=None, order_by=None,
               descending=False, columns=None, limit=None):
        """WHERE + ORDER BY + projection; returns ``(rows, stats)``."""
        stats = QueryStats()
        if predicate is not None:
            rids, where_stats = self.where(table, predicate)
            _merge_stats(stats, where_stats)
        else:
            rids = table.all_rids()
        if order_by is not None:
            rids, sort_stats = self.order_by(table, rids, order_by,
                                             descending)
            _merge_stats(stats, sort_stats)
        if limit is not None:
            rids = rids[:limit]
        return table.fetch(rids, columns), stats


def _merge_stats(target, source):
    target.set_operations += source.set_operations
    target.sort_operations += source.sort_operations
    target.index_scans += source.index_scans
    target.short_circuits += source.short_circuits
    for key, value in source.cycles_by_source.items():
        target.add_cycles(value, key)
