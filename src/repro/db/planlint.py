"""Static verification of query plans (the ``PLAN*`` family).

The :class:`~repro.db.engine.Query` IR is hand-built (and soon
machine-built — the SQL front end and the DSE tooling on the ROADMAP),
so plans deserve the same admission-time verification the kernel
caches give assembly: reject what would fault at run time, and warn
about shapes that are well-formed but almost certainly not what the
author meant.

Error-severity codes (enforced at :class:`QueryEngine` admission):

* ``PLAN001`` — a predicate leaf, ``ORDER BY`` or projection names a
  column the table does not have.
* ``PLAN002`` — a predicate leaf's column has no secondary index
  (leaf scans require one; full-scan shapes are unsupported).
* ``PLAN007`` — ``ORDER BY`` on a table whose RID space exceeds the
  RID packing budget (``2^RID_BITS`` rows) — the executor would raise
  mid-query.

Warning/info codes (reported, never fatal):

* ``PLAN003`` (warning) — a leaf is provably empty: an inverted range
  (``low > high``), an empty ``IN`` list, or a comparison value
  outside the 32-bit value domain.
* ``PLAN004`` (warning) — an AND conjunction is unsatisfiable: the
  per-column value domains it pins have an empty intersection, or an
  ANDNOT subtracts a superset of its left side.
* ``PLAN005`` (warning) — a leaf is trivially true (an unbounded
  ``Range``): the predicate scans the whole table through an index.
* ``PLAN006`` (info) — duplicate subtrees under one combinator; the
  engine's CSE absorbs the cost, but the shape is usually a typo.
* ``PLAN008`` (info) — the engine serves this query through the ISS
  because its configuration is cost-model-ineligible (cached cores).
* ``PLAN009`` (warning) — a non-positive ``LIMIT`` (0 returns
  nothing; negative values slice from the tail).

:func:`lint_query` returns the
:class:`~repro.analysis.diagnostics.DiagnosticReport`;
:func:`lint_query_or_raise` raises :class:`PlanError` on
error-severity findings unless ``REPRO_LINT_WARN_ONLY=1`` downgrades
them to warnings (the same escape hatch the kernel lint honors).
"""

import os
import warnings

from ..analysis.diagnostics import DiagnosticReport
from ..analysis.linter import LintError, LintWarning
from ..core.common import SENTINEL
from .executor import RID_BITS
from .predicates import And, AndNot, Combinator, Eq, In, Leaf, \
    Range, signature


class PlanError(LintError, KeyError):
    """A query failed plan verification.

    Also a :class:`KeyError` so callers that predate the plan linter
    (missing-column / missing-index handling) keep working.
    """

    def __str__(self):
        # KeyError.__str__ repr()s the message; keep it readable.
        return self.report.format(min_severity="error")


def lint_query(query, engine=None, report=None):
    """Run PLAN001..PLAN009 over one :class:`Query`."""
    if report is None:
        report = DiagnosticReport("query on %r"
                                  % getattr(query.table, "name", "?"))
    table = query.table
    source = "<query:%s>" % getattr(table, "name", "?")
    if query.predicate is not None:
        _check_tree(report, query.predicate, table, source)
        _check_satisfiability(report, query.predicate, source)
    if query.order_by is not None:
        if query.order_by not in table.columns:
            report.add("PLAN001", "error",
                       "ORDER BY column %r does not exist on table %r"
                       % (query.order_by, table.name), source)
        elif table.rid_limit() > (1 << RID_BITS):
            report.add("PLAN007", "error",
                       "ORDER BY on a %d-wide RID space exceeds the "
                       "%d-row RID packing budget; the sort would "
                       "fail at run time" % (table.rid_limit(),
                                             1 << RID_BITS),
                       source)
    if query.columns:
        for column in query.columns:
            if column not in table.columns:
                report.add("PLAN001", "error",
                           "projected column %r does not exist on "
                           "table %r" % (column, table.name), source)
    if query.limit is not None and query.limit <= 0:
        report.add("PLAN009", "warning",
                   "LIMIT %d is not positive: 0 returns no rows and "
                   "negative values slice from the tail"
                   % query.limit, source)
    if engine is not None and engine.cost_model is not None:
        from ..core.costmodel import config_signature
        if config_signature(engine.processor) is None:
            report.add("PLAN008", "info",
                       "configuration %r is cost-model-ineligible; "
                       "this query will be served by the ISS"
                       % engine.config_name, source)
    return report


def lint_query_or_raise(query, engine=None, warn=True):
    """Lint and enforce; the :class:`QueryEngine` admission hook.

    Errors raise :class:`PlanError` unless ``REPRO_LINT_WARN_ONLY=1``
    is set, which downgrades them to :class:`LintWarning` warnings.
    """
    report = lint_query(query, engine=engine)
    if report.has_errors \
            and os.environ.get("REPRO_LINT_WARN_ONLY") != "1":
        raise PlanError(report)
    if warn:
        for diagnostic in report.at_least("warning"):
            warnings.warn(diagnostic.format(), LintWarning,
                          stacklevel=2)
    return report


# ---------------------------------------------------------------------------
# per-leaf checks
# ---------------------------------------------------------------------------

def _check_tree(report, predicate, table, source, seen=None):
    if isinstance(predicate, Leaf):
        _check_leaf(report, predicate, table, source)
        return
    if not isinstance(predicate, Combinator):
        report.add("PLAN001", "error",
                   "not a predicate: %r" % (predicate,), source)
        return
    if _signature_safe(predicate.left) is not None \
            and _signature_safe(predicate.left) \
            == _signature_safe(predicate.right):
        report.add("PLAN006", "info",
                   "both sides of %s are the identical subtree %r"
                   % (type(predicate).__name__.upper(),
                      predicate.left), source)
    _check_tree(report, predicate.left, table, source)
    _check_tree(report, predicate.right, table, source)


def _signature_safe(predicate):
    try:
        return signature(predicate)
    except TypeError:
        return None


def _check_leaf(report, leaf, table, source):
    if leaf.column not in table.columns:
        report.add("PLAN001", "error",
                   "column %r does not exist on table %r"
                   % (leaf.column, table.name), source)
        return
    if not table.has_index(leaf.column):
        report.add("PLAN002", "error",
                   "column %r of table %r has no secondary index; "
                   "leaf predicates scan through one (call "
                   "Table.create_index)" % (leaf.column, table.name),
                   source)
    if isinstance(leaf, Eq):
        if not 0 <= leaf.value < SENTINEL:
            report.add("PLAN003", "warning",
                       "%r can never match: %r is outside the 32-bit "
                       "value domain" % (leaf, leaf.value), source)
    elif isinstance(leaf, Range):
        if leaf.low is None and leaf.high is None:
            report.add("PLAN005", "warning",
                       "%r is trivially true: an unbounded range "
                       "scans the whole table" % (leaf,), source)
        elif leaf.low is not None and leaf.high is not None \
                and leaf.low > leaf.high:
            report.add("PLAN003", "warning",
                       "%r can never match: the range is inverted "
                       "(low > high)" % (leaf,), source)
    elif isinstance(leaf, In):
        if not leaf.values:
            report.add("PLAN003", "warning",
                       "%r can never match: the IN list is empty"
                       % (leaf,), source)
        elif all(not 0 <= value < SENTINEL
                 for value in leaf.values):
            report.add("PLAN003", "warning",
                       "%r can never match: every IN value is "
                       "outside the 32-bit value domain" % (leaf,),
                       source)


# ---------------------------------------------------------------------------
# conjunction satisfiability
# ---------------------------------------------------------------------------

class _Domain:
    """Per-column value constraints accumulated down an AND chain."""

    __slots__ = ("low", "high", "allowed")

    def __init__(self):
        self.low = 0
        self.high = SENTINEL - 1
        self.allowed = None  # set of values, or None for "any"

    def narrow_range(self, low, high):
        if low is not None:
            self.low = max(self.low, low)
        if high is not None:
            self.high = min(self.high, high)

    def narrow_values(self, values):
        values = set(values)
        if self.allowed is None:
            self.allowed = values
        else:
            self.allowed &= values

    @property
    def empty(self):
        if self.low > self.high:
            return True
        if self.allowed is not None:
            return not any(self.low <= value <= self.high
                           for value in self.allowed)
        return False


def _check_satisfiability(report, predicate, source):
    """PLAN004 over every AND-connected region of the tree."""
    for conjunction in _conjunctions(predicate):
        domains = {}
        for leaf in conjunction:
            domain = domains.setdefault(leaf.column, _Domain())
            if isinstance(leaf, Eq):
                domain.narrow_values((leaf.value,))
            elif isinstance(leaf, Range):
                domain.narrow_range(leaf.low, leaf.high)
            elif isinstance(leaf, In):
                domain.narrow_values(leaf.values)
        for column, domain in sorted(domains.items()):
            if domain.empty:
                report.add(
                    "PLAN004", "warning",
                    "conjunction over column %r is unsatisfiable: "
                    "the combined constraints admit no value"
                    % column, source)
    _check_andnot_cancellation(report, predicate, source)


def _conjunctions(predicate):
    """Maximal AND-connected leaf groups (Or/AndNot are barriers)."""
    groups = []

    def walk(node):
        if isinstance(node, And):
            return walk(node.left) + walk(node.right)
        if isinstance(node, Leaf):
            return [node]
        if isinstance(node, Combinator):
            # A new satisfiability region on each side.
            collect(node.left)
            collect(node.right)
        return []

    def collect(node):
        group = walk(node)
        if len(group) > 1:
            groups.append(group)

    collect(predicate)
    return groups


def _check_andnot_cancellation(report, predicate, source):
    if isinstance(predicate, AndNot):
        left = _signature_safe(predicate.left)
        if left is not None \
                and left == _signature_safe(predicate.right):
            report.add("PLAN004", "warning",
                       "ANDNOT subtracts its own left side; the "
                       "result is always empty", source)
    if isinstance(predicate, Combinator):
        _check_andnot_cancellation(report, predicate.left, source)
        _check_andnot_cancellation(report, predicate.right, source)
