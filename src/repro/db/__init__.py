"""A miniature columnar engine over the database processor.

The application layer of the paper's motivation (Section 2.3):
secondary-index scans produce RID lists; WHERE-clause AND/OR/NOT maps
onto the EIS intersection/union/difference instructions; ORDER BY runs
on the merge-sort instructions via key/RID packing.  On top of the
single-query :class:`QueryExecutor`, :class:`QueryEngine` serves query
batches with the calibrated cost-model fast path, scan caching and
common-subexpression reuse; :class:`ShardedEngine` scales that out
across N partitioned shard engines with the EIS union kernel as the
gather reduce.
"""

from .columnar import (ColumnarIndex, ColumnarTable, DeltaBatch,
                       delta_mask, signature_affected)
from .engine import (Query, QueryEngine, QueryResult, StandingQuery,
                     StandingUpdate)
from .executor import QueryExecutor, QueryStats, RID_BITS
from .failover import CircuitBreaker, ShardError, rid_checksum
from .partition import (HashPartitioner, Partitioner, RangePartitioner,
                        TableShard, make_partitioner, partition_table,
                        plan_replicas, shard_may_match, skew_ratio)
from .predicates import (And, AndNot, Eq, In, Leaf, Or, Predicate,
                         Range, leaves, signature, validate_indexes)
from .shard import ShardedEngine, ShardedResult
from .table import SecondaryIndex, Table

__all__ = ["ColumnarIndex", "ColumnarTable", "DeltaBatch",
           "delta_mask", "signature_affected",
           "Query", "QueryEngine", "QueryResult",
           "StandingQuery", "StandingUpdate",
           "QueryExecutor", "QueryStats", "RID_BITS",
           "CircuitBreaker", "ShardError", "rid_checksum",
           "HashPartitioner", "Partitioner", "RangePartitioner",
           "TableShard", "make_partitioner", "partition_table",
           "plan_replicas", "shard_may_match", "skew_ratio",
           "And", "AndNot", "Eq", "In", "Leaf", "Or", "Predicate",
           "Range", "leaves", "signature", "validate_indexes",
           "ShardedEngine", "ShardedResult",
           "SecondaryIndex", "Table"]
