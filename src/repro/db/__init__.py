"""A miniature columnar engine over the database processor.

The application layer of the paper's motivation (Section 2.3):
secondary-index scans produce RID lists; WHERE-clause AND/OR/NOT maps
onto the EIS intersection/union/difference instructions; ORDER BY runs
on the merge-sort instructions via key/RID packing.
"""

from .executor import QueryExecutor, QueryStats, RID_BITS
from .predicates import (And, AndNot, Eq, In, Leaf, Or, Predicate,
                         Range, leaves, validate_indexes)
from .table import SecondaryIndex, Table

__all__ = ["QueryExecutor", "QueryStats", "RID_BITS",
           "And", "AndNot", "Eq", "In", "Leaf", "Or", "Predicate",
           "Range", "leaves", "validate_indexes",
           "SecondaryIndex", "Table"]
