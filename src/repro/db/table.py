"""A minimal columnar table with secondary indexes.

The paper motivates its instruction set with query processing over RID
sets "obtained from secondary indices when complex selection predicates
within the WHERE clause are specified" (Section 2.3).  This package is
that surrounding database-engine layer: enough of a column store to
pose WHERE/ORDER BY queries whose heavy lifting — RID-list set algebra
and sorting — runs on the database processor.

Values are 32-bit unsigned integers (the paper's element type); strings
or other domains are assumed dictionary-encoded upstream.
"""

import bisect

from ..core.common import SENTINEL


class Table:
    """A fixed set of integer columns of equal length."""

    def __init__(self, name, columns):
        self.name = name
        self.columns = {}
        length = None
        for column_name, values in columns.items():
            values = list(values)
            for value in values:
                if not 0 <= value < SENTINEL:
                    raise ValueError(
                        "%s.%s: values must be 32-bit below the "
                        "sentinel" % (name, column_name))
            if length is None:
                length = len(values)
            elif len(values) != length:
                raise ValueError("column lengths differ in table %s"
                                 % name)
            self.columns[column_name] = values
        self.row_count = length or 0
        self._indexes = {}

    def column(self, name):
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError("table %s has no column %r"
                           % (self.name, name)) from None

    def create_index(self, column_name):
        """Build (or return) the secondary index on a column."""
        if column_name not in self._indexes:
            self._indexes[column_name] = SecondaryIndex(
                column_name, self.column(column_name))
        return self._indexes[column_name]

    def index(self, column_name):
        if column_name not in self._indexes:
            raise KeyError("no index on %s.%s; call create_index"
                           % (self.name, column_name))
        return self._indexes[column_name]

    def has_index(self, column_name):
        return column_name in self._indexes

    def fetch(self, rids, column_names=None):
        """Materialize rows (as dicts) for a RID list."""
        pairs = [(name, self.columns[name])
                 for name in (column_names or self.columns)]
        return [{name: values[rid] for name, values in pairs}
                for rid in rids]

    def all_rids(self):
        """Sorted live RIDs (dense ``0..row_count`` here; the columnar
        table's RID space is sparse, so full scans go through this)."""
        return list(range(self.row_count))

    def rid_limit(self):
        """Exclusive upper bound of the RID space (= rows here)."""
        return self.row_count

    def rid_indexed_column(self, name):
        """``sequence[rid] -> value`` lookup for the packing path."""
        return self.column(name)

    def __repr__(self):
        return "<Table %s %d rows x %d columns>" % (
            self.name, self.row_count, len(self.columns))


class SecondaryIndex:
    """Value -> sorted RID list, supporting equality and range scans.

    Scans return strictly-sorted RID lists, the operand format of the
    EIS set instructions.

    The index is a clustered postings layout: one array of (value, rid)
    pairs sorted by value (RIDs within one value stay ascending because
    the sort is stable over the enumeration order), plus the sorted
    distinct keys and per-key offsets into the RID array.  Every scan
    is a bisect over the key array followed by a slice — no linear walk
    over the full posting dictionary.
    """

    def __init__(self, column_name, values):
        self.column_name = column_name
        pairs = sorted((value, rid) for rid, value in enumerate(values))
        self._rids = [rid for _value, rid in pairs]
        keys = []
        offsets = []
        previous = None
        for position, (value, _rid) in enumerate(pairs):
            if value != previous:
                keys.append(value)
                offsets.append(position)
                previous = value
        offsets.append(len(pairs))
        self._sorted_keys = keys
        self._offsets = offsets

    def _key_span(self, value):
        """``(start, end)`` slice of ``_rids`` for one key via bisect."""
        position = bisect.bisect_left(self._sorted_keys, value)
        if position == len(self._sorted_keys) \
                or self._sorted_keys[position] != value:
            return 0, 0
        return self._offsets[position], self._offsets[position + 1]

    def scan_eq(self, value):
        """RIDs of rows where column == value."""
        start, end = self._key_span(value)
        return self._rids[start:end]

    def scan_range(self, low=None, high=None):
        """RIDs of rows where low <= column <= high (inclusive).

        The slice is a concatenation of RID-ascending per-key runs;
        Timsort's natural-run detection makes ``sorted`` an O(n log k)
        galloping merge of those runs in C (measurably faster than a
        Python-level ``heapq.merge``).  A single-key span skips the
        sort entirely.  The columnar index avoids the merge outright —
        its scans are born RID-ordered.
        """
        keys = self._sorted_keys
        first = 0 if low is None else bisect.bisect_left(keys, low)
        last = len(keys) if high is None else bisect.bisect_right(keys,
                                                                  high)
        if first >= last:
            return []
        if last - first == 1:
            return self._rids[self._offsets[first]:
                              self._offsets[first + 1]]
        return sorted(self._rids[self._offsets[first]:
                                 self._offsets[last]])

    def count_eq(self, value):
        """Matching-row count of ``scan_eq`` without materializing."""
        start, end = self._key_span(value)
        return end - start

    def count_range(self, low=None, high=None):
        """Matching-row count of ``scan_range`` without materializing.

        The shard pruning pass probes every (shard, leaf) pair per
        query, so emptiness checks must stay two bisects + a
        subtraction rather than a slice-and-sort.
        """
        keys = self._sorted_keys
        first = 0 if low is None else bisect.bisect_left(keys, low)
        last = len(keys) if high is None else bisect.bisect_right(keys,
                                                                  high)
        if first >= last:
            return 0
        return self._offsets[last] - self._offsets[first]

    def scan_in(self, values):
        """RIDs of rows where column is in *values*.

        The concatenated per-value runs are each RID-ascending, so
        ``sorted`` reduces to Timsort's C-level run merge (see
        :meth:`scan_range`); duplicate probe values still replicate
        their matches, as before.
        """
        rids = []
        for value in values:
            start, end = self._key_span(value)
            rids.extend(self._rids[start:end])
        return sorted(rids)

    def distinct_values(self):
        return list(self._sorted_keys)

    def __repr__(self):
        return "<SecondaryIndex %s: %d distinct values>" % (
            self.column_name, len(self._sorted_keys))
