"""A minimal columnar table with secondary indexes.

The paper motivates its instruction set with query processing over RID
sets "obtained from secondary indices when complex selection predicates
within the WHERE clause are specified" (Section 2.3).  This package is
that surrounding database-engine layer: enough of a column store to
pose WHERE/ORDER BY queries whose heavy lifting — RID-list set algebra
and sorting — runs on the database processor.

Values are 32-bit unsigned integers (the paper's element type); strings
or other domains are assumed dictionary-encoded upstream.
"""

from ..core.common import SENTINEL


class Table:
    """A fixed set of integer columns of equal length."""

    def __init__(self, name, columns):
        self.name = name
        self.columns = {}
        length = None
        for column_name, values in columns.items():
            values = list(values)
            for value in values:
                if not 0 <= value < SENTINEL:
                    raise ValueError(
                        "%s.%s: values must be 32-bit below the "
                        "sentinel" % (name, column_name))
            if length is None:
                length = len(values)
            elif len(values) != length:
                raise ValueError("column lengths differ in table %s"
                                 % name)
            self.columns[column_name] = values
        self.row_count = length or 0
        self._indexes = {}

    def column(self, name):
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError("table %s has no column %r"
                           % (self.name, name)) from None

    def create_index(self, column_name):
        """Build (or return) the secondary index on a column."""
        if column_name not in self._indexes:
            self._indexes[column_name] = SecondaryIndex(
                column_name, self.column(column_name))
        return self._indexes[column_name]

    def index(self, column_name):
        if column_name not in self._indexes:
            raise KeyError("no index on %s.%s; call create_index"
                           % (self.name, column_name))
        return self._indexes[column_name]

    def has_index(self, column_name):
        return column_name in self._indexes

    def fetch(self, rids, column_names=None):
        """Materialize rows (as dicts) for a RID list."""
        names = list(column_names or self.columns)
        return [{name: self.columns[name][rid] for name in names}
                for rid in rids]

    def __repr__(self):
        return "<Table %s %d rows x %d columns>" % (
            self.name, self.row_count, len(self.columns))


class SecondaryIndex:
    """Value -> sorted RID list, supporting equality and range scans.

    Scans return strictly-sorted RID lists, the operand format of the
    EIS set instructions.
    """

    def __init__(self, column_name, values):
        self.column_name = column_name
        self._postings = {}
        for rid, value in enumerate(values):
            self._postings.setdefault(value, []).append(rid)
        self._sorted_keys = sorted(self._postings)

    def scan_eq(self, value):
        """RIDs of rows where column == value."""
        return list(self._postings.get(value, ()))

    def scan_range(self, low=None, high=None):
        """RIDs of rows where low <= column <= high (inclusive)."""
        import bisect
        keys = self._sorted_keys
        start = 0 if low is None else bisect.bisect_left(keys, low)
        end = len(keys) if high is None else bisect.bisect_right(keys,
                                                                 high)
        rids = []
        for key in keys[start:end]:
            rids.extend(self._postings[key])
        return sorted(rids)

    def scan_in(self, values):
        """RIDs of rows where column is in *values*."""
        rids = []
        for value in values:
            rids.extend(self._postings.get(value, ()))
        return sorted(rids)

    def distinct_values(self):
        return list(self._sorted_keys)

    def __repr__(self):
        return "<SecondaryIndex %s: %d distinct values>" % (
            self.column_name, len(self._sorted_keys))
