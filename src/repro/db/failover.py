"""Failover primitives for fault-tolerant sharded serving.

The sharded engine (:mod:`repro.db.shard`) promises the paper's
Section 5.4 many-core speedup; this module supplies what that promise
needs once lanes can *fail*: a typed error that never discards
surviving work, an integrity check on every RID list that crosses the
modeled interconnect, and a per-shard circuit breaker so a dead
primary stops eating the deadline budget of every query.

All three are deliberately dependency-free value types — the engine
composes them, the chaos harness (:mod:`repro.faults.db`) attacks
them, and the tests exercise them in isolation.
"""

import zlib
from array import array

#: Circuit breaker states, in ``db.shard.<i>.breaker.state`` gauge
#: encoding order: closed = 0, open = 1, half-open = 2.
BREAKER_STATES = ("closed", "open", "half_open")

_M32 = 0xFFFFFFFF


def rid_checksum(rids):
    """Order-sensitive 32-bit checksum of a sorted global RID list.

    CRC-32 over the little-endian 32-bit words of the list.  The
    *sender* computes it before the response crosses the (corruptible)
    channel; the coordinator recomputes on delivery.  Any single
    dropped, flipped, or injected RID changes the value, so corruption
    is *detected* and handled (retransmit, then failover) instead of
    silently merged into the answer.
    """
    if not rids:
        return 0
    return zlib.crc32(array("I", [rid & _M32 for rid in rids]).tobytes())


class ShardError(RuntimeError):
    """A shard (or its worker task) failed while serving a query batch.

    Unlike the bare ``RuntimeError`` it replaces, a ``ShardError``
    never throws away the work of healthy siblings:

    - ``outcomes`` — per-shard / per-task outcome descriptions (what
      failed, on which host, after how many attempts);
    - ``survivors`` — whatever results *did* arrive before the failure
      (the pooled scatter's prefetched grid, or per-shard RID lists),
      so a caller that wants to degrade instead of die still can;
    - ``shard`` / ``query_index`` — the failing coordinates when the
      failure is attributable to one (shard, query) pair.
    """

    def __init__(self, message, outcomes=(), survivors=None,
                 shard=None, query_index=None):
        super().__init__(message)
        self.outcomes = list(outcomes)
        self.survivors = survivors
        self.shard = shard
        self.query_index = query_index

    def __repr__(self):
        where = ""
        if self.shard is not None:
            where = " shard=%s" % self.shard
        if self.query_index is not None:
            where += " query=%s" % self.query_index
        return "<ShardError%s %s>" % (where, self.args[0])


class CircuitBreaker:
    """Consecutive-failure breaker with a half-open probe.

    Tracks one shard primary's health on the coordinator:

    - **closed** — traffic flows; ``threshold`` *consecutive* failures
      trip it open (any success resets the count).
    - **open** — dispatches are short-circuited (the coordinator goes
      straight to a replica, or fails fast) for ``cooldown`` refused
      dispatches, counted in :meth:`allow` calls so the breaker is
      deterministic under modeled time.
    - **half-open** — after the cooldown, exactly one probe dispatch
      is let through; success closes the breaker, failure reopens it
      for another full cooldown.
    """

    __slots__ = ("threshold", "cooldown", "state", "failures", "skips",
                 "trips", "probes")

    def __init__(self, threshold=3, cooldown=8):
        if threshold < 1:
            raise ValueError("breaker threshold must be >= 1")
        if cooldown < 1:
            raise ValueError("breaker cooldown must be >= 1")
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = "closed"
        self.failures = 0  # consecutive, while closed
        self.skips = 0     # dispatches refused while open
        self.trips = 0     # closed/half-open -> open transitions
        self.probes = 0    # half-open probe dispatches granted

    def allow(self):
        """May the next dispatch go to this primary?

        Returns ``(allowed, probing)``; *probing* is ``True`` only for
        the single half-open probe, whose :meth:`record` decides
        whether the breaker closes again.
        """
        if self.state == "closed":
            return True, False
        if self.state == "open":
            self.skips += 1
            if self.skips >= self.cooldown:
                self.state = "half_open"
                self.probes += 1
                return True, True
            return False, False
        # half_open: one probe is already in flight per allow();
        # further dispatches before its record() stay short-circuited.
        return False, False

    def record(self, ok):
        """Report the outcome of a dispatch :meth:`allow` let through."""
        if ok:
            self.state = "closed"
            self.failures = 0
            self.skips = 0
            return
        if self.state == "half_open":
            self.state = "open"
            self.skips = 0
            self.trips += 1
            return
        self.failures += 1
        if self.failures >= self.threshold:
            self.state = "open"
            self.failures = 0
            self.skips = 0
            self.trips += 1

    def __repr__(self):
        return "<CircuitBreaker %s failures=%d trips=%d>" % (
            self.state, self.failures, self.trips)
