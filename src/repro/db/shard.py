"""Sharded multi-core query serving with EIS merge as the reduce step.

The paper's Section 5.4 iso-area argument — spend one x86 die's area
on N small database processors — is answered elsewhere with a
closed-form area model (``experiments/iso_area.py``).
:class:`ShardedEngine` makes it a running system: a table is hash- or
range-partitioned (:mod:`repro.db.partition`) across N shard
:class:`~repro.db.engine.QueryEngine` instances, each query's WHERE
tree is *scattered* to every shard that may hold matching rows, and
the per-shard RID lists are *gathered* by folding them through the EIS
``union`` kernel on the coordinator — so even the reduce step runs on
modeled hardware and is charged modeled cycles.

Timing model (per query):

``makespan = max(shard WHERE cycles) + gather transfer + gather merge
+ coordinator ORDER BY``

Shards run concurrently in the modeled machine, so their WHERE cycles
combine as a *max*; the gather (interconnect bursts of 4-byte RIDs
into the coordinator, then the union fold) and the ORDER BY tail are
serial.  Inter-shard traffic is charged to the same
:class:`~repro.cpu.interconnect.Interconnect` model the prefetcher
uses (``db.shard.gather.*``).

Result parity with the single-engine path is structural: partitions
are disjoint and exhaustive, each shard's local→global RID map is
strictly ascending, so the union fold of per-shard sorted global RID
lists is exactly the single engine's sorted WHERE result; the
coordinator then runs the identical ORDER BY / LIMIT / fetch tail on
the full table.  ``tests/db/test_shard.py`` enforces byte-identical
RID output across every builtin predicate shape.

Fault tolerance (docs/SHARDING.md):

- **Replicas** — with ``replication=R`` each shard's rows are also
  hosted on R peer engines (:func:`~repro.db.partition.plan_replicas`,
  hottest shards first under a budget), so a dead primary is served by
  a replica with byte-identical results.
- **Deadlines + hedging** — a per-query ``deadline_cycles`` budget in
  *modeled* cycles; an attempt straggling past ``hedge_fraction`` of
  the budget triggers a hedged dispatch to the next replica, and the
  earlier completion wins.
- **Circuit breakers** — per-shard consecutive-failure breakers
  (``db.shard.<i>.breaker.*``) short-circuit a dead primary straight
  to its replicas, with a half-open probe after a cooldown.
- **Degraded mode** — with ``strict=False`` a shard that fails every
  host yields a *typed partial answer*: the query's
  :class:`ShardedResult` carries ``complete=False`` plus the failed
  positions instead of raising.  ``strict=True`` (the default)
  preserves fail-fast behavior via :class:`~repro.db.failover.ShardError`,
  which still carries per-shard outcomes and surviving results.
- **Checksummed responses** — every RID list crossing the response
  channel is guarded by :func:`~repro.db.failover.rid_checksum`;
  corruption is detected and retransmitted, never silently merged.

Process-parallel mode (``execute_batch(..., workers=N)``) scatters
per-shard evaluation to a persistent crash-isolated
:class:`~repro.supervisor.SupervisorPool`; the in-process mode stays
the default (the *modeled* concurrency is what the experiments
measure, and it is deterministic).
"""

import time

from ..core.costmodel import CostModel
from ..cpu.interconnect import Interconnect
from ..supervisor import SupervisorPool, Task
from ..telemetry.registry import MetricsRegistry
from .columnar import DeltaBatch, signature_affected
from .engine import QueryEngine, QueryResult
from .executor import RID_BITS, QueryStats, _merge_stats
from .failover import (BREAKER_STATES, CircuitBreaker, ShardError,
                       rid_checksum)
from .partition import (make_partitioner, partition_table,
                        plan_replicas, shard_may_match, skew_ratio)
from .planlint import lint_query_or_raise
from .predicates import signature

#: Bytes one RID occupies on the wire (the paper's 32-bit element).
RID_BYTES = 4

#: ``db.fault.*`` counter names the engine maintains.
FAULT_COUNTERS = ("kills", "pool_failures", "delays", "delay_cycles",
                  "corruptions", "corruptions_detected", "retransmits",
                  "failovers", "hedges", "deadline_misses", "degraded",
                  "shard_failures")

#: Scatter-entry / prefetch-cell sentinels.
_SKIPPED = ("skipped",)


class _PoolFailure:
    """Prefetch-cell sentinel: this shard's worker task failed."""

    __slots__ = ()

    def __repr__(self):
        return "<pool-failed>"


_POOL_FAILED = _PoolFailure()


class _Pruned:
    """Prefetch-cell sentinel: shard pruned before dispatch."""

    __slots__ = ()

    def __repr__(self):
        return "<pruned>"


_PRUNED = _Pruned()


class ShardedResult(QueryResult):
    """A :class:`QueryResult` plus the scatter/gather timing detail."""

    __slots__ = ("shard_cycles", "makespan_cycles", "gather_cycles",
                 "transfer_cycles", "skipped_shards", "complete",
                 "shards_failed", "failovers")

    def __init__(self, rows, rids, stats, shard_cycles,
                 makespan_cycles, gather_cycles, transfer_cycles,
                 skipped_shards, complete=True, shards_failed=(),
                 failovers=0):
        super().__init__(rows, rids, stats)
        #: Modeled WHERE cycles per shard (0 for skipped shards).
        self.shard_cycles = shard_cycles
        #: Modeled wall-clock of this query on the sharded machine.
        self.makespan_cycles = makespan_cycles
        #: EIS union-fold cycles of the gather reduce.
        self.gather_cycles = gather_cycles
        #: Interconnect cycles moving per-shard RID lists.
        self.transfer_cycles = transfer_cycles
        #: Shards pruned without dispatch (``db.shard.skipped``).
        self.skipped_shards = skipped_shards
        #: ``False`` means a degraded answer: one or more shards
        #: failed every host and their rows are missing from ``rids``.
        self.complete = complete
        #: Positions of the shards that failed (empty when complete).
        self.shards_failed = tuple(shards_failed)
        #: Attempts served by a non-primary host for this query.
        self.failovers = failovers

    def __repr__(self):
        state = "" if self.complete \
            else " DEGRADED(missing %s)" % (list(self.shards_failed),)
        return ("<ShardedResult %d rows, %d makespan cycles, "
                "%d shards skipped%s>" % (len(self.rows),
                                          self.makespan_cycles,
                                          self.skipped_shards, state))


class ShardedEngine:
    """Scatter/gather query serving over N partitioned shard engines.

    Parameters
    ----------
    shards: number of shard workers (each a full
        :class:`~repro.db.engine.QueryEngine` on its own partition).
    partitioner: ``"hash"`` / ``"range"`` (see
        :func:`repro.db.partition.make_partitioner`) or a built
        :class:`~repro.db.partition.Partitioner`.
    partition_column: partition on a column's values instead of RIDs —
        hash partitioning co-locates equal values, range partitioning
        cuts equal-depth value ranges.
    cost_model: as for :class:`QueryEngine` — ``True`` (calibrated
        fast path, serving default), ``False`` (pure ISS, experiment
        ground truth) or a :class:`~repro.core.costmodel.CostModel`.
    replication: replica count per shard (``0..shards-1``); each
        shard's rows are then also served by peer engines
        (:func:`~repro.db.partition.plan_replicas`).
    replica_budget: optional cap on total replica placements —
        the hottest shards (by partition row count) are protected
        first.
    strict: ``True`` (default) raises :class:`ShardError` when a
        shard fails every host; ``False`` degrades instead
        (``ShardedResult.complete=False``).
    deadline_cycles: per-query serve budget per shard attempt, in
        *modeled* cycles (``None`` = no deadline).  Individual calls
        may override it.
    hedge_fraction: fraction of the deadline after which a straggling
        attempt triggers a hedged dispatch to the next replica.
    breaker_threshold / breaker_cooldown: per-shard circuit breaker
        tuning (:class:`~repro.db.failover.CircuitBreaker`).
    fault_injector: optional db-layer fault injector
        (:class:`repro.faults.db.DbFaultInjector`) — the chaos
        harness's hook; ``None`` costs nothing.

    Tables are partitioned lazily on first use and pinned; the
    coordinator engine shares this engine's registry (``db.engine.*``
    and ``db.shard.*`` land in one snapshot), while shard engines keep
    private registries whose values are folded into
    :meth:`metrics_snapshot` as ``db.shard.<i>.engine.*``.
    """

    def __init__(self, config="DBA_2LSU_EIS", shards=4,
                 partitioner="hash", partition_column=None,
                 partial_load=True, cost_model=True, registry=None,
                 interconnect=None, replication=0, replica_budget=None,
                 strict=True, deadline_cycles=None, hedge_fraction=0.5,
                 breaker_threshold=3, breaker_cooldown=8,
                 fault_injector=None, partitioned_order_by=True):
        if shards < 1:
            raise ValueError("need at least one shard")
        if not 0 <= replication <= shards - 1:
            raise ValueError("replication must be within 0..shards-1, "
                             "got %d for %d shard(s)"
                             % (replication, shards))
        if not 0.0 < hedge_fraction < 1.0:
            raise ValueError("hedge_fraction must be in (0, 1)")
        self.shards = shards
        self.replication = replication
        self.replica_budget = replica_budget
        self.strict = strict
        self.deadline_cycles = deadline_cycles
        self.hedge_fraction = hedge_fraction
        self.fault_injector = fault_injector
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.coordinator = QueryEngine(config=config,
                                       partial_load=partial_load,
                                       cost_model=cost_model,
                                       registry=self.registry)
        self.config_name = self.coordinator.config_name
        self.partial_load = partial_load
        self.cost_model = self.coordinator.cost_model
        self.partitioner = make_partitioner(partitioner, shards,
                                            column=partition_column)
        self.shard_engines = [
            QueryEngine(config=config, partial_load=partial_load,
                        cost_model=self.cost_model
                        if self.cost_model is not None else False)
            for _ in range(shards)]
        self.interconnect = interconnect or Interconnect()
        self.interconnect.register_metrics(self.registry,
                                           "db.shard.gather")
        scope = self.registry.scope("db.shard")
        self._queries = scope.counter("queries")
        self._batches = scope.counter("batches")
        self._skipped = scope.counter("skipped")
        self._makespan_total = scope.counter("makespan_cycles")
        self._single_total = scope.counter("serial_cycles")
        self._merge_cycles = scope.counter("gather.merge_cycles")
        self._transfer_cycles = scope.counter("gather.transfer_cycles")
        self._merges = scope.counter("gather.merges")
        self._skew = scope.gauge("skew")
        self._shard_count = scope.gauge("shards")
        self._shard_count.set(shards)
        self._replication_gauge = scope.gauge("replication")
        self._replication_gauge.set(replication)
        self._makespan_hist = scope.histogram("query_makespan_cycles")
        self.partitioned_order_by = partitioned_order_by
        self._sort_merges = scope.counter("sort.merges")
        self._sort_merge_cycles = scope.counter("sort.merge_cycles")
        self._deltas = scope.counter("deltas")
        self._delta_rows = scope.counter("delta_rows")
        fault_scope = self.registry.scope("db.fault")
        self._fault = {name: fault_scope.counter(name)
                       for name in FAULT_COUNTERS}
        self.breakers = [CircuitBreaker(threshold=breaker_threshold,
                                        cooldown=breaker_cooldown)
                         for _ in range(shards)]
        self._shard_scopes = []
        self._breaker_scopes = []
        for index in range(shards):
            shard_scope = scope.scope(str(index))
            self._shard_scopes.append({
                "queries": shard_scope.counter("queries"),
                "cycles": shard_scope.counter("cycles"),
                "rows": shard_scope.counter("rows"),
                "skipped": shard_scope.counter("skipped"),
                "failures": shard_scope.counter("failures"),
                "rows_held": shard_scope.gauge("rows_held"),
                "queue_depth": shard_scope.gauge("queue_depth"),
                "replicas": shard_scope.gauge("replicas"),
                "cache_hits": shard_scope.scope("cache")
                .counter("hits"),
                "cache_misses": shard_scope.scope("cache")
                .counter("misses"),
                "cache_invalidated": shard_scope.scope("cache")
                .counter("invalidated"),
            })
            breaker_scope = shard_scope.scope("breaker")
            self._breaker_scopes.append({
                "state": breaker_scope.gauge("state"),
                "trips": breaker_scope.counter("trips"),
                "probes": breaker_scope.counter("probes"),
                "failures": breaker_scope.counter("failures"),
                "short_circuits": breaker_scope.counter("short_circuits"),
            })
        #: id(table) -> list of TableShard; tables pinned for id()
        #: stability, exactly like the engine's scan cache.
        self._partitions = {}
        self._pinned_tables = {}
        #: id(table) -> plan_replicas placement (replica hosts/shard).
        self._replica_placements = {}
        #: Cross-batch shard WHERE caches: per shard position,
        #: (id(shard.table), predicate signature) -> global RID list.
        #: Disabled under fault injection — a cache hit would mask the
        #: very failover paths the chaos harness measures.
        self._shard_cache = [{} for _ in range(shards)]
        self._cache_enabled = fault_injector is None
        #: id(table) -> frozen Partitioner.router closure (delta
        #: routing) and rid -> shard-position owner map.
        self._routers = {}
        self._rid_owners = {}
        self._pool = None

    # -- lifecycle ------------------------------------------------------------

    def shutdown(self):
        """Release the worker pool (no-op unless workers mode ran)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.shutdown()
        return False

    # -- partitioning ---------------------------------------------------------

    def shards_for(self, table):
        """Partition (once) and return this table's shard list."""
        key = id(table)
        existing = self._partitions.get(key)
        if existing is not None:
            return existing
        shards = partition_table(table, self.partitioner)
        self._partitions[key] = shards
        self._pinned_tables[key] = table
        # Freeze the routing closure now: range bounds must never be
        # recomputed after deltas, or existing rows would move shards.
        self._routers[key] = self.partitioner.router(table)
        placement = plan_replicas([shard.row_count for shard in shards],
                                  self.shards, self.replication,
                                  budget=self.replica_budget)
        self._replica_placements[key] = placement
        for index, shard in enumerate(shards):
            self._shard_scopes[index]["rows_held"].set(shard.row_count)
            self._shard_scopes[index]["replicas"].set(
                len(placement[index]))
        return shards

    def replica_hosts(self, table, position):
        """Engine indices hosting shard *position*'s replicas."""
        self.shards_for(table)
        return list(self._replica_placements[id(table)][position])

    # -- delta maintenance ----------------------------------------------------

    def apply_delta(self, table, batch):
        """Apply a delta batch to a sharded columnar table.

        The coordinator engine applies the batch to the parent table
        first (assigning RIDs, maintaining its scan cache and standing
        queries); the effective rows are then routed through the
        table's *frozen* partition router — inserts to the shard the
        router names, deletes to the shard that owns the RID — and
        replayed onto each shard's sub-table as a pre-assigned-RID
        sub-batch.  Existing rows never move shards, so every cached
        structure survives except entries whose predicate overlaps the
        delta's touched values.
        """
        shards = self.shards_for(table)
        key = id(table)
        router = self._routers[key]
        owners = self._rid_owners.get(key)
        if owners is None:
            owners = {}
            for position, shard in enumerate(shards):
                for rid in shard.held_rids():
                    owners[rid] = position
            self._rid_owners[key] = owners
        applied = self.coordinator.apply_delta(table, batch)
        outcome = applied["table"]
        insert_rids = outcome["insert_rids"].tolist()
        insert_columns = {name: values.tolist() for name, values
                          in outcome["insert_columns"].items()}
        deleted_rids = outcome["deleted_rids"].tolist()
        names = list(insert_columns)
        per_inserts = [([], {name: [] for name in names})
                       for _ in range(self.shards)]
        for offset, rid in enumerate(insert_rids):
            row = {name: insert_columns[name][offset]
                   for name in names}
            position = router(rid, row)
            owners[rid] = position
            rid_list, column_lists = per_inserts[position]
            rid_list.append(rid)
            for name in names:
                column_lists[name].append(row[name])
        per_deletes = [[] for _ in range(self.shards)]
        for rid in deleted_rids:
            per_deletes[owners.pop(rid)].append(rid)
        for position, shard in enumerate(shards):
            rid_list, column_lists = per_inserts[position]
            delete_list = per_deletes[position]
            if not rid_list and not delete_list:
                continue
            sub_batch = DeltaBatch(
                inserts=column_lists if rid_list else None,
                delete_rids=delete_list,
                insert_rids=rid_list or None)
            sub_outcome = shard.table.apply_delta(sub_batch)
            touched = sub_outcome["touched"]
            self._invalidate_shard_cache(position, shard.table,
                                         touched)
            for engine in self.shard_engines:
                engine._invalidate_scan_cache(id(shard.table),
                                              touched)
            self._shard_scopes[position]["rows_held"].set(
                shard.table.row_count)
        self._deltas.add(1)
        self._delta_rows.add(len(insert_rids) + len(deleted_rids))
        return applied

    def _invalidate_shard_cache(self, position, shard_table, touched):
        """Drop shard-cache entries whose predicate overlaps the
        delta's touched values (same rule as the engine scan cache,
        but over whole-tree signatures)."""
        cache = self._shard_cache[position]
        stale = [key for key in cache
                 if key[0] == id(shard_table)
                 and signature_affected(key[1], touched)]
        for key in stale:
            del cache[key]
        if stale:
            self._shard_scopes[position]["cache_invalidated"].add(
                len(stale))
        return len(stale)

    def register_standing(self, query):
        """Register a standing query on the coordinator engine (the
        parent table sees every delta exactly once there)."""
        return self.coordinator.register_standing(query)

    # -- serving --------------------------------------------------------------

    def execute(self, query, tracer=None, deadline_cycles=None):
        """Serve one query; returns a :class:`ShardedResult`."""
        return self._execute_one(query, cse=None, tracer=tracer,
                                 deadline=deadline_cycles)

    def execute_batch(self, queries, workers=1, timeout=None,
                      tracer=None, deadline_cycles=None):
        """Serve a batch; :class:`ShardedResult` per query.

        ``workers > 1`` evaluates shard WHERE work across a persistent
        supervised process pool (one task per shard per batch, crash
        isolation and retries included); the gather reduce and the
        ORDER BY tail always run in-process on the coordinator.  Both
        modes produce identical results and identical modeled cycles.

        *deadline_cycles* overrides the engine-level deadline for this
        batch (modeled cycles per shard attempt).
        """
        queries = list(queries)
        started = time.perf_counter()
        self._batches.add(1)
        for scope in self._shard_scopes:
            scope["queue_depth"].set(len(queries))
        base_cycles = [scope["cycles"].value
                       for scope in self._shard_scopes]
        try:
            if workers > 1 and len(queries) > 1:
                prefetched = self._scatter_pooled(queries, workers,
                                                  timeout)
            else:
                prefetched = [None] * len(queries)
            cse = [{} for _ in range(self.shards)]
            results = [self._execute_one(query, cse, tracer, index,
                                         prefetched[index],
                                         deadline_cycles)
                       for index, query in enumerate(queries)]
        finally:
            for scope in self._shard_scopes:
                scope["queue_depth"].set(0)
        loads = [scope["cycles"].value - before
                 for scope, before in zip(self._shard_scopes,
                                          base_cycles)]
        self._skew.set(skew_ratio(loads))
        elapsed = time.perf_counter() - started
        # Mirror the batch-level serving gauges the dashboards read
        # from db.engine.* — the coordinator served this batch.
        self.coordinator._batches.add(1)
        if elapsed > 0:
            self.coordinator._last_qps.set(len(queries) / elapsed)
        return results

    # -- internals ------------------------------------------------------------

    def _execute_one(self, query, cse, tracer=None, index=0,
                     prefetched=None, deadline=None):
        table = query.table
        lint_query_or_raise(query, engine=self.coordinator)
        if deadline is None:
            deadline = self.deadline_cycles
        stats = QueryStats()
        shard_cycles = [0] * self.shards
        gather_cycles = transfer_cycles = skipped = failovers = 0
        shards_failed = ()
        entries = None
        if query.predicate is None:
            # Full scan: nothing to scatter, the coordinator owns the
            # whole table anyway.
            rids = table.all_rids()
        else:
            entries = self._scatter(table, query.predicate, cse,
                                    tracer, index, prefetched, deadline)
            (rids, combined, gather_cycles, transfer_cycles,
             shard_cycles, skipped, shards_failed,
             failovers) = self._gather(entries)
            _merge_stats(stats, combined)
            if shards_failed:
                self._fault["shard_failures"].add(len(shards_failed))
                if self.strict:
                    attempts = [attempt for entry in entries
                                if entry[0] == "failed"
                                for attempt in entry[2]]
                    raise ShardError(
                        "query %d: shard(s) %s failed after failover"
                        % (index, ", ".join(str(position) for position
                                            in shards_failed)),
                        outcomes=attempts, survivors=rids,
                        shard=shards_failed[0], query_index=index)
                self._fault["degraded"].add(1)
        tail_before = stats.cycles
        parallel_sort_cycles = 0
        if query.order_by is not None:
            if self.partitioned_order_by:
                # Per-shard sort + EIS merge: each shard sorts its own
                # packed slice in parallel (charged to the shard's
                # makespan term), only the union fold stays serial.
                rids, sort_cycle_map = self._order_by_partitioned(
                    table, query, entries, stats)
                for position, cycles in sort_cycle_map.items():
                    shard_cycles[position] += cycles
                    self._shard_scopes[position]["cycles"].add(cycles)
                    parallel_sort_cycles += cycles
            else:
                rids, sort_stats = self.coordinator.executor.order_by(
                    table, rids, query.order_by, query.descending)
                _merge_stats(stats, sort_stats)
        if query.limit is not None:
            rids = rids[:query.limit]
        rows = table.fetch(rids, query.columns)
        tail_cycles = stats.cycles - tail_before - parallel_sort_cycles
        makespan = (max(shard_cycles) if shard_cycles else 0) \
            + gather_cycles + transfer_cycles + tail_cycles
        self._account(stats, len(rows), makespan, skipped)
        return ShardedResult(rows, rids, stats, shard_cycles,
                             makespan, gather_cycles, transfer_cycles,
                             skipped, complete=not shards_failed,
                             shards_failed=shards_failed,
                             failovers=failovers)

    def _scatter(self, table, predicate, cse, tracer, index,
                 prefetched, deadline):
        """Serve the WHERE tree on every owning shard, with failover.

        Returns one entry per shard: ``("skipped",)`` for pruned
        shards, ``("ok", rids, stats, cycles, failovers)`` for served
        ones, ``("failed", cycles, attempts)`` when every host failed.
        *prefetched* carries pooled-scatter payload cells (or ``None``
        for the inline path, where pruning happens here).
        """
        shards = self.shards_for(table)
        placement = self._replica_placements[id(table)]
        entries = []
        for position, shard in enumerate(shards):
            payload = prefetched[position] \
                if prefetched is not None else None
            if payload is _PRUNED:
                entries.append(_SKIPPED)
                continue
            if prefetched is None \
                    and not shard_may_match(shard.table, predicate):
                entries.append(_SKIPPED)
                continue
            hosts = [position] + placement[position]
            entries.append(self._serve_shard(
                position, hosts, shard, predicate, cse, tracer, index,
                payload, deadline))
        return entries

    def _order_by_partitioned(self, table, query, entries, stats):
        """Per-shard sort of packed key/RID words + EIS union merge.

        Correctness is structural: shards hold disjoint global-RID
        sets, so the packed ``key << RID_BITS | rid`` words are
        globally unique and the EIS union fold of per-shard sorted
        packed lists is exactly the coordinator's serial merge sort of
        the union — same rids, same key ties, byte-identical.

        Returns ``(ordered_rids, {position: sort_cycles})``; the
        per-shard sort cycles join the makespan's parallel max, only
        the merge cycles (folded into *stats*) stay serial.
        """
        if entries is None:
            shards = self.shards_for(table)
            per_shard = [(position, shard.held_rids())
                         for position, shard in enumerate(shards)]
        else:
            per_shard = [(position, entry[1])
                         for position, entry in enumerate(entries)
                         if entry[0] == "ok"]
        executor = self.coordinator.executor
        sort_cycle_map = {}
        merge_stats = QueryStats()
        merged = []
        for position, rids in per_shard:
            if not rids:
                continue
            packed = executor.pack_rids(table, rids, query.order_by)
            shard_sorted, shard_stats = \
                self.shard_engines[position].executor.sort_packed(
                    packed)
            _merge_stats(stats, shard_stats)
            sort_cycle_map[position] = shard_stats.cycles
            merged = executor.set_operation("union", merged,
                                            shard_sorted, merge_stats)
            self._sort_merges.add(1)
        _merge_stats(stats, merge_stats)
        self._sort_merge_cycles.add(merge_stats.cycles)
        mask = (1 << RID_BITS) - 1
        ordered = [value & mask for value in merged]
        if query.descending:
            ordered.reverse()
        return ordered, sort_cycle_map

    def _serve_shard(self, position, hosts, shard, predicate, cse,
                     tracer, index, payload, deadline):
        """One shard's WHERE, behind the cross-batch shard cache.

        A (shard table, predicate signature) hit returns the cached
        global RID list without dispatching to any host (modeled
        cycles: zero, like the engine-level scan cache).  Entries are
        installed only from checksum-verified ``ok`` serves and are
        invalidated by :meth:`apply_delta`'s touched-value footprint;
        under fault injection the cache is disabled outright — a hit
        would mask the failover paths the chaos harness measures.
        """
        key = None
        if self._cache_enabled:
            key = (id(shard.table), signature(predicate))
            cached = self._shard_cache[position].get(key)
            if cached is not None:
                self._shard_scopes[position]["cache_hits"].add(1)
                return ("ok", list(cached), QueryStats(), 0, 0)
            self._shard_scopes[position]["cache_misses"].add(1)
        entry = self._serve_shard_uncached(
            position, hosts, shard, predicate, cse, tracer, index,
            payload, deadline)
        if key is not None and entry[0] == "ok":
            self._shard_cache[position][key] = list(entry[1])
        return entry

    def _serve_shard_uncached(self, position, hosts, shard, predicate,
                              cse, tracer, index, payload, deadline):
        """One shard's WHERE for one query, across its host chain.

        Sequential failover along ``hosts`` (primary first, then
        replicas), with the circuit breaker gating the primary,
        checksum-verified delivery (corrupt responses are retransmitted
        once, then failed over), and deadline/hedge handling: an
        attempt straggling past ``hedge_fraction * deadline`` races a
        hedged dispatch on the next host, earliest valid completion
        wins.  ``cycles`` charged to the shard is the modeled time
        until its answer (or final failure) was available.
        """
        breaker = self.breakers[position]
        breaker_scope = self._breaker_scopes[position]
        trigger = None
        if deadline is not None:
            trigger = max(1, int(deadline * self.hedge_fraction))
        attempts = []
        charged = 0
        failovers = 0
        slot = 0
        while slot < len(hosts):
            host = hosts[slot]
            primary = slot == 0
            if primary:
                allowed, _probing = breaker.allow()
                self._sync_breaker(position)
                if not allowed:
                    breaker_scope["short_circuits"].add(1)
                    attempts.append({"host": host,
                                     "status": "short_circuit"})
                    slot += 1
                    continue
            status, rids, stats, cycles = self._attempt(
                position, host, shard, predicate, cse, tracer, index,
                payload if primary else None)
            if status == "corrupt":
                # Checksum mismatch: charge the wasted attempt and
                # retransmit once from the same host (a fresh inline
                # evaluation) before giving up on it.
                self._fault["corruptions_detected"].add(1)
                self._fault["retransmits"].add(1)
                charged += cycles
                attempts.append({"host": host, "status": "corrupt"})
                status, rids, stats, cycles = self._attempt(
                    position, host, shard, predicate, cse, tracer,
                    index, None)
            if status != "ok":
                if primary:
                    breaker.record(False)
                    self._sync_breaker(position)
                    breaker_scope["failures"].add(1)
                attempts.append({"host": host, "status": status})
                slot += 1
                continue
            if trigger is None or cycles <= trigger:
                return self._accept(position, primary, rids, stats,
                                    charged + cycles, failovers)
            # Straggler: past the hedge trigger with a deadline set.
            hedge_host = hosts[slot + 1] if slot + 1 < len(hosts) \
                else None
            if hedge_host is None:
                if cycles <= deadline:
                    # Slow but within budget, and nothing to hedge on.
                    return self._accept(position, primary, rids, stats,
                                        charged + cycles, failovers)
                charged += deadline
                self._fault["deadline_misses"].add(1)
                if primary:
                    breaker.record(False)
                    self._sync_breaker(position)
                    breaker_scope["failures"].add(1)
                attempts.append({"host": host, "status": "deadline"})
                slot += 1
                continue
            self._fault["hedges"].add(1)
            h_status, h_rids, h_stats, h_cycles = self._attempt(
                position, hedge_host, shard, predicate, cse, tracer,
                index, None)
            if h_status == "corrupt":
                self._fault["corruptions_detected"].add(1)
                h_status = "corrupt_dropped"
            candidates = []
            if cycles <= deadline:
                candidates.append((cycles, rids, stats, False))
            if h_status == "ok" and trigger + h_cycles <= deadline:
                candidates.append((trigger + h_cycles, h_rids, h_stats,
                                   True))
            if candidates:
                done, win_rids, win_stats, via_hedge = \
                    min(candidates, key=lambda item: item[0])
                if primary:
                    primary_ok = cycles <= deadline
                    breaker.record(primary_ok)
                    self._sync_breaker(position)
                    if not primary_ok:
                        breaker_scope["failures"].add(1)
                if via_hedge or not primary:
                    failovers += 1
                    self._fault["failovers"].add(1)
                return ("ok", win_rids, win_stats, charged + done,
                        failovers)
            # Both the straggler and its hedge blew the deadline.
            charged += deadline
            self._fault["deadline_misses"].add(1)
            if primary:
                breaker.record(False)
                self._sync_breaker(position)
                breaker_scope["failures"].add(1)
            attempts.append({"host": host, "status": "deadline"})
            attempts.append({"host": hedge_host,
                             "status": h_status if h_status != "ok"
                             else "deadline"})
            slot += 2
        return ("failed", charged, attempts)

    def _accept(self, position, primary, rids, stats, charged,
                failovers):
        """Book a winning attempt as this shard's serve outcome."""
        if primary:
            breaker = self.breakers[position]
            breaker.record(True)
            self._sync_breaker(position)
        else:
            failovers += 1
            self._fault["failovers"].add(1)
        return ("ok", rids, stats, charged, failovers)

    def _attempt(self, position, host, shard, predicate, cse, tracer,
                 index, payload):
        """One dispatch of shard *position*'s WHERE to engine *host*.

        Returns ``(status, rids, stats, cycles)`` with *status* one of
        ``"ok"`` / ``"killed"`` / ``"corrupt"``; *cycles* are the
        modeled serve cycles of the attempt including any injected
        response delay.  The sender computes the RID checksum *before*
        the response crosses the (corruptible) channel; delivery
        recomputes and compares.
        """
        injector = self.fault_injector
        if payload is _POOL_FAILED:
            self._fault["pool_failures"].add(1)
            return ("killed", None, None, 0)
        if injector is not None and injector.host_killed(host, index):
            self._fault["kills"].add(1)
            return ("killed", None, None, 0)
        if payload is not None:
            rids, checksum, stats = payload
            rids = list(rids)
        else:
            engine = self.shard_engines[host]
            shard_cse = cse[position] if cse is not None else None
            local, stats = engine.evaluate_predicate(
                shard.table, predicate, cse=shard_cse, tracer=tracer,
                index=index)
            rids = shard.to_global(local)
            checksum = rid_checksum(rids)
        cycles = stats.cycles
        if injector is not None:
            delay = injector.delay_cycles(position, index)
            if delay:
                self._fault["delays"].add(1)
                self._fault["delay_cycles"].add(delay)
                cycles += delay
            rids, mutated = injector.deliver(position, index, rids)
            if mutated:
                self._fault["corruptions"].add(1)
        if rid_checksum(rids) != checksum:
            return ("corrupt", None, None, cycles)
        return ("ok", rids, stats, cycles)

    def _sync_breaker(self, position):
        breaker = self.breakers[position]
        scope = self._breaker_scopes[position]
        scope["state"].set(BREAKER_STATES.index(breaker.state))
        scope["trips"].value = breaker.trips
        scope["probes"].value = breaker.probes

    def _gather(self, per_shard):
        """EIS union fold of per-shard RID lists on the coordinator.

        Each non-empty contribution is charged one interconnect burst
        (``RID_BYTES * len(rids)``); the fold itself runs through the
        coordinator executor's ``set_operation`` so merge cycles come
        from the same calibrated/ISS path as every other set op.

        Returns ``(rids, combined_stats, gather_cycles,
        transfer_cycles, shard_cycles, skipped, shards_failed,
        failovers)`` where ``combined_stats`` is all work (shard WHERE
        + gather) and the two cycle figures isolate the gather-side
        serial terms of the makespan.
        """
        combined = QueryStats()
        gather_stats = QueryStats()
        shard_cycles = [0] * self.shards
        skipped = 0
        failovers = 0
        shards_failed = []
        merged = []
        for position, entry in enumerate(per_shard):
            scope = self._shard_scopes[position]
            if entry[0] == "skipped":
                skipped += 1
                scope["skipped"].add(1)
                continue
            if entry[0] == "failed":
                _kind, charged, _attempts = entry
                shards_failed.append(position)
                scope["failures"].add(1)
                scope["cycles"].add(charged)
                shard_cycles[position] = charged
                continue
            _kind, rids, stats, charged, shard_failovers = entry
            failovers += shard_failovers
            scope["queries"].add(1)
            scope["cycles"].add(charged)
            scope["rows"].add(len(rids))
            shard_cycles[position] = charged
            _merge_stats(combined, stats)
            if rids:
                cycles = self.interconnect.transfer_cycles(
                    RID_BYTES * len(rids))
                gather_stats.add_cycles(cycles, "interconnect")
                merged = self.coordinator.executor.set_operation(
                    "union", merged, rids, gather_stats)
                self._merges.add(1)
        transfer_cycles = \
            gather_stats.cycles_by_source.get("interconnect", 0)
        gather_cycles = gather_stats.cycles - transfer_cycles
        self._merge_cycles.add(gather_cycles)
        self._transfer_cycles.add(transfer_cycles)
        self._skipped.add(skipped)
        _merge_stats(combined, gather_stats)
        return (merged, combined, gather_cycles, transfer_cycles,
                shard_cycles, skipped, tuple(shards_failed), failovers)

    def _account(self, stats, row_count, makespan, skipped):
        self._queries.add(1)
        self._makespan_total.add(makespan)
        self._single_total.add(stats.cycles
                               - stats.cycles_by_source.get(
                                   "interconnect", 0))
        self._makespan_hist.observe(makespan)
        # Keep db.engine.* live too: the coordinator serves the query
        # as far as dashboards and history baselines are concerned.
        self.coordinator._account(stats, row_count)

    # -- pooled scatter -------------------------------------------------------

    def _scatter_pooled(self, queries, workers, timeout):
        """Evaluate all (query, shard) WHERE work on a process pool.

        One task per owning shard carries the whole batch's predicate
        list; pruning happens here in the parent (the shard tables are
        local), so skipped shards never reach the pool.  Returns
        ``prefetched[query_index][shard]`` cells — ``(global_rids,
        checksum, stats)`` payloads, the ``_PRUNED`` sentinel, or
        ``_POOL_FAILED`` for cells whose worker task failed (served by
        replica failover, or degraded / raised downstream).

        A failed task raises a typed :class:`ShardError` carrying the
        per-task outcomes *and* the surviving prefetched cells — but
        only when the failure is terminal (strict mode with no
        replicas to fail over to); otherwise the healthy siblings'
        results are kept and the failed shard takes the inline
        failover path.
        """
        tables = {}
        for query in queries:
            tables.setdefault(id(query.table), query.table)
        if len(tables) != 1:
            raise ValueError("pooled scatter serves one table per "
                             "batch; split the batch by table")
        table = next(iter(tables.values()))
        shards = self.shards_for(table)
        plans = []  # per shard: list of (query_index, predicate)
        prefetched = [[None] * self.shards for _ in queries]
        for position, shard in enumerate(shards):
            plan = []
            for query_index, query in enumerate(queries):
                if query.predicate is None:
                    continue
                if self._cache_enabled and (
                        id(shard.table),
                        signature(query.predicate)) \
                        in self._shard_cache[position]:
                    # Cached pairs skip the pool; the inline path
                    # serves them from the shard cache.
                    continue
                if shard_may_match(shard.table, query.predicate):
                    plan.append((query_index, query.predicate))
                else:
                    prefetched[query_index][position] = _PRUNED
            plans.append(plan)
        if self._pool is None:
            self._pool = SupervisorPool(jobs=min(workers, self.shards))
        tasks = []
        for position, plan in enumerate(plans):
            if not plan:
                continue
            shard = shards[position]
            spec = {
                "config": self.config_name,
                "partial_load": self.partial_load,
                "cost_model": self.cost_model is not None,
                "table": {
                    "name": shard.table.name,
                    "columns": {name: list(values) for name, values
                                in shard.table.columns.items()},
                    "indexes": [column for column
                                in shard.table.columns
                                if shard.table.has_index(column)],
                },
                "global_rids": shard.held_rids(),
                "predicates": [(query_index, predicate)
                               for query_index, predicate in plan],
            }
            tasks.append((position,
                          Task("shard-%d" % position,
                               _serve_shard_batch, (spec,))))
        report = self._pool.run([task for _position, task in tasks],
                                timeout=timeout, retries=1)
        failed = []
        for (position, _task), outcome in zip(tasks, report.outcomes):
            if not outcome.ok:
                failed.append((position, outcome))
                for query_index, _predicate in plans[position]:
                    prefetched[query_index][position] = _POOL_FAILED
                continue
            for query_index, rids, checksum, stats in outcome.value:
                prefetched[query_index][position] = (rids, checksum,
                                                     stats)
        if failed and self.strict and self.replication == 0:
            positions = ", ".join(str(position)
                                  for position, _outcome in failed)
            raise ShardError(
                "shard worker(s) %s failed: %s"
                % (positions, "; ".join(
                    "%s: %s" % (outcome.key,
                                (outcome.error or "?")
                                .strip().splitlines()[0])
                    for _position, outcome in failed)),
                outcomes=report.outcomes, survivors=prefetched,
                shard=failed[0][0])
        return prefetched

    # -- introspection --------------------------------------------------------

    def metrics_snapshot(self):
        """``db.shard.*`` + ``db.engine.*`` + per-shard engine values.

        Shard engines keep private registries (their ``db.engine.*``
        names would collide in the shared one); their counters are
        folded in here as ``db.shard.<i>.engine.*``.
        """
        values = self.coordinator.metrics_snapshot()
        prefix = "db.engine."
        for index, engine in enumerate(self.shard_engines):
            for name, value in \
                    engine.registry.snapshot().as_dict().items():
                if name.startswith(prefix):
                    name = name[len(prefix):]
                values["db.shard.%d.engine.%s" % (index, name)] = value
        return values

    def clear_caches(self):
        self.coordinator.clear_caches()
        for engine in self.shard_engines:
            engine.clear_caches()
        for cache in self._shard_cache:
            cache.clear()
        self._partitions.clear()
        self._pinned_tables.clear()
        self._replica_placements.clear()
        self._routers.clear()
        self._rid_owners.clear()

    def __repr__(self):
        return "<ShardedEngine %s x%d %s cost_model=%s replicas=%d>" % (
            self.config_name, self.shards,
            self.partitioner.describe(),
            self.cost_model is not None, self.replication)


def _serve_shard_batch(spec):
    """Worker-process entry: one shard's WHERE work for a batch.

    Module-level (picklable) by supervisor contract.  Rebuilds the
    shard table and a private engine, evaluates each predicate with
    batch-level CSE, and returns ``(query_index, global_rids,
    checksum, stats)`` tuples — RIDs already mapped to the global
    space (so the parent's gather fold needs no shard state) and
    checksummed at the sender, so corruption on the response path is
    detected at delivery.
    """
    from .table import Table
    engine = QueryEngine(config=spec["config"],
                         partial_load=spec["partial_load"],
                         cost_model=CostModel()
                         if spec["cost_model"] else False)
    payload = spec["table"]
    table = Table(payload["name"], payload["columns"])
    for column in payload["indexes"]:
        table.create_index(column)
    global_rids = spec["global_rids"]
    cse = {}
    results = []
    for query_index, predicate in spec["predicates"]:
        local, stats = engine.evaluate_predicate(table, predicate,
                                                 cse=cse)
        rids = [global_rids[rid] for rid in local]
        results.append((query_index, rids, rid_checksum(rids), stats))
    return results
