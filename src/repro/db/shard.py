"""Sharded multi-core query serving with EIS merge as the reduce step.

The paper's Section 5.4 iso-area argument — spend one x86 die's area
on N small database processors — is answered elsewhere with a
closed-form area model (``experiments/iso_area.py``).
:class:`ShardedEngine` makes it a running system: a table is hash- or
range-partitioned (:mod:`repro.db.partition`) across N shard
:class:`~repro.db.engine.QueryEngine` instances, each query's WHERE
tree is *scattered* to every shard that may hold matching rows, and
the per-shard RID lists are *gathered* by folding them through the EIS
``union`` kernel on the coordinator — so even the reduce step runs on
modeled hardware and is charged modeled cycles.

Timing model (per query):

``makespan = max(shard WHERE cycles) + gather transfer + gather merge
+ coordinator ORDER BY``

Shards run concurrently in the modeled machine, so their WHERE cycles
combine as a *max*; the gather (interconnect bursts of 4-byte RIDs
into the coordinator, then the union fold) and the ORDER BY tail are
serial.  Inter-shard traffic is charged to the same
:class:`~repro.cpu.interconnect.Interconnect` model the prefetcher
uses (``db.shard.gather.*``).

Result parity with the single-engine path is structural: partitions
are disjoint and exhaustive, each shard's local→global RID map is
strictly ascending, so the union fold of per-shard sorted global RID
lists is exactly the single engine's sorted WHERE result; the
coordinator then runs the identical ORDER BY / LIMIT / fetch tail on
the full table.  ``tests/db/test_shard.py`` enforces byte-identical
RID output across every builtin predicate shape.

Process-parallel mode (``execute_batch(..., workers=N)``) scatters
per-shard evaluation to a persistent crash-isolated
:class:`~repro.supervisor.SupervisorPool`; the in-process mode stays
the default (the *modeled* concurrency is what the experiments
measure, and it is deterministic).
"""

import time

from ..core.costmodel import CostModel
from ..cpu.interconnect import Interconnect
from ..supervisor import SupervisorPool, Task
from ..telemetry.registry import MetricsRegistry
from .engine import QueryEngine, QueryResult
from .executor import QueryStats, _merge_stats
from .partition import (make_partitioner, partition_table,
                        shard_may_match, skew_ratio)
from .planlint import lint_query_or_raise

#: Bytes one RID occupies on the wire (the paper's 32-bit element).
RID_BYTES = 4


class ShardedResult(QueryResult):
    """A :class:`QueryResult` plus the scatter/gather timing detail."""

    __slots__ = ("shard_cycles", "makespan_cycles", "gather_cycles",
                 "transfer_cycles", "skipped_shards")

    def __init__(self, rows, rids, stats, shard_cycles,
                 makespan_cycles, gather_cycles, transfer_cycles,
                 skipped_shards):
        super().__init__(rows, rids, stats)
        #: Modeled WHERE cycles per shard (0 for skipped shards).
        self.shard_cycles = shard_cycles
        #: Modeled wall-clock of this query on the sharded machine.
        self.makespan_cycles = makespan_cycles
        #: EIS union-fold cycles of the gather reduce.
        self.gather_cycles = gather_cycles
        #: Interconnect cycles moving per-shard RID lists.
        self.transfer_cycles = transfer_cycles
        #: Shards pruned without dispatch (``db.shard.skipped``).
        self.skipped_shards = skipped_shards

    def __repr__(self):
        return ("<ShardedResult %d rows, %d makespan cycles, "
                "%d shards skipped>" % (len(self.rows),
                                        self.makespan_cycles,
                                        self.skipped_shards))


class ShardedEngine:
    """Scatter/gather query serving over N partitioned shard engines.

    Parameters
    ----------
    shards: number of shard workers (each a full
        :class:`~repro.db.engine.QueryEngine` on its own partition).
    partitioner: ``"hash"`` / ``"range"`` (see
        :func:`repro.db.partition.make_partitioner`) or a built
        :class:`~repro.db.partition.Partitioner`.
    partition_column: partition on a column's values instead of RIDs —
        hash partitioning co-locates equal values, range partitioning
        cuts equal-depth value ranges.
    cost_model: as for :class:`QueryEngine` — ``True`` (calibrated
        fast path, serving default), ``False`` (pure ISS, experiment
        ground truth) or a :class:`~repro.core.costmodel.CostModel`.

    Tables are partitioned lazily on first use and pinned; the
    coordinator engine shares this engine's registry (``db.engine.*``
    and ``db.shard.*`` land in one snapshot), while shard engines keep
    private registries whose values are folded into
    :meth:`metrics_snapshot` as ``db.shard.<i>.engine.*``.
    """

    def __init__(self, config="DBA_2LSU_EIS", shards=4,
                 partitioner="hash", partition_column=None,
                 partial_load=True, cost_model=True, registry=None,
                 interconnect=None):
        if shards < 1:
            raise ValueError("need at least one shard")
        self.shards = shards
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.coordinator = QueryEngine(config=config,
                                       partial_load=partial_load,
                                       cost_model=cost_model,
                                       registry=self.registry)
        self.config_name = self.coordinator.config_name
        self.partial_load = partial_load
        self.cost_model = self.coordinator.cost_model
        self.partitioner = make_partitioner(partitioner, shards,
                                            column=partition_column)
        self.shard_engines = [
            QueryEngine(config=config, partial_load=partial_load,
                        cost_model=self.cost_model
                        if self.cost_model is not None else False)
            for _ in range(shards)]
        self.interconnect = interconnect or Interconnect()
        self.interconnect.register_metrics(self.registry,
                                           "db.shard.gather")
        scope = self.registry.scope("db.shard")
        self._queries = scope.counter("queries")
        self._batches = scope.counter("batches")
        self._skipped = scope.counter("skipped")
        self._makespan_total = scope.counter("makespan_cycles")
        self._single_total = scope.counter("serial_cycles")
        self._merge_cycles = scope.counter("gather.merge_cycles")
        self._transfer_cycles = scope.counter("gather.transfer_cycles")
        self._merges = scope.counter("gather.merges")
        self._skew = scope.gauge("skew")
        self._shard_count = scope.gauge("shards")
        self._shard_count.set(shards)
        self._makespan_hist = scope.histogram("query_makespan_cycles")
        self._shard_scopes = []
        for index in range(shards):
            shard_scope = scope.scope(str(index))
            self._shard_scopes.append({
                "queries": shard_scope.counter("queries"),
                "cycles": shard_scope.counter("cycles"),
                "rows": shard_scope.counter("rows"),
                "skipped": shard_scope.counter("skipped"),
                "rows_held": shard_scope.gauge("rows_held"),
                "queue_depth": shard_scope.gauge("queue_depth"),
            })
        #: id(table) -> list of TableShard; tables pinned for id()
        #: stability, exactly like the engine's scan cache.
        self._partitions = {}
        self._pinned_tables = {}
        self._pool = None

    # -- lifecycle ------------------------------------------------------------

    def shutdown(self):
        """Release the worker pool (no-op unless workers mode ran)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.shutdown()
        return False

    # -- partitioning ---------------------------------------------------------

    def shards_for(self, table):
        """Partition (once) and return this table's shard list."""
        key = id(table)
        existing = self._partitions.get(key)
        if existing is not None:
            return existing
        shards = partition_table(table, self.partitioner)
        self._partitions[key] = shards
        self._pinned_tables[key] = table
        for index, shard in enumerate(shards):
            self._shard_scopes[index]["rows_held"].set(shard.row_count)
        return shards

    # -- serving --------------------------------------------------------------

    def execute(self, query, tracer=None):
        """Serve one query; returns a :class:`ShardedResult`."""
        return self._execute_one(query, cse=None, tracer=tracer)

    def execute_batch(self, queries, workers=1, timeout=None,
                      tracer=None):
        """Serve a batch; :class:`ShardedResult` per query.

        ``workers > 1`` evaluates shard WHERE work across a persistent
        supervised process pool (one task per shard per batch, crash
        isolation and retries included); the gather reduce and the
        ORDER BY tail always run in-process on the coordinator.  Both
        modes produce identical results and identical modeled cycles.
        """
        queries = list(queries)
        started = time.perf_counter()
        self._batches.add(1)
        for scope in self._shard_scopes:
            scope["queue_depth"].set(len(queries))
        base_cycles = [scope["cycles"].value
                       for scope in self._shard_scopes]
        try:
            if workers > 1 and len(queries) > 1:
                prefetched = self._scatter_pooled(queries, workers,
                                                  timeout)
            else:
                prefetched = [None] * len(queries)
            cse = [{} for _ in range(self.shards)]
            results = [self._execute_one(query, cse, tracer, index,
                                         prefetched[index])
                       for index, query in enumerate(queries)]
        finally:
            for scope in self._shard_scopes:
                scope["queue_depth"].set(0)
        loads = [scope["cycles"].value - before
                 for scope, before in zip(self._shard_scopes,
                                          base_cycles)]
        self._skew.set(skew_ratio(loads))
        elapsed = time.perf_counter() - started
        # Mirror the batch-level serving gauges the dashboards read
        # from db.engine.* — the coordinator served this batch.
        self.coordinator._batches.add(1)
        if elapsed > 0:
            self.coordinator._last_qps.set(len(queries) / elapsed)
        return results

    # -- internals ------------------------------------------------------------

    def _execute_one(self, query, cse, tracer=None, index=0,
                     prefetched=None):
        table = query.table
        lint_query_or_raise(query, engine=self.coordinator)
        stats = QueryStats()
        shard_cycles = [0] * self.shards
        gather_cycles = transfer_cycles = skipped = 0
        if query.predicate is None:
            # Full scan: nothing to scatter, the coordinator owns the
            # whole table anyway.
            rids = list(range(table.row_count))
        else:
            if prefetched is None:
                prefetched = self._scatter_inline(table,
                                                  query.predicate, cse,
                                                  tracer, index)
            (rids, combined, gather_cycles, transfer_cycles,
             shard_cycles, skipped) = self._gather(prefetched)
            _merge_stats(stats, combined)
        tail_before = stats.cycles
        if query.order_by is not None:
            rids, sort_stats = self.coordinator.executor.order_by(
                table, rids, query.order_by, query.descending)
            _merge_stats(stats, sort_stats)
        if query.limit is not None:
            rids = rids[:query.limit]
        rows = table.fetch(rids, query.columns)
        tail_cycles = stats.cycles - tail_before
        makespan = (max(shard_cycles) if shard_cycles else 0) \
            + gather_cycles + transfer_cycles + tail_cycles
        self._account(stats, len(rows), makespan, skipped)
        return ShardedResult(rows, rids, stats, shard_cycles,
                             makespan, gather_cycles, transfer_cycles,
                             skipped)

    def _scatter_inline(self, table, predicate, cse, tracer, index):
        """Evaluate the WHERE tree on every owning shard in-process.

        Returns per-shard ``(global_rids, stats | None)``; a ``None``
        stats marks a pruned shard (no work dispatched).
        """
        shards = self.shards_for(table)
        per_shard = []
        for position, (shard, engine) in enumerate(
                zip(shards, self.shard_engines)):
            if not shard_may_match(shard.table, predicate):
                per_shard.append(([], None))
                continue
            shard_cse = cse[position] if cse is not None else None
            local, stats = engine.evaluate_predicate(
                shard.table, predicate, cse=shard_cse, tracer=tracer,
                index=index)
            per_shard.append((shard.to_global(local), stats))
        return per_shard

    def _gather(self, per_shard):
        """EIS union fold of per-shard RID lists on the coordinator.

        Each non-empty contribution is charged one interconnect burst
        (``RID_BYTES * len(rids)``); the fold itself runs through the
        coordinator executor's ``set_operation`` so merge cycles come
        from the same calibrated/ISS path as every other set op.

        Returns ``(rids, combined_stats, gather_cycles,
        transfer_cycles, shard_cycles, skipped)`` where
        ``combined_stats`` is all work (shard WHERE + gather) and the
        two cycle figures isolate the gather-side serial terms of the
        makespan.
        """
        combined = QueryStats()
        gather_stats = QueryStats()
        shard_cycles = [0] * self.shards
        skipped = 0
        merged = []
        for position, (rids, stats) in enumerate(per_shard):
            scope = self._shard_scopes[position]
            if stats is None:
                skipped += 1
                scope["skipped"].add(1)
                continue
            scope["queries"].add(1)
            scope["cycles"].add(stats.cycles)
            scope["rows"].add(len(rids))
            shard_cycles[position] = stats.cycles
            _merge_stats(combined, stats)
            if rids:
                cycles = self.interconnect.transfer_cycles(
                    RID_BYTES * len(rids))
                gather_stats.add_cycles(cycles, "interconnect")
                merged = self.coordinator.executor.set_operation(
                    "union", merged, rids, gather_stats)
                self._merges.add(1)
        transfer_cycles = \
            gather_stats.cycles_by_source.get("interconnect", 0)
        gather_cycles = gather_stats.cycles - transfer_cycles
        self._merge_cycles.add(gather_cycles)
        self._transfer_cycles.add(transfer_cycles)
        self._skipped.add(skipped)
        _merge_stats(combined, gather_stats)
        return (merged, combined, gather_cycles, transfer_cycles,
                shard_cycles, skipped)

    def _account(self, stats, row_count, makespan, skipped):
        self._queries.add(1)
        self._makespan_total.add(makespan)
        self._single_total.add(stats.cycles
                               - stats.cycles_by_source.get(
                                   "interconnect", 0))
        self._makespan_hist.observe(makespan)
        # Keep db.engine.* live too: the coordinator serves the query
        # as far as dashboards and history baselines are concerned.
        self.coordinator._account(stats, row_count)

    # -- pooled scatter -------------------------------------------------------

    def _scatter_pooled(self, queries, workers, timeout):
        """Evaluate all (query, shard) WHERE work on a process pool.

        One task per owning shard carries the whole batch's predicate
        list; pruning happens here in the parent (the shard tables are
        local), so skipped shards never reach the pool.  Returns
        ``prefetched[query_index][shard] = (global_rids, stats|None)``.
        """
        tables = {}
        for query in queries:
            tables.setdefault(id(query.table), query.table)
        if len(tables) != 1:
            raise ValueError("pooled scatter serves one table per "
                             "batch; split the batch by table")
        table = next(iter(tables.values()))
        shards = self.shards_for(table)
        plans = []  # per shard: list of (query_index, predicate)
        prefetched = [[None] * self.shards for _ in queries]
        for position, shard in enumerate(shards):
            plan = []
            for query_index, query in enumerate(queries):
                if query.predicate is None:
                    continue
                if shard_may_match(shard.table, query.predicate):
                    plan.append((query_index, query.predicate))
                else:
                    prefetched[query_index][position] = ([], None)
            plans.append(plan)
        if self._pool is None:
            self._pool = SupervisorPool(jobs=min(workers, self.shards))
        tasks = []
        for position, plan in enumerate(plans):
            if not plan:
                continue
            shard = shards[position]
            spec = {
                "config": self.config_name,
                "partial_load": self.partial_load,
                "cost_model": self.cost_model is not None,
                "table": {
                    "name": shard.table.name,
                    "columns": {name: list(values) for name, values
                                in shard.table.columns.items()},
                    "indexes": [column for column
                                in shard.table.columns
                                if shard.table.has_index(column)],
                },
                "global_rids": list(shard.global_rids),
                "predicates": [(query_index, predicate)
                               for query_index, predicate in plan],
            }
            tasks.append((position,
                          Task("shard-%d" % position,
                               _serve_shard_batch, (spec,))))
        report = self._pool.run([task for _position, task in tasks],
                                timeout=timeout, retries=1)
        for (position, _task), outcome in zip(tasks, report.outcomes):
            if not outcome.ok:
                raise RuntimeError("shard worker %s failed: %s"
                                   % (outcome.key, outcome.error))
            for query_index, rids, stats in outcome.value:
                prefetched[query_index][position] = (rids, stats)
        return prefetched

    # -- introspection --------------------------------------------------------

    def metrics_snapshot(self):
        """``db.shard.*`` + ``db.engine.*`` + per-shard engine values.

        Shard engines keep private registries (their ``db.engine.*``
        names would collide in the shared one); their counters are
        folded in here as ``db.shard.<i>.engine.*``.
        """
        values = self.coordinator.metrics_snapshot()
        prefix = "db.engine."
        for index, engine in enumerate(self.shard_engines):
            for name, value in \
                    engine.registry.snapshot().as_dict().items():
                if name.startswith(prefix):
                    name = name[len(prefix):]
                values["db.shard.%d.engine.%s" % (index, name)] = value
        return values

    def clear_caches(self):
        self.coordinator.clear_caches()
        for engine in self.shard_engines:
            engine.clear_caches()
        self._partitions.clear()
        self._pinned_tables.clear()

    def __repr__(self):
        return "<ShardedEngine %s x%d %s cost_model=%s>" % (
            self.config_name, self.shards,
            self.partitioner.describe(),
            self.cost_model is not None)


def _serve_shard_batch(spec):
    """Worker-process entry: one shard's WHERE work for a batch.

    Module-level (picklable) by supervisor contract.  Rebuilds the
    shard table and a private engine, evaluates each predicate with
    batch-level CSE, and returns ``(query_index, global_rids, stats)``
    triples — RIDs already mapped to the global space so the parent's
    gather fold needs no shard state.
    """
    from .table import Table
    engine = QueryEngine(config=spec["config"],
                         partial_load=spec["partial_load"],
                         cost_model=CostModel()
                         if spec["cost_model"] else False)
    payload = spec["table"]
    table = Table(payload["name"], payload["columns"])
    for column in payload["indexes"]:
        table.create_index(column)
    global_rids = spec["global_rids"]
    cse = {}
    results = []
    for query_index, predicate in spec["predicates"]:
        local, stats = engine.evaluate_predicate(table, predicate,
                                                 cse=cse)
        results.append((query_index,
                        [global_rids[rid] for rid in local], stats))
    return results
