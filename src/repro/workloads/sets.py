"""Sorted-set workload generation with exact selectivity control.

The paper defines selectivity as the fraction of results obtainable
relative to the maximum (Section 5.2): 100 % means both input sets are
identical, 0 % means they are disjoint.  Unless stated otherwise the
paper runs at 50 % selectivity with 5000-element 32-bit sets.

:func:`generate_set_pair` reproduces that methodology: a pool of
distinct 32-bit values is split into a common part (both sets) and two
private parts (one set each), so the intersection size is exactly
``round(selectivity * n)``.
"""

import random

from ..core.common import SENTINEL

#: Set size used throughout the paper's Section 5.2.
PAPER_SET_SIZE = 5000

#: Largest value the generators draw (must stay below the sentinel).
MAX_VALUE = SENTINEL - 1


def generate_set_pair(size_a, size_b=None, selectivity=0.5, seed=None,
                      max_value=MAX_VALUE):
    """Two strictly-sorted sets with an exact intersection size.

    Parameters
    ----------
    size_a, size_b:
        Element counts (*size_b* defaults to *size_a*).
    selectivity:
        Fraction in ``[0, 1]``; the intersection holds
        ``round(selectivity * min(size_a, size_b))`` elements.
    seed:
        Seed for reproducible generation.
    """
    if size_b is None:
        size_b = size_a
    if not 0.0 <= selectivity <= 1.0:
        raise ValueError("selectivity must be within [0, 1]")
    rng = random.Random(seed)
    common = round(selectivity * min(size_a, size_b))
    distinct_needed = size_a + size_b - common
    if distinct_needed > max_value:
        raise ValueError("value space too small for the requested sizes")
    pool = rng.sample(range(1, max_value + 1), distinct_needed)
    shared = pool[:common]
    only_a = pool[common:common + (size_a - common)]
    only_b = pool[common + (size_a - common):]
    set_a = sorted(shared + only_a)
    set_b = sorted(shared + only_b)
    return set_a, set_b


def expected_result_size(which, size_a, size_b, selectivity):
    """Exact result cardinality for sets from :func:`generate_set_pair`."""
    common = round(selectivity * min(size_a, size_b))
    if which == "intersection":
        return common
    if which == "union":
        return size_a + size_b - common
    if which == "difference":
        return size_a - common
    raise ValueError("unknown set operation %r" % (which,))


def generate_rid_list(size, table_rows, seed=None):
    """A RID list: sorted row identifiers of one index-scan result.

    Models the inputs of lazy RID-list intersection for index ANDing
    (Raman et al., cited as the paper's motivating use case [31]).
    """
    if size > table_rows:
        raise ValueError("cannot select more RIDs than table rows")
    rng = random.Random(seed)
    return sorted(rng.sample(range(table_rows), size))


def generate_predicate_rid_lists(table_rows, selectivities, seed=None):
    """One RID list per WHERE-clause predicate.

    Each predicate selects ``selectivity * table_rows`` rows uniformly
    at random (independent predicates), the standard model for
    conjunctive selection via secondary indexes.
    """
    rng = random.Random(seed)
    lists = []
    for selectivity in selectivities:
        size = round(selectivity * table_rows)
        lists.append(sorted(rng.sample(range(table_rows), size)))
    return lists


# ---------------------------------------------------------------------------
# skewed selectivity modes (scale-out partition balance)
# ---------------------------------------------------------------------------

def zipf_weights(cardinality, theta=1.0):
    """Unnormalized Zipf weights ``1 / k**theta`` for ``k = 1..N``.

    ``theta = 0`` degenerates to uniform; ``theta ≈ 1`` is the classic
    web/database access skew.
    """
    if cardinality < 1:
        raise ValueError("cardinality must be positive")
    if theta < 0:
        raise ValueError("theta must be non-negative")
    return [1.0 / (rank ** theta) for rank in range(1, cardinality + 1)]


def generate_zipfian_column(rows, cardinality, theta=1.0, seed=None):
    """A column whose values follow a Zipf(theta) popularity law.

    Values are ``0 .. cardinality - 1`` with value 0 the most popular;
    seeded and deterministic.  Partitioning a table on such a column
    (hash-by-value co-locates equal values) produces the skewed shard
    balance the scale-out sweep measures.
    """
    rng = random.Random(seed)
    weights = zipf_weights(cardinality, theta)
    return rng.choices(range(cardinality), weights=weights, k=rows)


def generate_zipfian_rid_list(size, table_rows, theta=1.0, seed=None):
    """A sorted RID list biased toward low RIDs by a Zipf(theta) law.

    Sampling is without replacement via the Efraimidis–Spirakis
    exponential-key trick (each RID draws ``u ** (1 / w)`` and the
    *size* largest keys win), so the list stays strictly sorted and
    duplicate-free like every index-scan result while the low-RID end
    of the table is heavily over-represented — the clustered hot rows
    a range partitioner lands on one shard.
    """
    if size > table_rows:
        raise ValueError("cannot select more RIDs than table rows")
    rng = random.Random(seed)
    weights = zipf_weights(table_rows, theta)
    keyed = [(rng.random() ** (1.0 / weight), rid)
             for rid, weight in enumerate(weights)]
    keyed.sort(reverse=True)
    return sorted(rid for _key, rid in keyed[:size])


def _weighted_distinct_sample(rng, weighted, count):
    """*count* distinct keys from ``{key: weight}``, popularity-biased.

    Efraimidis–Spirakis without-replacement sampling (same trick as
    :func:`generate_zipfian_rid_list`): each key draws ``u ** (1/w)``
    and the *count* largest keys win.
    """
    if count <= 0:
        return []
    keyed = [(rng.random() ** (1.0 / weight), key)
             for key, weight in weighted.items()]
    keyed.sort(reverse=True)
    return [key for _sort_key, key in keyed[:count]]


def generate_delta_stream(rows, batches, columns, inserts_per_batch=64,
                          deletes_per_batch=32, theta=1.0, seed=None,
                          ghost_batches=()):
    """A seeded Z-set delta workload over a Zipfian-valued table.

    Produces ``(initial_columns, batch_specs)``: the initial table
    contents plus *batches* delta specifications of the shape
    ``{"insert": {column: values}, "delete_rids": [...]}`` that
    ``repro.db.DeltaBatch.from_spec`` consumes directly.  Shared by the
    delta benchmark and the chaos harness so both replay the same
    update distribution.

    *columns* maps column names to value cardinalities; every value is
    drawn from a Zipf(*theta*) popularity law, and deletes are biased
    toward rows holding popular values of the **first** column — the
    hot keys an update-heavy OLTP tail hammers.

    The generator mirrors :class:`repro.db.ColumnarTable` RID
    assignment exactly: batch *k*'s inserts occupy the next
    ``inserts_per_batch`` RIDs in order, including rows that batch
    indices listed in *ghost_batches* delete again within the same
    batch (insert + delete annihilate inside ``apply_delta``, yet the
    annihilated rows still consume RID space).  Delete lists therefore
    reference concrete RIDs and stay valid when replayed against a
    table seeded with *initial_columns*.
    """
    if rows < 1:
        raise ValueError("need at least one initial row")
    if not columns:
        raise ValueError("need at least one column")
    if inserts_per_batch < 0 or deletes_per_batch < 0:
        raise ValueError("batch sizes must be non-negative")
    rng = random.Random(seed)
    names = list(columns)
    weights = {name: zipf_weights(cardinality, theta)
               for name, cardinality in columns.items()}
    domains = {name: range(cardinality)
               for name, cardinality in columns.items()}
    initial = {name: rng.choices(domains[name], weights=weights[name],
                                 k=rows)
               for name in names}
    hot = names[0]
    live = {rid: weights[hot][initial[hot][rid]] for rid in range(rows)}
    next_rid = rows
    ghost_set = set(ghost_batches)
    specs = []
    for batch_index in range(batches):
        inserts = {name: rng.choices(domains[name],
                                     weights=weights[name],
                                     k=inserts_per_batch)
                   for name in names}
        new_rids = list(range(next_rid, next_rid + inserts_per_batch))
        next_rid += inserts_per_batch
        ghosts = []
        if batch_index in ghost_set and inserts_per_batch:
            ghosts = rng.sample(new_rids,
                                max(1, inserts_per_batch // 4))
        ghost_rids = set(ghosts)
        deletes = _weighted_distinct_sample(
            rng, live, min(deletes_per_batch, len(live)))
        for rid in deletes:
            del live[rid]
        for position, rid in enumerate(new_rids):
            if rid not in ghost_rids:
                live[rid] = weights[hot][inserts[hot][position]]
        spec = {"delete_rids": sorted(deletes + ghosts)}
        if inserts_per_batch:
            spec["insert"] = inserts
        specs.append(spec)
    return initial, specs


def generate_clustered_rid_list(size, table_rows, clusters=4,
                                spread=0.02, seed=None):
    """A sorted RID list concentrated around a few cluster centers.

    Models predicates correlated with physical row order (time-ordered
    inserts, append-mostly tables): RIDs gather within ``spread *
    table_rows`` of each center, so range partitions see wildly uneven
    selectivity while hash partitions stay balanced.  Seeded and
    deterministic; returns exactly *size* distinct RIDs.
    """
    if size > table_rows:
        raise ValueError("cannot select more RIDs than table rows")
    if clusters < 1:
        raise ValueError("need at least one cluster")
    rng = random.Random(seed)
    centers = sorted(rng.sample(range(table_rows),
                                min(clusters, table_rows)))
    width = max(1, int(spread * table_rows))
    chosen = set()
    stale = 0
    while len(chosen) < size:
        center = centers[rng.randrange(len(centers))]
        rid = center + rng.randint(-width, width)
        if 0 <= rid < table_rows and rid not in chosen:
            chosen.add(rid)
            stale = 0
            continue
        stale += 1
        if stale >= 4 * (2 * width + 1) * len(centers):
            # The clusters are saturated at this width; widen the net
            # rather than spinning forever when size is large relative
            # to the cluster capacity.
            width = min(table_rows, width * 2)
            stale = 0
    return sorted(chosen)
