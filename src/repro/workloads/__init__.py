"""Workload generators: sorted sets, RID lists, and sort inputs."""

from .sets import (PAPER_SET_SIZE, expected_result_size,
                   generate_predicate_rid_lists, generate_rid_list,
                   generate_set_pair)
from .scenarios import (ALL_SCENARIOS, SetAlgebraScenario,
                        except_clause, index_anding, star_filter,
                        union_clause)
from .sorting import (ORDERINGS, PAPER_SORT_SIZE, few_distinct_values,
                      nearly_sorted_values, presorted_values,
                      random_values, reverse_sorted_values)

__all__ = ["PAPER_SET_SIZE", "expected_result_size",
           "generate_predicate_rid_lists", "generate_rid_list",
           "generate_set_pair", "ORDERINGS", "PAPER_SORT_SIZE",
           "few_distinct_values", "nearly_sorted_values",
           "presorted_values", "random_values", "reverse_sorted_values",
           "ALL_SCENARIOS", "SetAlgebraScenario", "except_clause",
           "index_anding", "star_filter", "union_clause"]
