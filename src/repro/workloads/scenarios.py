"""Canned end-to-end workload scenarios.

Each scenario bundles data, an accelerated plan, and a Python oracle —
the realistic query situations the paper's introduction motivates
(index ANDing for complex WHERE clauses, UNION/DIFFERENCE clauses,
sort-based operators), packaged for examples, tests and benchmarks.
"""

import random

from .sets import generate_predicate_rid_lists


class SetAlgebraScenario:
    """A named RID-list computation with its expected result."""

    def __init__(self, name, rid_lists, plan, description=""):
        self.name = name
        self.rid_lists = rid_lists
        #: List of ``(operation, left_index, right_index)`` steps over
        #: a growing value stack: inputs are addressed 0..n-1, each
        #: step's result is appended.
        self.plan = plan
        self.description = description

    def oracle(self):
        """Evaluate the plan with Python set algebra."""
        stack = [set(rids) for rids in self.rid_lists]
        for operation, left, right in self.plan:
            if operation == "intersection":
                stack.append(stack[left] & stack[right])
            elif operation == "union":
                stack.append(stack[left] | stack[right])
            elif operation == "difference":
                stack.append(stack[left] - stack[right])
            else:
                raise ValueError("unknown operation %r" % operation)
        return sorted(stack[-1])

    def execute(self, runner):
        """Evaluate with an accelerator runner
        ``runner(operation, sorted_left, sorted_right) -> (result,
        stats)``; returns ``(result, total_cycles)``."""
        stack = [sorted(rids) for rids in self.rid_lists]
        cycles = 0
        for operation, left, right in self.plan:
            result, stats = runner(operation, stack[left], stack[right])
            stack.append(result)
            cycles += stats.cycles
        return stack[-1], cycles

    def __repr__(self):
        return "<SetAlgebraScenario %s: %d inputs, %d steps>" % (
            self.name, len(self.rid_lists), len(self.plan))


def index_anding(table_rows=20_000, selectivities=(0.2, 0.35, 0.1),
                 seed=0):
    """Conjunctive WHERE clause: AND of several index scans,
    intersected smallest-first (Raman et al., the paper's [31])."""
    rid_lists = generate_predicate_rid_lists(table_rows, selectivities,
                                             seed=seed)
    order = sorted(range(len(rid_lists)),
                   key=lambda i: len(rid_lists[i]))
    plan = []
    current = order[0]
    for nxt in order[1:]:
        plan.append(("intersection", current, nxt))
        current = len(rid_lists) + len(plan) - 1
    return SetAlgebraScenario(
        "index_anding", rid_lists, plan,
        "conjunctive predicate via smallest-first RID intersection")


def union_clause(table_rows=20_000, selectivities=(0.15, 0.12, 0.08),
                 seed=1):
    """A UNION query: results of independent selections combined."""
    rid_lists = generate_predicate_rid_lists(table_rows, selectivities,
                                             seed=seed)
    plan = [("union", 0, 1),
            ("union", len(rid_lists), 2)]
    return SetAlgebraScenario(
        "union_clause", rid_lists, plan,
        "UNION of three selection results")


def except_clause(table_rows=20_000, selectivities=(0.4, 0.15), seed=2):
    """An EXCEPT/DIFFERENCE query: qualifying rows minus an exclusion
    list."""
    rid_lists = generate_predicate_rid_lists(table_rows, selectivities,
                                             seed=seed)
    plan = [("difference", 0, 1)]
    return SetAlgebraScenario(
        "except_clause", rid_lists, plan,
        "selection minus an exclusion predicate")


def star_filter(table_rows=16_000, seed=3):
    """A wider plan mixing all three operations, as produced by a
    WHERE clause with AND/OR/NOT structure."""
    rng = random.Random(seed)
    selectivities = [rng.uniform(0.05, 0.4) for _ in range(5)]
    rid_lists = generate_predicate_rid_lists(table_rows, selectivities,
                                             seed=seed)
    plan = [
        ("intersection", 0, 1),   # -> 5
        ("union", 2, 3),          # -> 6
        ("intersection", 5, 6),   # -> 7
        ("difference", 7, 4),     # -> 8
    ]
    return SetAlgebraScenario(
        "star_filter", rid_lists, plan,
        "(p0 AND p1) AND (p2 OR p3) AND NOT p4")


ALL_SCENARIOS = (index_anding, union_clause, except_clause, star_filter)
