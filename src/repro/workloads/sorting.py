"""Sort workload generation.

The paper sorts 6500 32-bit values (the maximum that fits the local
data memories with a ping-pong buffer) and notes that "the order of the
values being sorted has no impact on the throughput of our chosen
merge-sort implementation" (Section 5.2) — the generators here provide
several orders so tests can verify exactly that invariance.
"""

import random

from ..core.common import SENTINEL

#: Sort size used in the paper's Table 2 / Table 5.
PAPER_SORT_SIZE = 6500

MAX_VALUE = SENTINEL - 1


def random_values(size, seed=None, max_value=MAX_VALUE):
    """Uniform random 32-bit values (duplicates allowed)."""
    rng = random.Random(seed)
    return [rng.randrange(0, max_value + 1) for _ in range(size)]


def presorted_values(size, seed=None):
    return sorted(random_values(size, seed))


def reverse_sorted_values(size, seed=None):
    return sorted(random_values(size, seed), reverse=True)


def nearly_sorted_values(size, swaps=None, seed=None):
    """Sorted data with a few random transpositions."""
    rng = random.Random(seed)
    values = sorted(random_values(size, seed))
    if swaps is None:
        swaps = max(1, size // 20)
    for _ in range(swaps):
        i = rng.randrange(size)
        j = rng.randrange(size)
        values[i], values[j] = values[j], values[i]
    return values


def few_distinct_values(size, distinct=16, seed=None):
    """Heavy-duplicate data (e.g. a low-cardinality sort key)."""
    rng = random.Random(seed)
    keys = rng.sample(range(1, MAX_VALUE), distinct)
    return [rng.choice(keys) for _ in range(size)]


ORDERINGS = {
    "random": random_values,
    "sorted": presorted_values,
    "reverse": reverse_sorted_values,
    "nearly_sorted": nearly_sorted_values,
    "few_distinct": few_distinct_values,
}
