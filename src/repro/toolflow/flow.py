"""The instruction-set development tool flow (paper Figure 4).

The paper's methodology iterates: profile the application on the
current processor, find hotspots, extend the instruction set, generate
a new processor + compiler, verify, repeat until the improvement is
exhausted; then synthesize and check area/power/timing budgets.

:class:`DevelopmentFlow` drives exactly that loop over our simulator
and synthesis model, recording one :class:`IterationReport` per round.
The walkthrough example (``examples/toolflow_walkthrough.py``) uses it
to retrace the paper's path from the scalar baseline to the EIS.
"""

from ..cpu.profiler import CycleProfiler
from ..synth.synthesis import synthesize
from ..synth.technology import TSMC_65NM_LP


class IterationReport:
    """Outcome of one profile/extend/verify round."""

    def __init__(self, label, cycles, hotspots, verified,
                 synthesis=None):
        self.label = label
        self.cycles = cycles
        self.hotspots = hotspots
        self.verified = verified
        self.synthesis = synthesis

    def speedup_over(self, other):
        if self.cycles == 0:
            return float("inf")
        return other.cycles / self.cycles

    def __repr__(self):
        return "<IterationReport %s: %d cycles, verified=%s>" % (
            self.label, self.cycles, self.verified)


class DevelopmentFlow:
    """Drives the Figure 4 loop for one application.

    Parameters
    ----------
    application:
        Callable ``f(processor) -> (outputs, RunResult)`` staging and
        running the workload (e.g. a kernel runner with bound inputs).
    reference:
        Expected outputs; each iteration's verification step compares
        against it (the paper: "we use a dedicated unit test for each
        newly introduced instruction ... comparing output results with
        pre-specified values").
    """

    def __init__(self, application, reference):
        self.application = application
        self.reference = reference
        self.iterations = []

    def profile(self, processor, program_source, entry, regs):
        """Cycle-accurate profiling step: run and attribute cycles."""
        profiler = CycleProfiler()
        processor.load_program(program_source)
        processor.run_profiled(profiler, entry=entry, regs=regs)
        return profiler

    def iterate(self, label, processor, technology=TSMC_65NM_LP,
                synthesize_now=False):
        """One round: run the application, verify, optionally cost it."""
        outputs, run_result = self.application(processor)
        verified = outputs == self.reference
        synthesis = None
        if synthesize_now:
            synthesis = synthesize(processor.config,
                                   processor.extensions, technology)
        report = IterationReport(label, run_result.cycles,
                                 hotspots=None, verified=verified,
                                 synthesis=synthesis)
        self.iterations.append(report)
        return report

    def improvement_exhausted(self, threshold=1.05):
        """True when the last round gained less than *threshold*x."""
        if len(self.iterations) < 2:
            return False
        last, previous = self.iterations[-1], self.iterations[-2]
        if last.cycles == 0:
            return True
        return previous.cycles / last.cycles < threshold

    def summary(self):
        lines = ["%-28s %14s %10s %9s" % ("iteration", "cycles",
                                          "speedup", "verified")]
        baseline = self.iterations[0] if self.iterations else None
        for report in self.iterations:
            speedup = baseline.cycles / report.cycles \
                if baseline and report.cycles else 0.0
            lines.append("%-28s %14d %9.1fx %9s" % (
                report.label, report.cycles, speedup,
                "yes" if report.verified else "NO"))
        return "\n".join(lines)
