"""Hotspot analysis helpers on top of the cycle profiler.

The paper's tool flow starts with identifying "frequently executed and
computationally intensive parts" (Section 3.1).  These helpers classify
a profile into the categories a designer acts on: core loops worth an
instruction-set extension versus cold setup code.
"""


def classify_regions(profiler, program, hot_share=0.10):
    """Split label-delimited regions into hot and cold.

    A region is *hot* when it consumes at least *hot_share* of the
    run's cycles — those are the instruction-merging candidates.
    """
    hotspots = profiler.hotspots(program, top=len(program.labels) + 1)
    hot = [h for h in hotspots if h.share >= hot_share]
    cold = [h for h in hotspots if h.share < hot_share]
    return hot, cold


def extension_candidates(profiler, program, hot_share=0.10):
    """Hot regions ranked by cycles-per-visit.

    High cycles-per-visit inside a hot region indicates a repeated
    instruction sequence worth merging into an application-specific
    instruction (Section 2.2's instruction-merging criterion).
    """
    hot, _cold = classify_regions(profiler, program, hot_share)
    ranked = sorted(hot, key=lambda h: (h.cycles / max(h.visits, 1)),
                    reverse=True)
    return [
        {
            "region": hotspot.region,
            "share": hotspot.share,
            "cycles_per_visit": hotspot.cycles / max(hotspot.visits, 1),
        }
        for hotspot in ranked
    ]
