"""Verification flow: per-instruction unit tests and equivalence checks.

Paper Section 3.1: "the verification is performed, e.g., by applying
unit tests, regression tests or equivalence checks.  In our work, we
use a dedicated unit test for each newly introduced instruction.  The
unit tests compare output results with pre-specified values —
especially considering corner cases."

This module provides the harness those checks run on:

* :func:`check_instruction` — drive one TIE operation through the
  intrinsics layer against expected outputs,
* :func:`equivalence_check` — the "HDL verification" stand-in: encode
  the assembled program to binary, decode it back, and compare the
  instruction stream (catching encoder/decoder mismatches the same way
  RTL-vs-model equivalence checking would).
"""

from ..isa.assembler import Bundle, BundleTail
from ..isa.disasm import decode_bundle, decode_word
from ..isa.encoding import FLIX_OPCODE, opcode_of
from ..tie.intrinsics import Intrinsics


class VerificationFailure(AssertionError):
    """An instruction or program failed verification."""


def check_instruction(processor, name, cases):
    """Run pre-specified input/output cases against one TIE operation.

    *cases* is an iterable of ``(inputs, expected)`` pairs; inputs are
    passed to the operation's intrinsic in operand order.
    """
    intrinsics = Intrinsics(processor)
    call = getattr(intrinsics, name)
    failures = []
    for index, (inputs, expected) in enumerate(cases):
        actual = call(*inputs)
        if actual != expected:
            failures.append("case %d: %r -> %r, expected %r"
                            % (index, inputs, actual, expected))
    if failures:
        raise VerificationFailure(
            "%s failed %d case(s):\n%s" % (name, len(failures),
                                           "\n".join(failures)))
    return len(list(cases))


def equivalence_check(processor, program):
    """Encode/decode round trip of a whole program.

    Returns the number of checked issue items; raises
    :class:`VerificationFailure` on the first mismatch.
    """
    words = program.encode()
    checked = 0
    index = 0
    for item in program.items:
        if isinstance(item, BundleTail):
            continue
        word = words_at(words, index)
        if isinstance(item, Bundle):
            if opcode_of(word) != FLIX_OPCODE:
                raise VerificationFailure(
                    "word %d: expected a FLIX header" % index)
            slots = decode_bundle(processor.flix_formats, word,
                                  words_at(words, index + 1), index)
            expected = [(slot.spec.name, tuple(slot.operands))
                        for slot in item.slots]
            actual = [(spec.name, tuple(operands))
                      for spec, operands in slots]
            if expected != actual:
                raise VerificationFailure(
                    "bundle at word %d decodes to %r, expected %r"
                    % (index, actual, expected))
        else:
            spec, operands, _size = decode_word(processor.isa, word,
                                                index)
            if spec.name != item.spec.name \
                    or tuple(operands) != tuple(item.operands):
                raise VerificationFailure(
                    "word %d decodes to %s %r, expected %s %r"
                    % (index, spec.name, operands, item.spec.name,
                       item.operands))
        checked += 1
        index += item.size
    return checked


def words_at(words, index):
    """Fetch an encoded word by *instruction-memory* index.

    ``Program.encode`` emits one word per 32-bit slot, in order, so the
    word list index equals the instruction-memory word index.
    """
    return words[index]
