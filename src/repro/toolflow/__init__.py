"""The instruction-set development tool flow of the paper's Figure 4."""

from .flow import DevelopmentFlow, IterationReport
from .hotspots import classify_regions, extension_candidates
from .verification import (VerificationFailure, check_instruction,
                           equivalence_check)

__all__ = ["DevelopmentFlow", "IterationReport", "classify_regions",
           "extension_candidates", "VerificationFailure",
           "check_instruction", "equivalence_check"]
