"""Crash-isolated work supervisor for experiment fan-out.

Long simulation sweeps die in practice for reasons that have nothing
to do with the experiment that was running: a worker process is
OOM-killed, a single experiment wedges, a transient failure hits one
task out of twenty.  The plain ``ProcessPoolExecutor`` pattern loses
*every* result in all of these cases.  This supervisor keeps the pool
but adds the guardrails the sweeps need:

- **Crash isolation.**  Worker exceptions are caught *inside* the
  worker and come back as data; one failing task never aborts its
  siblings, whose results are kept.
- **Timeouts.**  A per-task budget enforced cooperatively in the
  worker via ``SIGALRM`` (the simulator is pure Python, so the signal
  always gets through); a wedged task returns a ``timeout`` outcome
  instead of wedging the sweep.
- **Retry with backoff.**  Failed/timed-out tasks are retried up to a
  budget, with exponential backoff between attempts.
- **Pool-breakage recovery.**  If a worker dies hard (segfault,
  ``SIGKILL``), ``BrokenProcessPool`` poisons every in-flight future.
  The supervisor respawns the pool and requeues the affected tasks,
  counting a strike against each — an innocent sibling gets re-run,
  while the poison task exhausts its strike budget and is reported
  ``failed`` instead of breaking the pool forever.

Outcomes are returned in input order with per-task status
(``ok`` / ``retried`` / ``failed`` / ``timeout``) and a
``supervisor.*`` metrics snapshot (docs/OBSERVABILITY.md).

Task callables (and their arguments) must be picklable — plain
module-level functions, as usual for process pools.
"""

import collections
import concurrent.futures
import signal
import time
import traceback
import warnings
from concurrent.futures.process import BrokenProcessPool

from .telemetry.registry import MetricsRegistry

#: Statuses a task can end in.  ``retried`` means it ultimately
#: succeeded but needed more than one attempt.
STATUSES = ("ok", "retried", "failed", "timeout")


def _alarm_supported():
    """Can this platform arm cooperative per-task timeouts?"""
    return hasattr(signal, "SIGALRM")


_TIMEOUT_WARNED = False


def _warn_timeout_unsupported():
    """One-time warning: a timeout was requested but cannot be armed."""
    global _TIMEOUT_WARNED
    if _TIMEOUT_WARNED:
        return
    _TIMEOUT_WARNED = True
    warnings.warn(
        "per-task timeouts need signal.SIGALRM, which this platform "
        "lacks; tasks run without a timeout (reported as "
        "timeout_unsupported in the supervise counts)",
        RuntimeWarning, stacklevel=4)


class Task:
    """One unit of work: ``fn(*args, **kwargs)`` in a worker process."""

    __slots__ = ("key", "fn", "args", "kwargs")

    def __init__(self, key, fn, args=(), kwargs=None):
        self.key = key
        self.fn = fn
        self.args = tuple(args)
        self.kwargs = dict(kwargs or {})

    def __repr__(self):
        return "<Task %r>" % (self.key,)


class TaskOutcome:
    """Terminal state of one task after supervision."""

    __slots__ = ("key", "status", "value", "error", "attempts", "elapsed")

    def __init__(self, key):
        self.key = key
        self.status = None
        self.value = None
        #: Short error text for failed/timeout outcomes (the last
        #: attempt's), with the worker traceback appended.
        self.error = None
        self.attempts = 0
        self.elapsed = 0.0

    @property
    def ok(self):
        return self.status in ("ok", "retried")

    def __repr__(self):
        return "<TaskOutcome %r %s>" % (self.key, self.status)


class SuperviseReport:
    """Everything one :func:`supervise` call produced."""

    def __init__(self, outcomes, snapshot, timeout_unsupported=0):
        #: :class:`TaskOutcome` list in task-input order.
        self.outcomes = outcomes
        #: ``supervisor.*`` metrics snapshot of this run.
        self.snapshot = snapshot
        #: Tasks that requested a timeout on a platform without
        #: ``SIGALRM`` — they ran unguarded instead of silently
        #: pretending a budget was enforced.
        self.timeout_unsupported = timeout_unsupported

    @property
    def ok(self):
        return all(outcome.ok for outcome in self.outcomes)

    def counts(self):
        tally = {status: 0 for status in STATUSES}
        for outcome in self.outcomes:
            tally[outcome.status] += 1
        tally["timeout_unsupported"] = self.timeout_unsupported
        return tally

    def status_table(self):
        """Per-task status lines for terminal reporting."""
        lines = []
        for outcome in self.outcomes:
            note = ""
            if outcome.attempts > 1:
                note = " (%d attempts)" % outcome.attempts
            if outcome.error and not outcome.ok:
                first = outcome.error.strip().splitlines()[0]
                note += " — %s" % first
            lines.append("%-24s %-8s%s"
                         % (outcome.key, outcome.status, note))
        return lines


class _WorkerTimeout(Exception):
    """Raised inside a worker by the SIGALRM handler."""


def _on_alarm(signum, frame):
    raise _WorkerTimeout()


def _guarded_call(fn, args, kwargs, timeout):
    """Worker entry point: run *fn* and report the outcome as data.

    Never lets an exception cross the process boundary (only a hard
    worker death does, which the supervisor handles as pool breakage).
    """
    started = time.monotonic()
    armed = bool(timeout) and hasattr(signal, "SIGALRM")
    if armed:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        value = fn(*args, **kwargs)
        return ("ok", value, time.monotonic() - started)
    except _WorkerTimeout:
        return ("timeout", "timed out after %.1fs" % timeout,
                time.monotonic() - started)
    except Exception as exc:
        detail = "%s: %s\n%s" % (type(exc).__name__, exc,
                                 traceback.format_exc())
        return ("error", detail, time.monotonic() - started)
    finally:
        if armed:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)


class _Record:
    __slots__ = ("task", "outcome")

    def __init__(self, task):
        self.task = task
        self.outcome = TaskOutcome(task.key)


class SupervisorPool:
    """A reusable supervised worker pool.

    :func:`supervise` spins a fresh ``ProcessPoolExecutor`` up and down
    per call, which is the right shape for one-shot experiment sweeps
    but wasteful for callers that dispatch work every batch (the
    sharded query engine scatters shard tasks per serving batch).  A
    ``SupervisorPool`` keeps the worker processes alive across
    :meth:`run` calls — same guardrails, same per-call
    :class:`SuperviseReport`, amortized pool spawn cost.

    The pool is respawned transparently when a worker dies hard
    (``BrokenProcessPool``); :meth:`shutdown` (or use as a context
    manager) releases the workers.
    """

    def __init__(self, jobs=2):
        self.jobs = max(1, jobs)
        self._pool = None

    # -- pool lifecycle ------------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.jobs)
        return self._pool

    def _respawn_pool(self):
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=self.jobs)
        return self._pool

    def shutdown(self):
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.shutdown()
        return False

    def __repr__(self):
        state = "idle" if self._pool is None else "live"
        return "<SupervisorPool jobs=%d %s>" % (self.jobs, state)

    # -- supervised execution ------------------------------------------------

    def run(self, tasks, timeout=None, retries=1, backoff=0.5,
            log=None):
        """Run *tasks* across the pool with guardrails.

        Parameters
        ----------
        timeout: per-attempt budget in seconds (``None`` = unlimited).
        retries: extra attempts granted after a failed/timed-out/killed
            attempt (0 = fail fast).
        backoff: base delay before a retry; doubles per prior attempt.
        log: optional callable for progress lines.

        Returns a :class:`SuperviseReport`; never raises for task-level
        failures.
        """
        registry = MetricsRegistry()
        scope = registry.scope("supervisor")
        counters = {name: scope.counter(name)
                    for name in ("submitted", "ok", "retried", "failed",
                                 "timeout", "requeued", "pool_breaks",
                                 "timeout_unsupported")}

        records = [_Record(task) for task in tasks]
        timeout_unsupported = 0
        if timeout and not _alarm_supported():
            # Silently disarming would report tasks as guarded when
            # they are not; warn once and surface it in the counts.
            _warn_timeout_unsupported()
            timeout_unsupported = len(records)
            counters["timeout_unsupported"].value += len(records)
            timeout = None
        ready = collections.deque(records)
        delayed = []  # (due, record), kept sorted by due time
        in_flight = {}
        jobs = self.jobs
        pool = self._ensure_pool()

        def say(message):
            if log is not None:
                log(message)

        def settle(record, status, error=None):
            record.outcome.status = status
            record.outcome.error = error
            counters[status].value += 1

        def strike(record, error):
            """One failed attempt: requeue within budget, else settle."""
            outcome = record.outcome
            if outcome.attempts <= retries:
                delay = backoff * (2 ** (outcome.attempts - 1))
                delayed.append((time.monotonic() + delay, record))
                delayed.sort(key=lambda item: item[0])
                counters["requeued"].value += 1
                say("retrying %r after %.2fs (attempt %d of %d)"
                    % (record.task.key, delay, outcome.attempts + 1,
                       retries + 1))
            else:
                status = "timeout" \
                    if error and error.startswith("timed out") \
                    else "failed"
                settle(record, status, error)
                say("giving up on %r: %s"
                    % (record.task.key, error.strip().splitlines()[0]))

        while ready or delayed or in_flight:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                ready.append(delayed.pop(0)[1])
            while ready and len(in_flight) < 2 * jobs:
                record = ready.popleft()
                record.outcome.attempts += 1
                counters["submitted"].value += 1
                future = pool.submit(_guarded_call, record.task.fn,
                                     record.task.args,
                                     record.task.kwargs, timeout)
                in_flight[future] = record
            if not in_flight:
                # Nothing running; sleep until the next retry is due.
                time.sleep(max(0.0, delayed[0][0] - time.monotonic()))
                continue
            wait_timeout = None
            if delayed:
                wait_timeout = max(0.0,
                                   delayed[0][0] - time.monotonic())
            done, _ = concurrent.futures.wait(
                in_flight, timeout=wait_timeout,
                return_when=concurrent.futures.FIRST_COMPLETED)
            broken = False
            for future in done:
                record = in_flight.pop(future)
                try:
                    kind, payload, elapsed = future.result()
                except BrokenProcessPool:
                    broken = True
                    strike(record, "worker process died")
                    continue
                record.outcome.elapsed += elapsed
                if kind == "ok":
                    record.outcome.value = payload
                    settle(record,
                           "ok" if record.outcome.attempts == 1
                           else "retried")
                else:
                    strike(record, payload)
            if broken:
                # Remaining in-flight futures are poisoned too: strike
                # and requeue them, then respawn the pool.
                counters["pool_breaks"].value += 1
                say("worker pool broke; respawning")
                for _future, record in list(in_flight.items()):
                    strike(record, "worker pool broke")
                in_flight.clear()
                pool = self._respawn_pool()

        return SuperviseReport(
            [record.outcome for record in records],
            registry.snapshot(),
            timeout_unsupported=timeout_unsupported)


def supervise(tasks, jobs=2, timeout=None, retries=1, backoff=0.5,
              log=None):
    """Run *tasks* across *jobs* worker processes with guardrails.

    One-shot form of :class:`SupervisorPool`: the pool is spawned for
    this call and shut down afterwards.  See :meth:`SupervisorPool.run`
    for the parameters and the :class:`SuperviseReport` contract.
    """
    with SupervisorPool(jobs) as pool:
        return pool.run(tasks, timeout=timeout, retries=retries,
                        backoff=backoff, log=log)
