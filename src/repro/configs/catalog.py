"""The processor configurations evaluated in the paper (Section 5.1).

===============  =====================================================
Name             Description
===============  =====================================================
108Mini          Tensilica Diamond 108Mini-class controller: 32-bit
                 buses, no caches, no local store — data lives in
                 system memory with wait states; hardware divider.
DBA_1LSU         The DBA base: 64 KB local data store behind one LSU,
                 64-bit instruction / 128-bit data buses, no divider.
DBA_2LSU         DBA_1LSU plus a second LSU with its own 32 KB local
                 memory (the compiler cannot exploit it without the
                 EIS; synthesized for area/power only).
DBA_1LSU_EIS     DBA_1LSU plus the database instruction-set extension.
DBA_2LSU_EIS     DBA_2LSU plus the extension; each set streams through
                 its own LSU.
===============  =====================================================

Partial loading is a property of the extension datapath, selected when
building the processor (``build_processor(name, partial_load=...)``).
"""

from ..core.extension import build_db_extension
from ..cpu.config import CoreConfig
from ..cpu.prefetch import DataPrefetcher
from ..cpu.pipeline import PipelineModel
from ..cpu.processor import Processor

#: Configuration order used by Table 2.
TABLE2_ROWS = (
    ("108Mini", None),
    ("DBA_1LSU", None),
    ("DBA_1LSU_EIS", False),
    ("DBA_2LSU_EIS", False),
    ("DBA_1LSU_EIS", True),
    ("DBA_2LSU_EIS", True),
)

#: All configuration names.
CONFIG_NAMES = ("108Mini", "DBA_1LSU", "DBA_2LSU", "DBA_1LSU_EIS",
                "DBA_2LSU_EIS")


def _mini_pipeline():
    """The 108Mini fetches from system memory: redirects are costly."""
    return PipelineModel(branch_taken_penalty=3, indirect_penalty=3,
                         load_use_delay=1, ifetch_stall_per_redirect=2)


def _dba_pipeline():
    """DBA cores run from single-cycle local memories."""
    return PipelineModel(branch_taken_penalty=3, indirect_penalty=2,
                         load_use_delay=1)


def core_config(name):
    """A fresh :class:`CoreConfig` for a catalog name."""
    if name == "108Mini":
        return CoreConfig(
            "108Mini",
            pipeline=_mini_pipeline(),
            num_lsus=1, lsu_port_bits=32,
            imem_kb=0, dmem0_kb=0,
            sysmem_kb=512, sysmem_wait_states=3,
            has_mul=True, has_div=True,
            description="Diamond 108Mini-class controller baseline")
    if name == "DBA_1LSU":
        return CoreConfig(
            "DBA_1LSU",
            pipeline=_dba_pipeline(),
            num_lsus=1, lsu_port_bits=128,
            imem_kb=32, dmem0_kb=64,
            has_mul=True, has_div=False,
            description="DBA base core with 64KB local store, one LSU")
    if name == "DBA_2LSU":
        return CoreConfig(
            "DBA_2LSU",
            pipeline=_dba_pipeline(),
            num_lsus=2, lsu_port_bits=128,
            imem_kb=32, dmem0_kb=32, dmem1_kb=32,
            has_mul=True, has_div=False,
            description="DBA base core with two LSUs, 32KB each")
    if name == "DBA_1LSU_EIS":
        config = core_config("DBA_1LSU")
        config.name = "DBA_1LSU_EIS"
        config.description = "DBA_1LSU plus the database ISA extension"
        return config
    if name == "DBA_2LSU_EIS":
        config = core_config("DBA_2LSU")
        config.name = "DBA_2LSU_EIS"
        config.description = "DBA_2LSU plus the database ISA extension"
        return config
    raise KeyError("unknown configuration %r" % (name,))


def has_eis(name):
    return name.endswith("_EIS")


def build_processor(name, partial_load=True, prefetcher=False,
                    sim_headroom_kb=None, compression=False,
                    interconnect=None):
    """Instantiate a processor for a catalog configuration.

    *partial_load* selects the LD_P refill policy of the extension
    datapath and is ignored for configurations without the EIS.
    *prefetcher* attaches the DMA data prefetcher (paper Figure 6),
    needed for streaming workloads larger than the local store;
    *interconnect* optionally supplies a custom NoC model for it.
    *compression* additionally attaches the D8 RID-list decompression
    extension (:mod:`repro.core.compression`).
    *sim_headroom_kb* overrides the simulation-only local-memory
    headroom (see :class:`repro.cpu.config.CoreConfig`) for streaming
    experiments whose result stream exceeds the default.
    """
    config = core_config(name)
    if sim_headroom_kb is not None:
        config.sim_headroom_kb = sim_headroom_kb
    extensions = []
    if has_eis(name):
        extensions.append(build_db_extension(
            num_lsus=config.num_lsus, partial_load=partial_load))
    if compression:
        from ..core.compression import build_compression_extension
        extensions.append(build_compression_extension())
    engine = None
    if prefetcher:
        engine = DataPrefetcher(interconnect)
        extensions.append(engine)
    processor = Processor(config, extensions)
    processor.prefetcher = engine
    return processor


def row_label(name, partial_load):
    """Human-readable row label in the style of the paper's Table 2."""
    if partial_load is None:
        return name
    return "%s %s partial load" % (name, "w/" if partial_load else "w/o")
