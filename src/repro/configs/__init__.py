"""Processor configuration catalog (paper Section 5.1)."""

from .catalog import (CONFIG_NAMES, TABLE2_ROWS, build_processor,
                      core_config, has_eis, row_label)

__all__ = ["CONFIG_NAMES", "TABLE2_ROWS", "build_processor",
           "core_config", "has_eis", "row_label"]
