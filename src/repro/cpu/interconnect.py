"""On-chip interconnection network model.

The DBA processors have no direct path from the core to the network;
all off-core traffic flows through the data prefetcher (paper Figure 6)
using burst transfers "typically in the order of several KB" which
improve the observed bandwidth.  The network is modeled with a fixed
per-transfer setup latency plus a per-cycle payload bandwidth; bursts
amortize the setup cost exactly as described in Section 3.2.
"""


class Interconnect:
    """Latency/bandwidth model of the network-on-chip plus DRAM path."""

    def __init__(self, setup_latency=60, bytes_per_cycle=16):
        self.setup_latency = setup_latency
        self.bytes_per_cycle = bytes_per_cycle
        self.transfers = 0
        self.bytes_moved = 0

    def transfer_cycles(self, nbytes):
        """Cycles one burst of *nbytes* occupies the network."""
        self.transfers += 1
        self.bytes_moved += nbytes
        payload = -(-nbytes // self.bytes_per_cycle)  # ceil division
        return self.setup_latency + payload

    def effective_bandwidth(self, nbytes):
        """Bytes per cycle achieved by bursts of a given size."""
        payload = -(-nbytes // self.bytes_per_cycle)
        return nbytes / (self.setup_latency + payload)

    def reset_stats(self):
        self.transfers = 0
        self.bytes_moved = 0
