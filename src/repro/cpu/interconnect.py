"""On-chip interconnection network model.

The DBA processors have no direct path from the core to the network;
all off-core traffic flows through the data prefetcher (paper Figure 6)
using burst transfers "typically in the order of several KB" which
improve the observed bandwidth.  The network is modeled with a fixed
per-transfer setup latency plus a per-cycle payload bandwidth; bursts
amortize the setup cost exactly as described in Section 3.2.

Transfer tallies are telemetry instruments; when the prefetcher that
owns this network attaches to a processor they are registered as
``noc.*`` (including a burst-size histogram, since burst sizing is the
whole point of the Section 3.2 bandwidth argument).
"""

from ..telemetry.registry import Counter, Histogram


class Interconnect:
    """Latency/bandwidth model of the network-on-chip plus DRAM path."""

    def __init__(self, setup_latency=60, bytes_per_cycle=16):
        self.setup_latency = setup_latency
        self.bytes_per_cycle = bytes_per_cycle
        self._transfers = Counter("transfers")
        self._bytes_moved = Counter("bytes_moved")
        self._burst_bytes = Histogram("burst_bytes")

    # -- statistics ----------------------------------------------------------

    @property
    def transfers(self):
        return self._transfers.value

    @property
    def bytes_moved(self):
        return self._bytes_moved.value

    @property
    def burst_bytes(self):
        """Summary dict of observed burst sizes (count/min/max/mean)."""
        return self._burst_bytes.read()

    def register_metrics(self, registry, prefix):
        """Adopt this network's instruments under *prefix*."""
        registry.register(prefix + ".transfers", self._transfers)
        registry.register(prefix + ".bytes_moved", self._bytes_moved)
        registry.register(prefix + ".burst_bytes", self._burst_bytes)

    def reset_stats(self):
        self._transfers.reset()
        self._bytes_moved.reset()
        self._burst_bytes.reset()

    def snapshot_state(self):
        """Copy of the transfer tallies, for run rollback."""
        h = self._burst_bytes
        return (self._transfers.value, self._bytes_moved.value,
                (h.count, h.total, h.min, h.max))

    def restore_state(self, snap):
        transfers, bytes_moved, hist = snap
        self._transfers.value = transfers
        self._bytes_moved.value = bytes_moved
        h = self._burst_bytes
        h.count, h.total, h.min, h.max = hist

    # -- timing model --------------------------------------------------------

    def transfer_cycles(self, nbytes):
        """Cycles one burst of *nbytes* occupies the network."""
        self._transfers.value += 1
        self._bytes_moved.value += nbytes
        self._burst_bytes.observe(nbytes)
        payload = -(-nbytes // self.bytes_per_cycle)  # ceil division
        return self.setup_latency + payload

    def effective_bandwidth(self, nbytes):
        """Bytes per cycle achieved by bursts of a given size."""
        payload = -(-nbytes // self.bytes_per_cycle)
        return nbytes / (self.setup_latency + payload)
