"""Data memories of the processor model.

The paper's processor (Figure 6) is a Harvard machine: a local
instruction memory plus one local data memory per load-store unit, all
single-cycle, and an off-chip main memory reachable only through the
data prefetcher (DBA configurations) or through caches (108Mini).

Addresses are byte addresses; memories are word-organized (32-bit) with
support for the 128-bit wide accesses used by the EIS load/store
instructions.  Word and wide accesses must be naturally aligned —
misalignment raises :class:`MemoryFault`, which has caught real kernel
bugs during development and is exactly what the RTL would do.
"""

from ..telemetry.registry import BoundCounter
from .errors import MemoryFault

#: Standard address map shared by every processor configuration so the
#: same kernel source runs on all of them.
DMEM0_BASE = 0x0000_0000
DMEM1_BASE = 0x0100_0000
MAIN_BASE = 0x8000_0000

M32 = 0xFFFFFFFF


class Memory:
    """A word-organized RAM region.

    *wait_states* is the number of extra cycles an access costs beyond
    the pipelined single-cycle access (0 for local store, >0 for
    uncached system memory).
    """

    #: Undo-journal entries after which rollback support is abandoned
    #: for the current run (the journal would rival the memory itself).
    UNDO_LIMIT = 1 << 22

    def __init__(self, name, base, size_bytes, wait_states=0):
        if size_bytes % 4:
            raise MemoryFault("memory size must be a multiple of 4 bytes")
        self.name = name
        self.base = base
        self.size_bytes = size_bytes
        self.limit = base + size_bytes
        self.wait_states = wait_states
        self.words = [0] * (size_bytes // 4)
        self.read_accesses = 0
        self.write_accesses = 0
        #: Fault-injection hook (:mod:`repro.faults`): when armed,
        #: called as ``hook(region, addr, kind)`` before every
        #: simulated access.  ``None`` (the default) costs one
        #: comparison per access.
        self.fault_hook = None
        #: Write-undo journal for fast-path fallback / paranoid replay;
        #: ``None`` (the default) costs one comparison per store.
        self._undo = None
        self._undo_overflow = False

    # -- statistics ----------------------------------------------------------

    def register_metrics(self, registry, prefix):
        """Register counter views over this region's access tallies."""
        registry.register(prefix + ".reads",
                          BoundCounter(self, "read_accesses"))
        registry.register(prefix + ".writes",
                          BoundCounter(self, "write_accesses"))

    def reset_stats(self):
        self.read_accesses = 0
        self.write_accesses = 0

    def contains(self, addr):
        return self.base <= addr < self.limit

    # -- write-undo journal (fast-path fallback, paranoid replay) ------------

    def begin_undo(self):
        """Start journaling stores so the run can be rolled back."""
        self._undo = []
        self._undo_overflow = False

    def undo_ok(self):
        """Whether a rollback would restore the pre-run contents."""
        return self._undo is not None and not self._undo_overflow

    def rollback_undo(self):
        """Undo every journaled store (newest first) and disarm."""
        undo = self._undo
        if undo is None:
            return
        for index, old in reversed(undo):
            if isinstance(old, list):
                self.words[index:index + len(old)] = old
            else:
                self.words[index] = old
        self._undo = None

    def discard_undo(self):
        self._undo = None

    def _journal(self, index, old):
        undo = self._undo
        undo.append((index, old))
        if len(undo) > self.UNDO_LIMIT:
            self._undo = None
            self._undo_overflow = True

    def _word_index(self, addr):
        if not self.base <= addr < self.limit:
            raise MemoryFault(
                "%s: address 0x%08x outside [0x%08x, 0x%08x)"
                % (self.name, addr, self.base, self.limit))
        return (addr - self.base) >> 2

    # -- scalar access ------------------------------------------------------

    def load(self, addr, size=4, signed=False):
        """Load 1, 2 or 4 bytes (little-endian within the word)."""
        self.read_accesses += 1
        if self.fault_hook is not None:
            self.fault_hook(self, addr, "read")
        if size == 4:
            if addr & 3:
                raise MemoryFault("%s: misaligned 32-bit load at 0x%08x"
                                  % (self.name, addr))
            value = self.words[self._word_index(addr)]
        elif size == 2:
            if addr & 1:
                raise MemoryFault("%s: misaligned 16-bit load at 0x%08x"
                                  % (self.name, addr))
            word = self.words[self._word_index(addr & ~3)]
            value = (word >> ((addr & 2) * 8)) & 0xFFFF
        elif size == 1:
            word = self.words[self._word_index(addr & ~3)]
            value = (word >> ((addr & 3) * 8)) & 0xFF
        else:
            raise MemoryFault("unsupported access size %r" % (size,))
        if signed:
            sign_bit = 1 << (size * 8 - 1)
            if value & sign_bit:
                value -= sign_bit << 1
            value &= M32
        return value

    def store(self, addr, value, size=4):
        self.write_accesses += 1
        if self.fault_hook is not None:
            self.fault_hook(self, addr, "write")
        if size == 4:
            if addr & 3:
                raise MemoryFault("%s: misaligned 32-bit store at 0x%08x"
                                  % (self.name, addr))
            index = self._word_index(addr)
            if self._undo is not None:
                self._journal(index, self.words[index])
            self.words[index] = value & M32
            return
        index = self._word_index(addr & ~3)
        word = self.words[index]
        if self._undo is not None:
            self._journal(index, word)
        if size == 2:
            if addr & 1:
                raise MemoryFault("%s: misaligned 16-bit store at 0x%08x"
                                  % (self.name, addr))
            shift = (addr & 2) * 8
            word = (word & ~(0xFFFF << shift)) | ((value & 0xFFFF) << shift)
        elif size == 1:
            shift = (addr & 3) * 8
            word = (word & ~(0xFF << shift)) | ((value & 0xFF) << shift)
        else:
            raise MemoryFault("unsupported access size %r" % (size,))
        self.words[index] = word

    # -- wide (128-bit) access for the EIS instructions ---------------------

    def load_block(self, addr, nwords):
        """Load *nwords* consecutive 32-bit words (EIS 128-bit loads)."""
        self.read_accesses += 1
        if self.fault_hook is not None:
            self.fault_hook(self, addr, "read")
        if addr & 3:
            raise MemoryFault("%s: misaligned wide load at 0x%08x"
                              % (self.name, addr))
        index = self._word_index(addr)
        end = index + nwords
        if end > len(self.words):
            raise MemoryFault("%s: wide load at 0x%08x runs off the end"
                              % (self.name, addr))
        return self.words[index:end]

    def store_block(self, addr, values):
        self.write_accesses += 1
        if self.fault_hook is not None:
            self.fault_hook(self, addr, "write")
        if addr & 3:
            raise MemoryFault("%s: misaligned wide store at 0x%08x"
                              % (self.name, addr))
        index = self._word_index(addr)
        end = index + len(values)
        if end > len(self.words):
            raise MemoryFault("%s: wide store at 0x%08x runs off the end"
                              % (self.name, addr))
        if self._undo is not None:
            self._journal(index, self.words[index:end])
        self.words[index:end] = [v & M32 for v in values]

    # -- bulk host access (test benches, workload setup) ---------------------

    def write_words(self, addr, values):
        """Host-side bulk write; does not count as a simulated access."""
        if addr & 3:
            raise MemoryFault("bulk write must be word aligned")
        index = self._word_index(addr)
        if index + len(values) > len(self.words):
            raise MemoryFault("bulk write overruns %s" % self.name)
        if self._undo is not None:
            # the DMA prefetcher moves data through this path mid-run
            self._journal(index, self.words[index:index + len(values)])
        self.words[index:index + len(values)] = [v & M32 for v in values]

    def read_words(self, addr, count):
        """Host-side bulk read; does not count as a simulated access."""
        if addr & 3:
            raise MemoryFault("bulk read must be word aligned")
        index = self._word_index(addr)
        if index + count > len(self.words):
            raise MemoryFault("bulk read overruns %s" % self.name)
        return list(self.words[index:index + count])


class MemoryMap:
    """Routes byte addresses to the responsible memory region."""

    def __init__(self, regions):
        self.regions = sorted(regions, key=lambda m: m.base)
        for first, second in zip(self.regions, self.regions[1:]):
            if first.limit > second.base:
                raise MemoryFault("overlapping regions %s and %s"
                                  % (first.name, second.name))

    def region_for(self, addr):
        for region in self.regions:
            if region.base <= addr < region.limit:
                return region
        raise MemoryFault("unmapped address 0x%08x" % addr)

    def __iter__(self):
        return iter(self.regions)
