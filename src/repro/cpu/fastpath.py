"""Superblock-compiled fast path for the cycle-level simulator.

The reference interpreter in :meth:`repro.cpu.processor.Processor.run`
pays per-instruction dispatch, attribute lookups and scoreboard
bookkeeping for every simulated step.  This module removes that
overhead for plain (untraced, unprofiled) runs: at ``load_program()``
time the :class:`~repro.cpu.processor._Step` array is partitioned into
straight-line regions — superblocks ending at control instructions and
at branch targets, discovered with the same decode-time transfer model
as :mod:`repro.analysis.cfg` — and one specialized Python function is
``exec``-generated per region.  Each function inlines the
issue/interlock/``mem_extra``/``rdelay`` timing math of the reference
loop with the register scoreboard held in local variables, so a block
of N instructions costs one Python call instead of N trips through the
generic dispatch loop.

Equivalence contract
--------------------
For every run that completes (reaches ``halt``), the fast path produces
bit- and cycle-identical results to the reference interpreter: the same
``cycles``, ``instructions``, final register file, taken-redirect and
interlock-stall counts, and LSU/memory/cache statistics (the generated
code calls the very same :class:`~repro.cpu.lsu.LoadStoreUnit` objects).
Runs that fault (``MemoryFault``) or exceed ``max_cycles`` raise the
same exception types, but the cycle limit is only checked at block
boundaries and the processor's scratch attributes (``pc``/``cycle``/...)
may hold stale values at the point of the raise; the reference
interpreter is authoritative for failing runs.

Programs containing register-indirect jumps (``jalr``/``ret``) have
statically unknown transfer targets and are not compiled — they always
use the reference interpreter, as do traced and profiled runs and any
run started with ``REPRO_NO_FASTPATH=1`` in the environment.
"""

import os

from ..isa.assembler import Bundle, BundleTail
from .watchdog import trip as _watchdog_trip

M32 = 0xFFFFFFFF

#: Base-ISA operations whose semantics the code generator inlines.
#: Everything else (TIE operations, FLIX bundles, ``rur``/``wur``,
#: divides) goes through the original executor with the full
#: core-attribute protocol.
_ALU_OPS = frozenset((
    "add", "sub", "and", "or", "xor", "sll", "srl", "sra", "slt", "sltu",
    "min", "max", "minu", "maxu", "mul", "mulh",
    "addi", "andi", "ori", "xori", "slli", "srli", "srai", "slti", "sltui",
    "movi", "movhi", "nop",
))
_LOAD_OPS = {"l32i": (4, False), "l16ui": (2, False),
             "l16si": (2, True), "l8ui": (1, False)}
_STORE_OPS = {"s32i": (4, ""), "s16i": (2, " & 65535"), "s8i": (1, " & 255")}
_BRANCH_CONDS = {
    "beq": ("==", False), "bne": ("!=", False),
    "bltu": ("<", False), "bgeu": (">=", False),
    "blt": ("<", True), "bge": (">=", True),
}


def fastpath_disabled():
    """True when ``REPRO_NO_FASTPATH`` requests the reference loop."""
    return os.environ.get("REPRO_NO_FASTPATH", "") not in ("", "0")


class FastProgram:
    """Compiled superblocks of one program on one processor.

    ``blocks[word_index]`` holds the generated entry function for each
    block leader (``None`` elsewhere); ``source`` keeps the generated
    Python text for inspection and debugging.
    """

    __slots__ = ("blocks", "source")

    def __init__(self, blocks, source):
        self.blocks = blocks
        self.source = source

    def accepts(self, entry):
        """Whether *entry* is a block leader the trampoline can start at."""
        return 0 <= entry < len(self.blocks) \
            and self.blocks[entry] is not None

    @property
    def block_count(self):
        return sum(1 for fn in self.blocks if fn is not None)


def compile_fastpath(processor, program, steps):
    """Compile *program* into a :class:`FastProgram`, or ``None``.

    Returns ``None`` when the program is ineligible (indirect jumps,
    non-standard register file) — the caller then keeps the reference
    interpreter.
    """
    from ..analysis.cfg import item_transfers

    items = program.items
    n = len(items)
    if n == 0:
        return None
    if getattr(processor.regs, "_mask", None) != M32:
        return None

    transfers_at = {}
    enders = set()
    for index, item in enumerate(items):
        if isinstance(item, BundleTail):
            continue
        transfers = item_transfers(item)
        if any(t.kind == "indirect" for t in transfers):
            return None  # jalr/ret: targets unknown before run time
        if transfers:
            transfers_at[index] = transfers
            # Conditional branches keep executing inline on the
            # not-taken path (superblock side exit); only unconditional
            # transfers force a region boundary.
            if any(t.kind in ("jump", "call", "halt") for t in transfers):
                enders.add(index)

    leaders = {0}
    for target in program.labels.values():
        if 0 <= target < n:
            leaders.add(target)
    for transfers in transfers_at.values():
        for transfer in transfers:
            target = transfer.target
            if target is not None and 0 <= target < n:
                leaders.add(target)

    plans = []
    current = None
    for index in range(n):
        if steps[index] is None:
            continue
        if current is None or index in leaders:
            current = [index]
            plans.append(current)
        else:
            current.append(index)
        if index in enders:
            current = None

    dual = processor._dmem1_base < processor._dmem1_limit
    lines = []
    for block in plans:
        lines.extend(_gen_block(block, items, steps, transfers_at, enders,
                                dual, processor._dmem1_base,
                                processor._dmem1_limit))
        lines.append("")
    source = "\n".join(lines)
    namespace = {
        "EX": [s.execute if s is not None else None for s in steps],
        "OPS": [s.operands if s is not None else None for s in steps],
        "LSU0": processor.lsus[0],
        "LSU1": processor.lsus[1] if len(processor.lsus) > 1 else None,
        "WD": _watchdog_trip,
    }
    code = compile(source, "<fastpath:%s>" % program.source_name, "exec")
    exec(code, namespace)
    blocks = [None] * n
    for block in plans:
        blocks[block[0]] = namespace["_b%d" % block[0]]
    return FastProgram(blocks, source)


# ---------------------------------------------------------------------------
# code generation
# ---------------------------------------------------------------------------

def _inline_category(item, step):
    """How to compile one step: an inline category or ``None`` (fallback)."""
    if isinstance(item, Bundle):
        return None
    spec = item.spec
    if spec.extension is not None or spec.extra_cycles:
        return None
    name = spec.name
    if name in _ALU_OPS:
        return "alu"
    if name in _LOAD_OPS:
        return "load"
    if name in _STORE_OPS:
        return "store"
    if name in _BRANCH_CONDS or name in ("beqz", "bnez"):
        return "branch"
    if name in ("j", "jal"):
        return "jump"
    if name == "halt":
        return "halt"
    return None


def _gen_block(indexes, items, steps, transfers_at, enders, dual, d1base,
               d1limit):
    leader = indexes[0]
    fallbacks = []
    categories = {}
    uses_mem = False
    for index in indexes:
        step = steps[index]
        category = _inline_category(items[index], step)
        categories[index] = category
        if category is None:
            fallbacks.append(index)
        elif category in ("load", "store"):
            uses_mem = True

    params = ["core", "rv", "reg_ready", "cycle", "issued", "taken",
              "interlock", "max_cycles", "WD=WD"]
    if uses_mem:
        params.append("lsu0=LSU0")
        if dual:
            params.append("lsu1=LSU1")
    for index in fallbacks:
        params.append("ex%d=EX[%d]" % (index, index))
        params.append("ops%d=OPS[%d]" % (index, index))

    out = ["def _b%d(%s):" % (leader, ", ".join(params))]

    def w(line, indent=1):
        out.append("    " * indent + line)

    def block_exit(indent, pc_expr, count):
        w("issued += %d" % count, indent)
        # unified watchdog: cycle fuel + no-progress backstop, checked
        # at superblock granularity (docs/ROBUSTNESS.md)
        w("if cycle > max_cycles or issued > max_cycles:", indent)
        w("    WD(max_cycles, %s, cycle, issued)" % pc_expr, indent)
        w("return %s, cycle, issued, taken, interlock" % pc_expr, indent)

    def issue_seq(step, indent):
        w("issue = cycle", indent)
        reads = tuple(dict.fromkeys(step.reads))
        for reg in reads:
            w("if reg_ready[%d] > issue:" % reg, indent)
            w("    issue = reg_ready[%d]" % reg, indent)
        if reads:
            # the per-read accumulation of the reference loop telescopes
            # to the total issue slip
            w("if issue > cycle:", indent)
            w("    interlock += issue - cycle", indent)

    def signed_temp(var, reg, indent):
        w("%s = rv[%d]" % (var, reg), indent)
        w("if %s >= 2147483648:" % var, indent)
        w("    %s -= 4294967296" % var, indent)

    def rdelay_updates(step, indent):
        if step.rdelay:
            for reg in step.writes:
                w("reg_ready[%d] = cycle + %d" % (reg, step.rdelay), indent)

    def addr_line(rs, imm, indent):
        if imm:
            w("_a = rv[%d] + %d" % (rs, imm), indent)
        else:
            w("_a = rv[%d]" % rs, indent)
        if dual:
            w("_l = lsu1 if %d <= _a < %d else lsu0" % (d1base, d1limit),
              indent)
            return "_l"
        return "lsu0"

    count = 0
    for index in indexes:
        step = steps[index]
        item = items[index]
        category = categories[index]
        fall = index + step.size
        count += 1
        w("# %d: %s" % (index, step.name))
        issue_seq(step, 1)

        if category == "alu":
            _emit_alu(w, item, signed_temp)
            w("cycle = issue + 1")
            rdelay_updates(step, 1)
        elif category == "load":
            rd, rs, imm = item.operands
            size, signed = _LOAD_OPS[item.spec.name]
            lsu = addr_line(rs, imm, 1)
            w("_v, _c = %s.load(_a, %d, %s)" % (lsu, size, signed))
            if signed:
                w("rv[%d] = _v & 4294967295" % rd)
            else:
                w("rv[%d] = _v" % rd)
            w("cycle = issue + 1 + _c")
            rdelay_updates(step, 1)
        elif category == "store":
            rd, rs, imm = item.operands
            size, mask = _STORE_OPS[item.spec.name]
            lsu = addr_line(rs, imm, 1)
            w("_c = %s.store(_a, rv[%d]%s, %d)" % (lsu, rd, mask, size))
            w("cycle = issue + 1 + _c")
        elif category == "branch":
            cond = _branch_condition(w, item, signed_temp)
            target = item.operands[-1]
            w("if %s:" % cond)
            if step.redirect:
                w("    cycle = issue + %d" % (1 + step.redirect))
            else:
                w("    cycle = issue + 1")
            w("    taken += 1")
            block_exit(2, "%d" % target, count)
            w("cycle = issue + 1")
        elif category == "jump":
            target = item.operands[0]
            if item.spec.name == "jal":
                w("rv[0] = %d" % (index + 1))
            penalized = step.redirect and target != fall
            if penalized:
                w("cycle = issue + %d" % (1 + step.redirect))
                w("taken += 1")
            else:
                w("cycle = issue + 1")
            block_exit(1, "%d" % target, count)
        elif category == "halt":
            w("core.pc = %d" % index)
            w("core.npc = %d" % fall)
            w("core.cycle = issue")
            w("core.branch_taken = False")
            w("core.mem_extra = 0")
            w("core.halted = True")
            w("cycle = issue + 1")
            block_exit(1, "%d" % fall, count)
        else:  # fallback: full core-attribute protocol around the executor
            w("core.pc = %d" % index)
            w("core.npc = %d" % fall)
            w("core.cycle = issue")
            w("core.branch_taken = False")
            w("core.mem_extra = 0")
            w("ex%d(core, ops%d)" % (index, index))
            if step.extra_cycles:
                w("cycle = issue + %d + core.mem_extra"
                  % (1 + step.extra_cycles))
            else:
                w("cycle = issue + 1 + core.mem_extra")
            if step.redirect:
                w("if core.branch_taken or core.npc != %d:" % fall)
                w("    cycle += %d" % step.redirect)
                w("    taken += 1")
            else:
                w("if core.branch_taken:")
                w("    taken += 1")
            rdelay_updates(step, 1)
            if index in enders:
                block_exit(1, "core.npc", count)
            else:
                # side exit: a diverted transfer (taken branch slot,
                # or any executor rewriting npc) leaves the region
                w("if core.npc != %d:" % fall)
                block_exit(2, "core.npc", count)

    last = indexes[-1]
    if last not in enders:
        # straight-line fallthrough into the next leader (or off the end,
        # where the trampoline faults exactly like the reference loop)
        block_exit(1, "%d" % (last + steps[last].size), count)
    return out


def _emit_alu(w, item, signed_temp):
    """Inline semantics of one whitelisted ALU-class instruction."""
    name = item.spec.name
    ops = item.operands
    if name == "nop":
        return
    if name in ("movi", "movhi"):
        rd, _rs, imm = ops
        value = imm & M32 if name == "movi" else (imm & 0xFFFF) << 16
        w("rv[%d] = %d" % (rd, value))
        return
    if item.spec.fmt == "R":
        rd, rs, rt = ops
        if name in ("slt", "min", "max", "mulh", "sra"):
            signed_temp("_s", rs, 1)
            if name != "sra":
                signed_temp("_t", rt, 1)
        if name == "add":
            w("rv[%d] = (rv[%d] + rv[%d]) & 4294967295" % (rd, rs, rt))
        elif name == "sub":
            w("rv[%d] = (rv[%d] - rv[%d]) & 4294967295" % (rd, rs, rt))
        elif name == "and":
            w("rv[%d] = rv[%d] & rv[%d]" % (rd, rs, rt))
        elif name == "or":
            w("rv[%d] = rv[%d] | rv[%d]" % (rd, rs, rt))
        elif name == "xor":
            w("rv[%d] = rv[%d] ^ rv[%d]" % (rd, rs, rt))
        elif name == "sll":
            w("rv[%d] = (rv[%d] << (rv[%d] & 31)) & 4294967295"
              % (rd, rs, rt))
        elif name == "srl":
            w("rv[%d] = rv[%d] >> (rv[%d] & 31)" % (rd, rs, rt))
        elif name == "sra":
            w("rv[%d] = (_s >> (rv[%d] & 31)) & 4294967295" % (rd, rt))
        elif name == "slt":
            w("rv[%d] = 1 if _s < _t else 0" % rd)
        elif name == "sltu":
            w("rv[%d] = 1 if rv[%d] < rv[%d] else 0" % (rd, rs, rt))
        elif name == "min":
            w("rv[%d] = (_s if _s < _t else _t) & 4294967295" % rd)
        elif name == "max":
            w("rv[%d] = (_s if _s > _t else _t) & 4294967295" % rd)
        elif name == "minu":
            w("_x = rv[%d]" % rs)
            w("_y = rv[%d]" % rt)
            w("rv[%d] = _x if _x < _y else _y" % rd)
        elif name == "maxu":
            w("_x = rv[%d]" % rs)
            w("_y = rv[%d]" % rt)
            w("rv[%d] = _x if _x > _y else _y" % rd)
        elif name == "mul":
            w("rv[%d] = (rv[%d] * rv[%d]) & 4294967295" % (rd, rs, rt))
        elif name == "mulh":
            w("rv[%d] = ((_s * _t) >> 32) & 4294967295" % rd)
        else:
            raise AssertionError("unhandled R-format op %s" % name)
        return
    rd, rs, imm = ops
    if name in ("srai", "slti"):
        signed_temp("_s", rs, 1)
    if name == "addi":
        w("rv[%d] = (rv[%d] + %d) & 4294967295" % (rd, rs, imm))
    elif name == "andi":
        w("rv[%d] = rv[%d] & %d" % (rd, rs, imm & M32))
    elif name == "ori":
        w("rv[%d] = rv[%d] | %d" % (rd, rs, imm & 0xFFFF))
    elif name == "xori":
        w("rv[%d] = rv[%d] ^ %d" % (rd, rs, imm & 0xFFFF))
    elif name == "slli":
        w("rv[%d] = (rv[%d] << %d) & 4294967295" % (rd, rs, imm & 31))
    elif name == "srli":
        w("rv[%d] = rv[%d] >> %d" % (rd, rs, imm & 31))
    elif name == "srai":
        w("rv[%d] = (_s >> %d) & 4294967295" % (rd, imm & 31))
    elif name == "slti":
        w("rv[%d] = 1 if _s < %d else 0" % (rd, imm))
    elif name == "sltui":
        w("rv[%d] = 1 if rv[%d] < %d else 0" % (rd, rs, imm & M32))
    else:
        raise AssertionError("unhandled immediate op %s" % name)


def _branch_condition(w, item, signed_temp):
    """Emit temps (if needed) and return the branch condition expression."""
    name = item.spec.name
    if name == "beqz":
        return "rv[%d] == 0" % item.operands[0]
    if name == "bnez":
        return "rv[%d] != 0" % item.operands[0]
    rs, rt, _target = item.operands
    op, signed = _BRANCH_CONDS[name]
    if signed:
        signed_temp("_s", rs, 1)
        signed_temp("_t", rt, 1)
        return "_s %s _t" % op
    return "rv[%d] %s rv[%d]" % (rs, op, rt)
