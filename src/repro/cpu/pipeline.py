"""In-order pipeline timing model.

The simulator executes instructions functionally and charges cycles via
this model (scoreboard style), which mirrors how the paper obtains its
performance numbers from a cycle-accurate ISS:

* one issue slot per cycle (an entire FLIX bundle is one issue),
* register read-after-write interlocks (load-use and mul-use bubbles),
* flush penalties for taken control transfers,
* memory wait states and cache penalties supplied by the LSU,
* multi-cycle divide.

Unconditional direct jumps are resolved in the fetch stage (branch
folding), so they cost their single issue cycle only.  That matches the
paper's accounting in Section 4 where a 32x unrolled EIS loop costs
2.03 cycles per iteration: 64 bundle issues plus a single one-cycle
back jump.
"""


class PipelineModel:
    """Timing parameters of one processor configuration."""

    def __init__(self,
                 stages=5,
                 branch_taken_penalty=2,
                 branch_nottaken_penalty=0,
                 jump_penalty=0,
                 call_penalty=0,
                 indirect_penalty=2,
                 load_use_delay=1,
                 mul_use_delay=1,
                 div_cycles=13,
                 ifetch_stall_per_redirect=0):
        self.stages = stages
        self.branch_taken_penalty = branch_taken_penalty
        self.branch_nottaken_penalty = branch_nottaken_penalty
        self.jump_penalty = jump_penalty
        self.call_penalty = call_penalty
        self.indirect_penalty = indirect_penalty
        self.load_use_delay = load_use_delay
        self.mul_use_delay = mul_use_delay
        self.div_cycles = div_cycles
        #: Extra fetch cycles after any control-flow redirect when the
        #: core fetches from slow system memory (108Mini without a local
        #: instruction memory).
        self.ifetch_stall_per_redirect = ifetch_stall_per_redirect

    def redirect_penalty(self, kind):
        """Flush cost of a *taken* control transfer of the given kind."""
        if kind == "branch":
            base = self.branch_taken_penalty
        elif kind == "jump":
            base = self.jump_penalty
        elif kind == "call":
            base = self.call_penalty
        else:  # indirect (jalr / ret)
            base = self.indirect_penalty
        return base + self.ifetch_stall_per_redirect


# Register read/write sets per base-ISA format.  TIE operations carry
# explicit read/write position tuples on their spec instead.

def register_uses(spec, operands):
    """Return ``(reads, writes)`` register-index tuples for one item."""
    reads = getattr(spec, "reads_positions", None)
    if reads is not None:
        writes = spec.writes_positions
        return (tuple(operands[p] for p in reads),
                tuple(operands[p] for p in writes))
    fmt = spec.fmt
    kind = spec.kind
    if fmt == "R":
        return (operands[1], operands[2]), (operands[0],)
    if fmt in ("I", "IU"):
        if kind == "store":
            return (operands[0], operands[1]), ()
        if spec.name in ("movi", "movhi"):
            return (), (operands[0],)
        if spec.name == "jalr":
            return (operands[1],), (operands[0],)
        return (operands[1],), (operands[0],)
    if fmt == "B":
        return (operands[0], operands[1]), ()
    if fmt == "BZ":
        return (operands[0],), ()
    if fmt == "J":
        return ((), (0,)) if kind == "call" else ((), ())
    if fmt == "U":
        if spec.name == "wur":
            return (operands[0],), ()
        return (), (operands[0],)
    if fmt == "N":
        if kind == "indirect":  # ret reads the link register
            return (0,), ()
        return (), ()
    raise ValueError("unknown format %r" % fmt)


def result_delay(model, kind):
    """Extra cycles before a producing instruction's result is usable."""
    if kind == "load":
        return model.load_use_delay
    if kind == "mul":
        return model.mul_use_delay
    return 0
