"""Cycle-level simulator of the customizable processor.

The Python counterpart of the cycle-accurate instruction-set simulator
that the Tensilica tool flow generates for each processor configuration
(paper Figure 4): in-order pipeline timing, load-store units, local
memories, caches, the DMA data prefetcher and the on-chip interconnect.
"""

from .cache import Cache, CacheConfig
from .config import CoreConfig
from .errors import (ConfigurationError, ExecutionLimitExceeded, MemoryFault,
                     SimulationError)
from .fastpath import FastProgram, compile_fastpath, fastpath_disabled
from .interconnect import Interconnect
from .lsu import LoadStoreUnit
from .memory import DMEM0_BASE, DMEM1_BASE, MAIN_BASE, Memory, MemoryMap
from .pipeline import PipelineModel
from .prefetch import DataPrefetcher
from .processor import Processor, RunResult
from .profiler import CycleProfiler, Hotspot
from .trace import PipelineTracer

__all__ = [
    "Cache", "CacheConfig", "CoreConfig",
    "ConfigurationError", "ExecutionLimitExceeded", "MemoryFault",
    "SimulationError",
    "FastProgram", "compile_fastpath", "fastpath_disabled",
    "Interconnect", "LoadStoreUnit",
    "DMEM0_BASE", "DMEM1_BASE", "MAIN_BASE", "Memory", "MemoryMap",
    "PipelineModel", "DataPrefetcher", "Processor", "RunResult",
    "CycleProfiler", "Hotspot", "PipelineTracer",
]
