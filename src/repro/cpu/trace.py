"""Pipeline issue tracing.

Records ``(issue_cycle, pc, name)`` per issued item so the interleaving
of the EIS instructions can be inspected — the executable counterpart
of the paper's Figure 10 pipeline snippet.
"""


class PipelineTracer:
    """Collects the first *limit* issue events of a run."""

    def __init__(self, limit=200):
        self.limit = limit
        self.events = []

    def record(self, cycle, pc, name):
        if len(self.events) < self.limit:
            self.events.append((cycle, pc, name))

    def render(self, start=0, count=40):
        """Format events as a cycle-annotated listing."""
        lines = ["%8s %6s  %s" % ("cycle", "pc", "instruction")]
        for cycle, pc, name in self.events[start:start + count]:
            lines.append("%8d %6d  %s" % (cycle, pc, name))
        return "\n".join(lines)

    def issue_gaps(self):
        """Cycle distance between consecutive issues (stall analysis)."""
        gaps = []
        for (c0, _p0, _n0), (c1, _p1, _n1) in zip(self.events,
                                                  self.events[1:]):
            gaps.append(c1 - c0)
        return gaps

    def loop_cycles_per_iteration(self, marker):
        """Average cycles between issues of items named *marker*.

        Useful for checking kernel loop schedules, e.g. that the EIS
        intersection core loop reaches the paper's ~2 cycles per
        iteration once unrolled (Section 4).
        """
        marks = [cycle for cycle, _pc, name in self.events
                 if name == marker]
        if len(marks) < 2:
            return None
        return (marks[-1] - marks[0]) / (len(marks) - 1)
