"""Pipeline event tracing.

Records typed span events per issued item so the interleaving of the
EIS instructions can be inspected — the executable counterpart of the
paper's Figure 10 pipeline snippet.  Each event is a tuple::

    (cycle, pc, name, duration, kind)

``kind`` is one of :data:`EVENT_KINDS`: ``issue`` (an instruction
occupying the issue slot), ``stall`` (interlock wait before an issue),
``mem`` (extra memory cycles charged to an access) and ``dma`` (a
prefetcher burst in flight).  Beyond the fixed-width :meth:`render`
listing, traces export as Chrome trace-event JSON
(:meth:`to_chrome_trace` / :meth:`save_chrome_trace`) loadable in
``chrome://tracing`` and Perfetto, with one swim lane per event kind.
"""

from ..telemetry.tracer import ChromeTraceBuilder

#: Event kinds in swim-lane display order.
EVENT_KINDS = ("issue", "stall", "mem", "dma")

_LANES = {kind: index for index, kind in enumerate(EVENT_KINDS)}
_LANE_NAMES = {
    "issue": "pipeline issue",
    "stall": "interlock stalls",
    "mem": "memory wait",
    "dma": "dma bursts",
}


class PipelineTracer:
    """Collects the first *limit* events of a run.

    Events past *limit* are counted in :attr:`dropped` rather than
    silently vanishing; :meth:`render` and the Chrome export surface
    the count so a truncated trace is never mistaken for a whole run.
    """

    def __init__(self, limit=200):
        self.limit = limit
        self.events = []
        self.dropped = 0

    # -- recording (called from the processor issue loop) --------------------

    def _append(self, event):
        if len(self.events) < self.limit:
            self.events.append(event)
        else:
            self.dropped += 1

    def record(self, cycle, pc, name, duration=1):
        """One instruction occupying the issue slot at *cycle*."""
        self._append((cycle, pc, name, duration, "issue"))

    def stall(self, cycle, pc, duration):
        """Interlock wait of *duration* cycles before the issue."""
        self._append((cycle, pc, "interlock", duration, "stall"))

    def memory(self, cycle, pc, name, duration):
        """Extra memory cycles charged to the access at *pc*."""
        self._append((cycle, pc, name, duration, "mem"))

    def dma(self, cycle, name, duration):
        """A prefetcher burst occupying the network."""
        self._append((cycle, -1, name, duration, "dma"))

    # -- analysis ------------------------------------------------------------

    def issue_events(self):
        return [event for event in self.events if event[4] == "issue"]

    def render(self, start=0, count=40):
        """Format events as a cycle-annotated listing."""
        lines = ["%8s %6s %5s  %s" % ("cycle", "pc", "kind", "instruction")]
        for cycle, pc, name, duration, kind in \
                self.events[start:start + count]:
            where = "%6d" % pc if pc >= 0 else "     -"
            suffix = " (+%d)" % duration if duration > 1 else ""
            lines.append("%8d %s %5s  %s%s" % (cycle, where, kind, name,
                                               suffix))
        if self.dropped:
            lines.append("... %d events dropped past limit=%d"
                         % (self.dropped, self.limit))
        return "\n".join(lines)

    def issue_gaps(self):
        """Cycle distance between consecutive issues (stall analysis)."""
        issues = self.issue_events()
        gaps = []
        for (c0, *_rest0), (c1, *_rest1) in zip(issues, issues[1:]):
            gaps.append(c1 - c0)
        return gaps

    def loop_cycles_per_iteration(self, marker):
        """Average cycles between issues of items named *marker*.

        Useful for checking kernel loop schedules, e.g. that the EIS
        intersection core loop reaches the paper's ~2 cycles per
        iteration once unrolled (Section 4).
        """
        marks = [cycle for cycle, _pc, name, _dur, kind in self.events
                 if kind == "issue" and name == marker]
        if len(marks) < 2:
            return None
        return (marks[-1] - marks[0]) / (len(marks) - 1)

    # -- Chrome trace-event export -------------------------------------------

    def to_chrome_trace(self):
        """The run as a Chrome trace-event object (1 cycle = 1 us)."""
        builder = ChromeTraceBuilder()
        for kind in EVENT_KINDS:
            builder.thread(_LANES[kind], _LANE_NAMES[kind],
                           sort_index=_LANES[kind])
        for cycle, pc, name, duration, kind in self.events:
            args = {"pc": pc} if pc >= 0 else None
            builder.complete(_LANES[kind], name, cycle, duration,
                             category=kind, args=args)
        if self.dropped:
            builder.instant(_LANES["issue"],
                            "%d events dropped" % self.dropped,
                            self.events[-1][0] if self.events else 0)
        return builder.to_dict()

    def save_chrome_trace(self, path):
        """Write the Chrome trace JSON for Perfetto / chrome://tracing."""
        import json
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle)
        return path
