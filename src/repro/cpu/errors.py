"""Exceptions raised by the cycle-level processor simulator."""


class SimulationError(Exception):
    """Base class for simulator failures."""


class MemoryFault(SimulationError):
    """Access outside a mapped region, or a misaligned access."""


class ExecutionLimitExceeded(SimulationError):
    """The program did not halt within the allowed cycle budget."""


class ConfigurationError(SimulationError):
    """A processor configuration is internally inconsistent."""
