"""Exceptions raised by the cycle-level processor simulator."""


class SimulationError(Exception):
    """Base class for simulator failures."""


class MemoryFault(SimulationError):
    """Access outside a mapped region, or a misaligned access."""


class ExecutionLimitExceeded(SimulationError):
    """The program did not halt within the watchdog's budget.

    Raised by the :class:`~repro.cpu.watchdog.Watchdog` for both
    flavors of runaway run: cycle fuel exhausted, and the no-progress
    backstop (instructions issuing without the cycle count keeping up,
    which only happens when timing accounting is corrupted).  Carries
    ``pc``, ``cycle`` and ``max_cycles`` attributes when raised by the
    watchdog (``None`` when unpickled across a process boundary).
    """

    def __init__(self, message, pc=None, cycle=None, max_cycles=None):
        super().__init__(message)
        self.pc = pc
        self.cycle = cycle
        self.max_cycles = max_cycles


class DivergenceError(SimulationError):
    """Paranoid mode found the fast path and interpreter disagreeing.

    ``REPRO_PARANOID=1`` shadow-runs every compiled fast-path run
    against the reference interpreter; the first (pc, cycle, registers)
    superblock-boundary triple that differs raises this error (see
    docs/ROBUSTNESS.md for the exact contract).
    """


class ConfigurationError(SimulationError):
    """A processor configuration is internally inconsistent."""
