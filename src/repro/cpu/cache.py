"""Set-associative cache timing model.

Only the 108Mini baseline uses caches; the DBA processors replace them
with software-managed local stores (Section 3.2: "In contrast to
caches, no cache-misses occur and the cache logic can be omitted").

The cache is a pure *timing* model: data always reads/writes through to
the backing memory so functional state stays coherent, while the tag
store decides how many stall cycles each access costs.  Write-back with
write-allocate; evicting a dirty line pays the write-back penalty.
"""

from ..telemetry.registry import BoundCounter
from .errors import ConfigurationError


class CacheConfig:
    """Geometry and penalties of one cache."""

    def __init__(self, name, size_bytes, ways, line_bytes, miss_penalty,
                 writeback_penalty=None):
        if size_bytes % (ways * line_bytes):
            raise ConfigurationError(
                "%s: size %d not divisible into %d ways of %dB lines"
                % (name, size_bytes, ways, line_bytes))
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.miss_penalty = miss_penalty
        self.writeback_penalty = (miss_penalty if writeback_penalty is None
                                  else writeback_penalty)
        self.sets = size_bytes // (ways * line_bytes)

    def __repr__(self):
        return "<CacheConfig %s %dB %d-way %dB lines>" % (
            self.name, self.size_bytes, self.ways, self.line_bytes)


class Cache:
    """LRU set-associative cache with hit/miss statistics."""

    def __init__(self, config):
        self.config = config
        # Per set: list of (tag, dirty) ordered most-recently-used first.
        self._sets = [[] for _ in range(config.sets)]
        self._offset_bits = (config.line_bytes - 1).bit_length()
        self._set_mask = config.sets - 1
        if config.sets & self._set_mask and config.sets != 1:
            raise ConfigurationError("%s: set count must be a power of two"
                                     % config.name)
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    # -- statistics ----------------------------------------------------------

    def register_metrics(self, registry, prefix):
        """Register counter views over this cache's tallies."""
        for attr in ("hits", "misses", "writebacks"):
            registry.register("%s.%s" % (prefix, attr),
                              BoundCounter(self, attr))

    def access(self, addr, is_write):
        """Record one access; return the stall cycles it costs."""
        line = addr >> self._offset_bits
        set_index = line & self._set_mask
        tag = line >> (self._set_mask.bit_length())
        ways = self._sets[set_index]
        for position, (way_tag, dirty) in enumerate(ways):
            if way_tag == tag:
                self.hits += 1
                if position:
                    del ways[position]
                    ways.insert(0, (tag, dirty or is_write))
                elif is_write and not dirty:
                    ways[0] = (tag, True)
                return 0
        self.misses += 1
        penalty = self.config.miss_penalty
        if len(ways) >= self.config.ways:
            _evicted_tag, evicted_dirty = ways.pop()
            if evicted_dirty:
                self.writebacks += 1
                penalty += self.config.writeback_penalty
        ways.insert(0, (tag, is_write))
        return penalty

    @property
    def accesses(self):
        return self.hits + self.misses

    def hit_rate(self):
        total = self.accesses
        return self.hits / total if total else 1.0

    def reset(self):
        """Invalidate every line and zero the statistics."""
        for ways in self._sets:
            ways.clear()
        self.reset_stats()

    def reset_stats(self):
        self.hits = 0
        self.misses = 0
        self.writebacks = 0
