"""Watchdog: unified runaway-run guardrails for the simulator.

The reproduction's numbers come from long cycle-accurate simulations,
so a kernel that never halts must fail *loudly and identically* on
every execution path instead of wedging the harness.  Before this
module, the cycle-budget check lived as three separately-worded ad-hoc
``max_cycles`` comparisons (the reference interpreter, the profiler
loop and the generated fast-path blocks); the watchdog centralizes the
policy and the message so campaign tooling can classify hangs by
exception type alone.

Two guardrails:

``cycle fuel``
    The classic ``max_cycles`` budget: the simulated cycle counter may
    not exceed the fuel.  The reference interpreter and profiler check
    after every instruction; the compiled fast path checks at
    superblock boundaries (so it can overshoot by at most one block —
    see docs/PERFORMANCE.md's equivalence contract).

``no-progress``
    A correctly-accounted run always satisfies ``instructions <=
    cycles`` (every issue costs at least one cycle), so the instruction
    count is bounded by the same fuel.  If timing state is corrupted —
    a fault-injection campaign spiking ``mem_extra`` negative, a buggy
    extension rewriting ``core.cycle`` — the cycle counter can stall
    while instructions keep issuing, and cycle fuel alone would never
    trip.  The watchdog therefore also trips when the *instruction*
    count exceeds the fuel.

Both flavors raise :class:`~repro.cpu.errors.ExecutionLimitExceeded`
with the same message format from every loop, carrying ``pc``,
``cycle`` and ``max_cycles`` attributes for the fault-campaign outcome
classifier.
"""

from .errors import ExecutionLimitExceeded

#: Default cycle fuel of :meth:`repro.cpu.processor.Processor.run`.
DEFAULT_MAX_CYCLES = 200_000_000


def trip(max_cycles, pc, cycle, issued):
    """Raise the unified watchdog error for an exhausted budget.

    Called from the hot loops (and the generated fast-path code) only
    after the inline ``cycle > max_cycles or issued > max_cycles``
    comparison fired, so the cost in the non-tripping case is one
    comparison.
    """
    if cycle > max_cycles:
        raise ExecutionLimitExceeded(
            "watchdog: exceeded %d cycles at pc=%d" % (max_cycles, pc),
            pc=pc, cycle=cycle, max_cycles=max_cycles)
    raise ExecutionLimitExceeded(
        "watchdog: no progress — %d instructions issued within %d "
        "cycles at pc=%d (timing accounting corrupted?)"
        % (issued, cycle, pc),
        pc=pc, cycle=cycle, max_cycles=max_cycles)


class Watchdog:
    """Cycle fuel plus no-progress detection as a reusable policy.

    The processor's run loops inline the comparison against
    :attr:`max_cycles` for speed and call :func:`trip` on failure;
    campaign/supervisor code uses the object form (:meth:`check`, or
    :meth:`fuel_for` to derive fuel from a reference run).
    """

    __slots__ = ("max_cycles",)

    #: Fuel granted per reference cycle by :meth:`fuel_for`.
    HANG_MARGIN = 8
    #: Fuel floor of :meth:`fuel_for`, so tiny reference runs still
    #: leave room for fault-lengthened control flow.
    MIN_FUEL = 50_000

    def __init__(self, max_cycles=DEFAULT_MAX_CYCLES):
        self.max_cycles = max_cycles

    @classmethod
    def fuel_for(cls, reference_cycles):
        """Cycle fuel for a run expected to take *reference_cycles*."""
        return max(cls.MIN_FUEL, cls.HANG_MARGIN * reference_cycles)

    def check(self, pc, cycle, issued):
        """Raise :class:`ExecutionLimitExceeded` if a budget is blown."""
        if cycle > self.max_cycles or issued > self.max_cycles:
            trip(self.max_cycles, pc, cycle, issued)

    def __repr__(self):
        return "<Watchdog fuel=%d>" % self.max_cycles
