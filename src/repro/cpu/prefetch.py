"""Data prefetcher: DMA controller plus programmable FSM.

The paper's processor has no cache; instead a data prefetcher — a
direct-memory-access controller steered by a programmable finite state
machine — moves bursts between off-chip memory and the dual-port local
data memories *concurrently* with execution (Section 3.2).  The local
memories are dual-ported, so DMA traffic never stalls the core.

The core programs the prefetcher through user registers::

    wur a2, DMA_SRC     ; burst source byte address
    wur a3, DMA_DST     ; burst destination byte address
    wur a4, DMA_LEN     ; burst length in bytes
    wur a5, DMA_CTRL    ; 1 = start descriptor
    rur a6, DMA_STATUS  ; 1 while any descriptor is in flight

Descriptors started while the engine is busy queue up in the FSM, which
is how double buffering is written: start the next fill, process the
current buffer, poll, swap.
"""

from ..telemetry.registry import Counter
from .errors import MemoryFault
from .interconnect import Interconnect


class DataPrefetcher:
    """DMA engine with descriptor FSM; attaches as a TIE-style unit."""

    #: DMA_CTRL command bits.
    CMD_START = 1

    def __init__(self, interconnect=None):
        self.interconnect = interconnect or Interconnect()
        self.core = None
        self._src = 0
        self._dst = 0
        self._len = 0
        self._busy_until = 0
        #: Completion cycle of every descriptor, in start order; the
        #: DMA_DONE register reports how many have finished, which is
        #: what double-buffering kernels poll on.
        self._finish_cycles = []
        self._descriptors = Counter("descriptors")
        #: Fault-injection hook (:mod:`repro.faults`): when armed,
        #: called as ``hook(engine, src, dst, nbytes)`` per descriptor;
        #: returns ``None`` (run normally), ``("drop",)`` (descriptor
        #: lost: no data moves, no completion is recorded) or
        #: ``("delay", cycles)`` (transfer takes extra cycles).
        self.fault_hook = None

    @property
    def descriptors_run(self):
        return self._descriptors.value

    def register_metrics(self, registry, prefix):
        """Adopt the DMA engine's counters under *prefix*."""
        registry.register(prefix + ".descriptors", self._descriptors)

    # -- extension protocol (same shape as repro.tie extensions) ------------

    def attach(self, core):
        self.core = core
        metrics = getattr(core, "metrics", None)
        if metrics is not None and "dma.descriptors" not in metrics:
            self.register_metrics(metrics, "dma")
            self.interconnect.register_metrics(metrics, "noc")
        core.register_user_register("DMA_SRC", lambda: self._src,
                                    self._set_src)
        core.register_user_register("DMA_DST", lambda: self._dst,
                                    self._set_dst)
        core.register_user_register("DMA_LEN", lambda: self._len,
                                    self._set_len)
        core.register_user_register("DMA_CTRL", lambda: 0, self._control)
        core.register_user_register("DMA_STATUS", self._status,
                                    lambda value: None,
                                    hardware_written=True)
        core.register_user_register("DMA_DONE", self._done_count,
                                    lambda value: None,
                                    hardware_written=True)

    def _set_src(self, value):
        self._src = value

    def _set_dst(self, value):
        self._dst = value

    def _set_len(self, value):
        self._len = value

    def _status(self):
        return 1 if self.core.cycle < self._busy_until else 0

    def _done_count(self):
        """Number of descriptors whose transfer has completed."""
        now = self.core.cycle
        return sum(1 for finish in self._finish_cycles if finish <= now)

    def _control(self, value):
        if value & self.CMD_START:
            self.start(self._src, self._dst, self._len)

    # -- engine --------------------------------------------------------------

    def start(self, src, dst, nbytes):
        """Begin (or queue) one burst descriptor.

        Zero-length descriptors complete immediately (they still count
        towards DMA_DONE so descriptor-counting pollers stay simple).
        """
        delay = 0
        if self.fault_hook is not None:
            action = self.fault_hook(self, src, dst, nbytes)
            if action is not None:
                if action[0] == "drop":
                    # Descriptor lost in the NoC: no data movement, no
                    # completion.  DMA_DONE pollers hang (caught by the
                    # watchdog); DMA_STATUS pollers read stale data.
                    return
                delay = action[1]
        if nbytes == 0:
            self._finish_cycles.append(self.core.cycle)
            self._descriptors.value += 1
            return
        if nbytes < 0:
            raise MemoryFault("DMA burst length must be non-negative")
        if nbytes % 4:
            raise MemoryFault("DMA bursts must be whole words")
        core = self.core
        # Functional move happens eagerly; the core must not touch the
        # destination until DMA_STATUS reports idle (as real software
        # must not), so eager data movement is observationally
        # equivalent for correct programs.
        words = core.memory_map.region_for(src).read_words(src, nbytes // 4)
        core.memory_map.region_for(dst).write_words(dst, words)
        begin = max(core.cycle, self._busy_until)
        self._busy_until = begin + delay \
            + self.interconnect.transfer_cycles(nbytes)
        self._finish_cycles.append(self._busy_until)
        self._descriptors.value += 1
        trace = getattr(core, "trace", None)
        if trace is not None:
            trace.dma(begin, "dma %dB 0x%08x->0x%08x" % (nbytes, src, dst),
                      self._busy_until - begin)

    @property
    def busy_until(self):
        return self._busy_until

    # -- state snapshot (fast-path fallback / paranoid replay) ---------------

    def snapshot_state(self):
        """Copy of the engine state, for run rollback."""
        return (self._src, self._dst, self._len, self._busy_until,
                list(self._finish_cycles), self._descriptors.value,
                self.interconnect.snapshot_state())

    def restore_state(self, snap):
        (self._src, self._dst, self._len, self._busy_until,
         finish, descriptors, noc) = snap
        self._finish_cycles = list(finish)
        self._descriptors.value = descriptors
        self.interconnect.restore_state(noc)

    def reset(self):
        self._busy_until = 0
        self._finish_cycles = []
        self._descriptors.reset()
        self.interconnect.reset_stats()
