"""Load-store units.

Each LSU owns a port of a configurable width (32 bits on the 108Mini,
128 bits on the DBA processors) into the data memory system.  The DBA
processors attach one local data memory per LSU (Figure 6); the 108Mini
reaches system memory directly and pays wait states on every access.

The LSU is both the functional router (which region serves an address)
and the timing authority (wait states, cache penalties, port-width
serialization for accesses wider than the port).

Access tallies live on every access, so they stay plain integer
attributes; the hosting :class:`~repro.cpu.processor.Processor`
registers :class:`~repro.telemetry.registry.BoundCounter` views over
them as ``lsu.<index>.*`` so they appear in registry snapshots without
slowing the hot path.
"""

from ..telemetry.registry import BoundCounter
from .errors import MemoryFault


class LoadStoreUnit:
    """One load-store unit with its own port into the memory system."""

    def __init__(self, index, port_bits, memory_map, dcache=None):
        self.index = index
        self.port_bits = port_bits
        self.port_bytes = port_bits // 8
        self.memory_map = memory_map
        self.dcache = dcache
        self.loads = 0
        self.stores = 0
        self.stall_cycles = 0
        #: Fault-injection hook (:mod:`repro.faults`): when armed,
        #: called as ``hook(lsu, addr, is_write)`` per access and
        #: returns extra stall cycles (the paper's wait-state path is
        #: where a flaky memory controller would bite).  ``None`` (the
        #: default) costs one comparison per access.
        self.fault_hook = None

    # -- statistics ----------------------------------------------------------

    def register_metrics(self, registry, prefix):
        """Register counter views over this unit's tallies."""
        for attr in ("loads", "stores", "stall_cycles"):
            registry.register("%s.%s" % (prefix, attr),
                              BoundCounter(self, attr))

    def reset_stats(self):
        self.loads = 0
        self.stores = 0
        self.stall_cycles = 0

    # -- helpers -------------------------------------------------------------

    def _access_cost(self, region, nbytes, is_write, addr):
        cost = region.wait_states
        if self.dcache is not None and getattr(region, "cacheable", False):
            cost = self.dcache.access(addr, is_write)
        if nbytes > self.port_bytes:
            # Serialize a wide access over a narrow port.
            beats = -(-nbytes // self.port_bytes)  # ceil division
            cost += beats - 1
        if self.fault_hook is not None:
            cost += self.fault_hook(self, addr, is_write)
        return cost

    # -- scalar access -------------------------------------------------------

    def load(self, addr, size, signed):
        region = self.memory_map.region_for(addr)
        self.loads += 1
        cost = self._access_cost(region, size, False, addr)
        self.stall_cycles += cost
        return region.load(addr, size, signed), cost

    def store(self, addr, value, size):
        region = self.memory_map.region_for(addr)
        self.stores += 1
        cost = self._access_cost(region, size, True, addr)
        self.stall_cycles += cost
        region.store(addr, value, size)
        return cost

    # -- wide access (EIS 128-bit load/store path) ----------------------------

    def load_block(self, addr, nwords):
        region = self.memory_map.region_for(addr)
        self.loads += 1
        cost = self._access_cost(region, nwords * 4, False, addr)
        self.stall_cycles += cost
        return region.load_block(addr, nwords), cost

    def store_block(self, addr, values):
        region = self.memory_map.region_for(addr)
        self.stores += 1
        cost = self._access_cost(region, len(values) * 4, True, addr)
        self.stall_cycles += cost
        region.store_block(addr, values)
        return cost

    def require_wide_port(self, bits):
        if self.port_bits < bits:
            raise MemoryFault(
                "LSU%d port is %d bits wide; %d-bit access not possible"
                % (self.index, self.port_bits, bits))
