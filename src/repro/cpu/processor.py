"""The cycle-level processor simulator.

A :class:`Processor` is built from a :class:`~repro.cpu.config.CoreConfig`
plus a list of TIE extensions (:mod:`repro.tie`).  It owns the
instruction set, the assembler, the memory system and the load-store
units, and executes assembled programs while charging cycles through
the pipeline model — the Python equivalent of the cycle-accurate
simulator the Tensilica tool flow generates (paper Figure 4).

Execution protocol
------------------
Programs end with ``halt``.  Arguments are passed in address registers
(set via ``run(regs={...})``) and data is staged into the local data
memories with :meth:`Processor.write_words` before the run — the same
role the data prefetcher plays in the full system.
"""

import os

from ..isa.assembler import Assembler, Bundle, BundleTail
from ..isa.instructions import build_base_isa
from ..isa.registers import NUM_ADDRESS_REGISTERS, RegisterFile, \
    parse_register
from ..telemetry.registry import MetricsRegistry
from ..telemetry.report import RunStats
from .cache import Cache
from .errors import ConfigurationError, DivergenceError, MemoryFault, \
    SimulationError
from .fastpath import compile_fastpath, fastpath_disabled
from .lsu import LoadStoreUnit
from .memory import DMEM0_BASE, DMEM1_BASE, MAIN_BASE, Memory, MemoryMap
from .pipeline import register_uses, result_delay
from .watchdog import DEFAULT_MAX_CYCLES, trip as _watchdog_trip


def paranoid_enabled():
    """Whether ``REPRO_PARANOID=1`` lockstep checking is requested.

    In paranoid mode every run that would use the compiled fast path is
    additionally replayed on the reference interpreter and compared at
    superblock boundaries (docs/ROBUSTNESS.md); a mismatch raises
    :class:`~repro.cpu.errors.DivergenceError`.
    """
    return os.environ.get("REPRO_PARANOID", "") not in ("", "0")


class RunResult:
    """Outcome of one simulated program run."""

    def __init__(self, cycles, instructions, regs, stats):
        self.cycles = cycles
        self.instructions = instructions
        self.regs = regs
        self.stats = stats

    def reg(self, name):
        return self.regs[parse_register(name)]

    def throughput_meps(self, elements, clock_mhz):
        """Throughput in million elements per second at *clock_mhz*.

        Uses the paper's definition (Section 5.2): elements processed
        divided by the time of the run.
        """
        if self.cycles == 0:
            return 0.0
        return elements * clock_mhz / self.cycles

    def cpi(self):
        return self.cycles / self.instructions if self.instructions else 0.0

    def report(self, workload="", config="", elements=None, clock_mhz=None,
               meta=None):
        """Structured :class:`repro.telemetry.report.RunReport`."""
        from ..telemetry.report import RunReport
        return RunReport.from_run(self, workload=workload, config=config,
                                  elements=elements, clock_mhz=clock_mhz,
                                  meta=meta)

    def __repr__(self):
        return "<RunResult %d cycles, %d instructions>" % (
            self.cycles, self.instructions)


class Processor:
    """A configured core instance with its memories and extensions."""

    def __init__(self, config, extensions=()):
        self.config = config
        self.isa = build_base_isa(config.features())
        self.regs = RegisterFile("ar", NUM_ADDRESS_REGISTERS)
        self.pipeline = config.pipeline

        #: Unified telemetry: every component of this core registers
        #: its instruments here (see docs/OBSERVABILITY.md).  Created
        #: before the extension loop so extensions can register too.
        self.metrics = MetricsRegistry()

        self._build_memories(config)
        self._build_lsus(config)
        self._register_metrics()

        # User-register space (TIE states map in here).
        self._ur_read = {}
        self._ur_write = {}
        #: Names of user registers an engine maintains (lint-exempt).
        self.ur_hardware_written = set()
        self.symbols = {}
        self.flix_formats = []
        self.regfiles = {}
        self.extensions = []
        self.extension_states = {}
        for extension in extensions:
            extension.attach(self)
            self.extensions.append(extension)

        self.assembler = Assembler(self.isa, self.flix_formats, self.symbols,
                                   self.regfiles)

        # Execution state (reset per run).
        self.pc = 0
        self.npc = 0
        self.cycle = 0
        self.halted = False
        self.branch_taken = False
        self.mem_extra = 0
        self._program = None
        self._steps = None
        self._fast = None
        self._fast_failed = False
        #: Per-processor compilation memo: id(program) -> (program,
        #: steps, fast).  The strong program reference keeps the id
        #: stable for the lifetime of the entry.
        self._compiled_cache = {}
        #: Active :class:`~repro.cpu.trace.PipelineTracer` of the
        #: current run, visible to extensions (the DMA prefetcher emits
        #: burst spans through it); ``None`` outside traced runs.
        self.trace = None
        #: Fault-injection hook (:mod:`repro.faults`): when armed,
        #: called as ``hook(core, pc, cycle)`` before every issued
        #: instruction, and :meth:`run` routes through the reference
        #: interpreter (the fast path compiles faults away).
        self._fault_hook = None
        #: Outcome of the last paranoid-mode replay, or ``None``; a
        #: plain attribute (not a metric) so registry snapshots stay
        #: identical between checked and unchecked runs.
        self.last_paranoid = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    def _build_memories(self, config):
        regions = []
        headroom = config.sim_headroom_kb
        if config.dmem0_kb:
            self.dmem0 = Memory("dmem0", DMEM0_BASE,
                                (config.dmem0_kb + headroom) * 1024)
            regions.append(self.dmem0)
        else:
            # 108Mini style: the low region is system memory with wait
            # states (and optionally a cache in front of it).
            self.dmem0 = Memory("sysmem", DMEM0_BASE,
                                config.sysmem_kb * 1024,
                                wait_states=config.sysmem_wait_states)
            self.dmem0.cacheable = config.dcache is not None
            regions.append(self.dmem0)
        if config.dmem1_kb:
            self.dmem1 = Memory("dmem1", DMEM1_BASE,
                                (config.dmem1_kb + headroom) * 1024)
            regions.append(self.dmem1)
        else:
            self.dmem1 = None
        self.main_memory = Memory("main", MAIN_BASE,
                                  config.main_memory_kb * 1024,
                                  wait_states=8)
        regions.append(self.main_memory)
        self.memory_map = MemoryMap(regions)

    def _build_lsus(self, config):
        dcache = Cache(config.dcache) if config.dcache else None
        self.dcache = dcache
        self.icache = Cache(config.icache) if config.icache else None
        self.lsus = [LoadStoreUnit(0, config.lsu_port_bits, self.memory_map,
                                   dcache)]
        if config.num_lsus == 2:
            self.lsus.append(LoadStoreUnit(1, config.lsu_port_bits,
                                           self.memory_map))
        if self.dmem1 is not None and len(self.lsus) > 1:
            self._dmem1_base = self.dmem1.base
            self._dmem1_limit = self.dmem1.limit
        else:
            # Empty range: the single comparison chain in lsu_for then
            # rejects every address without extra checks.
            self._dmem1_base, self._dmem1_limit = 1, 0

    def _register_metrics(self):
        """Index every component's instruments in :attr:`metrics`.

        The namespace (``lsu.<i>.*``, ``cpu.dcache.*``, ``mem.<name>.*``,
        ``cpu.run.*`` — plus ``dma.*``/``noc.*`` contributed by an
        attached prefetcher) is documented in docs/OBSERVABILITY.md.
        """
        registry = self.metrics
        for lsu in self.lsus:
            lsu.register_metrics(registry, "lsu.%d" % lsu.index)
        if self.dcache is not None:
            self.dcache.register_metrics(registry, "cpu.dcache")
        if self.icache is not None:
            self.icache.register_metrics(registry, "cpu.icache")
        for region in self.memory_map:
            region.register_metrics(registry, "mem.%s" % region.name)
        run = registry.scope("cpu.run")
        self._g_cycles = run.gauge("cycles")
        self._g_instructions = run.gauge("instructions")
        self._g_taken = run.gauge("taken_redirects")
        self._g_interlock = run.gauge("interlock_stalls")
        #: 1 when the last run used the compiled fast path, else 0.
        self._g_fastpath = run.gauge("fastpath")
        #: 1 when the last run degraded from the fast path to the
        #: interpreter after an internal fast-path error, else 0.
        self._g_fallback = run.gauge("fallback")

    # ------------------------------------------------------------------
    # extension plumbing (called by repro.tie)
    # ------------------------------------------------------------------

    def register_user_register(self, name, reader, writer,
                               hardware_written=False):
        """Expose a TIE state via ``rur``/``wur`` and the assembler.

        ``hardware_written`` marks states maintained by an engine
        rather than the program (e.g. the prefetcher's ``DMA_DONE``
        completion count) so dataflow lint does not flag reads of them
        as use-before-write.
        """
        if name in self.symbols:
            raise ConfigurationError("user register %r already defined"
                                     % name)
        index = len(self._ur_read)
        self._ur_read[index] = reader
        self._ur_write[index] = writer
        self.symbols[name] = index
        if hardware_written:
            self.ur_hardware_written.add(name)
        return index

    def read_user_register(self, index):
        try:
            return self._ur_read[index]()
        except KeyError:
            raise MemoryFault("unknown user register %d" % index) from None

    def write_user_register(self, index, value):
        try:
            self._ur_write[index](value)
        except KeyError:
            raise MemoryFault("unknown user register %d" % index) from None

    # ------------------------------------------------------------------
    # memory interface used by instruction semantics
    # ------------------------------------------------------------------

    def lsu_for(self, addr):
        if self._dmem1_base <= addr < self._dmem1_limit:
            return self.lsus[1]
        return self.lsus[0]

    def load(self, addr, size=4, signed=False):
        value, cost = self.lsu_for(addr).load(addr, size, signed)
        self.mem_extra += cost
        return value

    def store(self, addr, value, size=4):
        self.mem_extra += self.lsu_for(addr).store(addr, value, size)

    def load_block(self, lsu_index, addr, nwords=4):
        """128-bit wide load through a specific LSU (EIS LD path)."""
        lsu = self.lsus[lsu_index]
        lsu.require_wide_port(nwords * 32)
        values, cost = lsu.load_block(addr, nwords)
        self.mem_extra += cost
        return values

    def store_block(self, lsu_index, addr, values):
        lsu = self.lsus[lsu_index]
        lsu.require_wide_port(len(values) * 32)
        self.mem_extra += lsu.store_block(addr, values)

    # ------------------------------------------------------------------
    # host-side data staging
    # ------------------------------------------------------------------

    def write_words(self, addr, values):
        self.memory_map.region_for(addr).write_words(addr, values)

    def read_words(self, addr, count):
        return self.memory_map.region_for(addr).read_words(addr, count)

    # ------------------------------------------------------------------
    # program loading and precompilation
    # ------------------------------------------------------------------

    def load_program(self, source_or_program, source_name="<asm>"):
        if isinstance(source_or_program, str):
            program = self.assembler.assemble(source_or_program, source_name)
        else:
            program = source_or_program
        self._program = program
        cached = self._compiled_cache.get(id(program))
        if cached is not None and cached[0] is program:
            _, self._steps, self._fast, self._fast_failed = cached
            return program
        self._steps = self._compile(program)
        self._fast_failed = False
        if fastpath_disabled():
            self._fast = None
        else:
            try:
                self._fast = compile_fastpath(self, program, self._steps)
            except Exception:
                # Graceful degradation: a fast-path compiler bug must
                # not take the program down — the reference interpreter
                # is always available.  Runs of this program report
                # cpu.run.fallback = 1.
                self._fast = None
                self._fast_failed = True
        if len(self._compiled_cache) >= 64:
            self._compiled_cache.clear()
        self._compiled_cache[id(program)] = (program, self._steps, self._fast,
                                             self._fast_failed)
        return program

    @property
    def program(self):
        return self._program

    def _compile(self, program):
        model = self.pipeline
        steps = [None] * len(program.items)
        for index, item in enumerate(program.items):
            if isinstance(item, BundleTail):
                continue
            if isinstance(item, Bundle):
                steps[index] = self._compile_bundle(item, model)
            else:
                steps[index] = self._compile_item(item, model)
        return steps

    def _compile_item(self, item, model):
        spec = item.spec
        reads, writes = register_uses(spec, item.operands)
        redirect = model.redirect_penalty(spec.kind) if spec.is_control \
            else 0
        extra = model.div_cycles - 1 if spec.kind == "div" \
            else spec.extra_cycles
        return _Step(spec.executor, item.operands, reads, writes,
                     result_delay(model, spec.kind), redirect, extra,
                     item.size, spec.kind == "halt", spec.name)

    def _compile_bundle(self, bundle, model):
        slots = []
        reads = []
        writes = []
        rdelay = 0
        redirect = 0
        extra = 0
        names = []
        for slot in bundle.slots:
            spec = slot.spec
            slot_reads, slot_writes = register_uses(spec, slot.operands)
            reads.extend(slot_reads)
            writes.extend(slot_writes)
            rdelay = max(rdelay, result_delay(model, spec.kind))
            if spec.is_control:
                redirect = model.redirect_penalty(spec.kind)
            if spec.kind == "div":
                extra += model.div_cycles - 1
            else:
                extra += spec.extra_cycles
            slots.append((spec.executor, slot.operands))
            names.append(spec.name)
        executor = _make_bundle_executor(slots)
        return _Step(executor, None, tuple(reads), tuple(writes), rdelay,
                     redirect, extra, bundle.size, False,
                     "{%s}" % ";".join(names))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(self, entry=0, regs=None, max_cycles=DEFAULT_MAX_CYCLES,
            trace=None, reset_stats=True):
        """Execute the loaded program until ``halt``.

        Parameters
        ----------
        entry: label name or word index to start at.
        regs: mapping of register names/indices to initial values.
        trace: optional :class:`repro.cpu.trace.PipelineTracer`.

        Plain runs (no trace) execute through the superblock-compiled
        fast path of :mod:`repro.cpu.fastpath` when available; set
        ``REPRO_NO_FASTPATH=1`` (or pass a trace, or call
        :meth:`run_interpreted`) to force the reference interpreter.
        Both paths produce identical results — see docs/PERFORMANCE.md.
        With ``REPRO_PARANOID=1`` the equivalence is enforced per run by
        a lockstep interpreter replay (docs/ROBUSTNESS.md); an armed
        fault injector likewise routes through the interpreter.

        Use :meth:`run_profiled` for per-pc cycle attribution.
        """
        entry = self._prepare_run(entry, regs, reset_stats)
        fast = self._fast
        if fast is None and self._fast_failed:
            self._g_fallback.set(1)
        if trace is None and fast is not None and not fastpath_disabled() \
                and self._fault_hook is None and fast.accepts(entry):
            if paranoid_enabled():
                return self._run_paranoid(fast, entry, max_cycles)
            return self._run_fast(fast, entry, max_cycles)
        return self._run_interpreted(entry, max_cycles, trace)

    def run_interpreted(self, entry=0, regs=None, max_cycles=DEFAULT_MAX_CYCLES,
                        trace=None, reset_stats=True):
        """Like :meth:`run` but always using the reference interpreter."""
        entry = self._prepare_run(entry, regs, reset_stats)
        return self._run_interpreted(entry, max_cycles, trace)

    def _prepare_run(self, entry, regs, reset_stats):
        if self._steps is None:
            raise ConfigurationError("no program loaded")
        if isinstance(entry, str):
            entry = self._program.label(entry)
        if reset_stats:
            self.reset_stats()
        if regs:
            for name, value in regs.items():
                index = parse_register(name) if isinstance(name, str) \
                    else name
                self.regs[index] = value
        return entry

    def _run_fast(self, fast, entry, max_cycles):
        """Run the fast path, degrading to the interpreter on internal error.

        A :class:`_RunGuard` journals the run so that an *internal*
        fast-path failure (anything that is not a simulated-machine
        :class:`~repro.cpu.errors.SimulationError`) can roll the
        machine back to the pre-run state and replay on the reference
        interpreter; such runs report ``cpu.run.fallback`` = 1.
        """
        guard = _RunGuard(self)
        try:
            result = self._trampoline(fast, entry, max_cycles)
        except SimulationError:
            # A fault of the simulated machine: both paths raise it
            # identically, nothing to degrade to.
            guard.discard()
            raise
        except Exception:
            if not guard.restore():
                raise
            self._g_fallback.set(1)
            return self._run_interpreted(entry, max_cycles, None)
        guard.discard()
        return result

    def _trampoline(self, fast, entry, max_cycles, record=None):
        """Trampoline over the compiled superblocks of the loaded program.

        *record*, when given, collects (pc, cycle, issued, regs) at
        every superblock boundary for paranoid-mode comparison.
        """
        self._g_fastpath.set(1)
        self.halted = False
        self.trace = None
        rv = self.regs._values
        reg_ready = [0] * NUM_ADDRESS_REGISTERS
        blocks = fast.blocks
        cycle = 0
        issued = 0
        taken = 0
        interlock = 0
        pc = entry
        while not self.halted:
            block = blocks[pc]
            if block is None:
                raise MemoryFault("execution fell into a bundle tail or "
                                  "unmapped instruction at word %d" % pc)
            if record is not None and len(record) < PARANOID_RECORD_LIMIT:
                record.append((pc, cycle, issued, tuple(rv)))
            pc, cycle, issued, taken, interlock = block(
                self, rv, reg_ready, cycle, issued, taken, interlock,
                max_cycles)
        stats = self.collect_stats(taken, interlock, cycle, issued)
        return RunResult(cycle, issued, self.regs.snapshot(), stats)

    def _run_paranoid(self, fast, entry, max_cycles):
        """Fast-path run followed by a lockstep interpreter replay.

        The replay must observe the exact pre-run machine state, so the
        same :class:`_RunGuard` rollback that powers fallback rewinds
        the run before the interpreter repeats it.  Divergence at any
        superblock boundary — or in the final architectural state —
        raises :class:`~repro.cpu.errors.DivergenceError`.  The replay
        (reference) result is returned, with the stats rebuilt to
        report the run as a fast-path run, which it was.
        """
        guard = _RunGuard(self)
        record = []
        try:
            fast_result = self._trampoline(fast, entry, max_cycles, record)
        except SimulationError:
            guard.discard()
            raise
        except Exception:
            if not guard.restore():
                raise
            self._g_fallback.set(1)
            return self._run_interpreted(entry, max_cycles, None)
        if not guard.restore():
            # Undo journal overflowed: the run cannot be replayed.
            self.last_paranoid = {"ok": None, "checked": 0,
                                  "replayed": False}
            return fast_result
        checker = _LockstepChecker(record)
        try:
            ref_result = self._run_interpreted(entry, max_cycles, None,
                                               probe=checker.probe)
            checker.finish(self, fast_result, ref_result)
        except DivergenceError:
            self.last_paranoid = {"ok": False, "checked": checker.checked,
                                  "replayed": True}
            raise
        self.last_paranoid = {"ok": True, "checked": checker.checked,
                              "replayed": True}
        self._g_fastpath.set(1)
        stats = self.collect_stats(ref_result.stats["taken_redirects"],
                                   ref_result.stats["interlock_stalls"],
                                   ref_result.cycles,
                                   ref_result.instructions)
        return RunResult(ref_result.cycles, ref_result.instructions,
                         ref_result.regs, stats)

    def _run_interpreted(self, entry, max_cycles, trace, probe=None):
        self._g_fastpath.set(0)
        steps = self._steps
        reg_ready = [0] * NUM_ADDRESS_REGISTERS
        cycle = 0
        issued = 0
        taken = 0
        interlock = 0
        self.halted = False
        self.trace = trace
        fault = self._fault_hook
        pc = entry

        while not self.halted:
            if fault is not None:
                fault(self, pc, cycle)
            if probe is not None:
                probe(self, pc, cycle, issued)
            step = steps[pc]
            if step is None:
                self.trace = None
                raise MemoryFault("execution fell into a bundle tail or "
                                  "unmapped instruction at word %d" % pc)
            begin = cycle
            issue = cycle
            for reg in step.reads:
                ready = reg_ready[reg]
                if ready > issue:
                    interlock += ready - issue
                    issue = ready
            self.pc = pc
            self.npc = pc + step.size
            self.cycle = issue
            self.branch_taken = False
            self.mem_extra = 0
            step.execute(self, step.operands)
            cycle = issue + 1 + self.mem_extra + step.extra_cycles
            if self.branch_taken or (step.redirect and self.npc != pc
                                     + step.size):
                if step.redirect:
                    cycle += step.redirect
                taken += 1
            if step.rdelay:
                # result usable rdelay cycles after the issue completes
                ready = cycle + step.rdelay
                for reg in step.writes:
                    reg_ready[reg] = ready
            issued += 1
            if trace is not None:
                if issue > begin:
                    trace.stall(begin, pc, issue - begin)
                trace.record(issue, pc, step.name, cycle - issue)
                if self.mem_extra:
                    trace.memory(issue, pc, step.name, self.mem_extra)
            pc = self.npc
            if cycle > max_cycles or issued > max_cycles:
                self.trace = None
                _watchdog_trip(max_cycles, pc, cycle, issued)

        self.trace = None
        stats = self.collect_stats(taken, interlock, cycle, issued)
        return RunResult(cycle, issued, self.regs.snapshot(), stats)

    def run_profiled(self, profiler, entry=0, regs=None,
                     max_cycles=DEFAULT_MAX_CYCLES):
        """Like :meth:`run` but attributing cycles to each pc.

        Kept as a separate loop so the hot path in :meth:`run` stays
        lean; the profiler needs per-item cycle deltas.
        """
        if self._steps is None:
            raise ConfigurationError("no program loaded")
        if isinstance(entry, str):
            entry = self._program.label(entry)
        self.reset_stats()
        if regs:
            for name, value in regs.items():
                index = parse_register(name) if isinstance(name, str) \
                    else name
                self.regs[index] = value
        steps = self._steps
        reg_ready = [0] * NUM_ADDRESS_REGISTERS
        cycle = 0
        issued = 0
        taken = 0
        interlock = 0
        self.halted = False
        pc = entry
        while not self.halted:
            step = steps[pc]
            if step is None:
                raise MemoryFault("execution fell into a bundle tail or "
                                  "unmapped instruction at word %d" % pc)
            begin = cycle
            issue = cycle
            for reg in step.reads:
                ready = reg_ready[reg]
                if ready > issue:
                    interlock += ready - issue
                    issue = ready
            self.pc = pc
            self.npc = pc + step.size
            self.cycle = issue
            self.branch_taken = False
            self.mem_extra = 0
            step.execute(self, step.operands)
            cycle = issue + 1 + self.mem_extra + step.extra_cycles
            if self.branch_taken or (step.redirect and self.npc != pc
                                     + step.size):
                if step.redirect:
                    cycle += step.redirect
                taken += 1
            if step.rdelay:
                # result usable rdelay cycles after the issue completes
                ready = cycle + step.rdelay
                for reg in step.writes:
                    reg_ready[reg] = ready
            issued += 1
            profiler.record(pc, cycle - begin, step)
            pc = self.npc
            if cycle > max_cycles or issued > max_cycles:
                _watchdog_trip(max_cycles, pc, cycle, issued)
        stats = self.collect_stats(taken, interlock, cycle, issued)
        return RunResult(cycle, issued, self.regs.snapshot(), stats)

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def reset_stats(self):
        """Zero the per-run statistics.

        Scope matches the pre-registry behavior: LSUs, memory regions,
        caches (tags included) and the run gauges.  DMA/NoC tallies
        accumulate across runs — streaming harnesses reset them
        explicitly via ``prefetcher.reset()``.
        """
        for lsu in self.lsus:
            lsu.reset_stats()
        for region in self.memory_map:
            region.reset_stats()
        if self.dcache:
            self.dcache.reset()
        if self.icache:
            self.icache.reset()
        self.metrics.reset("cpu.run")

    def collect_stats(self, taken_branches, interlock_stalls,
                      cycles=None, instructions=None):
        """Snapshot the registry into a :class:`RunStats` view.

        The flat legacy keys (``lsu_loads`` etc.) are preserved for
        existing consumers; the full hierarchical snapshot rides along
        as ``stats.snapshot``.
        """
        self._g_taken.set(taken_branches)
        self._g_interlock.set(interlock_stalls)
        if cycles is not None:
            self._g_cycles.set(cycles)
        if instructions is not None:
            self._g_instructions.set(instructions)
        legacy = {
            "taken_redirects": taken_branches,
            "interlock_stalls": interlock_stalls,
            "lsu_loads": [lsu.loads for lsu in self.lsus],
            "lsu_stores": [lsu.stores for lsu in self.lsus],
            "lsu_stall_cycles": [lsu.stall_cycles for lsu in self.lsus],
        }
        if self.dcache:
            legacy["dcache_hits"] = self.dcache.hits
            legacy["dcache_misses"] = self.dcache.misses
        return RunStats(legacy, self.metrics.snapshot())


#: Superblock boundaries recorded per paranoid run before recording
#: stops (the final-state comparison still covers the rest).
PARANOID_RECORD_LIMIT = 1 << 20


class _RunGuard:
    """Pre-run snapshot enabling rollback of one simulated run.

    Register files and extension/prefetcher state are tiny and copied
    outright; data memories (megabytes) are covered by a write-undo
    journal instead (:meth:`repro.cpu.memory.Memory.begin_undo`), so an
    untouched region costs nothing to guard.  ``restore()`` also calls
    ``reset_stats`` — the rolled-back run never happened, statistically
    speaking — and returns False when a journal overflowed, in which
    case the machine state is left as the failed run produced it.
    """

    __slots__ = ("core", "regs", "ext")

    def __init__(self, core):
        self.core = core
        self.regs = list(core.regs._values)
        self.ext = [(ext, ext.snapshot_state()) for ext in core.extensions]
        for region in core.memory_map:
            region.begin_undo()

    def restore(self):
        core = self.core
        if not all(region.undo_ok() for region in core.memory_map):
            self.discard()
            return False
        for region in core.memory_map:
            region.rollback_undo()
        core.regs._values[:] = self.regs
        for ext, snap in self.ext:
            ext.restore_state(snap)
        core.reset_stats()
        return True

    def discard(self):
        for region in self.core.memory_map:
            region.discard_undo()


class _LockstepChecker:
    """Compares an interpreter replay against recorded fast-path state.

    The trampoline records (pc, cycle, issued, regs) at every
    superblock boundary; the replay's instruction counter is strictly
    increasing and must agree at those boundaries, so matching on
    ``issued`` pins each record to exactly one interpreter step.
    """

    __slots__ = ("record", "index", "checked")

    def __init__(self, record):
        self.record = record
        self.index = 0
        self.checked = 0

    def probe(self, core, pc, cycle, issued):
        record = self.record
        index = self.index
        if index >= len(record) or issued != record[index][2]:
            return
        epc, ecycle, _eissued, eregs = record[index]
        if pc != epc or cycle != ecycle \
                or tuple(core.regs._values) != eregs:
            raise DivergenceError(
                "paranoid: fast path and interpreter diverge at boundary "
                "%d: fast (pc=%d, cycle=%d) vs interpreted (pc=%d, "
                "cycle=%d)" % (index, epc, ecycle, pc, cycle))
        self.index += 1
        self.checked += 1

    def finish(self, core, fast_result, ref_result):
        if self.index != len(self.record):
            raise DivergenceError(
                "paranoid: interpreter replay visited %d of %d recorded "
                "superblock boundaries" % (self.index, len(self.record)))
        if (fast_result.cycles != ref_result.cycles
                or fast_result.instructions != ref_result.instructions
                or fast_result.regs != ref_result.regs):
            raise DivergenceError(
                "paranoid: final state diverges: fast (cycles=%d, "
                "instructions=%d) vs interpreted (cycles=%d, "
                "instructions=%d)"
                % (fast_result.cycles, fast_result.instructions,
                   ref_result.cycles, ref_result.instructions))
        if dict(fast_result.stats) != dict(ref_result.stats):
            raise DivergenceError(
                "paranoid: run statistics diverge between the fast path "
                "and the interpreter replay")


class _Step:
    """Precompiled execution step: semantics plus timing metadata."""

    __slots__ = ("execute", "operands", "reads", "writes", "rdelay",
                 "redirect", "extra_cycles", "size", "is_halt", "name")

    def __init__(self, execute, operands, reads, writes, rdelay, redirect,
                 extra_cycles, size, is_halt, name):
        self.execute = execute
        self.operands = operands
        self.reads = reads
        self.writes = writes
        self.rdelay = rdelay
        self.redirect = redirect
        self.extra_cycles = extra_cycles
        self.size = size
        self.is_halt = is_halt
        self.name = name


def _make_bundle_executor(slots):
    """Compile bundle slots into a single executor callable.

    Slots execute in order within the issue cycle; the paper's fused
    EIS operations chain their datapath stages the same way.
    """
    def execute(core, _operands):
        for executor, operands in slots:
            executor(core, operands)
    return execute
