"""Cycle-accurate application profiling.

The first step of the paper's tool flow (Figure 4) is "cycle-accurate
profiling of an application to analyze its runtime behavior.  The
profiler unveils hotspots in the application's execution."  This module
is that profiler: it attributes every simulated cycle to the program
counter that consumed it and aggregates by label-delimited region.
"""


class CycleProfiler:
    """Accumulates per-pc cycles; used with ``Processor.run_profiled``."""

    def __init__(self):
        self.cycles_by_pc = {}
        self.visits_by_pc = {}
        self.names_by_pc = {}

    def record(self, pc, cycles, step):
        self.cycles_by_pc[pc] = self.cycles_by_pc.get(pc, 0) + cycles
        self.visits_by_pc[pc] = self.visits_by_pc.get(pc, 0) + 1
        if pc not in self.names_by_pc:
            self.names_by_pc[pc] = step.name

    @property
    def total_cycles(self):
        return sum(self.cycles_by_pc.values())

    def hotspots(self, program, top=10):
        """Aggregate cycles by source region (delimited by labels).

        Returns a list of :class:`Hotspot` sorted by cycle share,
        largest first.  Labels aliased to the same index (``foo:``
        directly followed by ``bar:``) are merged into one
        ``foo/bar`` region instead of producing a zero-length region
        that silently drops the first name; code before the first
        label — or a program with no labels at all — is attributed to
        a synthesized ``<entry>`` region.
        """
        names_by_index = {}
        for name, index in sorted(program.labels.items()):
            names_by_index.setdefault(index, []).append(name)
        boundaries = sorted(names_by_index)
        regions = []
        if not boundaries or boundaries[0] > 0:
            entry_end = boundaries[0] if boundaries \
                else len(program.items)
            if entry_end > 0:
                regions.append((0, entry_end, "<entry>"))
        for position, start in enumerate(boundaries):
            end = boundaries[position + 1] if position + 1 \
                < len(boundaries) else len(program.items)
            regions.append((start, end,
                            "/".join(names_by_index[start])))
        total = self.total_cycles or 1
        hotspots = []
        for start, end, name in regions:
            cycles = sum(self.cycles_by_pc.get(pc, 0)
                         for pc in range(start, end))
            visits = sum(self.visits_by_pc.get(pc, 0)
                         for pc in range(start, end))
            if cycles:
                hotspots.append(Hotspot(name, start, end, cycles,
                                        cycles / total, visits))
        hotspots.sort(key=lambda h: h.cycles, reverse=True)
        return hotspots[:top]

    def report(self, program, top=10):
        """Human-readable hotspot table."""
        lines = ["%-24s %12s %8s %10s" % ("region", "cycles", "share",
                                          "visits")]
        for hotspot in self.hotspots(program, top):
            lines.append("%-24s %12d %7.1f%% %10d" % (
                hotspot.region, hotspot.cycles, hotspot.share * 100,
                hotspot.visits))
        return "\n".join(lines)


class Hotspot:
    """One label-delimited region and its share of total cycles."""

    __slots__ = ("region", "start", "end", "cycles", "share", "visits")

    def __init__(self, region, start, end, cycles, share, visits):
        self.region = region
        self.start = start
        self.end = end
        self.cycles = cycles
        self.share = share
        self.visits = visits

    def __repr__(self):
        return "<Hotspot %s %.1f%%>" % (self.region, self.share * 100)
