"""Structural configuration of a processor core.

A :class:`CoreConfig` captures everything the paper varies between its
processor configurations (Section 5.1): local memory sizes, bus widths,
the number of load-store units, hardware multiply/divide support, and
the pipeline timing parameters.  Instruction-set extensions are
attached separately when the :class:`~repro.cpu.processor.Processor`
is built, mirroring the customizable-processor tool flow (Figure 4).
"""

from .errors import ConfigurationError
from .pipeline import PipelineModel


class CoreConfig:
    """Static description of a processor core configuration."""

    def __init__(self, name,
                 pipeline=None,
                 num_lsus=1,
                 lsu_port_bits=32,
                 imem_kb=32,
                 dmem0_kb=0,
                 dmem1_kb=0,
                 sysmem_kb=512,
                 sysmem_wait_states=2,
                 main_memory_kb=8192,
                 icache=None,
                 dcache=None,
                 has_mul=True,
                 has_div=True,
                 sim_headroom_kb=64,
                 description=""):
        if num_lsus not in (1, 2):
            raise ConfigurationError("num_lsus must be 1 or 2")
        if num_lsus == 2 and dmem1_kb == 0:
            raise ConfigurationError(
                "a second LSU requires its own local data memory (dmem1)")
        if lsu_port_bits not in (32, 64, 128):
            raise ConfigurationError("lsu_port_bits must be 32, 64 or 128")
        self.name = name
        self.pipeline = pipeline or PipelineModel()
        self.num_lsus = num_lsus
        self.lsu_port_bits = lsu_port_bits
        self.imem_kb = imem_kb
        self.dmem0_kb = dmem0_kb
        self.dmem1_kb = dmem1_kb
        self.sysmem_kb = sysmem_kb
        self.sysmem_wait_states = sysmem_wait_states
        self.main_memory_kb = main_memory_kb
        self.icache = icache
        self.dcache = dcache
        self.has_mul = has_mul
        self.has_div = has_div
        #: Extra simulated capacity per local data memory beyond the
        #: architectural size.  Stands in for the data prefetcher's
        #: concurrent result write-back (paper Section 3.2: "results
        #: are written back while the next operator has already started
        #: its execution"), so result streams larger than the remaining
        #: local store do not fault.  Synthesis uses the architectural
        #: sizes only.
        self.sim_headroom_kb = sim_headroom_kb
        self.description = description

    @property
    def has_local_store(self):
        return self.dmem0_kb > 0

    @property
    def local_store_kb(self):
        return self.dmem0_kb + self.dmem1_kb

    def features(self):
        return {"has_mul": self.has_mul, "has_div": self.has_div}

    def architectural_regions(self):
        """``(name, base, size_bytes)`` of every *architectural* region.

        Unlike the simulated memories (which add ``sim_headroom_kb`` to
        each local store), these are the sizes the hardware would have;
        the static memory checker (:mod:`repro.analysis`) validates
        resolvable addresses against them.
        """
        from .memory import DMEM0_BASE, DMEM1_BASE, MAIN_BASE
        regions = []
        if self.dmem0_kb:
            regions.append(("dmem0", DMEM0_BASE, self.dmem0_kb * 1024))
        else:
            regions.append(("sysmem", DMEM0_BASE, self.sysmem_kb * 1024))
        if self.dmem1_kb:
            regions.append(("dmem1", DMEM1_BASE, self.dmem1_kb * 1024))
        regions.append(("main", MAIN_BASE, self.main_memory_kb * 1024))
        return regions

    def __repr__(self):
        return "<CoreConfig %s lsus=%d port=%db dmem=%d+%dKB>" % (
            self.name, self.num_lsus, self.lsu_port_bits,
            self.dmem0_kb, self.dmem1_kb)
