"""Metrics registry: named counters, gauges and histograms.

Design constraints, in order:

1. The simulator's hot loops bump counters on every instruction, so an
   increment must stay a plain attribute write.  Hot components keep
   plain integer attributes (``self.loads += 1``) and register
   :class:`BoundCounter` views over them; colder components hold tiny
   ``__slots__`` instruments directly.  Either way the registry only
   indexes instruments, it never sits on the increment path.
2. Components must work standalone (unit tests build a bare
   :class:`~repro.cpu.lsu.LoadStoreUnit` or
   :class:`~repro.cpu.cache.Cache` with no processor around them), so
   instruments are created unattached and *registered* later under a
   hierarchical dotted name (``lsu.0.stall_cycles``).
3. One snapshot/reset/diff API replaces the per-component
   ``reset_stats`` conventions and ad-hoc stats dicts.
"""


class Counter:
    """Monotonic tally.  Hot paths increment ``.value`` directly."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name=""):
        self.name = name
        self.value = 0

    def add(self, amount=1):
        self.value += amount

    def read(self):
        return self.value

    def reset(self):
        self.value = 0

    def __repr__(self):
        return "<Counter %s=%d>" % (self.name or "?", self.value)


class BoundCounter:
    """Counter view over a plain attribute a component owns.

    The hottest simulator loops (LSU ports, memory regions, cache tag
    lookups) bump their tallies millions of times per run; going
    through an instrument object there costs a measurable extra
    attribute hop.  A bound counter leaves the component's hot path as
    ``self.loads += 1`` on a plain int and gives the registry a
    read/reset view over it instead.
    """

    __slots__ = ("name", "owner", "attr")
    kind = "counter"

    def __init__(self, owner, attr, name=""):
        self.name = name
        self.owner = owner
        self.attr = attr

    @property
    def value(self):
        return getattr(self.owner, self.attr)

    def read(self):
        return getattr(self.owner, self.attr)

    def reset(self):
        setattr(self.owner, self.attr, 0)

    def __repr__(self):
        return "<BoundCounter %s=%r>" % (self.name or self.attr,
                                         self.read())


class Gauge:
    """Point-in-time value (last run's cycles, queue depth, ...)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name=""):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value

    def read(self):
        return self.value

    def reset(self):
        self.value = 0

    def __repr__(self):
        return "<Gauge %s=%r>" % (self.name or "?", self.value)


class Histogram:
    """Streaming summary (count/total/min/max) of observed samples.

    Kept to O(1) state — the simulator observes millions of samples, so
    storing them is off the table.  ``read()`` returns a summary dict,
    which is how histogram values appear in snapshots and reports.
    """

    __slots__ = ("name", "count", "total", "min", "max")
    kind = "histogram"

    def __init__(self, name=""):
        self.name = name
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def read(self):
        mean = self.total / self.count if self.count else 0.0
        return {"count": self.count, "total": self.total,
                "min": self.min, "max": self.max, "mean": mean}

    def reset(self):
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def __repr__(self):
        return "<Histogram %s n=%d>" % (self.name or "?", self.count)


class MetricsSnapshot:
    """Immutable name→value mapping taken from a registry.

    Histogram instruments appear as their summary dict; counters and
    gauges as plain numbers.  Snapshots support ``diff`` against an
    older snapshot, prefix filtering, and nesting into a tree for
    JSON reports.
    """

    def __init__(self, values):
        self._values = dict(values)

    def __getitem__(self, name):
        return self._values[name]

    def __contains__(self, name):
        return name in self._values

    def __iter__(self):
        return iter(sorted(self._values))

    def __len__(self):
        return len(self._values)

    def get(self, name, default=None):
        return self._values.get(name, default)

    def keys(self):
        return sorted(self._values)

    def items(self):
        return [(name, self._values[name]) for name in sorted(self._values)]

    def as_dict(self):
        return dict(self._values)

    def filter(self, prefix):
        """Snapshot restricted to names under *prefix* (dot-scoped)."""
        dotted = prefix + "."
        return MetricsSnapshot({
            name: value for name, value in self._values.items()
            if name == prefix or name.startswith(dotted)})

    def diff(self, older):
        """Numeric deltas ``self - older`` as a new snapshot.

        Names missing from *older* count from zero; non-numeric values
        (histogram summaries) diff their numeric fields.
        """
        deltas = {}
        for name, value in self._values.items():
            before = older.get(name, 0) if older is not None else 0
            if isinstance(value, dict):
                base = before if isinstance(before, dict) else {}
                deltas[name] = {
                    key: (value[key] or 0) - (base.get(key) or 0)
                    for key in ("count", "total")}
            else:
                deltas[name] = value - (before or 0)
        return MetricsSnapshot(deltas)

    def as_tree(self):
        """Nest dotted names into a dict-of-dicts (for JSON reports)."""
        tree = {}
        for name in sorted(self._values):
            node = tree
            parts = name.split(".")
            for part in parts[:-1]:
                child = node.setdefault(part, {})
                if not isinstance(child, dict):
                    # a leaf and a scope share a name; keep the leaf
                    # under an empty-string key inside the scope
                    child = node[part] = {"": child}
                node = child
            node[parts[-1]] = self._values[name]
        return tree

    def format(self, nonzero_only=False):
        """Fixed-width text listing, one metric per line."""
        lines = []
        for name, value in self.items():
            if nonzero_only and not value:
                continue
            if isinstance(value, dict):
                value = "n=%d total=%s" % (value.get("count", 0),
                                           value.get("total", 0))
            lines.append("%-36s %s" % (name, value))
        return "\n".join(lines)

    def __repr__(self):
        return "<MetricsSnapshot %d metrics>" % len(self._values)


class MetricsRegistry:
    """Index of instruments under hierarchical dotted names."""

    def __init__(self):
        self._instruments = {}

    # -- registration --------------------------------------------------------

    def register(self, name, instrument):
        """Adopt an existing instrument under *name* (unique)."""
        if name in self._instruments:
            raise ValueError("metric %r already registered" % name)
        instrument.name = name
        self._instruments[name] = instrument
        return instrument

    def counter(self, name):
        return self.register(name, Counter())

    def gauge(self, name):
        return self.register(name, Gauge())

    def histogram(self, name):
        return self.register(name, Histogram())

    def scope(self, prefix):
        """A view that prepends ``prefix.`` to every name."""
        return MetricsScope(self, prefix)

    # -- lookup --------------------------------------------------------------

    def get(self, name):
        return self._instruments[name]

    def __contains__(self, name):
        return name in self._instruments

    def __iter__(self):
        return iter(sorted(self._instruments))

    def __len__(self):
        return len(self._instruments)

    def names(self, prefix=None):
        if prefix is None:
            return sorted(self._instruments)
        dotted = prefix + "."
        return sorted(name for name in self._instruments
                      if name == prefix or name.startswith(dotted))

    # -- snapshot / reset ----------------------------------------------------

    def snapshot(self, prefix=None):
        names = self.names(prefix)
        return MetricsSnapshot({name: self._instruments[name].read()
                                for name in names})

    def reset(self, prefix=None):
        for name in self.names(prefix):
            self._instruments[name].reset()

    def __repr__(self):
        return "<MetricsRegistry %d instruments>" % len(self._instruments)


class MetricsScope:
    """Prefix-scoped facade over a registry (nestable)."""

    def __init__(self, registry, prefix):
        self.registry = registry
        self.prefix = prefix

    def _name(self, name):
        return "%s.%s" % (self.prefix, name)

    def register(self, name, instrument):
        return self.registry.register(self._name(name), instrument)

    def counter(self, name):
        return self.registry.counter(self._name(name))

    def gauge(self, name):
        return self.registry.gauge(self._name(name))

    def histogram(self, name):
        return self.registry.histogram(self._name(name))

    def scope(self, prefix):
        return MetricsScope(self.registry, self._name(prefix))

    def snapshot(self):
        return self.registry.snapshot(self.prefix)

    def reset(self):
        self.registry.reset(self.prefix)

    def __repr__(self):
        return "<MetricsScope %s>" % self.prefix
