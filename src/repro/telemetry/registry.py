"""Metrics registry: named counters, gauges and histograms.

Design constraints, in order:

1. The simulator's hot loops bump counters on every instruction, so an
   increment must stay a plain attribute write.  Hot components keep
   plain integer attributes (``self.loads += 1``) and register
   :class:`BoundCounter` views over them; colder components hold tiny
   ``__slots__`` instruments directly.  Either way the registry only
   indexes instruments, it never sits on the increment path.
2. Components must work standalone (unit tests build a bare
   :class:`~repro.cpu.lsu.LoadStoreUnit` or
   :class:`~repro.cpu.cache.Cache` with no processor around them), so
   instruments are created unattached and *registered* later under a
   hierarchical dotted name (``lsu.0.stall_cycles``).
3. One snapshot/reset/diff API replaces the per-component
   ``reset_stats`` conventions and ad-hoc stats dicts.
"""


class Counter:
    """Monotonic tally.  Hot paths increment ``.value`` directly."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name=""):
        self.name = name
        self.value = 0

    def add(self, amount=1):
        self.value += amount

    def read(self):
        return self.value

    def reset(self):
        self.value = 0

    def __repr__(self):
        return "<Counter %s=%d>" % (self.name or "?", self.value)


class BoundCounter:
    """Counter view over a plain attribute a component owns.

    The hottest simulator loops (LSU ports, memory regions, cache tag
    lookups) bump their tallies millions of times per run; going
    through an instrument object there costs a measurable extra
    attribute hop.  A bound counter leaves the component's hot path as
    ``self.loads += 1`` on a plain int and gives the registry a
    read/reset view over it instead.
    """

    __slots__ = ("name", "owner", "attr")
    kind = "counter"

    def __init__(self, owner, attr, name=""):
        self.name = name
        self.owner = owner
        self.attr = attr

    @property
    def value(self):
        return getattr(self.owner, self.attr)

    def read(self):
        return getattr(self.owner, self.attr)

    def reset(self):
        setattr(self.owner, self.attr, 0)

    def __repr__(self):
        return "<BoundCounter %s=%r>" % (self.name or self.attr,
                                         self.read())


class Gauge:
    """Point-in-time value (last run's cycles, queue depth, ...)."""

    __slots__ = ("name", "value")
    kind = "gauge"

    def __init__(self, name=""):
        self.name = name
        self.value = 0

    def set(self, value):
        self.value = value

    def read(self):
        return self.value

    def reset(self):
        self.value = 0

    def __repr__(self):
        return "<Gauge %s=%r>" % (self.name or "?", self.value)


class Histogram:
    """Streaming summary (count/total/min/max + quantiles) of samples.

    Kept to O(reservoir) state — the simulator observes millions of
    samples, so storing them all is off the table.  A bounded reservoir
    (Vitter's algorithm R with a private LCG, so runs stay
    deterministic and the global ``random`` state is untouched) backs
    nearest-rank p50/p95/p99 estimates; while ``count`` fits in the
    reservoir the quantiles are exact and independent of observation
    order.  ``read()`` returns a summary dict, which is how histogram
    values appear in snapshots and reports.
    """

    __slots__ = ("name", "count", "total", "min", "max", "samples",
                 "_lcg")
    kind = "histogram"

    #: Reservoir capacity; quantiles are exact up to this many samples.
    RESERVOIR = 512

    #: Quantiles published by :meth:`read` (tail latencies for serving).
    QUANTILES = ((0.50, "p50"), (0.95, "p95"), (0.99, "p99"))

    def __init__(self, name=""):
        self.name = name
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self.samples = []
        self._lcg = 0x9E3779B97F4A7C15

    def observe(self, value):
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self.samples) < self.RESERVOIR:
            self.samples.append(value)
        else:
            # 64-bit LCG (Knuth MMIX constants); replaces a random
            # slot with probability RESERVOIR / count.
            self._lcg = (self._lcg * 6364136223846793005
                         + 1442695040888963407) & 0xFFFFFFFFFFFFFFFF
            slot = self._lcg % self.count
            if slot < self.RESERVOIR:
                self.samples[slot] = value

    def quantile(self, q):
        """Nearest-rank quantile estimate from the reservoir."""
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1,
                          int(q * len(ordered) + 0.5) - 1))
        return ordered[rank]

    def read(self):
        mean = self.total / self.count if self.count else 0.0
        summary = {"count": self.count, "total": self.total,
                   "min": self.min, "max": self.max, "mean": mean}
        ordered = sorted(self.samples)
        for q, label in self.QUANTILES:
            if ordered:
                rank = max(0, min(len(ordered) - 1,
                                  int(q * len(ordered) + 0.5) - 1))
                summary[label] = ordered[rank]
            else:
                summary[label] = None
        return summary

    def reset(self):
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        del self.samples[:]
        self._lcg = 0x9E3779B97F4A7C15

    def __repr__(self):
        return "<Histogram %s n=%d>" % (self.name or "?", self.count)


class MetricsSnapshot:
    """Immutable name→value mapping taken from a registry.

    Histogram instruments appear as their summary dict; counters and
    gauges as plain numbers.  Snapshots support ``diff`` against an
    older snapshot, prefix filtering, and nesting into a tree for
    JSON reports.
    """

    def __init__(self, values):
        self._values = dict(values)

    def __getitem__(self, name):
        return self._values[name]

    def __contains__(self, name):
        return name in self._values

    def __iter__(self):
        return iter(sorted(self._values))

    def __len__(self):
        return len(self._values)

    def get(self, name, default=None):
        return self._values.get(name, default)

    def keys(self):
        return sorted(self._values)

    def items(self):
        return [(name, self._values[name]) for name in sorted(self._values)]

    def as_dict(self):
        return dict(self._values)

    def filter(self, prefix):
        """Snapshot restricted to names under *prefix* (dot-scoped)."""
        dotted = prefix + "."
        return MetricsSnapshot({
            name: value for name, value in self._values.items()
            if name == prefix or name.startswith(dotted)})

    def diff(self, older):
        """Numeric deltas ``self - older`` as a new snapshot.

        Names missing from *older* count from zero; non-numeric values
        (histogram summaries) diff their numeric fields.
        """
        deltas = {}
        for name, value in self._values.items():
            before = older.get(name, 0) if older is not None else 0
            if isinstance(value, dict):
                base = before if isinstance(before, dict) else {}
                deltas[name] = {
                    key: (value[key] or 0) - (base.get(key) or 0)
                    for key in ("count", "total")}
            else:
                deltas[name] = value - (before or 0)
        return MetricsSnapshot(deltas)

    def as_tree(self):
        """Nest dotted names into a dict-of-dicts (for JSON reports)."""
        tree = {}
        for name in sorted(self._values):
            node = tree
            parts = name.split(".")
            for part in parts[:-1]:
                child = node.setdefault(part, {})
                if not isinstance(child, dict):
                    # a leaf and a scope share a name; keep the leaf
                    # under an empty-string key inside the scope
                    child = node[part] = {"": child}
                node = child
            node[parts[-1]] = self._values[name]
        return tree

    def format(self, nonzero_only=False):
        """Fixed-width text listing, one metric per line."""
        lines = []
        for name, value in self.items():
            if nonzero_only and not value:
                continue
            if isinstance(value, dict):
                value = "n=%d total=%s" % (value.get("count", 0),
                                           value.get("total", 0))
            lines.append("%-36s %s" % (name, value))
        return "\n".join(lines)

    def __repr__(self):
        return "<MetricsSnapshot %d metrics>" % len(self._values)


class MetricsRegistry:
    """Index of instruments under hierarchical dotted names."""

    def __init__(self):
        self._instruments = {}

    # -- registration --------------------------------------------------------

    def register(self, name, instrument):
        """Adopt an existing instrument under *name* (unique)."""
        if name in self._instruments:
            raise ValueError("metric %r already registered" % name)
        instrument.name = name
        self._instruments[name] = instrument
        return instrument

    def counter(self, name):
        return self.register(name, Counter())

    def gauge(self, name):
        return self.register(name, Gauge())

    def histogram(self, name):
        return self.register(name, Histogram())

    def scope(self, prefix):
        """A view that prepends ``prefix.`` to every name."""
        return MetricsScope(self, prefix)

    # -- cross-process merging ------------------------------------------------

    def ensure(self, name, kind="counter"):
        """Get-or-create an instrument under *name*."""
        if name in self._instruments:
            return self._instruments[name]
        factory = {"counter": Counter, "gauge": Gauge,
                   "histogram": Histogram}[kind]
        return self.register(name, factory())

    def merge_values(self, values, prefix=None):
        """Fold a flat name→value mapping into this registry.

        The mapping is typically a child process's snapshot
        (``registry.snapshot().as_dict()`` shipped across the process
        boundary).  Numeric values accumulate into counters — merging
        the same worker prefix across batches keeps counting up — and
        dict values (histogram summaries) land in gauges holding the
        most recent summary.  *prefix* namespaces every merged name
        (``worker.0``).
        """
        for name in sorted(values):
            value = values[name]
            full = "%s.%s" % (prefix, name) if prefix else name
            if isinstance(value, dict):
                self.ensure(full, "gauge").set(value)
            elif isinstance(value, (int, float)):
                self.ensure(full, "counter").add(value)
        return self

    # -- lookup --------------------------------------------------------------

    def get(self, name):
        return self._instruments[name]

    def __contains__(self, name):
        return name in self._instruments

    def __iter__(self):
        return iter(sorted(self._instruments))

    def __len__(self):
        return len(self._instruments)

    def names(self, prefix=None):
        if prefix is None:
            return sorted(self._instruments)
        dotted = prefix + "."
        return sorted(name for name in self._instruments
                      if name == prefix or name.startswith(dotted))

    # -- snapshot / reset ----------------------------------------------------

    def snapshot(self, prefix=None):
        names = self.names(prefix)
        return MetricsSnapshot({name: self._instruments[name].read()
                                for name in names})

    def reset(self, prefix=None):
        for name in self.names(prefix):
            self._instruments[name].reset()

    def __repr__(self):
        return "<MetricsRegistry %d instruments>" % len(self._instruments)


class MetricsScope:
    """Prefix-scoped facade over a registry (nestable)."""

    def __init__(self, registry, prefix):
        self.registry = registry
        self.prefix = prefix

    def _name(self, name):
        return "%s.%s" % (self.prefix, name)

    def register(self, name, instrument):
        return self.registry.register(self._name(name), instrument)

    def counter(self, name):
        return self.registry.counter(self._name(name))

    def gauge(self, name):
        return self.registry.gauge(self._name(name))

    def histogram(self, name):
        return self.registry.histogram(self._name(name))

    def scope(self, prefix):
        return MetricsScope(self.registry, self._name(prefix))

    def snapshot(self):
        return self.registry.snapshot(self.prefix)

    def reset(self):
        self.registry.reset(self.prefix)

    def __repr__(self):
        return "<MetricsScope %s>" % self.prefix
