"""Unified observability layer for the simulator stack.

The paper's methodology is built on observing the simulated core:
cycle-accurate profiling is step 1 of the Figure 4 tool flow and every
number in Section 5 is a counter read off the instruction-set
simulator.  This package is the one place those observations live:

:mod:`repro.telemetry.registry`
    Named, hierarchically-scoped counters/gauges/histograms
    (``cpu.dcache.hits``, ``lsu.0.stall_cycles``, ``dma.descriptors``)
    with a single snapshot/reset/diff API.  Simulator components own
    their instruments (plain attribute increments on the hot path) and
    register them into the :class:`MetricsRegistry` of the processor
    that hosts them.

:mod:`repro.telemetry.tracer`
    Chrome trace-event JSON construction (``chrome://tracing`` /
    Perfetto loadable) used by :class:`repro.cpu.trace.PipelineTracer`
    to make the Figure 10 pipeline interleaving visually inspectable.

:mod:`repro.telemetry.report`
    Structured run reports: :class:`RunStats` (the dict-compatible
    view behind ``RunResult.stats``) and :class:`RunReport`, the JSON
    artifact emitted by ``repro run --json`` and the experiment and
    benchmark harnesses.

:mod:`repro.telemetry.querytrace`
    Query/batch-scoped trace contexts for the serving stack:
    dual wall-clock + modeled-cycle timelines that cross the worker
    process boundary and merge into one Perfetto trace.

:mod:`repro.telemetry.export`
    Metrics export: Prometheus text exposition and periodic JSONL
    flushing of any registry.

:mod:`repro.telemetry.history`
    The in-repo perf trajectory: ``BENCH_history.json`` entries
    distilled from ``BENCH_*.json`` artifacts and the
    ``repro bench compare`` regression gate.

This package is dependency-free (it never imports :mod:`repro.cpu`) so
every simulator layer can use it without cycles.
"""

from .export import JsonlExporter, render_prometheus, write_prometheus
from .querytrace import (QueryTracer, build_chrome_trace, trace_report,
                         write_query_trace)
from .registry import (BoundCounter, Counter, Gauge, Histogram,
                       MetricsRegistry, MetricsScope, MetricsSnapshot)
from .report import RunReport, RunStats
from .tracer import ChromeTraceBuilder, write_chrome_trace

__all__ = [
    "BoundCounter", "Counter", "Gauge", "Histogram",
    "MetricsRegistry", "MetricsScope", "MetricsSnapshot",
    "RunReport", "RunStats",
    "ChromeTraceBuilder", "write_chrome_trace",
    "QueryTracer", "build_chrome_trace", "trace_report",
    "write_query_trace",
    "JsonlExporter", "render_prometheus", "write_prometheus",
]
