"""In-repo perf-regression trajectory over ``BENCH_*.json`` artifacts.

The benchmark harness writes one ``BENCH_<name>.json`` per run
(``BENCH_REPORT_DIR``, see benchmarks/conftest.py) — but until now the
artifacts were uploaded from CI and immediately forgotten, so nobody
could tell whether the speed story was compounding (ROADMAP item 5b).
This module keeps the trajectory *in the repository*:

* :func:`collect_reports` gathers a directory of ``BENCH_*.json``
  artifacts and :func:`entry_from_reports` distills each into the
  small set of comparable numbers (cycles, CPI, throughput,
  queries/s, speedups — full artifacts stay in CI storage).
* ``BENCH_history.json`` (:data:`BENCH_HISTORY_SCHEMA`) is an
  append-only list of those entries, one per PR, committed to the
  repo (``repro bench record``).
* :func:`compare` diffs a fresh run against the last recorded entry
  with direction-aware thresholds; ``repro bench compare`` exits
  nonzero on regressions — the CI gate.

Metrics are classified by name.  *Deterministic* metrics (modeled
cycles, instructions, CPI, model-derived throughput) gate the build:
the simulator is deterministic, so any drift is a real change.
*Noisy* metrics (wall-clock seconds, queries/s, host speedups) are
reported but only gate with ``--include-noisy`` — CI machines jitter
far more than real regressions of interest.
"""

import json
import os
import re
import time

BENCH_HISTORY_SCHEMA = "repro.bench-history/v1"

_BENCH_FILE = re.compile(r"^BENCH_(?P<slug>[A-Za-z0-9_.-]+)\.json$")

#: Subtrees never mined for comparable metrics (bulky or run-local).
_SKIP_KEYS = frozenset({"metrics", "meta", "engine_metrics", "derived",
                        "stalls", "caches"})

#: Metric leaves pulled from outside the skipped subtrees, by suffix.
_LOWER_BETTER = ("cycles", "seconds", "cpi", "latency_us")
_HIGHER_BETTER = ("per_second", "qps", "speedup", "throughput_meps",
                  "meps", "rate")
#: Wall-clock-derived names: host jitter, not model truth.
_NOISY = ("seconds", "per_second", "qps", "speedup", "rate")


def classify(path):
    """``(direction, noisy)`` for a metric path, or ``None``.

    *direction* is ``"lower"`` or ``"higher"`` (which way is better);
    unclassified paths are not tracked at all.
    """
    leaf = path.rsplit(".", 1)[-1]
    direction = None
    for suffix in _LOWER_BETTER:
        if leaf == suffix or leaf.endswith("_" + suffix):
            direction = "lower"
    for suffix in _HIGHER_BETTER:
        if leaf == suffix or leaf.endswith("_" + suffix):
            direction = "higher"
    if direction is None:
        return None
    noisy = any(leaf == suffix or leaf.endswith("_" + suffix)
                for suffix in _NOISY)
    return direction, noisy


def _flatten(payload, prefix=""):
    flat = {}
    for key in sorted(payload):
        if key in _SKIP_KEYS:
            continue
        value = payload[key]
        path = "%s.%s" % (prefix, key) if prefix else key
        if isinstance(value, dict):
            flat.update(_flatten(value, path))
        elif isinstance(value, (int, float)) \
                and not isinstance(value, bool):
            flat[path] = value
    return flat


def extract_metrics(payload):
    """The comparable metric values of one BENCH artifact."""
    # run-report artifacts keep throughput under derived.*; surface it
    # (and CPI) before the generic skip of that bulky subtree.
    extra = {}
    derived = payload.get("derived")
    if isinstance(derived, dict):
        for key in ("throughput_meps", "cpi"):
            value = derived.get(key)
            if isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                extra[key] = value
    flat = _flatten(payload)
    flat.update(extra)
    return {path: value for path, value in sorted(flat.items())
            if classify(path) is not None}


def collect_reports(directory):
    """``{slug: payload}`` for every ``BENCH_*.json`` in *directory*."""
    reports = {}
    for filename in sorted(os.listdir(directory)):
        match = _BENCH_FILE.match(filename)
        if not match:
            continue
        with open(os.path.join(directory, filename)) as handle:
            reports[match.group("slug")] = json.load(handle)
    return reports


def entry_from_reports(reports, label="local", timestamp=None):
    """One history entry distilled from collected artifacts."""
    return {
        "label": label,
        "timestamp": time.time() if timestamp is None else timestamp,
        "benchmarks": {slug: extract_metrics(payload)
                       for slug, payload in sorted(reports.items())},
    }


# -- history file -------------------------------------------------------------

def load_history(path):
    if not os.path.exists(path):
        return {"schema": BENCH_HISTORY_SCHEMA, "entries": []}
    with open(path) as handle:
        history = json.load(handle)
    if history.get("schema") != BENCH_HISTORY_SCHEMA:
        raise ValueError("unsupported history schema %r"
                         % (history.get("schema"),))
    return history


def save_history(path, history):
    with open(path, "w") as handle:
        json.dump(history, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def append_entry(path, entry):
    """Append *entry* to the history file at *path*; returns it."""
    history = load_history(path)
    history["entries"].append(entry)
    save_history(path, history)
    return history


# -- comparison ---------------------------------------------------------------

class BenchComparison:
    """Row-per-metric diff of a fresh run against a baseline entry."""

    def __init__(self, rows, threshold, baseline_label):
        self.rows = rows
        self.threshold = threshold
        self.baseline_label = baseline_label

    @property
    def regressions(self):
        return [row for row in self.rows
                if row["status"] == "regression"]

    @property
    def ok(self):
        return not self.regressions

    def to_dict(self):
        return {"baseline": self.baseline_label,
                "threshold": self.threshold,
                "ok": self.ok,
                "rows": self.rows}

    def format(self):
        lines = ["bench compare vs %r (threshold %.0f%%)"
                 % (self.baseline_label, self.threshold * 100)]
        for row in self.rows:
            change = ""
            if row["baseline"] and row["current"] is not None \
                    and row["baseline"] != 0:
                change = " %+.1f%%" % (
                    (row["current"] / row["baseline"] - 1.0) * 100)
            flags = []
            if row["noisy"]:
                flags.append("noisy")
            if not row["gated"]:
                flags.append("informational")
            note = " [%s]" % ", ".join(flags) if flags else ""
            lines.append(
                "  %-10s %-28s %-22s %s -> %s%s%s"
                % (row["status"], row["benchmark"], row["metric"],
                   row["baseline"], row["current"], change, note))
        lines.append("result: %s (%d regressions)"
                     % ("ok" if self.ok else "REGRESSED",
                        len(self.regressions)))
        return "\n".join(lines)


def compare(current_benchmarks, baseline_entry, threshold=0.2,
            include_noisy=False):
    """Diff current metric values against a baseline history entry.

    Regression means "worse than baseline by more than *threshold*"
    in the metric's better-direction; noisy (wall-clock) metrics only
    gate when *include_noisy* is set.  Benchmarks or metrics present
    on one side only are reported as ``new`` / ``missing`` and never
    gate.
    """
    baseline_benchmarks = baseline_entry.get("benchmarks", {})
    rows = []
    slugs = sorted(set(current_benchmarks) | set(baseline_benchmarks))
    for slug in slugs:
        current = current_benchmarks.get(slug)
        baseline = baseline_benchmarks.get(slug)
        if current is None or baseline is None:
            rows.append({
                "benchmark": slug, "metric": "*",
                "baseline": None if baseline is None else "present",
                "current": None if current is None else "present",
                "direction": None, "noisy": False, "gated": False,
                "status": "missing" if current is None else "new"})
            continue
        for metric in sorted(set(current) | set(baseline)):
            if metric not in current or metric not in baseline:
                rows.append({
                    "benchmark": slug, "metric": metric,
                    "baseline": baseline.get(metric),
                    "current": current.get(metric),
                    "direction": None, "noisy": False, "gated": False,
                    "status": "missing" if metric not in current
                    else "new"})
                continue
            direction, noisy = classify(metric)
            gated = include_noisy or not noisy
            status = _judge(current[metric], baseline[metric],
                            direction, threshold)
            if status == "regression" and not gated:
                status = "noisy-regression"
            rows.append({
                "benchmark": slug, "metric": metric,
                "baseline": baseline[metric],
                "current": current[metric],
                "direction": direction, "noisy": noisy,
                "gated": gated, "status": status})
    return BenchComparison(rows, threshold,
                           baseline_entry.get("label", "?"))


def _judge(current, baseline, direction, threshold):
    if baseline == 0:
        return "ok"
    ratio = current / baseline
    if direction == "lower":
        if ratio > 1.0 + threshold:
            return "regression"
        if ratio < 1.0 - threshold:
            return "improved"
    else:
        if ratio < 1.0 - threshold:
            return "regression"
        if ratio > 1.0 + threshold:
            return "improved"
    return "ok"


def compare_reports_dir(reports_dir, history_path, threshold=0.2,
                        include_noisy=False):
    """Convenience: collect a run directory, diff vs the last entry.

    Raises :class:`FileNotFoundError` if the history has no entries —
    a missing baseline should fail loudly in CI, not pass silently.
    """
    history = load_history(history_path)
    if not history["entries"]:
        raise FileNotFoundError("no baseline entries in %s"
                                % history_path)
    reports = collect_reports(reports_dir)
    current = {slug: extract_metrics(payload)
               for slug, payload in sorted(reports.items())}
    return compare(current, history["entries"][-1],
                   threshold=threshold, include_noisy=include_noisy)
