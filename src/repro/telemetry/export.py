"""Metrics export: Prometheus text exposition and JSONL flushing.

Two export surfaces for any :class:`~repro.telemetry.registry.
MetricsRegistry` (or a plain snapshot shipped across a process
boundary):

:func:`render_prometheus`
    The Prometheus text exposition format (version 0.0.4) — what a
    ``/metrics`` endpoint of the future network server returns, and
    what the CI exporter smoke test parses.  Counters and gauges
    become single samples; histograms become a ``summary`` family
    (``_count`` / ``_sum`` plus ``{quantile="..."}`` samples from the
    reservoir estimates).

:class:`JsonlExporter`
    Periodic JSONL flushing: one JSON object per line, each a
    timestamped snapshot — the append-only metrics trail long serving
    runs (``repro db top``, soak tests) leave behind.  Flushing is
    cooperative (:meth:`~JsonlExporter.maybe_flush` from the serving
    loop) rather than a background thread, so exports never race the
    registry and tests can inject a fake clock.

Both exporters are read-only over the registry and dependency-free,
like the rest of :mod:`repro.telemetry`.
"""

import json
import re
import time

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Quantile labels a histogram summary publishes, mapped from the
#: summary-dict keys produced by ``Histogram.read()``.
_QUANTILE_KEYS = (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99"))


def prometheus_name(name, namespace="repro"):
    """A dotted metric name as a legal Prometheus metric name."""
    flat = _NAME_RE.sub("_", name.replace(".", "_"))
    if namespace:
        flat = "%s_%s" % (namespace, flat)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return flat


def _instrument_kinds(registry_or_snapshot):
    """(name, kind, value) triples from a registry or snapshot.

    A registry knows its instrument kinds; from a bare snapshot the
    kind is inferred — dict values are histogram summaries, numbers
    are exported as gauges (the conservative choice: a gauge carries
    no monotonicity promise).
    """
    triples = []
    if hasattr(registry_or_snapshot, "get") \
            and hasattr(registry_or_snapshot, "names"):
        registry = registry_or_snapshot
        for name in registry.names():
            instrument = registry.get(name)
            triples.append((name, instrument.kind, instrument.read()))
        return triples
    snapshot = registry_or_snapshot
    values = snapshot.as_dict() if hasattr(snapshot, "as_dict") \
        else dict(snapshot)
    for name in sorted(values):
        value = values[name]
        kind = "histogram" if isinstance(value, dict) else "gauge"
        triples.append((name, kind, value))
    return triples


def render_prometheus(registry_or_snapshot, namespace="repro"):
    """The Prometheus text exposition of a registry or snapshot."""
    lines = []
    for name, kind, value in _instrument_kinds(registry_or_snapshot):
        flat = prometheus_name(name, namespace)
        if kind == "histogram":
            summary = value if isinstance(value, dict) else {}
            lines.append("# TYPE %s summary" % flat)
            for key, quantile in _QUANTILE_KEYS:
                sample = summary.get(key)
                if sample is not None:
                    lines.append('%s{quantile="%s"} %s'
                                 % (flat, quantile, _format(sample)))
            lines.append("%s_sum %s"
                         % (flat, _format(summary.get("total", 0))))
            lines.append("%s_count %s"
                         % (flat, _format(summary.get("count", 0))))
        else:
            prom_kind = "counter" if kind == "counter" else "gauge"
            lines.append("# TYPE %s %s" % (flat, prom_kind))
            lines.append("%s %s" % (flat, _format(value)))
    return "\n".join(lines) + "\n"


def _format(value):
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, int):
        return str(value)
    return "0"


def write_prometheus(path, registry_or_snapshot, namespace="repro"):
    """Write the text exposition to *path* (node-exporter style)."""
    with open(path, "w") as handle:
        handle.write(render_prometheus(registry_or_snapshot, namespace))
    return path


class JsonlExporter:
    """Appends timestamped registry snapshots to a JSONL file.

    *interval* gates :meth:`maybe_flush` (seconds between flushes;
    ``None`` flushes every call).  *clock* and *wall* are injectable
    for deterministic tests; they default to :func:`time.monotonic`
    and :func:`time.time`.
    """

    def __init__(self, path, interval=None, clock=None, wall=None):
        self.path = path
        self.interval = interval
        self.flushes = 0
        self._clock = clock or time.monotonic
        self._wall = wall or time.time
        self._last_flush = None

    def flush(self, registry_or_snapshot, label=None):
        """Append one snapshot line unconditionally."""
        values = registry_or_snapshot.snapshot().as_dict() \
            if hasattr(registry_or_snapshot, "snapshot") \
            else (registry_or_snapshot.as_dict()
                  if hasattr(registry_or_snapshot, "as_dict")
                  else dict(registry_or_snapshot))
        record = {"ts": self._wall(), "metrics": values}
        if label is not None:
            record["label"] = label
        with open(self.path, "a") as handle:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
        self._last_flush = self._clock()
        self.flushes += 1
        return record

    def maybe_flush(self, registry_or_snapshot, label=None):
        """Flush if *interval* has elapsed since the last flush."""
        now = self._clock()
        if self._last_flush is not None and self.interval is not None \
                and now - self._last_flush < self.interval:
            return None
        return self.flush(registry_or_snapshot, label=label)

    def __repr__(self):
        return "<JsonlExporter %s flushes=%d>" % (self.path,
                                                  self.flushes)


def read_jsonl(path):
    """Load every snapshot record from a JSONL metrics file."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
