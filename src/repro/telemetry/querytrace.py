"""Query-level trace contexts for the serving stack.

The simulator-side :class:`~repro.cpu.trace.PipelineTracer` stops at
one processor's issue loop; serving a query batch crosses layers (plan,
index scans, cached reuse, kernel launches, row fetch) and — with
worker pools — process boundaries.  A :class:`QueryTracer` is the
batch-scoped context that survives both:

* **Dual timelines.**  Wall-clock spans (microseconds from the
  tracer's origin, ``time.perf_counter``) show where serving *time*
  goes; modeled-cycle spans place every cycle-charged kernel launch on
  a second timeline measured in *modeled cycles*, attributed to its
  source (``costmodel`` vs ``iss``) from the query's
  ``cycles_by_source`` accounting.  In Perfetto the two appear as
  sibling tracks per process.

* **Cross-process propagation.**  The engine creates one tracer per
  batch; each worker subprocess creates its own
  (``_serve_worker_chunk``), serializes it with :meth:`to_payload`,
  and the parent reattaches it via :meth:`add_child`.  The merged
  export (:func:`build_chrome_trace` / :func:`write_query_trace`)
  renders one Perfetto trace with one process group per worker.

* **Bounded recording.**  Events past ``limit`` are counted in
  :attr:`dropped` — mirrored into the export — never silently lost;
  the modeled-cycle cursor still advances so totals stay truthful.

:func:`trace_report` digests the modeled-cycle timelines into a
deterministic JSON document (wall-clock excluded, spans grouped by
query index and re-based) that is byte-identical however the batch was
chunked across workers — the anchor for the cross-process merge tests.
"""

import time

from .tracer import ChromeTraceBuilder

QUERY_TRACE_SCHEMA = "repro.query-trace/v1"
QUERY_TRACE_REPORT_SCHEMA = "repro.query-trace-report/v1"

#: Lane ids inside one process group of the merged export.
WALL_LANE = 0
CYCLE_LANE = 1


class _WallSpan:
    """Context manager recording one wall-clock span on exit."""

    __slots__ = ("tracer", "name", "args", "start")

    def __init__(self, tracer, name, args):
        self.tracer = tracer
        self.name = name
        self.args = args

    def __enter__(self):
        self.start = self.tracer._now_us()
        return self

    def __exit__(self, exc_type, exc, tb):
        self.tracer.wall(self.name, self.start,
                         self.tracer._now_us() - self.start, self.args)
        return False


class QueryTracer:
    """Per-batch trace context: wall-clock + modeled-cycle timelines."""

    def __init__(self, label="engine", limit=100_000):
        self.label = label
        self.limit = limit
        #: Wall-clock spans: ``(start_us, duration_us, name, args)``.
        self.wall_events = []
        #: Modeled-cycle spans:
        #: ``(start_cycle, cycles, name, source, args)``.
        self.cycle_events = []
        self.dropped = 0
        #: Next free position on the modeled-cycle timeline.
        self.cycle_cursor = 0
        #: Payload dicts reattached from worker subprocesses.
        self.children = []
        self._origin = time.perf_counter()

    # -- recording -----------------------------------------------------------

    def _now_us(self):
        return (time.perf_counter() - self._origin) * 1e6

    def _room(self):
        if len(self.wall_events) + len(self.cycle_events) < self.limit:
            return True
        self.dropped += 1
        return False

    def span(self, name, **args):
        """``with tracer.span("fetch", query=3): ...`` wall span."""
        return _WallSpan(self, name, args or None)

    def wall(self, name, start_us, duration_us, args=None):
        """Record one wall-clock span directly."""
        if self._room():
            self.wall_events.append((start_us, duration_us, name, args))

    def cycles(self, name, cycles, source, args=None):
        """Record *cycles* modeled cycles attributed to *source*.

        The span lands at the current cycle cursor, which advances even
        when the event itself is dropped past ``limit`` so the
        timeline's total length stays truthful.
        """
        start = self.cycle_cursor
        self.cycle_cursor += cycles
        if self._room():
            self.cycle_events.append((start, cycles, name, source, args))

    # -- cross-process -------------------------------------------------------

    def to_payload(self):
        """Picklable/JSON-able snapshot (children not included)."""
        return {
            "schema": QUERY_TRACE_SCHEMA,
            "label": self.label,
            "limit": self.limit,
            "dropped": self.dropped,
            "cycle_total": self.cycle_cursor,
            "wall": [list(event) for event in self.wall_events],
            "cycles": [list(event) for event in self.cycle_events],
        }

    def add_child(self, payload):
        """Reattach a worker subprocess's :meth:`to_payload` dict."""
        if not isinstance(payload, dict) \
                or payload.get("schema") != QUERY_TRACE_SCHEMA:
            raise ValueError("not a query-trace payload: %r"
                             % (payload,))
        self.children.append(payload)

    @property
    def total_dropped(self):
        """Dropped events across this tracer and attached children."""
        return self.dropped + sum(child.get("dropped", 0)
                                  for child in self.children)

    def payloads(self):
        """This tracer's payload followed by its children's."""
        return [self.to_payload()] + list(self.children)

    def __repr__(self):
        return ("<QueryTracer %s %d wall + %d cycle events, "
                "%d children>" % (self.label, len(self.wall_events),
                                  len(self.cycle_events),
                                  len(self.children)))


# -- merged Perfetto export ---------------------------------------------------

def _emit_process(builder, pid, payload, sort_index=None):
    builder.process(pid, payload.get("label") or ("process %d" % pid),
                    sort_index=sort_index)
    builder.thread(WALL_LANE, "wall clock (us)", sort_index=0, pid=pid)
    builder.thread(CYCLE_LANE, "modeled cycles", sort_index=1, pid=pid)
    last_ts = 0
    for start, duration, name, args in payload.get("wall", ()):
        builder.complete(WALL_LANE, name, start, duration,
                         category="wall", args=args, pid=pid)
        last_ts = max(last_ts, start + duration)
    for start, cycles, name, source, args in payload.get("cycles", ()):
        merged = dict(args or {})
        merged["source"] = source
        builder.complete(CYCLE_LANE, name, start, cycles,
                         category=source, args=merged, pid=pid)
    dropped = payload.get("dropped", 0)
    if dropped:
        builder.instant(WALL_LANE, "%d events dropped" % dropped,
                        last_ts, pid=pid)


def build_chrome_trace(tracer):
    """One Perfetto trace: the engine plus one process per worker."""
    builder = ChromeTraceBuilder(
        process_name="%s (query serving)" % tracer.label, pid=1)
    _emit_process(builder, 1, tracer.to_payload(), sort_index=0)
    for index, child in enumerate(tracer.children):
        _emit_process(builder, 2 + index, child, sort_index=1 + index)
    return builder


def write_query_trace(path, tracer, indent=None):
    """Write the merged batch trace as Chrome trace-event JSON."""
    return build_chrome_trace(tracer).write(path, indent=indent)


# -- deterministic digest -----------------------------------------------------

def trace_report(tracer):
    """Deterministic digest of the modeled-cycle timelines.

    Wall-clock values are excluded and per-query cycle spans are
    grouped by the ``query`` index in their args, re-based to offsets
    within the query — the result is byte-identical (under
    ``json.dumps(..., sort_keys=True)``) regardless of how the batch
    was chunked across worker processes, which is what the
    ``workers=1`` vs ``workers=4`` merge tests pin down.
    """
    per_query = {}
    totals = {}
    dropped = 0
    for payload in tracer.payloads():
        dropped += payload.get("dropped", 0)
        for _start, cycles, name, source, args in \
                payload.get("cycles", ()):
            index = (args or {}).get("query")
            if index is None:
                continue
            per_query.setdefault(index, []).append(
                (name, cycles, source))
            totals[source] = totals.get(source, 0) + cycles
    spans = []
    for index in sorted(per_query):
        offset = 0
        events = []
        for name, cycles, source in per_query[index]:
            events.append({"name": name, "offset": offset,
                           "cycles": cycles, "source": source})
            offset += cycles
        spans.append({"query": index, "cycles": offset,
                      "events": events})
    return {
        "schema": QUERY_TRACE_REPORT_SCHEMA,
        "queries": len(spans),
        "dropped": dropped,
        "cycles_by_source": {source: totals[source]
                             for source in sorted(totals)},
        "spans": spans,
    }
