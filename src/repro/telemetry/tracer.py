"""Chrome trace-event JSON construction.

The trace-event format is the JSON schema understood by
``chrome://tracing`` and https://ui.perfetto.dev: a ``traceEvents``
list whose entries carry a phase (``ph``), a timestamp in microseconds
(``ts``), and process/thread ids that become swim lanes in the viewer.
The simulator maps **one core cycle to one microsecond**, so the
viewer's time ruler reads directly in cycles.

Only the tiny subset the simulator needs is implemented:

``X``  complete events (a span with ``ts`` + ``dur``)
``i``  instant events (a zero-width marker)
``C``  counter events (stacked-area counter tracks)
``M``  metadata events (process/thread names, sort order)

See docs/OBSERVABILITY.md for the export workflow.
"""

import json


class ChromeTraceBuilder:
    """Accumulates trace events and serializes the JSON object form.

    A builder carries a default ``pid`` (single-process traces never
    pass one), but every event method accepts a ``pid`` override and
    :meth:`process` names additional process groups — the multi-process
    form the query-engine worker traces use (one Perfetto process per
    worker, see :mod:`repro.telemetry.querytrace`).
    """

    def __init__(self, process_name="repro simulator", pid=1):
        self.pid = pid
        self.events = []
        self._named_threads = set()
        self._named_processes = set()
        self.process(pid, process_name)

    def process(self, pid, name, sort_index=None):
        """Name a process group; idempotent per pid."""
        if pid in self._named_processes:
            return
        self._named_processes.add(pid)
        self.events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": name}})
        if sort_index is not None:
            self.events.append({
                "ph": "M", "name": "process_sort_index", "pid": pid,
                "tid": 0, "args": {"sort_index": sort_index}})

    def thread(self, tid, name, sort_index=None, pid=None):
        """Name a swim lane; idempotent per (pid, tid)."""
        pid = self.pid if pid is None else pid
        if (pid, tid) in self._named_threads:
            return
        self._named_threads.add((pid, tid))
        self.events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
            "args": {"name": name}})
        if sort_index is not None:
            self.events.append({
                "ph": "M", "name": "thread_sort_index", "pid": pid,
                "tid": tid, "args": {"sort_index": sort_index}})

    def complete(self, tid, name, start, duration, category="sim",
                 args=None, pid=None):
        """A span [start, start+duration) in cycles on lane *tid*."""
        event = {"ph": "X", "name": name, "cat": category,
                 "ts": start, "dur": max(duration, 1),
                 "pid": self.pid if pid is None else pid, "tid": tid}
        if args:
            event["args"] = args
        self.events.append(event)

    def instant(self, tid, name, timestamp, category="sim", args=None,
                pid=None):
        event = {"ph": "i", "name": name, "cat": category,
                 "ts": timestamp, "s": "t",
                 "pid": self.pid if pid is None else pid, "tid": tid}
        if args:
            event["args"] = args
        self.events.append(event)

    def counter(self, name, timestamp, values, pid=None):
        """Sample a counter track; *values* maps series name → number."""
        self.events.append({"ph": "C", "name": name, "ts": timestamp,
                            "pid": self.pid if pid is None else pid,
                            "tid": 0, "args": dict(values)})

    def to_dict(self):
        return {
            "traceEvents": list(self.events),
            "displayTimeUnit": "ms",
            "otherData": {"timeUnit": "1 cycle = 1 us"},
        }

    def to_json(self, indent=None):
        return json.dumps(self.to_dict(), indent=indent)

    def write(self, path, indent=None):
        with open(path, "w") as handle:
            handle.write(self.to_json(indent=indent))
        return path

    def __len__(self):
        return len(self.events)

    def __repr__(self):
        return "<ChromeTraceBuilder %d events>" % len(self.events)


def write_chrome_trace(path, builder_or_dict, indent=None):
    """Write a builder (or an already-shaped dict) as a trace file."""
    if isinstance(builder_or_dict, ChromeTraceBuilder):
        payload = builder_or_dict.to_dict()
    else:
        payload = builder_or_dict
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=indent)
    return path


def validate_chrome_trace(payload):
    """Sanity-check the trace-event object form; raises ValueError.

    Used by tests and by ``repro report`` when pointed at a trace file:
    catches schema drift before a user round-trips through Perfetto.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace must be a JSON object with traceEvents")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    for event in events:
        phase = event.get("ph")
        if phase not in ("X", "i", "C", "M"):
            raise ValueError("unsupported phase %r" % (phase,))
        if "name" not in event or "pid" not in event:
            raise ValueError("event missing name/pid: %r" % (event,))
        if phase in ("X", "i", "C") and "ts" not in event:
            raise ValueError("timed event missing ts: %r" % (event,))
        if phase == "X" and "dur" not in event:
            raise ValueError("complete event missing dur: %r" % (event,))
    return payload
