"""Structured run statistics and machine-readable run reports.

:class:`RunStats` is what ``RunResult.stats`` now returns: a real dict
carrying the legacy flat keys every existing consumer indexes
(``stats["lsu_loads"]``, ``stats["dcache_hits"]``), plus the full
hierarchical registry snapshot behind a ``.snapshot`` attribute and a
``metric()`` accessor for namespaced reads.

:class:`RunReport` is the serialized artifact: workload + config
identity, raw counters, and the derived metrics the paper reports
(CPI, Melem/s, stall breakdown, cache hit rates), written as JSON by
``repro run --json``, ``repro experiments --artifacts`` and the
benchmark harness.
"""

import json

#: Schema tag embedded in every serialized report so downstream tooling
#: can reject artifacts from incompatible versions.
RUN_REPORT_SCHEMA = "repro.run-report/v1"


class RunStats(dict):
    """Legacy-keyed stats dict backed by a registry snapshot."""

    def __init__(self, legacy=None, snapshot=None):
        super().__init__(legacy or {})
        self.snapshot = snapshot

    def metric(self, name, default=0):
        """Read a namespaced metric (``lsu.0.stall_cycles``)."""
        if self.snapshot is None:
            return default
        return self.snapshot.get(name, default)

    def namespaced(self):
        """The full hierarchical snapshot as a flat dict."""
        return self.snapshot.as_dict() if self.snapshot is not None else {}


def _stall_breakdown(cycles, stats):
    """Where the cycles went, in the paper's Section 5 vocabulary."""
    lsu_stalls = list(stats.get("lsu_stall_cycles", ()))
    interlock = stats.get("interlock_stalls", 0)
    total_lsu = sum(lsu_stalls)
    breakdown = {
        "interlock_stalls": interlock,
        "lsu_stall_cycles": lsu_stalls,
        "lsu_stall_total": total_lsu,
        "taken_redirects": stats.get("taken_redirects", 0),
    }
    if cycles:
        breakdown["stall_fraction"] = min(
            1.0, (interlock + total_lsu) / cycles)
    return breakdown


def _cache_rates(stats):
    """Hit rates per cache; empty dict when the config has none."""
    caches = {}
    snapshot = getattr(stats, "snapshot", None)
    prefixes = ()
    if snapshot is not None:
        prefixes = sorted({name.rsplit(".", 1)[0] for name in snapshot
                           if name.endswith(".hits")})
    for prefix in prefixes:
        hits = snapshot.get(prefix + ".hits", 0)
        misses = snapshot.get(prefix + ".misses", 0)
        total = hits + misses
        caches[prefix.split(".")[-1]] = {
            "hits": hits, "misses": misses,
            "hit_rate": hits / total if total else 1.0,
        }
    if not caches and "dcache_hits" in stats:
        hits = stats["dcache_hits"]
        misses = stats["dcache_misses"]
        total = hits + misses
        caches["dcache"] = {
            "hits": hits, "misses": misses,
            "hit_rate": hits / total if total else 1.0,
        }
    return caches


class RunReport:
    """One simulated run, serializable to/from JSON."""

    def __init__(self, workload, config, cycles, instructions,
                 derived=None, metrics=None, meta=None):
        self.workload = workload
        self.config = config
        self.cycles = cycles
        self.instructions = instructions
        self.derived = dict(derived or {})
        self.metrics = dict(metrics or {})
        self.meta = dict(meta or {})

    # -- construction --------------------------------------------------------

    @classmethod
    def from_run(cls, result, workload="", config="", elements=None,
                 clock_mhz=None, meta=None):
        """Build a report from a :class:`repro.cpu.RunResult`.

        *elements* and *clock_mhz* enable the paper's throughput metric
        (Melem/s, Section 5.2); both must be given together.
        """
        stats = result.stats if isinstance(result.stats, dict) else {}
        cycles = result.cycles
        derived = {
            "cpi": result.cycles / result.instructions
            if result.instructions else 0.0,
            "stalls": _stall_breakdown(cycles, stats),
            "caches": _cache_rates(stats),
        }
        if elements is not None:
            derived["elements"] = elements
            if cycles and clock_mhz:
                derived["throughput_meps"] = \
                    elements * clock_mhz / cycles
        if clock_mhz:
            derived["clock_mhz"] = clock_mhz
        metrics = stats.namespaced() if isinstance(stats, RunStats) \
            else dict(stats)
        return cls(workload, config, result.cycles, result.instructions,
                   derived, metrics, meta)

    # -- serialization -------------------------------------------------------

    def to_dict(self):
        return {
            "schema": RUN_REPORT_SCHEMA,
            "workload": self.workload,
            "config": self.config,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "derived": self.derived,
            "metrics": self.metrics,
            "meta": self.meta,
        }

    def to_json(self, indent=2):
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path):
        with open(path, "w") as handle:
            handle.write(self.to_json())
            handle.write("\n")
        return path

    @classmethod
    def from_dict(cls, payload):
        schema = payload.get("schema")
        if schema != RUN_REPORT_SCHEMA:
            raise ValueError("unsupported report schema %r" % (schema,))
        return cls(payload.get("workload", ""), payload.get("config", ""),
                   payload.get("cycles", 0), payload.get("instructions", 0),
                   payload.get("derived"), payload.get("metrics"),
                   payload.get("meta"))

    @classmethod
    def load(cls, path):
        with open(path) as handle:
            return cls.from_dict(json.load(handle))

    # -- presentation --------------------------------------------------------

    def summary(self):
        """Human-readable digest (the ``repro report`` rendering)."""
        lines = ["%s on %s" % (self.workload or "<run>",
                               self.config or "<config>")]
        lines.append("  cycles        %d" % self.cycles)
        lines.append("  instructions  %d" % self.instructions)
        lines.append("  CPI           %.3f" % self.derived.get("cpi", 0.0))
        meps = self.derived.get("throughput_meps")
        if meps is not None:
            lines.append("  throughput    %.1f Melem/s" % meps)
        stalls = self.derived.get("stalls", {})
        if stalls:
            lines.append("  interlock     %d stall cycles"
                         % stalls.get("interlock_stalls", 0))
            per_lsu = stalls.get("lsu_stall_cycles", [])
            for index, value in enumerate(per_lsu):
                lines.append("  lsu.%d         %d stall cycles"
                             % (index, value))
        for name, cache in sorted(self.derived.get("caches", {}).items()):
            lines.append("  %-13s %.1f%% hit rate (%d/%d)" % (
                name, cache["hit_rate"] * 100, cache["hits"],
                cache["hits"] + cache["misses"]))
        return "\n".join(lines)

    def __repr__(self):
        return "<RunReport %s/%s %d cycles>" % (
            self.workload, self.config, self.cycles)
