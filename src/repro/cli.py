"""Command-line interface.

::

    repro run intersection --size 5000 --selectivity 0.5
    repro run sort --size 6500 --config DBA_1LSU_EIS
    repro run intersection --json --trace-out trace.json
    repro synth --config DBA_2LSU_EIS --tech gf28slp
    repro experiments table2 figure13 --artifacts out/
    repro experiments --parallel 4 --timeout 600 --retries 1
    repro db bench --rows 800 --queries 64 --json
    repro disasm intersection --config DBA_2LSU_EIS
    repro report out/run.json
    repro lint
    repro lint examples/asm/*.s --config DBA_2LSU_EIS
    repro faults campaign --kernel intersection --trials 50

Installed as the ``repro`` console script; also runnable via
``python -m repro.cli``.
"""

import argparse
import sys

from .configs.catalog import CONFIG_NAMES, build_processor
from .core.kernels import (merge_sort_kernel, run_merge_sort,
                           run_set_operation, set_operation_kernel)
from .core.scalar_kernels import (run_scalar_merge_sort,
                                  run_scalar_set_operation)
from .isa.disasm import disassemble_words
from .synth.synthesis import synthesize_config
from .synth.technology import TECHNOLOGIES
from .workloads.sets import generate_set_pair
from .workloads.sorting import random_values

SET_OPS = ("intersection", "union", "difference")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Database-processor reproduction (SIGMOD 2014)")
    sub = parser.add_subparsers(dest="command", required=True)

    run_cmd = sub.add_parser("run", help="run a primitive on a "
                                         "processor configuration")
    run_cmd.add_argument("workload",
                         choices=SET_OPS + ("sort", "query"))
    run_cmd.add_argument("--config", default="DBA_2LSU_EIS",
                         choices=CONFIG_NAMES)
    run_cmd.add_argument("--size", type=int, default=5000,
                         help="elements per set / values to sort")
    run_cmd.add_argument("--selectivity", type=float, default=0.5)
    run_cmd.add_argument("--no-partial-load", action="store_true")
    run_cmd.add_argument("--seed", type=int, default=42)
    run_cmd.add_argument("--cost-model", action="store_true",
                         help="serve the 'query' workload through the "
                              "calibrated cost model instead of the ISS "
                              "(cycle counts are identical)")
    run_cmd.add_argument("--workers", type=int, default=1, metavar="N",
                         help="worker processes for the 'query' "
                              "workload batch (default %(default)s); "
                              "with --trace-out the merged trace shows "
                              "one Perfetto process per worker")
    run_cmd.add_argument("--json", action="store_true",
                         help="print a structured run report as JSON "
                              "instead of the text summary")
    run_cmd.add_argument("--report-out", metavar="FILE",
                         help="also write the JSON run report to FILE")
    run_cmd.add_argument("--trace-out", metavar="FILE",
                         help="write a Chrome trace-event JSON file "
                              "(chrome://tracing / Perfetto loadable)")
    run_cmd.add_argument("--trace-limit", type=int, default=100_000,
                         help="maximum trace events to record "
                              "(default %(default)s; excess is counted "
                              "as dropped)")

    synth_cmd = sub.add_parser("synth", help="synthesize a "
                                             "configuration")
    synth_cmd.add_argument("--config", default="DBA_2LSU_EIS",
                           choices=CONFIG_NAMES)
    synth_cmd.add_argument("--tech", default="tsmc65lp",
                           choices=sorted(TECHNOLOGIES))
    synth_cmd.add_argument("--breakdown", action="store_true",
                           help="print the Table 4 area breakdown")

    exp_cmd = sub.add_parser("experiments",
                             help="regenerate paper tables/figures")
    exp_cmd.add_argument("names", nargs="*", help="experiment ids "
                                                  "(default: all)")
    exp_cmd.add_argument("--quick", action="store_true")
    exp_cmd.add_argument("--cost-model", action="store_true",
                         help="use the calibrated cost model for kernel "
                              "cycle counts where supported (table2, "
                              "table5); bit-exact vs the ISS")
    exp_cmd.add_argument("--artifacts", metavar="DIR",
                         help="write one machine-readable JSON artifact "
                              "per experiment into DIR")
    exp_cmd.add_argument("--parallel", type=int, default=1, metavar="N",
                         help="fan independent experiments over N worker "
                              "processes")
    exp_cmd.add_argument("--timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-experiment supervisor budget "
                              "(parallel mode)")
    exp_cmd.add_argument("--retries", type=int, default=1, metavar="N",
                         help="supervisor retry budget per experiment "
                              "(default %(default)s)")

    db_cmd = sub.add_parser("db", help="query-engine utilities")
    db_sub = db_cmd.add_subparsers(dest="db_command", required=True)
    db_bench_cmd = db_sub.add_parser(
        "bench",
        help="benchmark batched query serving: calibrated cost-model "
             "fast path vs the ISS")
    db_bench_cmd.add_argument("--config", default="DBA_2LSU_EIS",
                              choices=CONFIG_NAMES)
    db_bench_cmd.add_argument("--rows", type=int, default=800,
                              help="table rows (default %(default)s)")
    db_bench_cmd.add_argument("--queries", type=int, default=64,
                              help="queries per batch "
                                   "(default %(default)s)")
    db_bench_cmd.add_argument("--repeat", type=int, default=3,
                              help="timed rounds per path; best is "
                                   "reported (default %(default)s)")
    db_bench_cmd.add_argument("--seed", type=int, default=42)
    db_bench_cmd.add_argument("--json", action="store_true",
                              help="print the full benchmark report as "
                                   "JSON")
    db_bench_cmd.add_argument("--out", metavar="FILE",
                              help="write the JSON benchmark report to "
                                   "FILE")
    db_bench_cmd.add_argument("--workers", type=int, default=1,
                              metavar="N",
                              help="worker processes for the traced "
                                   "serving pass (default %(default)s)")
    db_bench_cmd.add_argument("--trace-out", metavar="FILE",
                              help="write a merged Perfetto query "
                                   "trace of one serving pass")
    db_bench_cmd.add_argument("--shards", type=int, default=0,
                              metavar="N",
                              help="additionally serve the batch "
                                   "through a sharded engine with N "
                                   "shards and report modeled scale-"
                                   "out speedup + parity")

    db_top_cmd = db_sub.add_parser(
        "top",
        help="live terminal view of a serving engine (throughput, "
             "queue depth, worker utilization, cache hit rates, "
             "p50/p95/p99 query cycles)")
    db_top_cmd.add_argument("--config", default="DBA_2LSU_EIS",
                            choices=CONFIG_NAMES)
    db_top_cmd.add_argument("--rows", type=int, default=400,
                            help="table rows (default %(default)s)")
    db_top_cmd.add_argument("--queries", type=int, default=32,
                            help="queries per batch "
                                 "(default %(default)s)")
    db_top_cmd.add_argument("--workers", type=int, default=1,
                            metavar="N",
                            help="worker processes per batch "
                                 "(default %(default)s)")
    db_top_cmd.add_argument("--frames", type=int, default=0,
                            metavar="N",
                            help="frames to render before exiting "
                                 "(default: run until interrupted)")
    db_top_cmd.add_argument("--interval", type=float, default=1.0,
                            metavar="SECONDS",
                            help="delay between frames "
                                 "(default %(default)s)")
    db_top_cmd.add_argument("--seed", type=int, default=42)
    db_top_cmd.add_argument("--no-clear", action="store_true",
                            help="append frames instead of redrawing "
                                 "(for logs and tests)")
    db_top_cmd.add_argument("--metrics-out", metavar="FILE",
                            help="flush one JSONL metrics snapshot "
                                 "per frame to FILE")
    db_top_cmd.add_argument("--shards", type=int, default=0,
                            metavar="N",
                            help="serve through a sharded engine with "
                                 "N shards; the dashboard gains a "
                                 "per-shard row (cycles, rows, queue "
                                 "depth, skew)")

    db_chaos_cmd = db_sub.add_parser(
        "chaos",
        help="seeded db-layer fault campaign against the sharded "
             "serving tier (worker kills, response delays, response "
             "corruption); byte-identical reports per seed")
    db_chaos_cmd.add_argument("--shards", type=int, default=4,
                              metavar="N",
                              help="shard engines "
                                   "(default %(default)s)")
    db_chaos_cmd.add_argument("--replicas", type=int, default=1,
                              metavar="R",
                              help="replicas per shard, 0..shards-1 "
                                   "(default %(default)s)")
    db_chaos_cmd.add_argument("--trials", type=int, default=24,
                              help="fault trials to run "
                                   "(default %(default)s)")
    db_chaos_cmd.add_argument("--rows", type=int, default=512,
                              help="table rows (default %(default)s)")
    db_chaos_cmd.add_argument("--queries", type=int, default=12,
                              help="queries per trial batch "
                                   "(default %(default)s)")
    db_chaos_cmd.add_argument("--seed", type=int, default=42)
    db_chaos_cmd.add_argument("--kinds", default="kill,delay,corrupt",
                              metavar="LIST",
                              help="comma list of fault kinds to "
                                   "sample: kill, delay, corrupt "
                                   "(default %(default)s)")
    db_chaos_cmd.add_argument("--deadline", default="auto",
                              metavar="CYCLES",
                              help="per-shard serve budget in modeled "
                                   "cycles; 'auto' = 8x the fault-"
                                   "free maximum, 'none' disarms it "
                                   "(wedged responses then classify "
                                   "as hang) (default %(default)s)")
    db_chaos_cmd.add_argument("--partitioner", default="hash",
                              choices=("hash", "range"))
    db_chaos_cmd.add_argument("--breaker-threshold", type=int,
                              default=3, metavar="N",
                              help="consecutive failures before a "
                                   "shard's breaker opens "
                                   "(default %(default)s)")
    db_chaos_cmd.add_argument("--breaker-cooldown", type=int,
                              default=4, metavar="N",
                              help="refused dispatches before the "
                                   "half-open probe "
                                   "(default %(default)s)")
    db_chaos_cmd.add_argument("--delta-batches", type=int, default=0,
                              metavar="N",
                              help="apply N Z-set delta batches to a "
                                   "columnar table before the "
                                   "campaign (0 keeps the row-"
                                   "oriented demo table; needs "
                                   "NumPy) (default %(default)s)")
    db_chaos_cmd.add_argument("--delta-rows", type=int, default=32,
                              metavar="R",
                              help="inserted rows per delta batch "
                                   "(deletes run at R/2) "
                                   "(default %(default)s)")
    db_chaos_cmd.add_argument("--json", action="store_true",
                              help="print the full campaign report "
                                   "as JSON")
    db_chaos_cmd.add_argument("--out", metavar="FILE",
                              help="write the JSON campaign report "
                                   "to FILE")

    bench_cmd = sub.add_parser(
        "bench", help="perf-trajectory utilities over BENCH_*.json "
                      "artifacts")
    bench_sub = bench_cmd.add_subparsers(dest="bench_command",
                                         required=True)
    bench_record_cmd = bench_sub.add_parser(
        "record",
        help="distill a BENCH_REPORT_DIR into one BENCH_history.json "
             "entry (the per-PR trajectory point)")
    bench_record_cmd.add_argument("--reports", default="bench-reports",
                                  metavar="DIR",
                                  help="directory of BENCH_*.json "
                                       "artifacts "
                                       "(default %(default)s)")
    bench_record_cmd.add_argument("--history",
                                  default="BENCH_history.json",
                                  metavar="FILE",
                                  help="history file to append to "
                                       "(default %(default)s)")
    bench_record_cmd.add_argument("--label", default=None,
                                  help="entry label (default: "
                                       "$GITHUB_SHA or 'local')")
    bench_compare_cmd = bench_sub.add_parser(
        "compare",
        help="diff a fresh BENCH_REPORT_DIR against the last history "
             "entry; exits nonzero on regressions beyond the "
             "threshold (the CI gate)")
    bench_compare_cmd.add_argument("--reports",
                                   default="bench-reports",
                                   metavar="DIR",
                                   help="directory of BENCH_*.json "
                                        "artifacts "
                                        "(default %(default)s)")
    bench_compare_cmd.add_argument("--history",
                                   default="BENCH_history.json",
                                   metavar="FILE",
                                   help="baseline history file "
                                        "(default %(default)s)")
    bench_compare_cmd.add_argument("--threshold", type=float,
                                   default=0.2,
                                   help="regression threshold as a "
                                        "fraction "
                                        "(default %(default)s = 20%%)")
    bench_compare_cmd.add_argument("--include-noisy",
                                   action="store_true",
                                   help="gate on wall-clock metrics "
                                        "too (default: deterministic "
                                        "cycle/model metrics only)")
    bench_compare_cmd.add_argument("--json", action="store_true",
                                   help="emit the comparison as JSON")

    report_cmd = sub.add_parser("report",
                                help="summarize saved JSON run reports")
    report_cmd.add_argument("files", nargs="+", metavar="FILE",
                            help="run-report JSON files (from "
                                 "'repro run --report-out' or the "
                                 "benchmark harness)")

    disasm_cmd = sub.add_parser("disasm",
                                help="disassemble a kernel")
    disasm_cmd.add_argument("kernel", choices=SET_OPS + ("sort",))
    disasm_cmd.add_argument("--config", default="DBA_2LSU_EIS",
                            choices=CONFIG_NAMES)
    disasm_cmd.add_argument("--unroll", type=int, default=4)

    lint_cmd = sub.add_parser(
        "lint", help="statically verify kernel programs and TIE "
                     "definitions")
    lint_cmd.add_argument("files", nargs="*", metavar="FILE",
                          help="assembly sources to lint; without "
                               "arguments every builtin kernel of every "
                               "configuration is checked")
    lint_cmd.add_argument("--config", default=None, choices=CONFIG_NAMES,
                          help="configuration to assemble/lint against "
                               "(default: DBA_2LSU_EIS for files, all "
                               "configurations for the builtin sweep)")
    lint_cmd.add_argument("--min-severity", default="warning",
                          choices=("info", "warning", "error"),
                          help="lowest severity to print "
                               "(default %(default)s)")
    lint_cmd.add_argument("--deep", action="store_true",
                          help="also run the deep tier: value-range "
                               "abstract interpretation (VAL*), "
                               "DMA/LSU race detection (RACE*) on "
                               "streaming kernels, and plan lint "
                               "(PLAN*) over the demo query batch")
    lint_cmd.add_argument("--json", action="store_true",
                          help="emit the full diagnostic list as JSON")

    faults_cmd = sub.add_parser(
        "faults", help="seeded fault-injection campaigns")
    faults_sub = faults_cmd.add_subparsers(dest="faults_command",
                                           required=True)
    campaign_cmd = faults_sub.add_parser(
        "campaign",
        help="run one kernel N times under sampled faults and "
             "classify the outcomes")
    campaign_cmd.add_argument("--kernel", default="intersection",
                              choices=("dma_poll", "intersection",
                                       "scalar"))
    campaign_cmd.add_argument("--config", default=None,
                              choices=CONFIG_NAMES,
                              help="processor configuration (default: "
                                   "the kernel's natural one)")
    campaign_cmd.add_argument("--size", type=int, default=400,
                              help="workload elements "
                                   "(default %(default)s)")
    campaign_cmd.add_argument("--trials", type=int, default=20,
                              help="fault trials to run "
                                   "(default %(default)s)")
    campaign_cmd.add_argument("--seed", type=int, default=42)
    campaign_cmd.add_argument("--parallel", type=int, default=1,
                              metavar="N",
                              help="fan trial chunks over N supervised "
                                   "worker processes")
    campaign_cmd.add_argument("--timeout", type=float, default=None,
                              metavar="SECONDS",
                              help="per-chunk supervisor budget "
                                   "(parallel mode)")
    campaign_cmd.add_argument("--retries", type=int, default=1,
                              metavar="N",
                              help="supervisor retry budget per chunk "
                                   "(default %(default)s)")
    campaign_cmd.add_argument("--json", action="store_true",
                              help="print the full campaign report as "
                                   "JSON")
    campaign_cmd.add_argument("--out", metavar="FILE",
                              help="write the JSON campaign report to "
                                   "FILE")
    return parser


def cmd_run(args):
    if args.workload == "query":
        return _run_query_workload(args)
    partial = not args.no_partial_load
    processor = build_processor(args.config, partial_load=partial)
    synth = synthesize_config(args.config, partial_load=partial)
    has_eis = args.config.endswith("_EIS")
    tracer = None
    if args.trace_out:
        from .cpu.trace import PipelineTracer
        tracer = PipelineTracer(limit=args.trace_limit)
    if args.workload == "sort":
        values = random_values(args.size, seed=args.seed)
        runner = run_merge_sort if has_eis else run_scalar_merge_sort
        output, stats = runner(processor, values, trace=tracer)
        assert output == sorted(values)
        elements = args.size
        summary = "sorted %d values" % args.size
    else:
        set_a, set_b = generate_set_pair(
            args.size, selectivity=args.selectivity, seed=args.seed)
        runner = run_set_operation if has_eis \
            else run_scalar_set_operation
        output, stats = runner(processor, args.workload, set_a, set_b,
                               trace=tracer)
        elements = 2 * args.size
        summary = "%s of 2x%d elements -> %d results" % (
            args.workload, args.size, len(output))
    meps = stats.throughput_meps(elements, synth.fmax_mhz)
    report = stats.report(
        workload=args.workload, config=args.config, elements=elements,
        clock_mhz=synth.fmax_mhz,
        meta={"size": args.size, "seed": args.seed,
              "partial_load": partial, "results": len(output),
              "power_mw": synth.power_mw,
              "energy_nj_per_element": synth.power_mw / meps
              if meps else None})
    if tracer is not None:
        tracer.save_chrome_trace(args.trace_out)
    if args.report_out:
        report.save(args.report_out)
    if args.json:
        print(report.to_json())
        return 0
    print("%s on %s (%.0f MHz)" % (summary, args.config,
                                   synth.fmax_mhz))
    print("  %d cycles, %.1f Melem/s, %.3f nJ/element"
          % (stats.cycles, meps, synth.power_mw / meps))
    if tracer is not None:
        print("  trace: %d events -> %s%s" % (
            len(tracer.events), args.trace_out,
            " (%d dropped)" % tracer.dropped if tracer.dropped else ""))
    if args.report_out:
        print("  report: %s" % args.report_out)
    return 0


def _run_query_workload(args):
    """Serve a canned query batch; the report carries QueryStats."""
    from .db import RID_BITS, QueryStats
    from .db.bench import build_demo_table, demo_queries
    from .db.engine import QueryEngine
    from .db.executor import _merge_stats
    from .telemetry.querytrace import QueryTracer, write_query_trace
    from .telemetry.report import RunReport

    partial = not args.no_partial_load
    rows = min(args.size, 1 << RID_BITS)  # ORDER BY packing bound
    table = build_demo_table(rows=rows, seed=args.seed)
    batch = demo_queries(table, count=32, seed=args.seed + 1)
    engine = QueryEngine(config=args.config, partial_load=partial,
                         cost_model=args.cost_model)
    tracer = None
    if args.trace_out:
        tracer = QueryTracer(label="query engine",
                             limit=args.trace_limit)
    results = engine.execute_batch(batch, workers=args.workers,
                                   tracer=tracer)
    totals = QueryStats()
    for result in results:
        _merge_stats(totals, result.stats)
    synth = synthesize_config(args.config, partial_load=partial)
    meta = {"size": rows, "seed": args.seed, "partial_load": partial,
            "cost_model": bool(args.cost_model),
            "workers": args.workers,
            "query_stats": totals.to_dict(),
            "engine_metrics": {
                name: value for name, value
                in engine.metrics_snapshot().items()
                if isinstance(value, (int, float))}}
    if tracer is not None:
        write_query_trace(args.trace_out, tracer)
        meta["trace"] = {
            "path": args.trace_out,
            "processes": 1 + len(tracer.children),
            "dropped": tracer.total_dropped,
        }
    report = RunReport(
        workload="query", config=args.config, cycles=totals.cycles,
        instructions=0,
        derived={
            "queries": len(batch),
            "rows_returned": sum(len(result.rows)
                                 for result in results),
            "latency_us": totals.latency_us(synth.fmax_mhz),
        },
        meta=meta)
    if args.report_out:
        report.save(args.report_out)
    if args.json:
        print(report.to_json())
        return 0
    print("%d queries over %d rows on %s (%.0f MHz, %s path, "
          "%d worker%s)"
          % (len(batch), rows, args.config, synth.fmax_mhz,
             "cost-model" if args.cost_model else "iss",
             args.workers, "" if args.workers == 1 else "s"))
    print("  %d cycles (%s), %d set ops, %d sorts, %d scans, "
          "%d short-circuits"
          % (totals.cycles,
             ", ".join("%s %d" % (source, cycles) for source, cycles
                       in sorted(totals.cycles_by_source.items())),
             totals.set_operations, totals.sort_operations,
             totals.index_scans, totals.short_circuits))
    if tracer is not None:
        print("  trace: %d processes -> %s%s" % (
            1 + len(tracer.children), args.trace_out,
            " (%d dropped)" % tracer.total_dropped
            if tracer.total_dropped else ""))
    if args.report_out:
        print("  report: %s" % args.report_out)
    return 0


def cmd_synth(args):
    report = synthesize_config(args.config,
                               technology=TECHNOLOGIES[args.tech])
    print("%s @ %s" % (args.config, args.tech))
    print("  logic  %.3f mm2" % report.logic_mm2)
    print("  memory %.3f mm2 (%d KB)" % (report.memory_mm2,
                                         report.memory_kb))
    print("  fmax   %.0f MHz" % report.fmax_mhz)
    print("  power  %.1f mW at fmax" % report.power_mw)
    if args.breakdown:
        print("  area breakdown:")
        for group, share in report.breakdown().items():
            print("    %-18s %5.1f%%" % (group, share * 100))
    return 0


def cmd_experiments(args):
    from .experiments.__main__ import main as experiments_main
    argv = list(args.names)
    if args.quick:
        argv.append("--quick")
    if args.cost_model:
        argv.append("--cost-model")
    if args.artifacts:
        argv.extend(["--artifacts", args.artifacts])
    if args.parallel and args.parallel != 1:
        argv.extend(["--parallel", str(args.parallel)])
    if args.timeout is not None:
        argv.extend(["--timeout", str(args.timeout)])
    if args.retries != 1:
        argv.extend(["--retries", str(args.retries)])
    return experiments_main(argv)


def cmd_report(args):
    from .telemetry.report import RunReport
    status = 0
    for index, path in enumerate(args.files):
        if index:
            print()
        try:
            report = RunReport.load(path)
        except (OSError, ValueError) as exc:
            print("%s: %s" % (path, exc))
            status = 1
            continue
        print(report.summary())
    return status


def cmd_disasm(args):
    processor = build_processor(args.config)
    if args.kernel == "sort":
        source = merge_sort_kernel(presort_unroll=args.unroll,
                                   merge_unroll=args.unroll)
    else:
        source = set_operation_kernel(
            args.kernel, num_lsus=processor.config.num_lsus,
            unroll=args.unroll)
    program = processor.assembler.assemble(source)
    for line in disassemble_words(processor.isa, program.encode(),
                                  processor.flix_formats):
        print(line)
    return 0


def _streaming_kernel_sources(processor, compression):
    """The DMA double-buffering kernels, for the deep (race) tier."""
    from .core.streaming import (compressed_streaming_kernel,
                                 streaming_kernel)
    if "sop_ptr_c" not in processor.symbols:
        return  # no set-operation datapath on this core
    num_lsus = processor.config.num_lsus
    for which in ("intersection", "union", "difference"):
        for overlap in (True, False):
            mode = "ov" if overlap else "bl"
            yield ("stream-%s-%s" % (which, mode),
                   streaming_kernel(which, num_lsus, overlap))
            if compression:
                yield ("cstream-%s-%s" % (which, mode),
                       compressed_streaming_kernel(which, num_lsus,
                                                   overlap))


def _demo_plan_report():
    """PLAN* lint over the demo query batch (the deep tier)."""
    from .db.bench import build_demo_table, demo_queries
    from .db.planlint import lint_query

    report = None
    table = build_demo_table()
    for query in demo_queries(table):
        report = lint_query(query, report=report)
    return report


def cmd_lint(args):
    import json as json_module

    from .analysis import DiagnosticReport, lint_processor, lint_program
    from .configs.catalog import has_eis
    from .core.kernels import builtin_kernel_sources
    from .faults.campaign import campaign_kernel_sources
    from .isa.errors import IsaError

    combined = DiagnosticReport("repro lint")
    status = 0
    if args.files:
        config = args.config or "DBA_2LSU_EIS"
        processor = build_processor(config,
                                    compression=has_eis(config))
        for path in args.files:
            try:
                with open(path) as handle:
                    source = handle.read()
            except OSError as exc:
                print("%s: %s" % (path, exc), file=sys.stderr)
                status = 1
                continue
            try:
                program = processor.assembler.assemble(source, path)
            except IsaError as exc:
                combined.add("ASM001", "error", str(exc), path)
                continue
            combined.extend(lint_program(program, processor,
                                         deep=args.deep))
    else:
        names = (args.config,) if args.config else CONFIG_NAMES
        for name in names:
            processor = build_processor(name, compression=has_eis(name))
            tie_report = lint_processor(processor)
            for diagnostic in tie_report:
                diagnostic.source_name = "%s/%s" % (name,
                                                    diagnostic.source_name)
            combined.extend(tie_report)
            for kernel_name, source in builtin_kernel_sources(processor):
                program = processor.assembler.assemble(
                    source, "%s/%s" % (name, kernel_name))
                combined.extend(lint_program(program, processor,
                                             deep=args.deep))
            # Campaign-only kernels use the DMA user registers, which
            # exist only on prefetcher-equipped cores.
            fault_processor = build_processor(name, prefetcher=True,
                                              compression=has_eis(name))
            for kernel_name, source in campaign_kernel_sources():
                program = fault_processor.assembler.assemble(
                    source, "%s/%s" % (name, kernel_name))
                combined.extend(lint_program(program, fault_processor,
                                             deep=args.deep))
            if args.deep:
                for kernel_name, source in _streaming_kernel_sources(
                        fault_processor, has_eis(name)):
                    program = fault_processor.assembler.assemble(
                        source, "%s/%s" % (name, kernel_name))
                    combined.extend(lint_program(program,
                                                 fault_processor,
                                                 deep=True))
        if args.deep:
            combined.extend(_demo_plan_report())
    if combined.has_errors:
        status = 1
    if args.json:
        print(json_module.dumps(combined.to_dict(), indent=2))
        return status
    output = combined.format(min_severity=args.min_severity)
    if output:
        print(output)
    print(combined.summary())
    return status


def _cmd_db_chaos(args):
    import json as json_module

    from .faults.db import DB_OUTCOMES, run_db_campaign

    kinds = tuple(kind.strip() for kind in args.kinds.split(",")
                  if kind.strip())
    log = None if args.json else print
    report = run_db_campaign(
        shards=args.shards, replication=args.replicas,
        trials=args.trials, seed=args.seed, rows=args.rows,
        queries=args.queries, deadline=args.deadline, kinds=kinds,
        partitioner=args.partitioner,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
        delta_batches=args.delta_batches, delta_rows=args.delta_rows,
        log=log)
    if args.out:
        with open(args.out, "w") as handle:
            json_module.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    summary = report["summary"]
    bad = summary["wrong_result"] + summary["failed"]
    if args.json:
        print(json_module.dumps(report, indent=2, sort_keys=True))
        return 1 if bad else 0
    campaign = report["campaign"]
    print("db chaos campaign: %d shard(s) x %d replica(s) "
          "(%d trials, %d queries over %d rows, seed %s, kinds %s)"
          % (campaign["shards"], campaign["replication"],
             campaign["trials"], campaign["queries"], campaign["rows"],
             campaign["seed"], ",".join(campaign["kinds"])))
    deadline = campaign["deadline_cycles"]
    print("  deadline %s, fuel %d cycles"
          % ("%d cycles" % deadline if deadline else "disarmed",
             campaign["fuel_cycles"]))
    if "delta" in campaign:
        delta = campaign["delta"]
        print("  delta stream: %d batches x %d rows -> %d live rows "
              "in a %d-wide RID space (%d annihilated, "
              "%d compactions)"
              % (delta["batches"], delta["rows_per_batch"],
                 delta["live_rows"], delta["rid_limit"],
                 delta["annihilated"], delta["compactions"]))
    for name in DB_OUTCOMES:
        print("  %-12s %d" % (name, summary[name]))
    for name, value in sorted(report["faults"].items()):
        if value:
            print("  %-28s %d" % (name, value))
    if report["breaker_trips"]:
        print("  %-28s %d" % ("breaker trips", report["breaker_trips"]))
    for trial in report["trials"]:
        if trial["outcome"] in ("wrong_result", "failed"):
            print("  %s in trial %d: %s"
                  % (trial["outcome"], trial["trial"],
                     trial.get("detail", "?")))
    if args.out:
        print("  report: %s" % args.out)
    return 1 if bad else 0


def cmd_db(args):
    if args.db_command == "chaos":
        return _cmd_db_chaos(args)
    if args.db_command == "top":
        from .db.top import run_top

        run_top(config=args.config, rows=args.rows,
                queries=args.queries, workers=args.workers,
                frames=args.frames, interval=args.interval,
                seed=args.seed, clear=not args.no_clear,
                metrics_out=args.metrics_out, shards=args.shards)
        return 0

    import json as json_module

    from .db.bench import run_bench

    log = None if args.json else print
    report = run_bench(config=args.config, rows=args.rows,
                       queries=args.queries, repeat=args.repeat,
                       seed=args.seed, log=log, workers=args.workers,
                       trace_out=args.trace_out, shards=args.shards)
    if args.out:
        with open(args.out, "w") as handle:
            json_module.dump(report, handle, indent=2)
            handle.write("\n")
        if not args.json:
            print("  report: %s" % args.out)
    if args.json:
        print(json_module.dumps(report, indent=2))
    ok = (report["rid_parity"] and report["cycle_parity"]
          and report["row_parity"]
          and report.get("shard", {}).get("rid_parity", True))
    return 0 if ok else 1


def cmd_bench(args):
    import json as json_module
    import os

    from .telemetry.history import (append_entry, collect_reports,
                                    compare_reports_dir,
                                    entry_from_reports)

    if args.bench_command == "record":
        label = args.label
        if label is None:
            label = os.environ.get("GITHUB_SHA", "local")[:12] or "local"
        reports = collect_reports(args.reports)
        if not reports:
            print("no BENCH_*.json artifacts in %s" % args.reports)
            return 1
        entry = entry_from_reports(reports, label=label)
        history = append_entry(args.history, entry)
        print("recorded %d benchmarks as %r (%d entries in %s)"
              % (len(entry["benchmarks"]), label,
                 len(history["entries"]), args.history))
        return 0

    try:
        comparison = compare_reports_dir(
            args.reports, args.history, threshold=args.threshold,
            include_noisy=args.include_noisy)
    except FileNotFoundError as error:
        print("bench compare: %s" % error)
        return 1
    if args.json:
        print(json_module.dumps(comparison.to_dict(), indent=2,
                                sort_keys=True))
    else:
        print(comparison.format())
    return 0 if comparison.ok else 1


def cmd_faults(args):
    import json as json_module

    from .faults.campaign import OUTCOMES, run_campaign

    log = None if args.json else print
    report = run_campaign(
        args.kernel, config=args.config, size=args.size,
        trials=args.trials, seed=args.seed, jobs=args.parallel,
        timeout=args.timeout, retries=args.retries, log=log)
    if args.out:
        with open(args.out, "w") as handle:
            json_module.dump(report, handle, indent=2)
            handle.write("\n")
    if args.json:
        print(json_module.dumps(report, indent=2))
        return 1 if report["summary"]["crash"] else 0
    campaign = report["campaign"]
    summary = report["summary"]
    print("fault campaign: %s on %s (%d trials, size %d, seed %s)"
          % (campaign["kernel"], campaign["config"], campaign["trials"],
             campaign["size"], campaign["seed"]))
    for name in OUTCOMES:
        print("  %-12s %d" % (name, summary[name]))
    for trial in report["trials"]:
        if trial["outcome"] == "crash":
            print("  crash in trial %d: %s"
                  % (trial["trial"], trial.get("detail", "?")))
    if args.out:
        print("  report: %s" % args.out)
    return 1 if summary["crash"] else 0


def main(argv=None):
    args = build_parser().parse_args(argv)
    handlers = {
        "run": cmd_run,
        "synth": cmd_synth,
        "experiments": cmd_experiments,
        "disasm": cmd_disasm,
        "report": cmd_report,
        "lint": cmd_lint,
        "db": cmd_db,
        "bench": cmd_bench,
        "faults": cmd_faults,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
