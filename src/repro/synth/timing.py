"""Timing model: critical paths and maximum core frequency.

The core frequency is set by the longest combinational path of any
pipeline stage (paper Section 2.2: "the critical path ... might be
largely increased when many instructions are merged into a single
one").  Stage paths are expressed in FO4 units and converted to MHz by
the technology's FO4 delay:

* the base core's worst stage (calibrated to the 108Mini's 442 MHz at
  65 nm),
* additions for the 128-bit bus muxing and the second LSU,
* for EIS processors, the extension datapath stage: the longest
  declared operation path plus the state setup/routing overhead.

The resulting frequencies reproduce Table 2/3's ordering: 442 (Mini),
435 (DBA_1LSU), 429 (DBA_2LSU), 424 (DBA_1LSU_EIS), 410
(DBA_2LSU_EIS); at 28 nm the SLVT low-voltage libraries cap the clock
at 500 MHz.
"""

#: Worst base-core stage in FO4 units (65 nm calibration: 442 MHz).
BASE_STAGE_FO4 = 90.5
#: Extra depth of the 128-bit data-bus mux/alignment network.
WIDE_BUS_FO4 = 1.5
#: Extra depth of arbitrating a second LSU into the memory stage.
SECOND_LSU_FO4 = 1.3
#: Flop setup + operand routing around the EIS datapath stage.
EIS_STAGE_OVERHEAD_FO4 = 61.3
#: Additional port muxing of the EIS load path with two LSUs.
EIS_SECOND_LSU_FO4 = 3.3


def base_stage_fo4(config):
    path = BASE_STAGE_FO4
    if config.lsu_port_bits >= 128:
        path += WIDE_BUS_FO4
    if config.num_lsus == 2:
        path += SECOND_LSU_FO4
    return path


def extension_stage_fo4(config, extension_netlist):
    """Path of the extension's datapath stage."""
    path = extension_netlist.longest_path_fo4()
    if path <= 0:
        return 0.0
    path += EIS_STAGE_OVERHEAD_FO4
    if config.num_lsus == 2:
        path += EIS_SECOND_LSU_FO4
    return path


def critical_path_fo4(config, extension_netlists=()):
    """Longest stage path of the full processor."""
    paths = [base_stage_fo4(config)]
    for netlist in extension_netlists:
        stage = extension_stage_fo4(config, netlist)
        if stage:
            paths.append(stage)
    return max(paths)


def max_frequency_mhz(config, technology, extension_netlists=()):
    path = critical_path_fo4(config, extension_netlists)
    return technology.path_to_mhz(path)
