"""Synthesis flow: structural area, timing and power models.

Stands in for the paper's Synopsys Design Compiler / PrimeTime flow on
TSMC 65 nm LP and GF 28 nm SLP libraries (Section 5.1).
"""

from .area import (area_breakdown, base_core_netlist, full_netlist,
                   logic_area_mm2, memory_area_mm2)
from .power import EIS_ACTIVITY_FACTOR, energy_per_element_nj, power_mw
from .scaling import ManyCoreModel
from .synthesis import SynthesisReport, synthesize, synthesize_config
from .technology import GF_28NM_SLP, TECHNOLOGIES, TSMC_65NM_LP, Technology
from .timing import critical_path_fo4, max_frequency_mhz

__all__ = [
    "area_breakdown", "base_core_netlist", "full_netlist",
    "logic_area_mm2", "memory_area_mm2",
    "EIS_ACTIVITY_FACTOR", "energy_per_element_nj", "power_mw",
    "ManyCoreModel",
    "SynthesisReport", "synthesize", "synthesize_config",
    "GF_28NM_SLP", "TECHNOLOGIES", "TSMC_65NM_LP", "Technology",
    "critical_path_fo4", "max_frequency_mhz",
]
