"""The synthesis flow: configuration -> area / frequency / power.

Replaces the paper's Synopsys Design Compiler + PrimeTime runs with the
structural model (see module docstrings of :mod:`repro.synth.area`,
:mod:`repro.synth.timing`, :mod:`repro.synth.power`).  The output of
:func:`synthesize` carries the same quantities as the paper's Table 3.
"""

from ..configs.catalog import core_config, has_eis
from ..core.extension import build_db_extension
from .area import (area_breakdown, base_core_netlist, logic_area_mm2,
                   memory_area_mm2)
from .power import power_mw
from .technology import TSMC_65NM_LP
from .timing import max_frequency_mhz


class SynthesisReport:
    """Synthesis results of one processor configuration."""

    def __init__(self, name, technology, logic_mm2, memory_mm2, fmax_mhz,
                 power_mw_at_fmax, netlist, base_logic_mm2, ext_logic_mm2,
                 memory_kb):
        self.name = name
        self.technology = technology
        self.logic_mm2 = logic_mm2
        self.memory_mm2 = memory_mm2
        self.fmax_mhz = fmax_mhz
        self.power_mw = power_mw_at_fmax
        self.netlist = netlist
        self.base_logic_mm2 = base_logic_mm2
        self.ext_logic_mm2 = ext_logic_mm2
        self.memory_kb = memory_kb

    @property
    def total_mm2(self):
        return self.logic_mm2 + self.memory_mm2

    def breakdown(self):
        """Relative logic area per component (the paper's Table 4)."""
        return area_breakdown(self.netlist)

    def power_at(self, frequency_mhz):
        return power_mw(self.technology, self.base_logic_mm2,
                        self.ext_logic_mm2, self.memory_kb, frequency_mhz,
                        memory_mm2=self.memory_mm2)

    def __repr__(self):
        return ("<SynthesisReport %s %s: logic %.3fmm2 mem %.3fmm2 "
                "%.0fMHz %.1fmW>" % (self.name, self.technology.name,
                                     self.logic_mm2, self.memory_mm2,
                                     self.fmax_mhz, self.power_mw))


def synthesize(config, extensions=(), technology=TSMC_65NM_LP):
    """Run the structural synthesis model on one configuration."""
    base_netlist = base_core_netlist(config)
    netlist = base_netlist
    ext_netlists = []
    for extension in extensions:
        ext_netlist = extension.netlist()
        ext_netlists.append(ext_netlist)
        netlist = netlist.merged_with(ext_netlist)
    base_mm2 = logic_area_mm2(base_netlist, technology)
    total_logic_mm2 = logic_area_mm2(netlist, technology)
    ext_mm2 = total_logic_mm2 - base_mm2
    memory_mm2 = memory_area_mm2(config, technology)
    memory_kb = config.imem_kb + config.dmem0_kb + config.dmem1_kb
    fmax = max_frequency_mhz(config, technology, ext_netlists)
    power = power_mw(technology, base_mm2, ext_mm2, memory_kb, fmax,
                     memory_mm2=memory_mm2)
    return SynthesisReport(config.name, technology, total_logic_mm2,
                           memory_mm2, fmax, power, netlist, base_mm2,
                           ext_mm2, memory_kb)


def synthesize_config(name, partial_load=True, technology=TSMC_65NM_LP):
    """Synthesize a catalog configuration by name."""
    config = core_config(name)
    extensions = []
    if has_eis(name):
        extensions.append(build_db_extension(num_lsus=config.num_lsus,
                                             partial_load=partial_load))
    return synthesize(config, extensions, technology)
