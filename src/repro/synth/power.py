"""Power model: activity-based dynamic power plus leakage.

Follows the paper's methodology in spirit (Section 5.1: gate-level
switching activity fed into Synopsys PrimeTime) with a calibrated
activity model:

``P = d_logic * (A_base + alpha * A_ext) * f  +  d_sram * KB * f  + leak``

where ``alpha`` > 1 captures the high switching activity of the wide
EIS datapath relative to the control-dominated base core.  The 65 nm
constants are calibrated so the five configurations land on Table 3's
power column; the 28 nm entry then reproduces the reported 2.9x
reduction.
"""

#: Switching-activity factor of the EIS datapath relative to the base
#: core (the 128-bit comparator matrix toggles nearly every cycle).
EIS_ACTIVITY_FACTOR = 1.55


def power_mw(technology, base_logic_mm2, ext_logic_mm2, memory_kb,
             frequency_mhz, memory_mm2=0.0,
             ext_activity=EIS_ACTIVITY_FACTOR):
    """Total power of one configuration at one operating point."""
    ghz = frequency_mhz / 1000.0
    effective_logic = base_logic_mm2 + ext_logic_mm2 * ext_activity
    dynamic_logic = technology.logic_mw_per_mm2_ghz * effective_logic * ghz
    dynamic_sram = technology.sram_mw_per_kb_ghz * memory_kb * ghz
    leakage = technology.leakage_mw_per_mm2 \
        * (base_logic_mm2 + ext_logic_mm2 + memory_mm2)
    return dynamic_logic + dynamic_sram + leakage


def energy_per_element_nj(power_mw_value, throughput_meps):
    """Energy per processed element in nanojoules.

    ``P[mW] / T[Melem/s] = nJ per element`` — used for the paper's
    headline energy-efficiency comparison against x86 (Section 5.4).
    """
    if throughput_meps <= 0:
        return float("inf")
    return power_mw_value / throughput_meps
