"""Technology libraries for the synthesis model.

The paper synthesizes with a TSMC 65 nm low-power process (typical
case, 25 °C, 1.25 V) and a Global Foundries 28 nm super-low-power
process with super-low-voltage-threshold libraries (25 °C, 0.8 V)
(Section 5.1).  Each :class:`Technology` bundles the constants the
structural model needs:

* NAND2-equivalent gate area (µm² per GE),
* FO4 inverter delay (ps) — critical paths are expressed in FO4 units,
* SRAM macro density (mm² per KB) for the local memories,
* dynamic power density of active logic (mW per mm² at a reference
  frequency), SRAM access power, and leakage per mm².

The 65 nm values are calibrated against the paper's Table 3; the 28 nm
entry then *predicts* the shrink (area 3.8x, power 2.9x, fmax capped
by the low supply voltage), reproducing the paper's observations.
"""


class Technology:
    """One process/library operating point."""

    def __init__(self, name, feature_nm, gate_area_um2, fo4_ps,
                 sram_mm2_per_kb, logic_mw_per_mm2_ghz,
                 sram_mw_per_kb_ghz, leakage_mw_per_mm2, max_freq_mhz,
                 voltage, description=""):
        self.name = name
        self.feature_nm = feature_nm
        self.gate_area_um2 = gate_area_um2
        self.fo4_ps = fo4_ps
        self.sram_mm2_per_kb = sram_mm2_per_kb
        #: Dynamic power of switching logic, normalized per mm² and GHz.
        self.logic_mw_per_mm2_ghz = logic_mw_per_mm2_ghz
        self.sram_mw_per_kb_ghz = sram_mw_per_kb_ghz
        self.leakage_mw_per_mm2 = leakage_mw_per_mm2
        #: Library/voltage-limited maximum clock (the 28 nm SLVT
        #: libraries at 0.8 V cap the core at 500 MHz, Section 5.3).
        self.max_freq_mhz = max_freq_mhz
        self.voltage = voltage
        self.description = description

    def ge_to_mm2(self, gate_equivalents):
        return gate_equivalents * self.gate_area_um2 * 1e-6

    def path_to_mhz(self, path_fo4):
        """Clock limit of a critical path given in FO4 units."""
        if path_fo4 <= 0:
            return self.max_freq_mhz
        period_ns = path_fo4 * self.fo4_ps / 1000.0
        return min(1000.0 / period_ns, self.max_freq_mhz)

    def __repr__(self):
        return "<Technology %s %dnm>" % (self.name, self.feature_nm)


#: TSMC 65 nm LP, typical case 25 °C / 1.25 V — calibrated to Table 3.
TSMC_65NM_LP = Technology(
    name="tsmc65lp",
    feature_nm=65,
    gate_area_um2=1.44,
    fo4_ps=25.0,
    sram_mm2_per_kb=0.00911,
    logic_mw_per_mm2_ghz=280.0,
    sram_mw_per_kb_ghz=0.80,
    leakage_mw_per_mm2=1.3,
    max_freq_mhz=1200.0,
    voltage=1.25,
    description="TSMC 65nm low-power, typical 25C/1.25V")

#: GF 28 nm SLP with SLVT libraries, typical case 25 °C / 0.8 V.
GF_28NM_SLP = Technology(
    name="gf28slp",
    feature_nm=28,
    gate_area_um2=0.378,
    fo4_ps=16.5,
    sram_mm2_per_kb=0.00242,
    # At 0.8 V the per-gate switching energy scales with (0.8/1.25)^2
    # = 0.41 relative to the 65 nm node; together with the 3.8x gate
    # density and smaller per-gate capacitance this lands close to the
    # 65 nm per-area density.
    logic_mw_per_mm2_ghz=230.0,
    sram_mw_per_kb_ghz=0.40,
    leakage_mw_per_mm2=2.1,
    max_freq_mhz=500.0,
    voltage=0.8,
    description="GlobalFoundries 28nm SLP, SLVT, typical 25C/0.8V")

TECHNOLOGIES = {
    TSMC_65NM_LP.name: TSMC_65NM_LP,
    GF_28NM_SLP.name: GF_28NM_SLP,
}
