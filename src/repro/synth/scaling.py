"""Many-core iso-area scaling model.

Section 5.4 of the paper argues: "the number of cores of DBA_2LSU_EIS
could be largely increased until it occupies the same area as the
Intel Q9550 processor.  Even under pessimistic assumptions,
DBA_2LSU_EIS could provide an order of magnitude more cores than the
Intel Q9550" — the thermal headroom exists because each core draws
~0.135 W ("hundreds of chips on a single board without any thermal
restrictions", Section 1).

This model quantifies that argument: how many database cores fit into
a given die area once an uncore share (interconnect, memory
controllers, I/O) is reserved, what the aggregate throughput is under
a parallel-efficiency assumption, and what the resulting power and
energy-per-element look like.
"""


class ManyCoreModel:
    """Tiles one synthesized core across a die.

    Parameters
    ----------
    report:
        :class:`~repro.synth.synthesis.SynthesisReport` of one core
        (logic + local memories).
    uncore_share:
        Fraction of the die reserved for the network-on-chip, off-chip
        memory controllers and I/O.  The paper's "pessimistic
        assumptions" correspond to large values (0.5).
    parallel_efficiency:
        Aggregate-throughput derating for shared off-chip bandwidth.
        Set-operation streams are embarrassingly parallel across
        queries, so the default is high.
    """

    def __init__(self, report, uncore_share=0.25,
                 parallel_efficiency=0.85):
        if not 0.0 <= uncore_share < 1.0:
            raise ValueError("uncore share must be within [0, 1)")
        if not 0.0 < parallel_efficiency <= 1.0:
            raise ValueError("parallel efficiency must be in (0, 1]")
        self.report = report
        self.uncore_share = uncore_share
        self.parallel_efficiency = parallel_efficiency

    @property
    def core_area_mm2(self):
        return self.report.total_mm2

    def cores_in_area(self, die_mm2):
        """Cores fitting a die after reserving the uncore share."""
        usable = die_mm2 * (1.0 - self.uncore_share)
        return max(int(usable / self.core_area_mm2), 0)

    def aggregate_throughput_meps(self, per_core_meps, cores):
        return per_core_meps * cores * self.parallel_efficiency

    def aggregate_power_w(self, cores):
        return cores * self.report.power_mw / 1000.0

    def energy_per_element_nj(self, per_core_meps, cores):
        throughput = self.aggregate_throughput_meps(per_core_meps,
                                                    cores)
        if throughput <= 0:
            return float("inf")
        return self.aggregate_power_w(cores) * 1000.0 / throughput

    def iso_area_summary(self, die_mm2, per_core_meps):
        """All derived quantities for one competitor die size."""
        cores = self.cores_in_area(die_mm2)
        return {
            "cores": cores,
            "throughput_meps": self.aggregate_throughput_meps(
                per_core_meps, cores),
            "power_w": self.aggregate_power_w(cores),
            "energy_nj_per_element": self.energy_per_element_nj(
                per_core_meps, cores),
        }
