"""Area model: gate-equivalent netlists to silicon area.

The base-core gate counts below are calibrated against the paper's
Table 3 (65 nm column): the 108Mini occupies 0.2201 mm² of pure logic,
the DBA base core 0.177 mm², and local memories are SRAM macros at the
technology's density.  The instruction-set extension contributes the
netlist built by :func:`repro.tie.netlist.extension_netlist`.
"""

from ..tie.netlist import Netlist

#: Base in-order RISC core: pipeline, base register file, control.
BASE_CORE_GE = 78_000
#: Hardware multiplier.
MUL_GE = 9_000
#: Hardware divider (present on the 108Mini, absent on DBA).
DIV_GE = 12_000
#: DSP instruction package of the Diamond 108Mini controller.
DSP_108MINI_GE = 42_000
#: First load-store unit including its memory port.
LSU_GE = 12_000
#: A second LSU largely reuses the shared fabric.
SECOND_LSU_GE = 3_000
#: 64-bit instruction / 128-bit data bus datapath (DBA widening).
WIDE_BUS_GE = 24_000


def base_core_netlist(config):
    """Netlist of the processor without any TIE extension.

    Two report groups, matching the paper's Table 4 accounting: the
    ``basic_core`` row covers the RISC core proper (pipeline, register
    file, multiplier/divider, option packages) while the bus fabric and
    load-store units report under ``decode`` (decoding/muxing) where
    the paper lumps shared datapath muxing.
    """
    netlist = Netlist("%s-base" % config.name)
    core_ge = BASE_CORE_GE
    if config.has_mul:
        core_ge += MUL_GE
    if config.has_div:
        core_ge += DIV_GE
    if config.name.startswith("108Mini"):
        core_ge += DSP_108MINI_GE
    netlist.add("basic_core", core_ge)
    fabric_ge = LSU_GE
    if config.lsu_port_bits >= 128:
        fabric_ge += WIDE_BUS_GE
    if config.num_lsus == 2:
        fabric_ge += SECOND_LSU_GE
    netlist.add("decode", fabric_ge)
    return netlist


def full_netlist(config, extensions=()):
    """Base core plus all extension netlists."""
    netlist = base_core_netlist(config)
    for extension in extensions:
        netlist = netlist.merged_with(extension.netlist())
    return netlist


def logic_area_mm2(netlist, technology):
    return technology.ge_to_mm2(netlist.total_ge())


def memory_area_mm2(config, technology):
    """SRAM macro area of the architectural local memories."""
    kb = config.imem_kb + config.dmem0_kb + config.dmem1_kb
    return kb * technology.sram_mm2_per_kb


def area_breakdown(netlist):
    """Relative area per component group (the paper's Table 4)."""
    total = netlist.total_ge()
    if not total:
        return {}
    return {group: ge / total for group, ge in
            sorted(netlist.groups.items(), key=lambda kv: -kv[1])}
