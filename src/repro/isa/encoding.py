"""Binary instruction formats of the XR32 architecture.

The base ISA uses fixed 32-bit instruction words.  Extension (TIE)
operations live in the opcode space ``0x80..0xEF`` and reuse the same
formats; FLIX bundles (64-bit very long instruction words, see the
paper's Section 3.2) are marked by the primary opcode ``0xFE`` and
occupy two consecutive 32-bit words.

Formats (field widths in bits, most significant first)::

    R   op:8 rd:4 rs:4 rt:4 pad:12       three-register ALU
    I   op:8 rd:4 rs:4 imm:16            register + 16-bit immediate
    B   op:8 rs:4 rt:4 off:16            compare-and-branch
    BZ  op:8 rs:4 pad:4 off:16           compare-with-zero branch
    J   op:8 off:24                      pc-relative jump / call
    U   op:8 rd:4 ur:12 pad:8            user-register (TIE state) access
    N   op:8 pad:24                      no operands

Branch/jump offsets are signed counts of 32-bit words relative to the
*next* instruction word, which matches how the assembler resolves
labels.
"""

from .errors import EncodingError

WORD_BITS = 32
WORD_BYTES = 4

#: Primary opcode reserved for 64-bit FLIX bundles.
FLIX_OPCODE = 0xFE

#: First opcode available to TIE extension operations.
EXTENSION_OPCODE_BASE = 0x80
EXTENSION_OPCODE_LIMIT = 0xEF


def _check_unsigned(value, bits, what):
    if not 0 <= value < (1 << bits):
        raise EncodingError(
            "%s out of range for %d unsigned bits: %r" % (what, bits, value))
    return value


def _check_signed(value, bits, what):
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1))
    if not lo <= value < hi:
        raise EncodingError(
            "%s out of range for %d signed bits: %r" % (what, bits, value))
    return value & ((1 << bits) - 1)


def _sign_extend(value, bits):
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


class Format:
    """One binary instruction format: packs/unpacks operand tuples."""

    def __init__(self, name, operand_kinds):
        self.name = name
        self.operand_kinds = tuple(operand_kinds)

    def pack(self, opcode, operands):
        raise NotImplementedError

    def unpack(self, word):
        raise NotImplementedError

    def _require(self, operands, count):
        if len(operands) != count:
            raise EncodingError(
                "format %s takes %d operands, got %r"
                % (self.name, count, (operands,)))


class FormatR(Format):
    def __init__(self):
        super().__init__("R", ("reg", "reg", "reg"))

    def pack(self, opcode, operands):
        self._require(operands, 3)
        rd, rs, rt = operands
        for v in (rd, rs, rt):
            _check_unsigned(v, 4, "register")
        return (opcode << 24) | (rd << 20) | (rs << 16) | (rt << 12)

    def unpack(self, word):
        return ((word >> 20) & 0xF, (word >> 16) & 0xF, (word >> 12) & 0xF)


class FormatR4(Format):
    """Four-register format for TIE operations (e.g. Figure 5's
    ``add3_shift`` with one result and three register-file inputs)."""

    def __init__(self):
        super().__init__("R4", ("reg", "reg", "reg", "reg"))

    def pack(self, opcode, operands):
        self._require(operands, 4)
        for v in operands:
            _check_unsigned(v, 4, "register")
        f0, f1, f2, f3 = operands
        return (opcode << 24) | (f0 << 20) | (f1 << 16) | (f2 << 12) \
            | (f3 << 8)

    def unpack(self, word):
        return ((word >> 20) & 0xF, (word >> 16) & 0xF,
                (word >> 12) & 0xF, (word >> 8) & 0xF)


class FormatI(Format):
    """Register-immediate format; immediate is signed 16 bit."""

    def __init__(self, signed=True):
        super().__init__("I", ("reg", "reg", "imm"))
        self.signed = signed

    def pack(self, opcode, operands):
        self._require(operands, 3)
        rd, rs, imm = operands
        _check_unsigned(rd, 4, "register")
        _check_unsigned(rs, 4, "register")
        if self.signed:
            imm = _check_signed(imm, 16, "immediate")
        else:
            imm = _check_unsigned(imm, 16, "immediate")
        return (opcode << 24) | (rd << 20) | (rs << 16) | imm

    def unpack(self, word):
        imm = word & 0xFFFF
        if self.signed:
            imm = _sign_extend(imm, 16)
        return ((word >> 20) & 0xF, (word >> 16) & 0xF, imm)


class FormatB(Format):
    def __init__(self):
        super().__init__("B", ("reg", "reg", "off"))

    def pack(self, opcode, operands):
        self._require(operands, 3)
        rs, rt, off = operands
        _check_unsigned(rs, 4, "register")
        _check_unsigned(rt, 4, "register")
        off = _check_signed(off, 16, "branch offset")
        return (opcode << 24) | (rs << 20) | (rt << 16) | off

    def unpack(self, word):
        return ((word >> 20) & 0xF, (word >> 16) & 0xF,
                _sign_extend(word & 0xFFFF, 16))


class FormatBZ(Format):
    def __init__(self):
        super().__init__("BZ", ("reg", "off"))

    def pack(self, opcode, operands):
        self._require(operands, 2)
        rs, off = operands
        _check_unsigned(rs, 4, "register")
        off = _check_signed(off, 16, "branch offset")
        return (opcode << 24) | (rs << 20) | off

    def unpack(self, word):
        return ((word >> 20) & 0xF, _sign_extend(word & 0xFFFF, 16))


class FormatJ(Format):
    def __init__(self):
        super().__init__("J", ("off",))

    def pack(self, opcode, operands):
        self._require(operands, 1)
        off = _check_signed(operands[0], 24, "jump offset")
        return (opcode << 24) | off

    def unpack(self, word):
        return (_sign_extend(word & 0xFFFFFF, 24),)


class FormatU(Format):
    """User-register access (``rur``/``wur``): one register, one index."""

    def __init__(self):
        super().__init__("U", ("reg", "imm"))

    def pack(self, opcode, operands):
        self._require(operands, 2)
        rd, ur = operands
        _check_unsigned(rd, 4, "register")
        _check_unsigned(ur, 12, "user-register index")
        return (opcode << 24) | (rd << 20) | (ur << 8)

    def unpack(self, word):
        return ((word >> 20) & 0xF, (word >> 8) & 0xFFF)


class FormatN(Format):
    def __init__(self):
        super().__init__("N", ())

    def pack(self, opcode, operands):
        self._require(operands, 0)
        return opcode << 24

    def unpack(self, word):
        return ()


#: Shared singleton formats, keyed by short name.
FORMATS = {
    "R": FormatR(),
    "R4": FormatR4(),
    "I": FormatI(signed=True),
    "IU": FormatI(signed=False),
    "B": FormatB(),
    "BZ": FormatBZ(),
    "J": FormatJ(),
    "U": FormatU(),
    "N": FormatN(),
}


def opcode_of(word):
    """Extract the primary opcode byte from an instruction word."""
    return (word >> 24) & 0xFF


def pack_flix_header(format_id, slot_count):
    """First word of a 64-bit FLIX bundle.

    Layout: ``0xFE`` marker, 4-bit format id, 4-bit slot count; the
    remaining bits of the first word plus the whole second word carry
    the slot payload (packed by :mod:`repro.tie.compiler`).
    """
    _check_unsigned(format_id, 4, "FLIX format id")
    _check_unsigned(slot_count, 4, "FLIX slot count")
    return (FLIX_OPCODE << 24) | (format_id << 20) | (slot_count << 16)


def unpack_flix_header(word):
    if opcode_of(word) != FLIX_OPCODE:
        raise EncodingError("not a FLIX bundle header: 0x%08x" % word)
    return (word >> 20) & 0xF, (word >> 16) & 0xF
