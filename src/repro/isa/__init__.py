"""XR32 base instruction-set architecture.

This package is the reproduction's stand-in for the Tensilica LX4 base
processor ISA: a small in-order RISC instruction set with a macro
assembler, binary encodings, and a disassembler.  TIE extensions
(:mod:`repro.tie`) register additional operations and FLIX bundle
formats on top of it.
"""

from .assembler import AsmItem, Assembler, Bundle, BUNDLE_TAIL, Program
from .disasm import disassemble_words
from .encoding import (EXTENSION_OPCODE_BASE, FLIX_OPCODE, FORMATS, WORD_BITS,
                       WORD_BYTES)
from .errors import (AssemblerError, EncodingError, IsaError, RegisterError,
                     UnknownInstructionError)
from .instructions import (InstructionSet, InstructionSpec, build_base_isa,
                           to_signed, to_unsigned)
from .registers import (NUM_ADDRESS_REGISTERS, RegisterFile, is_register,
                        parse_register, register_name)

__all__ = [
    "AsmItem", "Assembler", "Bundle", "BUNDLE_TAIL", "Program",
    "disassemble_words",
    "EXTENSION_OPCODE_BASE", "FLIX_OPCODE", "FORMATS", "WORD_BITS",
    "WORD_BYTES",
    "AssemblerError", "EncodingError", "IsaError", "RegisterError",
    "UnknownInstructionError",
    "InstructionSet", "InstructionSpec", "build_base_isa",
    "to_signed", "to_unsigned",
    "NUM_ADDRESS_REGISTERS", "RegisterFile", "is_register",
    "parse_register", "register_name",
]
