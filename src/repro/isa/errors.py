"""Exception hierarchy for the XR32 instruction-set architecture.

All ISA-level failures derive from :class:`IsaError` so callers can
catch a single exception type at the package boundary.
"""


class IsaError(Exception):
    """Base class for all ISA-related errors."""


class EncodingError(IsaError):
    """An instruction could not be encoded or decoded.

    Raised for out-of-range immediates, unknown opcodes, or operand
    lists that do not match the instruction format.
    """


class AssemblerError(IsaError):
    """An assembly source could not be translated.

    Carries an optional source location so tooling can point at the
    offending line.
    """

    def __init__(self, message, line_number=None, line_text=None):
        self.line_number = line_number
        self.line_text = line_text
        if line_number is not None:
            message = "line %d: %s" % (line_number, message)
        if line_text is not None:
            message = "%s\n    %s" % (message, line_text.strip())
        super().__init__(message)


class UnknownInstructionError(AssemblerError):
    """The mnemonic is not part of the target processor's ISA."""


class RegisterError(IsaError):
    """A register name or index is invalid."""
