"""Exception hierarchy for the XR32 instruction-set architecture.

All ISA-level failures derive from :class:`IsaError` so callers can
catch a single exception type at the package boundary.
"""


class IsaError(Exception):
    """Base class for all ISA-related errors."""


class EncodingError(IsaError):
    """An instruction could not be encoded or decoded.

    Raised for out-of-range immediates, unknown opcodes, or operand
    lists that do not match the instruction format.
    """


class AssemblerError(IsaError):
    """An assembly source could not be translated.

    Carries an optional source location so tooling can point at the
    offending line.
    """

    def __init__(self, message, line_number=None, line_text=None,
                 source_name=None):
        #: The bare message before any location prefix was attached.
        self.raw_message = message
        self.line_number = line_number
        self.line_text = line_text
        self.source_name = source_name
        if line_number is not None:
            message = "line %d: %s" % (line_number, message)
        if source_name is not None:
            message = "%s: %s" % (source_name, message)
        if line_text is not None:
            message = "%s\n    %s" % (message, line_text.strip())
        super().__init__(message)

    def with_source(self, source_name):
        """The same error with *source_name* attached (idempotent)."""
        if source_name is None or self.source_name is not None:
            return self
        return type(self)(self.raw_message, self.line_number,
                          self.line_text, source_name)


class UnknownInstructionError(AssemblerError):
    """The mnemonic is not part of the target processor's ISA."""


class RegisterError(IsaError):
    """A register name or index is invalid."""
