"""Register model of the XR32 base architecture.

The XR32 core (our stand-in for the Tensilica LX4 base processor)
exposes sixteen 32-bit general-purpose *address registers* ``a0`` to
``a15``.  By software convention ``a0`` holds the return address and
``a1`` the stack pointer, mirroring the Xtensa calling convention the
paper's tool chain uses.

Extension (TIE) state is *not* part of this file: user-defined states
and register files are created by :mod:`repro.tie` and live next to the
base register file inside the processor core.
"""

from .errors import RegisterError

#: Number of general-purpose address registers.
NUM_ADDRESS_REGISTERS = 16

#: Conventional role of selected registers (documentation + disassembly).
REGISTER_ALIASES = {
    "ra": 0,   # return address (a0)
    "sp": 1,   # stack pointer  (a1)
}

_CANONICAL_NAMES = tuple("a%d" % i for i in range(NUM_ADDRESS_REGISTERS))


def register_name(index):
    """Return the canonical name (``a<n>``) for a register index."""
    if not 0 <= index < NUM_ADDRESS_REGISTERS:
        raise RegisterError("register index out of range: %r" % (index,))
    return _CANONICAL_NAMES[index]


def parse_register(token):
    """Parse a register token (``a4``, ``sp``, ``ra``) to its index.

    Raises :class:`RegisterError` for anything that is not a valid
    register name.  Case is ignored.
    """
    if not isinstance(token, str):
        raise RegisterError("register name must be a string: %r" % (token,))
    name = token.strip().lower()
    if name in REGISTER_ALIASES:
        return REGISTER_ALIASES[name]
    if name.startswith("a") and name[1:].isdigit():
        index = int(name[1:])
        if 0 <= index < NUM_ADDRESS_REGISTERS:
            return index
    raise RegisterError("not a register: %r" % (token,))


def is_register(token):
    """Return True if *token* names a base address register."""
    try:
        parse_register(token)
    except RegisterError:
        return False
    return True


class RegisterFile:
    """A fixed-size file of 32-bit registers.

    Values are stored as unsigned Python integers in ``[0, 2**32)``.
    Writing masks to 32 bits so semantic code can stay free of explicit
    wrapping.
    """

    __slots__ = ("name", "width_bits", "_mask", "_values")

    def __init__(self, name, size=NUM_ADDRESS_REGISTERS, width_bits=32):
        self.name = name
        self.width_bits = width_bits
        self._mask = (1 << width_bits) - 1
        self._values = [0] * size

    def __len__(self):
        return len(self._values)

    def read(self, index):
        return self._values[index]

    def write(self, index, value):
        self._values[index] = value & self._mask

    def reset(self):
        for i in range(len(self._values)):
            self._values[i] = 0

    def snapshot(self):
        """Return a copy of the register contents (for tests/tracing)."""
        return list(self._values)

    # Allow semantic closures to use item syntax for speed/readability.
    __getitem__ = read

    def __setitem__(self, index, value):
        self._values[index] = value & self._mask
