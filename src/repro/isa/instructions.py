"""The XR32 base instruction set: specifications and semantics.

Each instruction is described by an :class:`InstructionSpec` bundling

* the mnemonic and binary format (see :mod:`repro.isa.encoding`),
* a *timing kind* used by the pipeline cost model
  (``alu``/``mul``/``div``/``load``/``store``/``branch``/``jump``/...),
* an executor function implementing the architectural semantics.

Executor functions receive the executing core (duck-typed, see
:class:`repro.cpu.processor.Core`) and the decoded operand tuple.  They
mutate architectural state; control-transfer instructions additionally
set ``core.npc`` to the target *word index*.

The program counter is a word index into instruction memory (the
processor is a Harvard machine with separate local instruction and data
memories, exactly as in the paper's processor model, Figure 6).  Data
addresses are byte addresses.
"""

from .encoding import FORMATS
from .errors import EncodingError, IsaError

M32 = 0xFFFFFFFF


def to_signed(value):
    """Interpret a 32-bit unsigned value as signed."""
    return value - 0x100000000 if value & 0x80000000 else value


def to_unsigned(value):
    """Mask a Python integer to its 32-bit unsigned representation."""
    return value & M32


class InstructionSpec:
    """Static description of one instruction.

    TIE extension operations reuse this class; they additionally set
    ``reads_positions``/``writes_positions`` (operand positions that
    name base address registers, for the pipeline scoreboard),
    ``operand_kinds`` (compact operand kinds for FLIX slot encoding)
    and ``extra_cycles`` (multi-cycle operations).
    """

    __slots__ = ("name", "opcode", "fmt", "kind", "executor", "extension",
                 "requires", "extra_cycles", "reads_positions",
                 "writes_positions", "operand_kinds", "slot_class")

    def __init__(self, name, opcode, fmt, kind, executor, extension=None,
                 requires=None, extra_cycles=0):
        self.name = name
        self.opcode = opcode
        self.fmt = fmt
        self.kind = kind
        self.executor = executor
        #: Name of the TIE extension providing this op (None for base ISA).
        self.extension = extension
        #: Optional processor-feature gate, e.g. ``"has_div"``.
        self.requires = requires
        #: Issue cycles beyond the first (multi-cycle operations).
        self.extra_cycles = extra_cycles

    @property
    def format(self):
        return FORMATS[self.fmt]

    @property
    def is_control(self):
        return self.kind in ("branch", "jump", "call", "indirect")

    def __repr__(self):
        return "<InstructionSpec %s op=0x%02x %s>" % (
            self.name, self.opcode, self.fmt)


class InstructionSet:
    """A registry of instruction specs, extensible by TIE extensions."""

    def __init__(self, name="xr32"):
        self.name = name
        self._by_name = {}
        self._by_opcode = {}
        self._next_extension_opcode = 0x80

    def __contains__(self, name):
        return name in self._by_name

    def __iter__(self):
        return iter(self._by_name.values())

    def __len__(self):
        return len(self._by_name)

    def add(self, spec):
        if spec.name in self._by_name:
            raise IsaError("duplicate instruction name: %s" % spec.name)
        if spec.opcode in self._by_opcode:
            raise IsaError("duplicate opcode 0x%02x (%s vs %s)" % (
                spec.opcode, spec.name, self._by_opcode[spec.opcode].name))
        self._by_name[spec.name] = spec
        self._by_opcode[spec.opcode] = spec
        return spec

    def allocate_extension_opcode(self):
        """Hand out the next free opcode in the extension space."""
        while self._next_extension_opcode in self._by_opcode:
            self._next_extension_opcode += 1
        opcode = self._next_extension_opcode
        if opcode > 0xEF:
            raise IsaError("extension opcode space exhausted")
        self._next_extension_opcode += 1
        return opcode

    def lookup(self, name):
        try:
            return self._by_name[name]
        except KeyError:
            raise IsaError("unknown instruction: %r" % (name,)) from None

    def lookup_opcode(self, opcode):
        try:
            return self._by_opcode[opcode]
        except KeyError:
            raise EncodingError("unknown opcode: 0x%02x" % opcode) from None

    def names(self):
        return sorted(self._by_name)


# ---------------------------------------------------------------------------
# Semantics of the base ISA.
# ---------------------------------------------------------------------------

def _exec_add(core, ops):
    rd, rs, rt = ops
    r = core.regs
    r[rd] = r[rs] + r[rt]


def _exec_sub(core, ops):
    rd, rs, rt = ops
    r = core.regs
    r[rd] = r[rs] - r[rt]


def _exec_and(core, ops):
    rd, rs, rt = ops
    r = core.regs
    r[rd] = r[rs] & r[rt]


def _exec_or(core, ops):
    rd, rs, rt = ops
    r = core.regs
    r[rd] = r[rs] | r[rt]


def _exec_xor(core, ops):
    rd, rs, rt = ops
    r = core.regs
    r[rd] = r[rs] ^ r[rt]


def _exec_sll(core, ops):
    rd, rs, rt = ops
    r = core.regs
    r[rd] = r[rs] << (r[rt] & 31)


def _exec_srl(core, ops):
    rd, rs, rt = ops
    r = core.regs
    r[rd] = r[rs] >> (r[rt] & 31)


def _exec_sra(core, ops):
    rd, rs, rt = ops
    r = core.regs
    r[rd] = to_signed(r[rs]) >> (r[rt] & 31)


def _exec_slt(core, ops):
    rd, rs, rt = ops
    r = core.regs
    r[rd] = 1 if to_signed(r[rs]) < to_signed(r[rt]) else 0


def _exec_sltu(core, ops):
    rd, rs, rt = ops
    r = core.regs
    r[rd] = 1 if r[rs] < r[rt] else 0


def _exec_min(core, ops):
    rd, rs, rt = ops
    r = core.regs
    a, b = to_signed(r[rs]), to_signed(r[rt])
    r[rd] = a if a < b else b


def _exec_max(core, ops):
    rd, rs, rt = ops
    r = core.regs
    a, b = to_signed(r[rs]), to_signed(r[rt])
    r[rd] = a if a > b else b


def _exec_minu(core, ops):
    rd, rs, rt = ops
    r = core.regs
    r[rd] = r[rs] if r[rs] < r[rt] else r[rt]


def _exec_maxu(core, ops):
    rd, rs, rt = ops
    r = core.regs
    r[rd] = r[rs] if r[rs] > r[rt] else r[rt]


def _exec_mul(core, ops):
    rd, rs, rt = ops
    r = core.regs
    r[rd] = r[rs] * r[rt]


def _exec_mulh(core, ops):
    rd, rs, rt = ops
    r = core.regs
    r[rd] = (to_signed(r[rs]) * to_signed(r[rt])) >> 32


def _exec_quou(core, ops):
    rd, rs, rt = ops
    r = core.regs
    r[rd] = r[rs] // r[rt] if r[rt] else M32


def _exec_remu(core, ops):
    rd, rs, rt = ops
    r = core.regs
    r[rd] = r[rs] % r[rt] if r[rt] else r[rs]


def _exec_quos(core, ops):
    rd, rs, rt = ops
    r = core.regs
    a, b = to_signed(r[rs]), to_signed(r[rt])
    r[rd] = int(a / b) if b else M32


def _exec_rems(core, ops):
    rd, rs, rt = ops
    r = core.regs
    a, b = to_signed(r[rs]), to_signed(r[rt])
    r[rd] = a - b * int(a / b) if b else a


def _exec_addi(core, ops):
    rd, rs, imm = ops
    r = core.regs
    r[rd] = r[rs] + imm


def _exec_andi(core, ops):
    rd, rs, imm = ops
    r = core.regs
    r[rd] = r[rs] & (imm & M32)


def _exec_ori(core, ops):
    rd, rs, imm = ops
    r = core.regs
    r[rd] = r[rs] | (imm & 0xFFFF)


def _exec_xori(core, ops):
    rd, rs, imm = ops
    r = core.regs
    r[rd] = r[rs] ^ (imm & 0xFFFF)


def _exec_slli(core, ops):
    rd, rs, imm = ops
    r = core.regs
    r[rd] = r[rs] << (imm & 31)


def _exec_srli(core, ops):
    rd, rs, imm = ops
    r = core.regs
    r[rd] = r[rs] >> (imm & 31)


def _exec_srai(core, ops):
    rd, rs, imm = ops
    r = core.regs
    r[rd] = to_signed(r[rs]) >> (imm & 31)


def _exec_slti(core, ops):
    rd, rs, imm = ops
    r = core.regs
    r[rd] = 1 if to_signed(r[rs]) < imm else 0


def _exec_sltui(core, ops):
    rd, rs, imm = ops
    r = core.regs
    r[rd] = 1 if r[rs] < (imm & M32) else 0


def _exec_movi(core, ops):
    rd, _rs, imm = ops
    core.regs[rd] = imm


def _exec_movhi(core, ops):
    rd, _rs, imm = ops
    core.regs[rd] = (imm & 0xFFFF) << 16


def _exec_l32i(core, ops):
    rd, rs, imm = ops
    r = core.regs
    r[rd] = core.load(r[rs] + imm, 4, False)


def _exec_l16ui(core, ops):
    rd, rs, imm = ops
    r = core.regs
    r[rd] = core.load(r[rs] + imm, 2, False)


def _exec_l16si(core, ops):
    rd, rs, imm = ops
    r = core.regs
    r[rd] = core.load(r[rs] + imm, 2, True)


def _exec_l8ui(core, ops):
    rd, rs, imm = ops
    r = core.regs
    r[rd] = core.load(r[rs] + imm, 1, False)


def _exec_s32i(core, ops):
    rd, rs, imm = ops
    r = core.regs
    core.store(r[rs] + imm, r[rd], 4)


def _exec_s16i(core, ops):
    rd, rs, imm = ops
    r = core.regs
    core.store(r[rs] + imm, r[rd] & 0xFFFF, 2)


def _exec_s8i(core, ops):
    rd, rs, imm = ops
    r = core.regs
    core.store(r[rs] + imm, r[rd] & 0xFF, 1)


# Branch targets are resolved to absolute word indexes at decode time,
# so the executor only has to assign ``core.npc``.

def _exec_beq(core, ops):
    rs, rt, target = ops
    r = core.regs
    if r[rs] == r[rt]:
        core.npc = target
        core.branch_taken = True


def _exec_bne(core, ops):
    rs, rt, target = ops
    r = core.regs
    if r[rs] != r[rt]:
        core.npc = target
        core.branch_taken = True


def _exec_blt(core, ops):
    rs, rt, target = ops
    r = core.regs
    if to_signed(r[rs]) < to_signed(r[rt]):
        core.npc = target
        core.branch_taken = True


def _exec_bltu(core, ops):
    rs, rt, target = ops
    r = core.regs
    if r[rs] < r[rt]:
        core.npc = target
        core.branch_taken = True


def _exec_bge(core, ops):
    rs, rt, target = ops
    r = core.regs
    if to_signed(r[rs]) >= to_signed(r[rt]):
        core.npc = target
        core.branch_taken = True


def _exec_bgeu(core, ops):
    rs, rt, target = ops
    r = core.regs
    if r[rs] >= r[rt]:
        core.npc = target
        core.branch_taken = True


def _exec_beqz(core, ops):
    rs, target = ops
    if core.regs[rs] == 0:
        core.npc = target
        core.branch_taken = True


def _exec_bnez(core, ops):
    rs, target = ops
    if core.regs[rs] != 0:
        core.npc = target
        core.branch_taken = True


def _exec_j(core, ops):
    core.npc = ops[0]


def _exec_jal(core, ops):
    core.regs[0] = core.pc + 1
    core.npc = ops[0]


def _exec_jalr(core, ops):
    rd, rs, _imm = ops
    r = core.regs
    target = r[rs]
    r[rd] = core.pc + 1
    core.npc = target


def _exec_ret(core, ops):
    core.npc = core.regs[0]


def _exec_rur(core, ops):
    rd, ur = ops
    core.regs[rd] = core.read_user_register(ur)


def _exec_wur(core, ops):
    rd, ur = ops
    core.write_user_register(ur, core.regs[rd])


def _exec_nop(core, ops):
    pass


def _exec_halt(core, ops):
    core.halted = True


#: (name, format key, timing kind, executor, feature gate)
_BASE_TABLE = (
    ("add",   "R",  "alu",      _exec_add,   None),
    ("sub",   "R",  "alu",      _exec_sub,   None),
    ("and",   "R",  "alu",      _exec_and,   None),
    ("or",    "R",  "alu",      _exec_or,    None),
    ("xor",   "R",  "alu",      _exec_xor,   None),
    ("sll",   "R",  "alu",      _exec_sll,   None),
    ("srl",   "R",  "alu",      _exec_srl,   None),
    ("sra",   "R",  "alu",      _exec_sra,   None),
    ("slt",   "R",  "alu",      _exec_slt,   None),
    ("sltu",  "R",  "alu",      _exec_sltu,  None),
    ("min",   "R",  "alu",      _exec_min,   None),
    ("max",   "R",  "alu",      _exec_max,   None),
    ("minu",  "R",  "alu",      _exec_minu,  None),
    ("maxu",  "R",  "alu",      _exec_maxu,  None),
    ("mul",   "R",  "mul",      _exec_mul,   "has_mul"),
    ("mulh",  "R",  "mul",      _exec_mulh,  "has_mul"),
    ("quou",  "R",  "div",      _exec_quou,  "has_div"),
    ("remu",  "R",  "div",      _exec_remu,  "has_div"),
    ("quos",  "R",  "div",      _exec_quos,  "has_div"),
    ("rems",  "R",  "div",      _exec_rems,  "has_div"),
    ("addi",  "I",  "alu",      _exec_addi,  None),
    ("andi",  "IU", "alu",      _exec_andi,  None),
    ("ori",   "IU", "alu",      _exec_ori,   None),
    ("xori",  "IU", "alu",      _exec_xori,  None),
    ("slli",  "I",  "alu",      _exec_slli,  None),
    ("srli",  "I",  "alu",      _exec_srli,  None),
    ("srai",  "I",  "alu",      _exec_srai,  None),
    ("slti",  "I",  "alu",      _exec_slti,  None),
    ("sltui", "IU", "alu",      _exec_sltui, None),
    ("movi",  "I",  "alu",      _exec_movi,  None),
    ("movhi", "IU", "alu",      _exec_movhi, None),
    ("l32i",  "I",  "load",     _exec_l32i,  None),
    ("l16ui", "I",  "load",     _exec_l16ui, None),
    ("l16si", "I",  "load",     _exec_l16si, None),
    ("l8ui",  "I",  "load",     _exec_l8ui,  None),
    ("s32i",  "I",  "store",    _exec_s32i,  None),
    ("s16i",  "I",  "store",    _exec_s16i,  None),
    ("s8i",   "I",  "store",    _exec_s8i,   None),
    ("beq",   "B",  "branch",   _exec_beq,   None),
    ("bne",   "B",  "branch",   _exec_bne,   None),
    ("blt",   "B",  "branch",   _exec_blt,   None),
    ("bltu",  "B",  "branch",   _exec_bltu,  None),
    ("bge",   "B",  "branch",   _exec_bge,   None),
    ("bgeu",  "B",  "branch",   _exec_bgeu,  None),
    ("beqz",  "BZ", "branch",   _exec_beqz,  None),
    ("bnez",  "BZ", "branch",   _exec_bnez,  None),
    ("j",     "J",  "jump",     _exec_j,     None),
    ("jal",   "J",  "call",     _exec_jal,   None),
    ("jalr",  "I",  "indirect", _exec_jalr,  None),
    ("ret",   "N",  "indirect", _exec_ret,   None),
    ("rur",   "U",  "alu",      _exec_rur,   None),
    ("wur",   "U",  "alu",      _exec_wur,   None),
    ("nop",   "N",  "nop",      _exec_nop,   None),
    ("halt",  "N",  "halt",     _exec_halt,  None),
)


def build_base_isa(features=None):
    """Construct the base instruction set.

    *features* is an optional mapping of feature flags
    (``has_mul``/``has_div``); instructions gated on an absent or false
    feature are excluded, mirroring how a customizable processor is
    configured without, e.g., a hardware divider (the paper's DBA
    processors lack integer division, Section 5.1).
    """
    features = features or {}
    isa = InstructionSet()
    opcode = 0x01
    for name, fmt, kind, executor, gate in _BASE_TABLE:
        if gate is not None and not features.get(gate, True):
            opcode += 1  # keep the opcode map stable across configs
            continue
        isa.add(InstructionSpec(name, opcode, fmt, kind, executor))
        opcode += 1
    return isa


def pad_tie_operands(spec, operands):
    """Pad a TIE operand tuple to the arity of its binary format.

    TIE operations reuse the base binary formats (R/I/N); unused fields
    are packed as zero.  The immediate, when present, is always the
    last declared operand and maps to the format's immediate field.
    """
    kinds = spec.operand_kinds
    nibbles = [operands[i] for i, kind in enumerate(kinds) if kind != "imm"]
    imms = [operands[i] for i, kind in enumerate(kinds) if kind == "imm"]
    if spec.fmt == "N":
        return ()
    if spec.fmt in ("I", "IU"):
        while len(nibbles) < 2:
            nibbles.append(0)
        return tuple(nibbles) + (imms[0] if imms else 0,)
    arity = 4 if spec.fmt == "R4" else 3
    while len(nibbles) < arity:
        nibbles.append(0)
    return tuple(nibbles)


def unpack_tie_operands(spec, fields):
    """Inverse of :func:`pad_tie_operands` (decode path)."""
    kinds = spec.operand_kinds
    fields = list(fields)
    result = []
    nib_index = 0
    for kind in kinds:
        if kind == "imm":
            result.append(fields[-1])
        else:
            result.append(fields[nib_index])
            nib_index += 1
    return tuple(result)


#: Mnemonics whose third operand is a branch label (for the assembler).
BRANCH_MNEMONICS = frozenset(
    name for name, fmt, _k, _e, _g in _BASE_TABLE if fmt in ("B", "BZ"))
JUMP_MNEMONICS = frozenset(
    name for name, fmt, _k, _e, _g in _BASE_TABLE if fmt == "J")
