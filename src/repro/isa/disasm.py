"""Disassembler: decode 32-bit instruction words back to mnemonics.

Used by the verification flow (HDL-style equivalence checks between the
assembled program and its binary encoding) and by the pipeline tracer.
"""

from .encoding import FLIX_OPCODE, opcode_of, unpack_flix_header
from .errors import EncodingError
from .registers import register_name


def decode_word(isa, word, index=0, flix_formats=()):
    """Decode one instruction word to ``(spec_or_bundle, operands, size)``.

    For FLIX headers the caller must supply *flix_formats* and the next
    word via :func:`decode_bundle` instead; this function raises
    :class:`EncodingError` when handed a bundle header so callers cannot
    silently mis-decode.
    """
    opcode = opcode_of(word)
    if opcode == FLIX_OPCODE:
        raise EncodingError(
            "word %d is a FLIX bundle header; use decode_bundle" % index)
    spec = isa.lookup_opcode(opcode)
    operands = spec.format.unpack(word)
    if getattr(spec, "operand_kinds", None) is not None:
        from .instructions import unpack_tie_operands
        operands = unpack_tie_operands(spec, operands)
    elif spec.fmt in ("B", "BZ", "J"):
        operands = operands[:-1] + (operands[-1] + index + 1,)
    return spec, operands, 1


def decode_bundle(flix_formats, header_word, payload_word, index):
    """Decode a 64-bit FLIX bundle into slot (spec, operands) pairs."""
    format_id, slot_count = unpack_flix_header(header_word)
    for flix_format in flix_formats:
        if flix_format.format_id == format_id:
            return flix_format.decode_bundle(header_word, payload_word,
                                             slot_count, index)
    raise EncodingError("unknown FLIX format id %d" % format_id)


def format_operands(spec, operands):
    """Render an operand tuple in assembly syntax."""
    kinds = getattr(spec, "operand_kinds", None) \
        or spec.format.operand_kinds
    parts = []
    for kind, value in zip(kinds, operands):
        if kind in ("reg", "ar"):
            parts.append(register_name(value))
        elif kind == "off":
            parts.append("@%d" % value)
        elif kind.startswith("rf:"):
            parts.append("%s[%d]" % (kind[3:], value))
        else:
            parts.append(str(value))
    return ", ".join(parts)


def disassemble_words(isa, words, flix_formats=()):
    """Disassemble a word list to text lines (one per issue item)."""
    lines = []
    index = 0
    while index < len(words):
        word = words[index]
        if opcode_of(word) == FLIX_OPCODE:
            slots = decode_bundle(flix_formats, word, words[index + 1], index)
            rendered = "; ".join(
                "%s %s" % (spec.name, format_operands(spec, operands))
                if operands else spec.name
                for spec, operands in slots)
            lines.append("%6d: { %s }" % (index, rendered))
            index += 2
            continue
        spec, operands, size = decode_word(isa, word, index)
        text = format_operands(spec, operands)
        lines.append("%6d: %s%s" % (index, spec.name,
                                    " " + text if text else ""))
        index += size
    return lines
