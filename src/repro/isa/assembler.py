"""Two-pass macro assembler for XR32 assembly sources.

The assembler understands

* one instruction per line, operands separated by commas,
* labels (``name:``), ``;``/``#``/``//`` comments,
* ``.equ NAME VALUE`` constant definitions,
* pseudo-instructions (``li``, ``mv``, ``call``, ``b``, ``bgt``,
  ``ble``, ``bgtu``, ``bleu``) that expand to base instructions,
* FLIX bundles written ``{ op0 ; op1 ; op2 }`` on a single line, which
  map to the 64-bit VLIW format of the paper's processor (Section 3.2).

The output is a :class:`Program`: a word-indexed list of decoded items
ready for cycle-level execution, which can also be encoded to binary
words (and decoded back by :mod:`repro.isa.disasm`).
"""

import re

from .encoding import pack_flix_header
from .errors import (AssemblerError, IsaError, RegisterError,
                     UnknownInstructionError)
from .instructions import InstructionSpec  # noqa: F401  (re-export for typing)
from .registers import parse_register

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_SYMBOL_RE = re.compile(r"^[A-Za-z_.$][\w.$]*$")


class AsmItem:
    """One decoded instruction placed in instruction memory."""

    __slots__ = ("spec", "operands", "line_number", "size")

    def __init__(self, spec, operands, line_number):
        self.spec = spec
        self.operands = operands
        self.line_number = line_number
        self.size = 1

    def __repr__(self):
        return "<%s %s>" % (self.spec.name,
                            ",".join(str(o) for o in self.operands))


class Bundle:
    """A FLIX bundle: several operations issued in the same cycle."""

    __slots__ = ("slots", "flix_format", "line_number", "size")

    def __init__(self, slots, flix_format, line_number):
        self.slots = slots
        self.flix_format = flix_format
        self.line_number = line_number
        self.size = 2  # a 64-bit bundle occupies two 32-bit words

    def __repr__(self):
        return "<Bundle {%s}>" % "; ".join(
            s.spec.name for s in self.slots)


class BundleTail:
    """Placeholder occupying the second word of a 64-bit bundle."""

    __slots__ = ()
    size = 1


BUNDLE_TAIL = BundleTail()


class Program:
    """An assembled program.

    ``items`` is indexed by instruction-memory *word index*; the second
    word of each FLIX bundle holds :data:`BUNDLE_TAIL`.
    """

    def __init__(self, items, labels, source_name="<asm>"):
        self.items = items
        self.labels = labels
        self.source_name = source_name

    def __len__(self):
        return len(self.items)

    def label(self, name):
        try:
            return self.labels[name]
        except KeyError:
            raise AssemblerError("unknown label: %r" % (name,),
                                 source_name=self.source_name) from None

    def encode(self):
        """Encode the program to a list of 32-bit instruction words.

        Encoding errors are re-raised with the program's source name
        and the offending item's line number prefixed, so a bundle that
        fails to pack points back at the assembly line that produced
        it.
        """
        words = []
        for index, item in enumerate(self.items):
            if isinstance(item, BundleTail):
                continue
            try:
                if isinstance(item, Bundle):
                    header, payload = item.flix_format.encode_bundle(
                        item, index)
                    words.append(header)
                    words.append(payload)
                else:
                    operands = _operands_for_encoding(item, index)
                    words.append(item.spec.format.pack(item.spec.opcode,
                                                       operands))
            except AssemblerError:
                raise
            except IsaError as exc:
                raise _locate_error(exc, self.source_name,
                                    item.line_number) from exc
        return words

    def instruction_count(self):
        """Number of issue items (bundles count once)."""
        return sum(1 for item in self.items
                   if not isinstance(item, BundleTail))


def _locate_error(exc, source_name, line_number):
    """Same exception type with ``source:line`` context prefixed."""
    message = str(exc)
    if line_number is not None:
        message = "line %d: %s" % (line_number, message)
    if source_name is not None:
        message = "%s: %s" % (source_name, message)
    located = type(exc)(message)
    located.source_name = source_name
    located.line_number = line_number
    return located


def _operands_for_encoding(item, index):
    """Convert decode-time absolute branch targets back to offsets."""
    spec = item.spec
    if getattr(spec, "operand_kinds", None) is not None:
        from .instructions import pad_tie_operands
        return pad_tie_operands(spec, item.operands)
    if spec.fmt in ("B", "BZ", "J"):
        operands = list(item.operands)
        operands[-1] = operands[-1] - (index + item.size)
        return tuple(operands)
    return item.operands


class Assembler:
    """Assembles XR32 source text against a given instruction set.

    Parameters
    ----------
    isa:
        The :class:`~repro.isa.instructions.InstructionSet` of the
        target processor (base ISA plus any TIE extensions).
    flix_formats:
        Iterable of FLIX formats (``repro.tie``) the processor supports;
        bundles are rejected when none are given.
    symbols:
        Extra pre-defined symbols, e.g. user-register names published by
        TIE extensions (``{"state8": 3}``).
    regfiles:
        Mapping of TIE register-file name to
        :class:`repro.tie.language.RegFile`, used to parse operands of
        extension operations (``v3`` etc.).
    """

    def __init__(self, isa, flix_formats=(), symbols=None, regfiles=None):
        self.isa = isa
        self.flix_formats = tuple(flix_formats)
        self.symbols = dict(symbols or {})
        self.regfiles = dict(regfiles or {})

    # -- public API --------------------------------------------------------

    def assemble(self, source, source_name="<asm>"):
        lines = source.splitlines()
        try:
            items, labels, fixups = self._first_pass(lines)
            self._second_pass(items, labels, fixups)
        except AssemblerError as exc:
            # Every parse/fixup error leaves here carrying the source
            # name on top of the line number it was raised with.
            raise exc.with_source(source_name) from None
        return Program(items, labels, source_name)

    # -- pass 1: parse, expand pseudos, place labels ------------------------

    def _first_pass(self, lines):
        items = []
        labels = {}
        fixups = []  # (item, operand position, symbol, line number)
        equates = dict(self.symbols)
        for line_number, raw in enumerate(lines, start=1):
            text = _strip_comment(raw).strip()
            while text:
                match = _LABEL_RE.match(text)
                if not match:
                    break
                name = match.group(1)
                if name in labels:
                    raise AssemblerError("duplicate label %r" % name,
                                         line_number, raw)
                labels[name] = len(items)
                text = text[match.end():].strip()
            if not text:
                continue
            if text.startswith(".equ"):
                self._handle_equ(text, equates, line_number, raw)
                continue
            if text.startswith("{"):
                bundle = self._parse_bundle(text, equates, fixups,
                                            line_number, raw)
                items.append(bundle)
                items.append(BUNDLE_TAIL)
                continue
            for item in self._parse_instruction(text, equates, fixups,
                                                line_number, raw):
                items.append(item)
        return items, labels, fixups

    def _handle_equ(self, text, equates, line_number, raw):
        parts = text.split(None, 2)
        if len(parts) != 3:
            raise AssemblerError(".equ requires a name and a value",
                                 line_number, raw)
        _, name, value_text = parts
        if not _SYMBOL_RE.match(name):
            raise AssemblerError("invalid .equ name %r" % name,
                                 line_number, raw)
        equates[name] = self._parse_immediate(value_text.strip(), equates,
                                              line_number, raw)
        # value is recorded; nothing emitted

    def _parse_bundle(self, text, equates, fixups, line_number, raw):
        if not self.flix_formats:
            raise AssemblerError(
                "FLIX bundle used but the processor defines no FLIX formats",
                line_number, raw)
        if not text.endswith("}"):
            raise AssemblerError("FLIX bundle must close on the same line",
                                 line_number, raw)
        body = text[1:-1].strip()
        slot_texts = [part.strip() for part in body.split(";") if part.strip()]
        if not slot_texts:
            raise AssemblerError("empty FLIX bundle", line_number, raw)
        slots = []
        for slot_text in slot_texts:
            expansion = self._parse_instruction(slot_text, equates, fixups,
                                                line_number, raw)
            if len(expansion) != 1:
                raise AssemblerError(
                    "pseudo-instructions that expand to multiple ops are "
                    "not allowed inside a bundle: %r" % slot_text,
                    line_number, raw)
            slots.append(expansion[0])
        flix_format = self._select_flix_format(slots, line_number, raw)
        return Bundle(slots, flix_format, line_number)

    def _select_flix_format(self, slots, line_number, raw):
        for flix_format in self.flix_formats:
            if flix_format.accepts(slots):
                return flix_format
        raise AssemblerError(
            "no FLIX format accepts bundle {%s}"
            % "; ".join(s.spec.name for s in slots),
            line_number, raw)

    def _parse_instruction(self, text, equates, fixups, line_number, raw):
        mnemonic, _, rest = text.partition(" ")
        mnemonic = mnemonic.strip().lower()
        operand_texts = [t.strip() for t in rest.split(",")] if rest.strip() \
            else []
        expander = _PSEUDOS.get(mnemonic)
        if expander is not None:
            expanded = expander(self, operand_texts, equates,
                                line_number, raw)
            result = []
            for exp_mnemonic, exp_operands in expanded:
                result.extend(self._parse_instruction(
                    "%s %s" % (exp_mnemonic, ", ".join(exp_operands)),
                    equates, fixups, line_number, raw))
            return result
        if mnemonic not in self.isa:
            raise UnknownInstructionError(
                "unknown instruction %r" % mnemonic, line_number, raw)
        spec = self.isa.lookup(mnemonic)
        operands, pending = self._parse_operands(spec, operand_texts, equates,
                                                 line_number, raw)
        item = AsmItem(spec, operands, line_number)
        for symbol, position in pending:
            fixups.append((_Fixup(symbol, position, item), line_number, raw))
        return [item]

    def _parse_operands(self, spec, texts, equates, line_number, raw):
        custom_kinds = getattr(spec, "operand_kinds", None)
        if custom_kinds is not None:
            kinds = list(custom_kinds)
        else:
            kinds = list(spec.format.operand_kinds)
            # Convenience forms that omit implicit operands.
            if spec.name in ("movi", "movhi") and len(texts) == 2:
                texts = [texts[0], "a0", texts[1]]  # rs unused
            if spec.name == "jalr" and len(texts) == 2:
                texts = [texts[0], texts[1], "0"]
            if spec.fmt == "I" and spec.kind in ("load", "store") \
                    and len(texts) == 2:
                texts = [texts[0], texts[1], "0"]
        if len(texts) != len(kinds):
            raise AssemblerError(
                "%s takes %d operands, got %d"
                % (spec.name, len(kinds), len(texts)), line_number, raw)
        operands = []
        pending = []
        for kind, text in zip(kinds, texts):
            if kind.startswith("rf:"):
                regfile = self.regfiles.get(kind[3:])
                if regfile is None:
                    raise AssemblerError(
                        "no register file %r on this processor"
                        % kind[3:], line_number, raw)
                try:
                    operands.append(regfile.parse(text))
                except Exception as exc:
                    raise AssemblerError(str(exc), line_number, raw) from exc
            elif kind in ("reg", "ar"):
                try:
                    operands.append(parse_register(text))
                except RegisterError as exc:
                    raise AssemblerError(str(exc), line_number, raw) from exc
            elif kind == "imm":
                operands.append(self._parse_immediate(text, equates,
                                                      line_number, raw))
            elif kind == "off":
                if _looks_like_number(text):
                    raise AssemblerError(
                        "branch/jump targets must be labels: %r" % text,
                        line_number, raw)
                pending.append((text, len(operands)))
                operands.append(0)
            else:  # pragma: no cover - formats define only reg/imm/off
                raise AssemblerError("unhandled operand kind %r" % kind,
                                     line_number, raw)
        return tuple(operands), pending

    def _parse_immediate(self, text, equates, line_number, raw):
        text = text.strip()
        if _looks_like_number(text):
            try:
                return int(text, 0)
            except ValueError:
                raise AssemblerError("bad immediate %r" % text,
                                     line_number, raw) from None
        if text in equates:
            return equates[text]
        raise AssemblerError("undefined symbol %r" % text, line_number, raw)

    # -- pass 2: resolve label references -----------------------------------

    def _second_pass(self, items, labels, fixups):
        for fixup, line_number, raw in fixups:
            if fixup.item is None:  # pragma: no cover - defensive
                raise AssemblerError("internal: dangling fixup",
                                     line_number, raw)
            if fixup.symbol not in labels:
                raise AssemblerError("undefined label %r" % fixup.symbol,
                                     line_number, raw)
            target = labels[fixup.symbol]
            operands = list(fixup.item.operands)
            operands[fixup.position] = target
            fixup.item.operands = tuple(operands)


class _Fixup:
    __slots__ = ("symbol", "position", "item")

    def __init__(self, symbol, position, item):
        self.symbol = symbol
        self.position = position
        self.item = item


def _strip_comment(line):
    """Remove comments; ``;`` separates slots inside FLIX braces."""
    result = []
    depth = 0
    index = 0
    length = len(line)
    while index < length:
        char = line[index]
        if char == "{":
            depth += 1
        elif char == "}":
            depth -= 1
        elif char == "#" or (char == ";" and depth == 0):
            break
        elif char == "/" and line.startswith("//", index):
            break
        result.append(char)
        index += 1
    return "".join(result)


def _looks_like_number(text):
    if not text:
        return False
    head = text[1:] if text[0] in "+-" else text
    return head[:1].isdigit()


# ---------------------------------------------------------------------------
# Pseudo-instruction expanders.  Each returns a list of
# (mnemonic, [operand texts]) pairs.
# ---------------------------------------------------------------------------

def _expand_li(assembler, operands, equates, line_number, raw):
    if len(operands) != 2:
        raise AssemblerError("li takes 2 operands", line_number, raw)
    rd, value_text = operands
    value = assembler._parse_immediate(value_text, equates, line_number, raw)
    value &= 0xFFFFFFFF
    signed = value - 0x100000000 if value & 0x80000000 else value
    if -32768 <= signed < 32768:
        return [("movi", [rd, str(signed)])]
    high = (value >> 16) & 0xFFFF
    low = value & 0xFFFF
    expansion = [("movhi", [rd, str(high)])]
    if low:
        expansion.append(("ori", [rd, rd, str(low)]))
    return expansion


def _expand_mv(assembler, operands, equates, line_number, raw):
    if len(operands) != 2:
        raise AssemblerError("mv takes 2 operands", line_number, raw)
    rd, rs = operands
    return [("or", [rd, rs, rs])]


def _expand_call(assembler, operands, equates, line_number, raw):
    if len(operands) != 1:
        raise AssemblerError("call takes 1 operand", line_number, raw)
    return [("jal", operands)]


def _expand_b(assembler, operands, equates, line_number, raw):
    if len(operands) != 1:
        raise AssemblerError("b takes 1 operand", line_number, raw)
    return [("j", operands)]


def _swap_compare(mnemonic):
    def expand(assembler, operands, equates, line_number, raw):
        if len(operands) != 3:
            raise AssemblerError("branch takes 3 operands", line_number, raw)
        rs, rt, label = operands
        return [(mnemonic, [rt, rs, label])]
    return expand


_PSEUDOS = {
    "li": _expand_li,
    "mv": _expand_mv,
    "call": _expand_call,
    "b": _expand_b,
    "bgt": _swap_compare("blt"),
    "bgtu": _swap_compare("bltu"),
    "ble": _swap_compare("bge"),
    "bleu": _swap_compare("bgeu"),
}


__all__ = ["Assembler", "Program", "AsmItem", "Bundle", "BundleTail",
           "BUNDLE_TAIL", "pack_flix_header"]
