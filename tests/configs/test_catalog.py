"""Configuration catalog tests against the paper's Section 5.1 setup."""

import pytest

from repro.configs.catalog import (CONFIG_NAMES, TABLE2_ROWS,
                                   build_processor, core_config,
                                   has_eis, row_label)


class TestCatalogShapes:
    def test_all_names_buildable(self):
        for name in CONFIG_NAMES:
            config = core_config(name)
            assert config.name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            core_config("DBA_9LSU")

    def test_108mini_matches_paper(self):
        config = core_config("108Mini")
        assert config.num_lsus == 1
        assert config.lsu_port_bits == 32
        assert not config.has_local_store  # no caches, no local store
        assert config.has_div              # hardware division

    def test_dba_1lsu_matches_paper(self):
        config = core_config("DBA_1LSU")
        assert config.dmem0_kb == 64       # 64KB local data store
        assert config.imem_kb == 32        # 32KB instruction memory
        assert config.lsu_port_bits == 128  # widened data bus
        assert not config.has_div          # no hardware division

    def test_dba_2lsu_splits_memory(self):
        config = core_config("DBA_2LSU")
        assert config.num_lsus == 2
        assert config.dmem0_kb == config.dmem1_kb == 32
        assert config.local_store_kb == 64

    def test_eis_configs_share_base_shape(self):
        base = core_config("DBA_2LSU")
        eis = core_config("DBA_2LSU_EIS")
        assert (base.num_lsus, base.dmem0_kb, base.dmem1_kb) \
            == (eis.num_lsus, eis.dmem0_kb, eis.dmem1_kb)

    def test_has_eis(self):
        assert has_eis("DBA_2LSU_EIS")
        assert not has_eis("DBA_2LSU")

    def test_table2_rows_order(self):
        assert TABLE2_ROWS[0] == ("108Mini", None)
        assert TABLE2_ROWS[-1] == ("DBA_2LSU_EIS", True)
        assert len(TABLE2_ROWS) == 6

    def test_row_labels(self):
        assert row_label("108Mini", None) == "108Mini"
        assert "w/ partial" in row_label("DBA_1LSU_EIS", True)
        assert "w/o partial" in row_label("DBA_1LSU_EIS", False)


class TestBuildProcessor:
    def test_eis_processor_has_extension(self):
        processor = build_processor("DBA_2LSU_EIS")
        assert "db_eis" in processor.extension_states
        assert "store_sop_int" in processor.isa

    def test_baseline_has_no_extension(self):
        processor = build_processor("DBA_1LSU")
        assert processor.extension_states == {}
        assert "store_sop_int" not in processor.isa

    def test_partial_load_flag_threads_through(self):
        with_pl = build_processor("DBA_1LSU_EIS", partial_load=True)
        without = build_processor("DBA_1LSU_EIS", partial_load=False)
        assert with_pl.extension_states["db_eis"].setdp.partial_load
        assert not without.extension_states["db_eis"].setdp.partial_load

    def test_prefetcher_optional(self):
        plain = build_processor("DBA_2LSU_EIS")
        assert plain.prefetcher is None
        streaming = build_processor("DBA_2LSU_EIS", prefetcher=True)
        assert streaming.prefetcher is not None
        assert "DMA_CTRL" in streaming.symbols

    def test_headroom_override(self):
        processor = build_processor("DBA_1LSU", sim_headroom_kb=0)
        assert processor.dmem0.size_bytes == 64 * 1024
