"""FLIX encode/decode at the edges of the compact bundle fields.

The 10-bit branch-offset field gives bundles a ±511-word range relative
to the word after the bundle (``index + 2``).  These tests pin the
exact edges: ±511 must survive an encode/decode roundtrip, ±512 must
fail to encode, and a fully populated bundle must roundtrip through
``Program.encode`` / ``decode_bundle``.
"""

import pytest

from repro.isa.assembler import Bundle, BUNDLE_TAIL
from repro.isa.disasm import decode_bundle
from repro.isa.errors import EncodingError


def assemble(processor, source):
    return processor.assembler.assemble(source, "edges.s")


def decode_at(processor, words, index):
    """Decode the bundle starting at word *index*."""
    return decode_bundle(processor.flix_formats, words[index],
                         words[index + 1], index)


def bundle_with_branch_to(processor, target_word):
    """A program whose word-0 bundle branches to *target_word*."""
    pad = max(target_word - 2, 0)
    source = "\n".join(
        ["main:", "  { store_sop_int a8 ; beqz a8, far }"]
        + ["  nop"] * pad
        + ["far:", "  halt"])
    program = assemble(processor, source)
    assert program.label("far") == 2 + pad
    return program


class TestBranchOffsetEdges:
    def test_plus_511_roundtrips(self, eis_2lsu_partial):
        program = bundle_with_branch_to(eis_2lsu_partial, 513)
        slots = decode_at(eis_2lsu_partial, program.encode(), 0)
        spec, operands = slots[1]
        assert spec.name == "beqz"
        assert operands[-1] == 513

    def test_plus_512_fails_to_encode(self, eis_2lsu_partial):
        program = bundle_with_branch_to(eis_2lsu_partial, 514)
        with pytest.raises(EncodingError, match="out of range"):
            program.encode()

    def test_minus_512_roundtrips(self, eis_2lsu_partial):
        # Bundle at word 512 branching back to word 2:
        # offset = 2 - (512 + 2) = -512, the most negative encodable.
        source = "\n".join(
            ["main:", "  nop", "  nop", "back:"]
            + ["  nop"] * 510
            + ["  { store_sop_int a8 ; beqz a8, back }", "  halt"])
        program = assemble(eis_2lsu_partial, source)
        bundle_index = 512
        assert isinstance(program.items[bundle_index], Bundle)
        assert program.label("back") == 2
        words = program.encode()
        slots = decode_at(eis_2lsu_partial, words, bundle_index)
        _spec, operands = slots[1]
        assert operands[-1] == 2

    def test_minus_513_fails_to_encode(self, eis_2lsu_partial):
        source = "\n".join(
            ["main:", "  nop", "  nop", "back:"]
            + ["  nop"] * 511
            + ["  { store_sop_int a8 ; beqz a8, back }", "  halt"])
        program = assemble(eis_2lsu_partial, source)
        with pytest.raises(EncodingError, match="out of range"):
            program.encode()

    def test_encode_error_carries_source_location(self, eis_2lsu_partial):
        program = bundle_with_branch_to(eis_2lsu_partial, 514)
        with pytest.raises(EncodingError, match=r"edges\.s: line 2"):
            program.encode()


class TestMaxSlotBundles:
    def test_three_slot_bundle_roundtrips(self, eis_2lsu_partial):
        # One op per db64 slot: mem, compute, ctl.
        program = assemble(eis_2lsu_partial,
                           "main:\n  { ld_a ; ldp_b ; nop }\n  halt\n")
        bundle = program.items[0]
        assert isinstance(bundle, Bundle)
        assert len(bundle.slots) == 3
        assert program.items[1] is BUNDLE_TAIL
        slots = decode_at(eis_2lsu_partial, program.encode(), 0)
        assert [spec.name for spec, _ops in slots] \
            == ["ld_a", "ldp_b", "nop"]

    def test_operands_survive_roundtrip(self, eis_2lsu_partial):
        program = assemble(
            eis_2lsu_partial,
            "main:\n  { store_sop_uni a9 ; beqz a9, out }\nout:\n"
            "  halt\n")
        slots = decode_at(eis_2lsu_partial, program.encode(), 0)
        assert slots[0][1] == (9,)
        assert slots[1][1] == (9, 2)
