"""Semantics tests for every base instruction.

Each test assembles a tiny program, runs it on a fresh core and checks
the architectural outcome — the base-ISA counterpart of the paper's
per-instruction unit tests.
"""

import pytest

from repro.cpu import CoreConfig, Processor
from repro.isa.instructions import build_base_isa, to_signed, to_unsigned


def run_snippet(body, regs=None, dmem=None):
    processor = Processor(CoreConfig("t", dmem0_kb=16, sim_headroom_kb=0))
    if dmem:
        for addr, values in dmem.items():
            processor.write_words(addr, values)
    processor.load_program("main:\n%s\n  halt\n" % body)
    return processor, processor.run(entry="main", regs=regs or {})


class TestHelpers:
    def test_to_signed(self):
        assert to_signed(0) == 0
        assert to_signed(0x7FFFFFFF) == 0x7FFFFFFF
        assert to_signed(0x80000000) == -0x80000000
        assert to_signed(0xFFFFFFFF) == -1

    def test_to_unsigned(self):
        assert to_unsigned(-1) == 0xFFFFFFFF
        assert to_unsigned(1 << 33) == 0


class TestAluRegister:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("add", 3, 4, 7),
        ("add", 0xFFFFFFFF, 1, 0),              # wraparound
        ("sub", 3, 4, 0xFFFFFFFF),
        ("and", 0b1100, 0b1010, 0b1000),
        ("or", 0b1100, 0b1010, 0b1110),
        ("xor", 0b1100, 0b1010, 0b0110),
        ("sll", 1, 4, 16),
        ("sll", 1, 33, 2),                       # shift amount mod 32
        ("srl", 0x80000000, 31, 1),
        ("sra", 0x80000000, 31, 0xFFFFFFFF),     # arithmetic shift
        ("slt", 0xFFFFFFFF, 0, 1),               # -1 < 0 signed
        ("sltu", 0xFFFFFFFF, 0, 0),              # max unsigned not < 0
        ("min", 0xFFFFFFFF, 1, 0xFFFFFFFF),      # signed: -1 < 1
        ("max", 0xFFFFFFFF, 1, 1),
        ("minu", 0xFFFFFFFF, 1, 1),
        ("maxu", 0xFFFFFFFF, 1, 0xFFFFFFFF),
        ("mul", 7, 6, 42),
        ("mul", 0x10000, 0x10000, 0),            # low 32 bits
    ])
    def test_semantics(self, op, a, b, expected):
        _p, result = run_snippet("  %s a4, a2, a3" % op,
                                 regs={"a2": a, "a3": b})
        assert result.reg("a4") == expected

    def test_mulh_signed_high_bits(self):
        _p, result = run_snippet("  mulh a4, a2, a3",
                                 regs={"a2": 0xFFFFFFFF, "a3": 2})
        assert result.reg("a4") == 0xFFFFFFFF  # (-1 * 2) >> 32 == -1

    @pytest.mark.parametrize("op,a,b,expected", [
        ("quou", 43, 5, 8),
        ("remu", 43, 5, 3),
        ("quos", to_unsigned(-43), 5, to_unsigned(-8)),
        ("rems", to_unsigned(-43), 5, to_unsigned(-3)),
        ("quou", 1, 0, 0xFFFFFFFF),              # division by zero
    ])
    def test_division(self, op, a, b, expected):
        _p, result = run_snippet("  %s a4, a2, a3" % op,
                                 regs={"a2": a, "a3": b})
        assert result.reg("a4") == expected


class TestAluImmediate:
    @pytest.mark.parametrize("body,regs,expected", [
        ("  addi a4, a2, -3", {"a2": 10}, 7),
        ("  andi a4, a2, 0xFF", {"a2": 0x1234}, 0x34),
        ("  ori a4, a2, 0xF0", {"a2": 0x01}, 0xF1),
        ("  xori a4, a2, 0xFF", {"a2": 0x0F}, 0xF0),
        ("  slli a4, a2, 8", {"a2": 1}, 256),
        ("  srli a4, a2, 8", {"a2": 0x80000000}, 0x00800000),
        ("  srai a4, a2, 8", {"a2": 0x80000000}, 0xFF800000),
        ("  slti a4, a2, 5", {"a2": 0xFFFFFFFF}, 1),
        ("  sltui a4, a2, 5", {"a2": 0xFFFFFFFF}, 0),
        ("  movi a4, -7", {}, to_unsigned(-7)),
        ("  movhi a4, 0x1234", {}, 0x12340000),
    ])
    def test_semantics(self, body, regs, expected):
        _p, result = run_snippet(body, regs=regs)
        assert result.reg("a4") == expected


class TestMemoryInstructions:
    def test_l32i_s32i(self):
        processor, result = run_snippet(
            "  l32i a4, a2, 4\n  addi a4, a4, 1\n  s32i a4, a2, 8",
            regs={"a2": 0x100}, dmem={0x100: [10, 20, 30]})
        assert result.reg("a4") == 21
        assert processor.read_words(0x108, 1) == [21]

    def test_halfword_and_byte_loads(self):
        _p, result = run_snippet(
            "  l16ui a4, a2, 0\n  l16si a5, a2, 2\n  l8ui a6, a2, 1",
            regs={"a2": 0x100}, dmem={0x100: [0xFFFF1234]})
        assert result.reg("a4") == 0x1234
        assert result.reg("a5") == 0xFFFFFFFF  # sign-extended 0xFFFF
        assert result.reg("a6") == 0x12

    def test_subword_stores(self):
        processor, _r = run_snippet(
            "  s16i a3, a2, 0\n  s8i a4, a2, 3",
            regs={"a2": 0x100, "a3": 0xBEEF, "a4": 0x7A},
            dmem={0x100: [0]})
        assert processor.read_words(0x100, 1) == [0x7A00BEEF]


class TestControlFlow:
    @pytest.mark.parametrize("op,a,b,taken", [
        ("beq", 5, 5, True), ("beq", 5, 6, False),
        ("bne", 5, 6, True), ("bne", 5, 5, False),
        ("blt", to_unsigned(-1), 0, True), ("blt", 0, to_unsigned(-1),
                                            False),
        ("bltu", 0, to_unsigned(-1), True),
        ("bge", 0, to_unsigned(-1), True),
        ("bgeu", to_unsigned(-1), 0, True),
    ])
    def test_conditional_branches(self, op, a, b, taken):
        body = ("  %s a2, a3, yes\n  movi a4, 0\n  j out\n"
                "yes:\n  movi a4, 1\nout:" % op)
        _p, result = run_snippet(body, regs={"a2": a, "a3": b})
        assert result.reg("a4") == (1 if taken else 0)

    @pytest.mark.parametrize("op,value,taken", [
        ("beqz", 0, True), ("beqz", 7, False),
        ("bnez", 7, True), ("bnez", 0, False),
    ])
    def test_zero_branches(self, op, value, taken):
        body = ("  %s a2, yes\n  movi a4, 0\n  j out\n"
                "yes:\n  movi a4, 1\nout:" % op)
        _p, result = run_snippet(body, regs={"a2": value})
        assert result.reg("a4") == (1 if taken else 0)

    def test_call_and_ret(self):
        body = ("  call sub\n  addi a4, a4, 100\n  j out\n"
                "sub:\n  movi a4, 1\n  ret\nout:")
        _p, result = run_snippet(body)
        assert result.reg("a4") == 101

    def test_jalr_indirect(self):
        # a2 holds the word index of "target"
        body = ("  jalr a5, a2\n  j out\n"
                "target:\n  movi a4, 42\nout:")
        processor = Processor(CoreConfig("t", dmem0_kb=16,
                                         sim_headroom_kb=0))
        program = processor.load_program("main:\n%s\n  halt\n" % body)
        result = processor.run(entry="main",
                               regs={"a2": program.label("target")})
        assert result.reg("a4") == 42
        assert result.reg("a5") == 1  # return word index after jalr


class TestFeatureGating:
    def test_dba_has_no_divider(self):
        isa = build_base_isa({"has_mul": True, "has_div": False})
        assert "quou" not in isa
        assert "mul" in isa

    def test_opcodes_stable_across_features(self):
        full = build_base_isa({})
        gated = build_base_isa({"has_div": False})
        assert full.lookup("beq").opcode == gated.lookup("beq").opcode

    def test_division_rejected_by_assembler_when_absent(self):
        from repro.isa.errors import UnknownInstructionError
        processor = Processor(CoreConfig("t", dmem0_kb=16, has_div=False,
                                         sim_headroom_kb=0))
        with pytest.raises(UnknownInstructionError):
            processor.load_program("main:\n  quou a2, a3, a4\n  halt\n")
