"""Disassembler round trips."""

import pytest

from repro.configs.catalog import build_processor
from repro.isa.assembler import Assembler
from repro.isa.disasm import decode_word, disassemble_words
from repro.isa.errors import EncodingError
from repro.isa.instructions import build_base_isa


@pytest.fixture()
def isa():
    return build_base_isa()


class TestDecodeWord:
    def test_round_trip_all_base_instructions(self, isa):
        asm = Assembler(isa)
        source = "\n".join([
            "x:",
            "  add a1, a2, a3",
            "  addi a4, a5, -12",
            "  l32i a6, a7, 8",
            "  s32i a6, a7, 12",
            "  beq a1, a2, x",
            "  beqz a3, x",
            "  j x",
            "  jal x",
            "  rur a2, 7",
            "  nop",
            "  ret",
            "  halt",
        ])
        program = asm.assemble(source)
        words = program.encode()
        for index, item in enumerate(program.items):
            spec, operands, size = decode_word(isa, words[index], index)
            assert spec.name == item.spec.name
            assert tuple(operands) == tuple(item.operands)
            assert size == 1

    def test_unknown_opcode(self, isa):
        with pytest.raises(EncodingError):
            decode_word(isa, 0xF7000000, 0)

    def test_flix_header_rejected(self, isa):
        with pytest.raises(EncodingError, match="decode_bundle"):
            decode_word(isa, 0xFE100000, 0)


class TestDisassembleListing:
    def test_scalar_listing(self, isa):
        asm = Assembler(isa)
        program = asm.assemble("main:\n  movi a2, 3\n  halt")
        lines = disassemble_words(isa, program.encode())
        assert "movi" in lines[0]
        assert "halt" in lines[1]

    def test_bundle_listing(self):
        processor = build_processor("DBA_2LSU_EIS")
        program = processor.assembler.assemble(
            "x:\n  { store_sop_int a8 ; beqz a8, x }\n  halt")
        lines = disassemble_words(processor.isa, program.encode(),
                                  processor.flix_formats)
        assert "store_sop_int" in lines[0]
        assert "beqz" in lines[0]
        assert lines[0].strip().startswith("0:")

    def test_branch_targets_shown_absolute(self, isa):
        asm = Assembler(isa)
        program = asm.assemble("loop:\n  nop\n  bnez a2, loop\n  halt")
        lines = disassemble_words(isa, program.encode())
        assert "@0" in lines[1]
