"""Unit tests for the binary instruction formats."""

import pytest

from repro.isa.encoding import (FLIX_OPCODE, FORMATS, opcode_of,
                                pack_flix_header, unpack_flix_header)
from repro.isa.errors import EncodingError


class TestFormatRoundTrips:
    @pytest.mark.parametrize("fmt,operands", [
        ("R", (1, 2, 3)),
        ("R", (15, 15, 15)),
        ("R", (0, 0, 0)),
        ("R4", (1, 2, 3, 4)),
        ("R4", (15, 0, 15, 0)),
        ("I", (4, 5, 1000)),
        ("I", (4, 5, -1000)),
        ("I", (0, 0, -32768)),
        ("I", (0, 0, 32767)),
        ("IU", (4, 5, 0xFFFF)),
        ("B", (2, 3, 100)),
        ("B", (2, 3, -100)),
        ("BZ", (7, -42)),
        ("J", (0,)),
        ("J", (-(1 << 23),)),
        ("J", ((1 << 23) - 1,)),
        ("U", (3, 0xABC)),
        ("N", ()),
    ])
    def test_pack_unpack(self, fmt, operands):
        word = FORMATS[fmt].pack(0x42, operands)
        assert opcode_of(word) == 0x42
        assert 0 <= word < (1 << 32)
        assert FORMATS[fmt].unpack(word) == operands

    @pytest.mark.parametrize("fmt,operands", [
        ("R", (16, 0, 0)),
        ("R", (0, -1, 0)),
        ("I", (0, 0, 32768)),
        ("I", (0, 0, -32769)),
        ("IU", (0, 0, -1)),
        ("IU", (0, 0, 0x10000)),
        ("B", (0, 0, 1 << 15)),
        ("J", (1 << 23,)),
        ("U", (0, 1 << 12)),
    ])
    def test_out_of_range_rejected(self, fmt, operands):
        with pytest.raises(EncodingError):
            FORMATS[fmt].pack(0x42, operands)

    @pytest.mark.parametrize("fmt,operands", [
        ("R", (1, 2)),
        ("I", (1, 2, 3, 4)),
        ("N", (1,)),
        ("J", ()),
    ])
    def test_wrong_arity_rejected(self, fmt, operands):
        with pytest.raises(EncodingError):
            FORMATS[fmt].pack(0x42, operands)


class TestFlixHeader:
    def test_round_trip(self):
        word = pack_flix_header(5, 3)
        assert opcode_of(word) == FLIX_OPCODE
        assert unpack_flix_header(word) == (5, 3)

    def test_low_bits_free_for_payload(self):
        word = pack_flix_header(1, 2)
        assert word & 0xFFFF == 0

    def test_rejects_non_flix_word(self):
        with pytest.raises(EncodingError):
            unpack_flix_header(0x01000000)

    def test_rejects_large_ids(self):
        with pytest.raises(EncodingError):
            pack_flix_header(16, 0)
        with pytest.raises(EncodingError):
            pack_flix_header(0, 16)


class TestFormatMetadata:
    def test_operand_kinds_exposed(self):
        assert FORMATS["R"].operand_kinds == ("reg", "reg", "reg")
        assert FORMATS["B"].operand_kinds == ("reg", "reg", "off")
        assert FORMATS["N"].operand_kinds == ()

    def test_all_formats_distinct_names(self):
        names = [fmt.name for fmt in FORMATS.values()]
        # I and IU share the encoding class but the registry keys are
        # what the specs reference.
        assert len(set(FORMATS)) == len(FORMATS)
        assert "I" in names
