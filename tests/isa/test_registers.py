"""Unit tests for the base register model."""

import pytest

from repro.isa.errors import RegisterError
from repro.isa.registers import (NUM_ADDRESS_REGISTERS, RegisterFile,
                                 is_register, parse_register,
                                 register_name)


class TestParseRegister:
    @pytest.mark.parametrize("token,index", [
        ("a0", 0), ("a1", 1), ("a15", 15), ("A7", 7), (" a3 ", 3),
        ("sp", 1), ("ra", 0), ("SP", 1),
    ])
    def test_valid_tokens(self, token, index):
        assert parse_register(token) == index

    @pytest.mark.parametrize("token", [
        "a16", "a-1", "b0", "", "a", "x5", "a1.5", "16",
    ])
    def test_invalid_tokens(self, token):
        with pytest.raises(RegisterError):
            parse_register(token)

    def test_non_string_rejected(self):
        with pytest.raises(RegisterError):
            parse_register(5)

    def test_is_register_predicate(self):
        assert is_register("a4")
        assert is_register("sp")
        assert not is_register("v0")
        assert not is_register("loop")


class TestRegisterName:
    def test_round_trip(self):
        for index in range(NUM_ADDRESS_REGISTERS):
            assert parse_register(register_name(index)) == index

    def test_out_of_range(self):
        with pytest.raises(RegisterError):
            register_name(16)
        with pytest.raises(RegisterError):
            register_name(-1)


class TestRegisterFile:
    def test_write_masks_to_width(self):
        regs = RegisterFile("ar")
        regs.write(3, 0x1_2345_6789)
        assert regs.read(3) == 0x2345_6789

    def test_item_syntax_masks_too(self):
        regs = RegisterFile("ar")
        regs[2] = -1
        assert regs[2] == 0xFFFFFFFF

    def test_negative_values_wrap(self):
        regs = RegisterFile("ar")
        regs[0] = -2
        assert regs[0] == 0xFFFFFFFE

    def test_reset_clears_all(self):
        regs = RegisterFile("ar")
        for i in range(len(regs)):
            regs[i] = i + 1
        regs.reset()
        assert regs.snapshot() == [0] * NUM_ADDRESS_REGISTERS

    def test_snapshot_is_a_copy(self):
        regs = RegisterFile("ar")
        snap = regs.snapshot()
        snap[0] = 99
        assert regs[0] == 0

    def test_custom_width(self):
        regs = RegisterFile("small", size=4, width_bits=8)
        regs[0] = 0x1FF
        assert regs[0] == 0xFF
