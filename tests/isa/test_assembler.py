"""Unit tests for the two-pass macro assembler."""

import pytest

from repro.isa.assembler import Assembler, Bundle, BundleTail, Program
from repro.isa.errors import (AssemblerError, EncodingError,
                              UnknownInstructionError)
from repro.isa.instructions import build_base_isa


@pytest.fixture()
def asm():
    return Assembler(build_base_isa())


class TestBasics:
    def test_simple_program(self, asm):
        program = asm.assemble("main:\n  addi a2, a2, 1\n  halt\n")
        assert len(program) == 2
        assert program.label("main") == 0

    def test_comments_stripped(self, asm):
        program = asm.assemble(
            "; full line\nmain: # trailing\n  nop // slashes\n  halt\n")
        assert program.instruction_count() == 2

    def test_label_on_same_line_as_instruction(self, asm):
        program = asm.assemble("main: addi a2, a2, 1\n  halt")
        assert program.label("main") == 0

    def test_multiple_labels_same_address(self, asm):
        program = asm.assemble("a: b:\n  nop\n  halt")
        assert program.label("a") == program.label("b") == 0

    def test_forward_and_backward_references(self, asm):
        program = asm.assemble(
            "start:\n  j fwd\nback:\n  halt\nfwd:\n  j back\n")
        jump_fwd = program.items[0]
        assert jump_fwd.operands == (program.label("fwd"),)
        jump_back = program.items[2]
        assert jump_back.operands == (program.label("back"),)

    def test_equ_constants(self, asm):
        program = asm.assemble(
            ".equ SIZE 40\n.equ BASE 0x100\nmain:\n"
            "  movi a2, SIZE\n  movi a3, BASE\n  halt")
        assert program.items[0].operands[2] == 40
        assert program.items[1].operands[2] == 0x100


class TestPseudoInstructions:
    def test_li_small_expands_to_movi(self, asm):
        program = asm.assemble("  li a2, 100\n  halt")
        assert program.items[0].spec.name == "movi"

    def test_li_large_expands_to_movhi_ori(self, asm):
        program = asm.assemble("  li a2, 0x12345678\n  halt")
        names = [item.spec.name for item in program.items[:2]]
        assert names == ["movhi", "ori"]

    def test_li_aligned_high_skips_ori(self, asm):
        program = asm.assemble("  li a2, 0x120000\n  halt")
        assert program.items[0].spec.name == "movhi"
        assert program.items[1].spec.name == "halt"

    def test_li_negative(self, asm):
        program = asm.assemble("  li a2, -5\n  halt")
        assert program.items[0].spec.name == "movi"
        assert program.items[0].operands[2] == -5

    def test_mv(self, asm):
        program = asm.assemble("  mv a2, a3\n  halt")
        assert program.items[0].spec.name == "or"
        assert program.items[0].operands == (2, 3, 3)

    def test_swapped_compare_branches(self, asm):
        program = asm.assemble("t:\n  bgt a2, a3, t\n  bleu a2, a3, t\n"
                               "  halt")
        assert program.items[0].spec.name == "blt"
        assert program.items[0].operands[:2] == (3, 2)
        assert program.items[1].spec.name == "bgeu"
        assert program.items[1].operands[:2] == (3, 2)


class TestLoadStoreSyntax:
    def test_two_operand_form_defaults_offset(self, asm):
        program = asm.assemble("  l32i a2, a3\n  halt")
        assert program.items[0].operands == (2, 3, 0)

    def test_three_operand_form(self, asm):
        program = asm.assemble("  s32i a2, a3, 12\n  halt")
        assert program.items[0].operands == (2, 3, 12)


class TestErrors:
    def test_unknown_instruction(self, asm):
        with pytest.raises(UnknownInstructionError):
            asm.assemble("  frobnicate a2\n")

    def test_duplicate_label(self, asm):
        with pytest.raises(AssemblerError, match="duplicate label"):
            asm.assemble("x:\n  nop\nx:\n  halt")

    def test_undefined_label(self, asm):
        with pytest.raises(AssemblerError, match="undefined label"):
            asm.assemble("  j nowhere\n  halt")

    def test_undefined_symbol(self, asm):
        with pytest.raises(AssemblerError, match="undefined symbol"):
            asm.assemble("  movi a2, MISSING\n  halt")

    def test_wrong_operand_count(self, asm):
        with pytest.raises(AssemblerError, match="operands"):
            asm.assemble("  add a2, a3\n")

    def test_bad_register(self, asm):
        with pytest.raises(AssemblerError):
            asm.assemble("  add a2, a3, b9\n")

    def test_numeric_branch_target_rejected(self, asm):
        with pytest.raises(AssemblerError, match="labels"):
            asm.assemble("  j 4\n")

    def test_error_carries_line_number(self, asm):
        with pytest.raises(AssemblerError, match="line 3"):
            asm.assemble("main:\n  nop\n  bogus a1\n")

    def test_bundle_without_flix_formats(self, asm):
        with pytest.raises(AssemblerError, match="FLIX"):
            asm.assemble("  { nop ; nop }\n")

    def test_equ_requires_value(self, asm):
        with pytest.raises(AssemblerError):
            asm.assemble(".equ ONLYNAME\n")

    def test_error_carries_source_name(self, asm):
        with pytest.raises(AssemblerError, match=r"probe\.s: line 2"):
            asm.assemble("main:\n  bogus a1\n", "probe.s")

    def test_error_exposes_location_attributes(self, asm):
        with pytest.raises(AssemblerError) as excinfo:
            asm.assemble("main:\n  nop\n  frobnicate a2\n", "probe.s")
        error = excinfo.value
        assert error.source_name == "probe.s"
        assert error.line_number == 3
        assert "frobnicate" in error.line_text

    def test_encode_error_carries_source_name(self, asm):
        program = asm.assemble("main:\n  nop\nfar:\n  halt\n", "probe.s")
        # Corrupt the branch distance past the signed 16-bit range to
        # force a late EncodingError out of Program.encode.
        from repro.isa.assembler import AsmItem
        beqz = asm.isa.lookup("beqz")
        items = list(program.items)
        items.insert(1, AsmItem(beqz, (2, 0x2_0000), 2))
        broken = Program(items, dict(program.labels), "probe.s")
        with pytest.raises(EncodingError, match=r"probe\.s: line 2"):
            broken.encode()


class TestEncoding:
    def test_whole_program_encodes_to_words(self, asm):
        program = asm.assemble(
            "main:\n  movi a2, 5\nloop:\n  addi a2, a2, -1\n"
            "  bnez a2, loop\n  halt")
        words = program.encode()
        assert len(words) == 4
        assert all(0 <= word < (1 << 32) for word in words)

    def test_branch_offset_encoding_is_relative(self, asm):
        program = asm.assemble("loop:\n  nop\n  bnez a2, loop\n  halt")
        words = program.encode()
        # bnez at word 1 targets word 0: offset = 0 - (1+1) = -2
        assert (words[1] & 0xFFFF) == (-2 & 0xFFFF)


class TestBundlesOnEisProcessor:
    def test_bundle_items_and_tail(self):
        from repro.configs.catalog import build_processor
        processor = build_processor("DBA_2LSU_EIS")
        program = processor.assembler.assemble(
            "loop:\n  { store_sop_int a8 ; beqz a8, out }\n"
            "  { ld_ldp_shuffle }\n  j loop\nout:\n  halt")
        assert isinstance(program.items[0], Bundle)
        assert isinstance(program.items[1], BundleTail)
        assert program.items[0].size == 2
        # two 2-word bundles plus the 1-word jump
        assert program.label("out") == 5

    def test_semicolon_separates_slots_not_comments(self):
        from repro.configs.catalog import build_processor
        processor = build_processor("DBA_2LSU_EIS")
        program = processor.assembler.assemble(
            "x:\n  { store_sop_int a8 ; beqz a8, x } ; trailing comment\n"
            "  halt")
        assert len(program.items[0].slots) == 2

    def test_multi_expansion_pseudo_rejected_in_bundle(self):
        from repro.configs.catalog import build_processor
        processor = build_processor("DBA_2LSU_EIS")
        with pytest.raises(AssemblerError, match="pseudo"):
            processor.assembler.assemble("  { li a2, 0x12345678 }\n")
