"""Shape tests of the experiment harnesses (quick workload sizes).

Each experiment must reproduce the paper's *qualitative* findings; the
full-size quantitative record lives in EXPERIMENTS.md and the
benchmarks.
"""

import pytest

from repro.experiments import (energy, figure13, prefetch_validation,
                               table2, table3, table4, table5, table6)
from repro.experiments.base import ExperimentResult


class TestExperimentResult:
    def test_format_and_lookup(self):
        result = ExperimentResult("T", "demo", ["name", "value"],
                                  [["a", 1.5], ["b", 2]],
                                  notes=["hello"])
        text = result.format()
        assert "demo" in text and "hello" in text
        assert result.column("value") == [1.5, 2]
        assert result.row_by("name", "b")["value"] == 2
        with pytest.raises(KeyError):
            result.row_by("name", "zzz")


@pytest.fixture(scope="module")
def quick_table2():
    return table2.run(set_size=600, sort_size=512)


class TestTable2Shape:
    def test_all_rows_present(self, quick_table2):
        assert len(quick_table2.rows) == 6

    def test_eis_beats_scalar_by_an_order_of_magnitude(self,
                                                       quick_table2):
        scalar = quick_table2.row_by("configuration", "DBA_1LSU")
        eis = quick_table2.row_by("configuration",
                                  "DBA_2LSU_EIS w/ partial load")
        assert eis["intersection"] > 10 * scalar["intersection"]
        assert eis["merge_sort"] > 5 * scalar["merge_sort"]

    def test_local_store_beats_108mini(self, quick_table2):
        mini = quick_table2.row_by("configuration", "108Mini")
        dba = quick_table2.row_by("configuration", "DBA_1LSU")
        for column in ("intersection", "union", "difference",
                       "merge_sort"):
            assert dba[column] > mini[column]

    def test_partial_loading_wins_intersection(self, quick_table2):
        with_pl = quick_table2.row_by("configuration",
                                      "DBA_2LSU_EIS w/ partial load")
        without = quick_table2.row_by("configuration",
                                      "DBA_2LSU_EIS w/o partial load")
        assert with_pl["intersection"] > without["intersection"]

    def test_second_lsu_wins_intersection(self, quick_table2):
        one = quick_table2.row_by("configuration",
                                  "DBA_1LSU_EIS w/ partial load")
        two = quick_table2.row_by("configuration",
                                  "DBA_2LSU_EIS w/ partial load")
        assert two["intersection"] > one["intersection"]

    def test_sort_unaffected_by_partial_loading(self, quick_table2):
        with_pl = quick_table2.row_by("configuration",
                                      "DBA_2LSU_EIS w/ partial load")
        without = quick_table2.row_by("configuration",
                                      "DBA_2LSU_EIS w/o partial load")
        assert with_pl["merge_sort"] \
            == pytest.approx(without["merge_sort"], rel=1e-6)

    def test_frequencies_from_synthesis(self, quick_table2):
        assert quick_table2.row_by("configuration", "108Mini")["f[MHz]"] \
            == 442
        assert quick_table2.row_by(
            "configuration", "DBA_2LSU_EIS w/ partial load")["f[MHz]"] \
            == 410


class TestTable3And4:
    def test_table3_rows(self):
        result = table3.run()
        assert len(result.rows) == 6
        row28 = [r for r in result.rows if r[0] == "28nm"][0]
        assert row28[4] == 500  # SLVT frequency cap

    def test_table4_sums_to_hundred(self):
        result = table4.run()
        total = result.row_by("part", "SUM")
        assert total["area_percent"] == pytest.approx(100.0, abs=0.3)

    def test_table4_union_largest_op(self):
        result = table4.run()
        ops = {row[0]: row[1] for row in result.rows
               if row[0].startswith("Op:")}
        assert max(ops, key=ops.get) == "Op: Union"


class TestTables5And6:
    def test_table5_energy_story(self):
        result = table5.run(sort_size=1024, swsort_sample=2048)
        hw = result.row_by("processor", "DBA_2LSU_EIS (hwsort)")
        sw = result.row_by("processor", "Intel Q9550 (swsort)")
        # swsort is faster in absolute terms (paper: ~2x) ...
        assert sw["throughput_meps"] > hw["throughput_meps"]
        assert sw["throughput_meps"] < 5 * hw["throughput_meps"]
        # ... but at hundreds of times the power
        assert sw["max_tdp_w"] > 500 * hw["max_tdp_w"]

    def test_table6_comparable_throughput(self):
        result = table6.run(hw_set_size=1500, sw_sample_size=10_000)
        hw = result.row_by("processor", "DBA_2LSU_EIS (hwset)")
        sw = result.row_by("processor", "Intel i7-920 (swset)")
        # the paper's headline: same performance class
        assert hw["throughput_meps"] \
            == pytest.approx(sw["throughput_meps"], rel=0.25)

    def test_energy_experiment_hits_960x(self):
        result = energy.run()
        note = result.notes[0]
        assert "power ratio" in note
        ratio = float(note.split(":")[1].split("x")[0])
        assert 900 < ratio < 1050


class TestFigure13Shape:
    @pytest.fixture(scope="class")
    def sweep(self):
        return figure13.run(set_size=400,
                            selectivities=(0.0, 0.5, 1.0))

    def test_throughput_increases_with_selectivity(self, sweep):
        for name in ("DBA_2LSU_EIS w/ partial load", "108Mini"):
            curve = figure13.series(sweep, name)
            assert curve[-1][1] > curve[0][1]

    def test_partial_loading_no_advantage_at_full_selectivity(self,
                                                              sweep):
        with_pl = dict(figure13.series(
            sweep, "DBA_2LSU_EIS w/ partial load"))
        without = dict(figure13.series(
            sweep, "DBA_2LSU_EIS w/o partial load"))
        # clear advantage at 50%...
        assert with_pl[50] > 1.15 * without[50]
        # ...vanishing at 100% (both advance 4 elements per set & op)
        assert with_pl[100] == pytest.approx(without[100], rel=0.02)

    def test_render_ascii(self, sweep):
        art = figure13.render_ascii(sweep)
        assert "#" in art


class TestPrefetchValidation:
    def test_constant_throughput(self):
        result = prefetch_validation.run(sizes=(8_000, 16_000))
        streamed = [row for row in result.rows
                    if row[0] == "streamed+overlap"]
        assert len(streamed) == 2
        small, large = streamed
        # larger data may not be slower (constant-throughput claim)
        assert large[2] >= small[2] * 0.95
        # and overlap beats blocking
        for row in streamed:
            assert row[2] > row[3]
