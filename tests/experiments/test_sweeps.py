"""Selectivity sweeps for union and difference (Section 5.2: "We
obtain similar results also for the other two set operation
algorithms")."""

import pytest

from repro.experiments import figure13


@pytest.fixture(scope="module", params=["union", "difference"])
def sweep(request):
    rows = [("DBA_2LSU_EIS", True), ("DBA_2LSU_EIS", False),
            ("DBA_1LSU", None)]
    return request.param, figure13.run(
        set_size=400, selectivities=(0.0, 0.5, 1.0), rows=rows,
        which=request.param)


class TestOtherOperationsSweep:
    def test_throughput_rises_with_selectivity(self, sweep):
        which, result = sweep
        curve = figure13.series(result,
                                "DBA_2LSU_EIS w/ partial load")
        assert curve[-1][1] > curve[0][1]

    def test_eis_beats_scalar_at_every_point(self, sweep):
        which, result = sweep
        eis = dict(figure13.series(result,
                                   "DBA_2LSU_EIS w/ partial load"))
        scalar = dict(figure13.series(result, "DBA_1LSU"))
        for point, value in eis.items():
            assert value > 5 * scalar[point]

    def test_partial_loading_no_advantage_at_100(self, sweep):
        which, result = sweep
        with_pl = dict(figure13.series(result,
                                       "DBA_2LSU_EIS w/ partial load"))
        without = dict(figure13.series(
            result, "DBA_2LSU_EIS w/o partial load"))
        assert with_pl[100] == pytest.approx(without[100], rel=0.05)


class TestDifferenceMirrorsIntersection:
    def test_difference_tracks_intersection_cycles(self,
                                                   eis_2lsu_partial):
        """Table 2: difference ~= intersection throughput (both write
        at most one side's values)."""
        from repro.core.kernels import run_set_operation
        from repro.workloads.sets import generate_set_pair
        set_a, set_b = generate_set_pair(1000, selectivity=0.5, seed=5)
        _r, diff = run_set_operation(eis_2lsu_partial, "difference",
                                     set_a, set_b)
        _r, intersect = run_set_operation(eis_2lsu_partial,
                                          "intersection", set_a, set_b)
        assert diff.cycles == pytest.approx(intersect.cycles, rel=0.05)
